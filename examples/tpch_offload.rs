//! TPC-H scan offload (paper §V-C, Fig. 8/10): the modified query planner
//! detects an offload candidate, samples selectivity, pushes the filter
//! into a device-side SSDlet, and reorders the join — shown on Q14, the
//! paper's standout query.
//!
//! Run with: `cargo run --release --example tpch_offload`
//!
//! Set `BISCUIT_TRACE=q14.json` to capture a Chrome trace of the whole run,
//! including the planner's offload verdicts (see `docs/TRACING.md` for an
//! annotated walkthrough of exactly this trace). Set
//! `BISCUIT_QPROF=q14-prof.json` to export a per-query latency breakdown
//! with critical-path attribution (see `docs/QUERYPROF.md`).

use std::sync::Arc;

use biscuit::core::{CoreConfig, Ssd};
use biscuit::db::spec::ExecMode;
use biscuit::db::tpch::{all_queries, TpchData};
use biscuit::db::{Db, DbConfig};
use biscuit::fs::Fs;
use biscuit::host::{HostConfig, HostLoad};
use biscuit::sim::{QprofConfig, Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

const SF: f64 = 0.02;

fn main() {
    println!("generating TPC-H at scale factor {SF}...");
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 2 << 30,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(device), CoreConfig::paper_default());
    let ssd_handle = ssd.clone();
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    TpchData::generate(SF, 42).load_into(&mut db).expect("load");
    let db = Arc::new(db);
    for (name, meta) in db
        .catalog()
        .table_names()
        .iter()
        .map(|n| (*n, db.catalog().table(n).expect("registered")))
    {
        println!("  {name:<10} {:>9} rows {:>6} pages", meta.rows, meta.pages);
    }

    let sim = Simulation::new(0);
    if let Some(cfg) = TraceConfig::from_env() {
        sim.enable_trace(cfg);
        ssd_handle.attach_tracer(sim.tracer());
    }
    if QprofConfig::from_env().is_some() {
        sim.enable_qprof();
        ssd_handle.attach_qprof(sim.qprof());
    }
    sim.spawn("host-program", move |ctx| {
        db.prepare(ctx).expect("deploy scan module");
        let q14 = all_queries().into_iter().nth(13).expect("Q14");
        println!("\nQ14 (promotion effect): lineitem filtered to September 1995,");
        println!("joined with part — the month range compresses to the pattern");
        println!("key \"|1995-09\" and the filtered table moves first in the join.\n");

        // EXPLAIN the core join spec the way the planner sees it.
        let mut spec = biscuit::db::SelectSpec::new("q14-explain");
        let t_l = spec.scan(
            "lineitem",
            Some(biscuit::db::Expr::Between(
                Box::new(biscuit::db::Expr::Col(10)),
                biscuit::db::Value::date("1995-09-01"),
                biscuit::db::Value::date("1995-09-30"),
            )),
        );
        let t_p = spec.scan("part", None);
        spec.join(t_l, 1, t_p, 0);
        let plan = db
            .explain(ctx, &spec, ExecMode::Biscuit, HostLoad::IDLE)
            .expect("explain");
        println!("planner view:");
        for s in &plan.scans {
            println!(
                "  {:<10} offloaded={:<5} est_selectivity={:.4} keys={:?}",
                s.table, s.offloaded, s.est_selectivity, s.keys
            );
        }
        println!("  join order: {:?}\n", plan.join_order);

        let conv = q14
            .run(&db, ctx, ExecMode::Conv, HostLoad::IDLE)
            .expect("conv");
        let bis = q14
            .run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
            .expect("biscuit");
        assert_eq!(conv.rows.len(), bis.rows.len());

        println!("promo revenue: {:.4}%", promo_pct(&conv));
        println!();
        println!(
            "{:<10} {:>12} {:>16} {:>14}",
            "mode", "time", "bytes over link", "device pages"
        );
        for (name, out) in [("Conv", &conv), ("Biscuit", &bis)] {
            println!(
                "{:<10} {:>10.1}ms {:>14.2} MiB {:>14}",
                name,
                out.stats.elapsed.as_secs_f64() * 1e3,
                out.stats.link_bytes_to_host as f64 / (1 << 20) as f64,
                out.stats.device_pages_scanned,
            );
        }
        println!(
            "\nspeedup {:.1}x, I/O reduction {:.1}x (paper Q14: 166.8x and 315.4x on SF100 hardware)",
            conv.stats.elapsed.as_secs_f64() / bis.stats.elapsed.as_secs_f64(),
            conv.stats.link_bytes_to_host as f64 / bis.stats.link_bytes_to_host.max(1) as f64,
        );
        println!("offloaded tables: {:?}", bis.stats.offloaded_tables);
    });
    let report = sim.run();
    report.assert_quiescent();
    if let Some(path) = std::env::var("BISCUIT_TRACE")
        .ok()
        .filter(|p| !p.is_empty())
    {
        report.trace.write_chrome_json(&path).expect("write trace");
        println!("\n{}", report.trace.metrics());
        println!("trace written to {path} — open in chrome://tracing or Perfetto");
    }
    if let Some(path) = std::env::var("BISCUIT_QPROF")
        .ok()
        .filter(|p| !p.is_empty())
    {
        report.profiles.write_json(&path).expect("write profile");
        println!("\n{}", report.profiles.to_table());
        println!("query profile written to {path}");
    }
}

fn promo_pct(out: &biscuit::db::QueryOutput) -> f64 {
    out.rows[0][0].as_f64().unwrap_or(0.0)
}
