//! Array QoS under a seeded tenant flood (`docs/QOS.md`).
//!
//! A `WorkloadEngine` drives 2,048 open-loop queries from 64 Zipf-
//! distributed tenants — the head tenant weighted 4x — into the WFQ
//! `QueryScheduler` at roughly twice the array's service capacity, so
//! the bounded per-tenant queues shed real traffic while weights and
//! virtual-time tags keep every tenant served. The run then closes,
//! drains, and prints the per-tenant QoS report: offered/accepted/shed
//! counts and the p99 queue wait and end-to-end latency.
//!
//! Jobs use the service-time model (a virtual sleep proportional to
//! each query's WFQ cost) — the point here is the QoS layer, not the
//! grep datapath; `tests/workload.rs` runs the same soak shape against
//! real sharded greps.
//!
//! Run with: `cargo run --release --example workload_qos`
//!
//! Set `BISCUIT_METRICS=qos-metrics.json` to export the scheduler's
//! counters (`sched_shed_total{user}`, `array_queue_wait_ps{user}`,
//! `array_sched_backpressure_total`, …) alongside the printed report
//! (see `docs/METRICS.md`).

use biscuit::host::workload::drive_open_loop;
use biscuit::host::{
    ArrivalProcess, QueryScheduler, SchedulerConfig, WorkloadConfig, WorkloadEngine,
};
use biscuit::sim::time::SimDuration;
use biscuit::sim::{Ctx, MetricsConfig, Simulation};

const DRIVES: usize = 4;
const TENANTS: u32 = 64;
const QUERIES: u64 = 2_048;
/// Service time per WFQ cost unit under the service-time model.
const SERVICE_NS_PER_COST: u64 = 2_000;

fn main() {
    let sim = Simulation::new(0x0);
    let metrics = MetricsConfig::from_env();
    if metrics.is_some() {
        sim.enable_metrics();
    }
    sim.spawn("host-program", move |ctx| {
        let mut weights = vec![1u64; TENANTS as usize];
        weights[0] = 4; // the Zipf head pays for priority
        let sched = QueryScheduler::new(SchedulerConfig {
            users: TENANTS as usize,
            queue_capacity: 4,
            weights,
            ..SchedulerConfig::for_drives(DRIVES)
        });
        sched.attach_metrics(ctx.metrics());
        sched.start(ctx);

        let mut engine = WorkloadEngine::new(WorkloadConfig {
            tenants: TENANTS,
            queries: QUERIES,
            arrivals: ArrivalProcess::OpenLoop {
                // ~2x the 8-worker pool's capacity under the service-time
                // model: the soak must shed.
                mean_interarrival: SimDuration::from_micros(1),
            },
            // Flat rate: the default trough phase would swallow a run
            // this short before the overload ever bites.
            phases: Vec::new(),
            ..WorkloadConfig::default()
        });
        let stats = drive_open_loop(ctx, &sched, &mut engine, |a| {
            let service = SimDuration::from_nanos(a.cost * SERVICE_NS_PER_COST);
            move |qctx: &Ctx| qctx.sleep(service)
        });
        sched.close(ctx);
        sched.wait_completed(ctx, sched.submitted());

        let secs = (ctx.now() - biscuit::sim::time::SimTime::ZERO).as_secs_f64();
        println!(
            "{QUERIES} queries from {TENANTS} Zipf tenants over {DRIVES} drives: \
             {} accepted, {} shed, {:.0} q/s sustained\n",
            stats.accepted,
            stats.shed,
            stats.offered as f64 / secs
        );
        println!("tenant  weight  offered  accepted  shed  wait_p99     lat_p99");
        for r in sched.tenant_reports().iter().take(8) {
            println!(
                "{:>6}  {:>6}  {:>7}  {:>8}  {:>4}  {:>9.1}us  {:>8.1}us",
                r.user,
                r.weight,
                r.offered,
                r.accepted,
                r.shed,
                r.queue_wait.percentile(99.0) as f64 / 1e6,
                r.latency.percentile(99.0) as f64 / 1e6,
            );
        }
        println!("   ... ({} more tenants; every one served)", TENANTS - 8);

        let reports = sched.tenant_reports();
        assert!(reports.iter().all(|r| r.completed > 0), "no tenant starves");
        assert_eq!(stats.offered, stats.accepted + stats.shed);
        assert!(stats.shed > 0, "the flood is sized to overload the array");
    });
    let report = sim.run();
    report.assert_quiescent();
    if let Some(cfg) = metrics {
        cfg.write(&report.metrics).expect("write metrics");
        println!("\nmetrics written to {}", cfg.path);
    }
}
