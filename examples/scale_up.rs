//! Scale-out organization (paper Fig. 1(b)): one host, several SSDs.
//!
//! The paper argues Scale-up "has more aggregate compute resources (in
//! SSDs) as well as internal media bandwidth": with Biscuit, every drive
//! filters its shard locally and in parallel, so search throughput scales
//! with the number of drives, while the Conv path stays pinned at the
//! single host CPU's scan rate no matter how many drives feed it.
//!
//! Both paths run through the [`SsdArray`] shard coordinator: Conv as a
//! sequential per-shard loop ([`array_conv_grep`]), Biscuit as a scatter
//! across all drives gathered through the ordered merge port
//! ([`ArrayGrep`]). See `docs/SCALE.md`.
//!
//! Run with: `cargo run --release --example scale_up`

use std::sync::Arc;

use biscuit::apps::search::{array_conv_grep, ArrayGrep};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::Fs;
use biscuit::host::array::ArrayConfig;
use biscuit::host::{HostConfig, HostLoad, SsdArray};
use biscuit::sim::Simulation;
use biscuit::ssd::{SsdConfig, SsdDevice};

const DRIVES: usize = 4;
const SHARD_PAGES: u64 = 2048; // 32 MiB per drive

fn make_drive(shard: usize) -> Ssd {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 128 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(device);
    let page = fs.device().config().page_size as u64;
    fs.create_synthetic(
        "shard.log",
        SHARD_PAGES * page,
        Arc::new(WeblogGen::new(100 + shard as u64, 3000)),
    )
    .expect("shard");
    Ssd::new(fs, CoreConfig::paper_default())
}

fn main() {
    let drives: Vec<Ssd> = (0..DRIVES).map(make_drive).collect();
    let array = SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default());
    let sim = Simulation::new(0);
    sim.spawn("host-program", move |ctx| {
        // --- Conv: one host thread greps all shards, drive by drive ---
        // (the host CPU's Boyer-Moore is the bottleneck; extra drives
        // do not help).
        let t0 = ctx.now();
        let conv_total =
            array_conv_grep(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                .expect("conv grep");
        let conv_t = (ctx.now() - t0).as_secs_f64();

        // --- Biscuit: every drive filters its own shard, in parallel ---
        let grep = ArrayGrep::prepare(ctx, &array).expect("load modules");
        let t1 = ctx.now();
        let biscuit_total = grep
            .run(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
            .expect("device grep");
        let bis_t = (ctx.now() - t1).as_secs_f64();

        assert_eq!(conv_total, biscuit_total, "same matches either way");
        let total_mib = DRIVES as u64 * SHARD_PAGES * 16 / 1024;
        println!(
            "{DRIVES} drives x {} MiB shards = {total_mib} MiB, {conv_total} matches\n",
            SHARD_PAGES * 16 / 1024
        );
        println!(
            "Conv    (1 host thread, {DRIVES} drives): {:7.1} ms  ({:.2} GB/s aggregate)",
            conv_t * 1e3,
            total_mib as f64 / 1024.0 / conv_t
        );
        println!(
            "Biscuit ({DRIVES} drives in parallel):    {:7.1} ms  ({:.2} GB/s aggregate)",
            bis_t * 1e3,
            total_mib as f64 / 1024.0 / bis_t
        );
        println!(
            "\nscale-out speedup: {:.1}x (per-drive filtering multiplies with drive count;",
            conv_t / bis_t
        );
        println!("the Conv path cannot exceed one host core's scan rate)");
    });
    sim.run().assert_quiescent();
}
