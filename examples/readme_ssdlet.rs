//! The README's "Writing an SSDlet" example, verbatim and runnable.
//!
//! A single `Square` SSDlet is packaged into a module, loaded onto the
//! simulated SSD, wired to the host program through one host→device and one
//! device→host port, and fed a value — paper Code 1–3 in miniature.
//!
//! Run with: `cargo run --example readme_ssdlet`
//!
//! Set `BISCUIT_TRACE=/tmp/readme.json` to also capture a Chrome trace of
//! the run (see `docs/TRACING.md`).

use std::sync::Arc;

use biscuit::core::module::{ModuleBuilder, SsdletSpec};
use biscuit::core::task::{Ssdlet, TaskCtx};
use biscuit::core::{Application, CoreConfig, Ssd};
use biscuit::fs::Fs;
use biscuit::sim::{Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

struct Square;

impl Ssdlet for Square {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(v) = ctx.recv::<u64>(0).unwrap() {
            ctx.send(0, v * v).unwrap(); // typed, data-ordered port
        }
    }
}

fn main() {
    let dev = Arc::new(SsdDevice::new(SsdConfig::paper_default()));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let sim = Simulation::new(0);
    if let Some(cfg) = TraceConfig::from_env() {
        sim.enable_trace(cfg);
        ssd.attach_tracer(sim.tracer());
    }
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let module = ModuleBuilder::new("math")
            .register(
                "idSquare",
                SsdletSpec::new().input::<u64>().output::<u64>(),
                |_| Ok(Box::new(Square)),
            )
            .build();
        let mid = s.load_module(ctx, module).unwrap(); // dynamic module loading
        let app = Application::new(&s, "squares");
        let sq = app.ssdlet(mid, "idSquare").unwrap();
        let tx = app.connect_from::<u64>(sq.input(0)).unwrap(); // host→device port
        let rx = app.connect_to::<u64>(sq.out(0)).unwrap(); // device→host port
        app.start(ctx).unwrap();
        tx.put(ctx, 12).unwrap();
        tx.close(ctx);
        assert_eq!(rx.get(ctx), Some(144));
        app.join(ctx);
        s.unload_module(ctx, mid).unwrap();
        println!("12^2 computed on the device at t = {}", ctx.now());
    });
    let report = sim.run();
    report.assert_quiescent();
    if let Some(path) = std::env::var("BISCUIT_TRACE")
        .ok()
        .filter(|p| !p.is_empty())
    {
        report.trace.write_chrome_json(&path).expect("write trace");
        println!("trace written to {path} — open in chrome://tracing or Perfetto");
    }
}
