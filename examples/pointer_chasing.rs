//! Pointer chasing (paper §V-C, Table IV): random walks over an on-SSD
//! graph store, host round-trips vs in-device traversal.
//!
//! Run with: `cargo run --release --example pointer_chasing`

use std::sync::Arc;

use biscuit::apps::graph::{biscuit_chase, chase_module, conv_chase, ChaseArgs, SocialGraph};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::host::{ConvIo, HostConfig, HostLoad};
use biscuit::sim::Simulation;
use biscuit::ssd::{SsdConfig, SsdDevice};

const VERTICES: u64 = 50_000;
const WALKS: u64 = 10;
const STEPS: u64 = 150;

fn main() {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 256 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(Arc::clone(&device));
    let graph = SocialGraph::generate(VERTICES, 5);
    fs.create("graph.store").expect("create");
    fs.append_untimed("graph.store", graph.as_bytes())
        .expect("load graph");
    let file = fs.open("graph.store", Mode::ReadOnly).expect("open");

    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );

    let sim = Simulation::new(0);
    sim.spawn("host-program", move |ctx| {
        let module = ssd.load_module(ctx, chase_module()).expect("load module");
        println!("{WALKS} random walks x {STEPS} hops over a {VERTICES}-vertex social graph\n");
        println!(
            "{:<10} {:>12} {:>12} {:>8}",
            "load", "Conv", "Biscuit", "gain"
        );
        for threads in [0u32, 18, 24] {
            let load = HostLoad::new(threads);
            let t0 = ctx.now();
            let c =
                conv_chase(ctx, &conv, &file, WALKS, STEPS, 7, VERTICES, load).expect("conv chase");
            let conv_t = (ctx.now() - t0).as_secs_f64();
            let t1 = ctx.now();
            let b = biscuit_chase(
                ctx,
                &ssd,
                module,
                ChaseArgs {
                    file: file.clone(),
                    walks: WALKS,
                    steps: STEPS,
                    seed: 7,
                    vertices: VERTICES,
                },
            )
            .expect("biscuit chase");
            let bis_t = (ctx.now() - t1).as_secs_f64();
            assert_eq!(c, b, "identical walks must produce identical checksums");
            println!(
                "{:<10} {:>11.1}ms {:>11.1}ms {:>7.2}x",
                format!("{threads} thr"),
                conv_t * 1e3,
                bis_t * 1e3,
                conv_t / bis_t
            );
        }
        println!("\npaper Table IV: >=11% gain, Conv degrades under load, Biscuit flat");
    });
    sim.run().assert_quiescent();
}
