//! String search two ways (paper §V-C, Table V): host `grep` with
//! Boyer–Moore vs a pattern-matcher SSDlet — under background load.
//!
//! Run with: `cargo run --release --example string_search`

use std::sync::Arc;

use biscuit::apps::search::{biscuit_grep, conv_grep, load_grep_module};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::host::{ConvIo, HostConfig, HostLoad};
use biscuit::sim::Simulation;
use biscuit::ssd::{SsdConfig, SsdDevice};

const CORPUS_PAGES: u64 = 4096; // 64 MiB of 16 KiB pages

fn main() {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 256 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(Arc::clone(&device));

    // A synthetic web log: pages are regenerated deterministically, so the
    // corpus costs no host RAM (the paper's log is 7.8 GiB).
    let page = device.config().page_size as u64;
    fs.create_synthetic(
        "access.log",
        CORPUS_PAGES * page,
        Arc::new(WeblogGen::new(11, 2000)),
    )
    .expect("synthetic log");
    let file = fs.open("access.log", Mode::ReadOnly).expect("open");

    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );

    let sim = Simulation::new(0);
    sim.spawn("host-program", move |ctx| {
        let module = load_grep_module(ctx, &ssd).expect("load module");
        println!(
            "searching {} MiB of web log for \"{NEEDLE}\"\n",
            (CORPUS_PAGES * page) >> 20
        );
        println!(
            "{:<10} {:>12} {:>12} {:>9}",
            "load", "Conv", "Biscuit", "speedup"
        );
        for threads in [0u32, 12, 24] {
            let load = HostLoad::new(threads);
            let t0 = ctx.now();
            let c = conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), load).expect("conv grep");
            let conv_t = (ctx.now() - t0).as_secs_f64();
            let t1 = ctx.now();
            let b = biscuit_grep(ctx, &ssd, module, &file, NEEDLE.as_bytes()).expect("ssd grep");
            let bis_t = (ctx.now() - t1).as_secs_f64();
            assert_eq!(c, b, "both paths must count the same occurrences");
            println!(
                "{:<10} {:>11.0}ms {:>11.0}ms {:>8.1}x   ({c} matches)",
                format!("{threads} thr"),
                conv_t * 1e3,
                bis_t * 1e3,
                conv_t / bis_t
            );
        }
        println!("\npaper Table V: 5.3x at idle, 8.3x at 24 background threads");
    });
    sim.run().assert_quiescent();
}
