//! Quickstart: the paper's wordcount example (§III-E, Fig. 5) end to end.
//!
//! A host program loads the wordcount module onto the (simulated) SSD,
//! wires mappers → shuffler → reducers with typed ports, starts the
//! application, and drains `(word, count)` pairs from the device-to-host
//! ports — exactly the structure of the paper's Code 3.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Set `BISCUIT_TRACE=wordcount.json` to capture a Chrome trace of the
//! whole dataflow — every fiber, flash operation, and port message (see
//! `docs/TRACING.md`). Set `BISCUIT_METRICS=wordcount-metrics.json` (or
//! `.prom` for Prometheus text) to export the aggregate counters — NAND
//! ops per channel, link bytes, port traffic, scheduler activity (see
//! `docs/METRICS.md`). Set `BISCUIT_QPROF=wordcount-prof.json` to export
//! a per-stage latency breakdown of the run with its critical path (see
//! `docs/QUERYPROF.md`).

use std::sync::Arc;

use biscuit::apps::wordcount::{reference_wordcount, run_wordcount};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::sim::{MetricsConfig, QprofConfig, Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

fn main() {
    // 1. A simulated paper-spec SSD with a formatted volume.
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(device);

    // 2. Put a text corpus on it (untimed setup, like pre-loading a dataset).
    let corpus = "how much wood would a woodchuck chuck \
                  if a woodchuck could chuck wood "
        .repeat(400);
    fs.create("corpus.txt").expect("create file");
    fs.append_untimed("corpus.txt", corpus.as_bytes())
        .expect("load corpus");
    let file = fs.open("corpus.txt", Mode::ReadOnly).expect("open");

    // 3. Run the dataflow inside the simulation.
    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let expected = reference_wordcount(corpus.as_bytes());
    let sim = Simulation::new(0);
    if let Some(cfg) = TraceConfig::from_env() {
        sim.enable_trace(cfg);
        ssd.attach_tracer(sim.tracer());
    }
    let metrics_out = MetricsConfig::from_env();
    if metrics_out.is_some() {
        sim.enable_metrics();
        ssd.attach_metrics(sim.metrics());
    }
    if QprofConfig::from_env().is_some() {
        sim.enable_qprof();
        ssd.attach_qprof(sim.qprof());
    }
    sim.spawn("host-program", move |ctx| {
        // The whole wordcount runs as one profiled query when BISCUIT_QPROF
        // is set (a no-op span pair otherwise).
        let qp = ctx.qprof().clone();
        let span = qp.begin_query(ctx, 0);
        let t0 = ctx.now();
        let pairs = run_wordcount(ctx, &ssd, &file, 2, 2).expect("wordcount");
        println!(
            "wordcount over {} bytes on 2 mappers / 2 reducers:",
            corpus.len()
        );
        for (word, count) in &pairs {
            println!("  {word:<12} {count}");
        }
        assert_eq!(pairs, expected, "device result matches host reference");
        println!(
            "\nvirtual execution time: {} (all SSDlets ran on the simulated SSD)",
            ctx.now() - t0
        );
        if let Some(sc) = span {
            qp.end_query(ctx, sc);
        }
    });
    let report = sim.run();
    report.assert_quiescent();
    if let Some(path) = std::env::var("BISCUIT_TRACE")
        .ok()
        .filter(|p| !p.is_empty())
    {
        report.trace.write_chrome_json(&path).expect("write trace");
        println!("trace written to {path} — open in chrome://tracing or Perfetto");
    }
    if let Some(cfg) = metrics_out {
        cfg.write(&report.metrics).expect("write metrics");
        println!("metrics written to {}", cfg.path);
    }
    if let Some(path) = std::env::var("BISCUIT_QPROF")
        .ok()
        .filter(|p| !p.is_empty())
    {
        report.profiles.write_json(&path).expect("write profile");
        println!("{}", report.profiles.to_table());
        println!("query profile written to {path}");
    }
}
