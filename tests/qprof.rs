//! Query-profile determinism and closure: the observability contract from
//! `docs/QUERYPROF.md`, tested end to end.
//!
//! (a) With the same seed, the byte-deterministic `QueryProfiles` export is
//!     identical across repeated runs — and for the shard fleet, across
//!     every `BISCUIT_PAR` thread policy.
//! (b) Span accounting *closes*: every profiled query has zero orphan
//!     spans, zero never-closed queries, and an exclusive breakdown that
//!     sums exactly to its end-to-end latency.
//! (c) Closure survives the fault matrix — ECC read retries, link replays,
//!     and the mid-query DB host fallback all keep the books balanced.

use std::sync::Arc;

use biscuit::apps::search::{fleet_grep, fleet_grep_expected};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::db::spec::ExecMode;
use biscuit::db::tpch::{all_queries, TpchData};
use biscuit::db::{Db, DbConfig};
use biscuit::fs::Fs;
use biscuit::host::fleet::FleetConfig;
use biscuit::host::{HostConfig, HostLoad};
use biscuit::sim::fault::{FaultConfig, FaultPlan, FaultSite};
use biscuit::sim::par::{ParConfig, ParMode};
use biscuit::sim::time::SimDuration;
use biscuit::sim::{QueryProfiles, Simulation};
use biscuit::ssd::{SsdConfig, SsdDevice};

const SF: f64 = 0.0125;
const SEED: u64 = 0xB15C;

fn make_db() -> Arc<Db> {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 1 << 30,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    TpchData::generate(SF, 42).load_into(&mut db).unwrap();
    Arc::new(db)
}

/// Runs Q1 (conventional datapath) and Q6 (offloaded scan) in Biscuit mode
/// with profiling enabled, optionally under a fault plan. Returns the
/// byte-deterministic export and the structured snapshot.
fn profiled_mini_tpch(plan: Option<&FaultPlan>) -> (String, QueryProfiles) {
    let db = make_db();
    if let Some(p) = plan {
        db.ssd().attach_fault_plan(p);
    }
    let sim = Simulation::new(0);
    sim.enable_qprof();
    db.ssd().attach_qprof(sim.qprof());
    sim.spawn("host", move |ctx| {
        for id in [1, 6] {
            let q = all_queries().into_iter().find(|q| q.id == id).unwrap();
            q.run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
                .unwrap_or_else(|e| panic!("Q{id} failed: {e}"));
        }
    });
    let report = sim.run();
    report.assert_quiescent();
    let json = report.profiles.to_json();
    (json, report.profiles)
}

/// The closure invariant: no open queries, no orphan spans, and every
/// query's exclusive breakdown sums exactly to its end-to-end latency.
fn assert_closed(profiles: &QueryProfiles, what: &str) {
    assert_eq!(profiles.open(), 0, "[{what}] queries never closed");
    assert!(!profiles.is_empty(), "[{what}] no queries were profiled");
    for q in profiles.queries() {
        assert_eq!(q.orphans, 0, "[{what}] query {} has orphan spans", q.query);
        assert!(q.spans > 0, "[{what}] query {} recorded no spans", q.query);
        assert_eq!(
            q.breakdown_total_ps(),
            q.end_to_end().as_ps(),
            "[{what}] query {} breakdown does not sum to end-to-end",
            q.query
        );
    }
}

#[test]
fn tpch_profile_export_is_deterministic_and_closed() {
    let (reference, profiles) = profiled_mini_tpch(None);
    assert_closed(&profiles, "clean Q1+Q6");
    // One root query per executed statement, minted by `Db::execute`.
    assert_eq!(profiles.queries().len(), 2, "Q1 and Q6 each profiled once");
    for round in 0..3 {
        let (json, profiles) = profiled_mini_tpch(None);
        assert_eq!(json, reference, "round {round}: profile export diverged");
        assert_closed(&profiles, "repeat round");
    }
}

#[test]
fn fleet_profiles_byte_identical_across_policies() {
    const DRIVES: usize = 4;
    const SHARD_PAGES: u64 = 32;
    const NEEDLE_EVERY: u64 = 150;
    const PASSES: usize = 2;

    let soak = |mode: ParMode| {
        let cfg = FleetConfig {
            drives: DRIVES,
            seed: SEED,
            metrics: false,
            trace: None,
            qprof: true,
            par: ParConfig {
                mode,
                lookahead: Some(SimDuration::from_micros(500)),
            },
        };
        let report = fleet_grep(&cfg, SHARD_PAGES, NEEDLE_EVERY, PASSES);
        report.assert_quiescent();
        let total: u64 = report.items.iter().map(|(_, c)| *c).sum();
        assert_eq!(
            total,
            fleet_grep_expected(DRIVES, SHARD_PAGES, NEEDLE_EVERY, PASSES),
            "{mode:?} match count"
        );
        for r in &report.reports {
            assert_closed(&r.profiles, "fleet shard");
        }
        report.profiles_json()
    };

    let reference = soak(ParMode::Single);
    assert!(
        reference.contains("\"query\""),
        "fleet export carries profiled queries"
    );
    // Thread interleavings differ run to run; the export must not.
    for round in 0..2 {
        for mode in [ParMode::PerShard, ParMode::Threads(2)] {
            assert_eq!(
                soak(mode),
                reference,
                "round {round}: {mode:?} profile export diverged from Single"
            );
        }
    }
}

#[test]
fn profiles_close_through_faults_and_host_fallback() {
    struct Entry {
        name: &'static str,
        cfg: FaultConfig,
        check: fn(&FaultPlan),
    }
    let matrix = vec![
        Entry {
            name: "ECC read retries",
            cfg: FaultConfig {
                nand_read_error_rate: 0.05,
                ..FaultConfig::default()
            },
            check: |p| assert!(p.recovered_at(FaultSite::NandRead) >= 1, "retries ran"),
        },
        Entry {
            name: "link CRC replay",
            cfg: FaultConfig {
                link_corrupt_rate: 0.02,
                ..FaultConfig::default()
            },
            check: |p| {
                let replays =
                    p.recovered_at(FaultSite::LinkToHost) + p.recovered_at(FaultSite::LinkToDevice);
                assert!(replays >= 1, "link replays ran");
            },
        },
        Entry {
            name: "SSDlet panics past budget -> host fallback",
            cfg: FaultConfig {
                ssdlet_panics: 8,
                ssdlet_stalls: 0,
                ssdlet_max_restarts: 1,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.failed_total() >= 1, "restart budget exhausted");
                assert!(p.recovered_at(FaultSite::Ssdlet) >= 1, "host fallback ran");
            },
        },
        Entry {
            name: "host timeout -> abandon offload, host fallback",
            cfg: FaultConfig {
                host_timeout: Some(SimDuration::from_nanos(50)),
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.failed_total() >= 1, "timeout recorded");
                assert!(p.recovered_at(FaultSite::Ssdlet) >= 1, "host fallback ran");
            },
        },
    ];
    for entry in matrix {
        let plan = FaultPlan::seeded(SEED, entry.cfg.clone());
        let (json, profiles) = profiled_mini_tpch(Some(&plan));
        assert!(
            plan.injected_total() + plan.failed_total() >= 1,
            "[{}] plan must actually fire",
            entry.name
        );
        (entry.check)(&plan);
        // Accounting closes even mid-recovery: retried reads, replayed
        // link frames, and the fallback's host re-scan all land inside
        // the query window with valid parents.
        assert_closed(&profiles, entry.name);

        // And the export stays replayable: same seed, same bytes.
        let replay = FaultPlan::seeded(SEED, entry.cfg.clone());
        let (json2, _) = profiled_mini_tpch(Some(&replay));
        assert_eq!(json, json2, "[{}] faulted export diverged", entry.name);
    }
}
