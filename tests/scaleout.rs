//! Scale-out soak: a concurrent query storm over a multi-drive array with
//! an active fault plan (including whole-drive losses), proving the
//! coordinator's liveness and exactness promises:
//!
//! (a) no deadlock — the simulation drains to quiescence with every query
//!     completed;
//! (b) every query's result equals the fault-free reference, drive losses
//!     and SSDlet faults notwithstanding; and
//! (c) the scheduler's admission and queue-depth instrumentation returns
//!     to zero once the storm drains — nothing leaks.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit::apps::search::{array_conv_grep, ArrayGrep};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::Fs;
use biscuit::host::array::ArrayConfig;
use biscuit::host::{HostConfig, HostLoad, QueryScheduler, SchedulerConfig, SsdArray};
use biscuit::sim::fault::{FaultConfig, FaultPlan, FaultSite};
use biscuit::sim::metrics::SampleValue;
use biscuit::sim::time::SimDuration;
use biscuit::sim::Simulation;
use biscuit::ssd::{SsdConfig, SsdDevice};

const DRIVES: usize = 4;
const SHARD_PAGES: u64 = 48;
const USERS: usize = 8;
const QUERIES: u64 = 64;

fn make_array() -> (SsdArray, u64) {
    let mut expected = 0u64;
    let drives: Vec<Ssd> = (0..DRIVES)
        .map(|i| {
            let device = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 32 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(device);
            let page = fs.device().config().page_size as u64;
            let gen = Arc::new(WeblogGen::new(70 + i as u64, 250));
            expected += gen.count_needles(SHARD_PAGES, page as usize);
            fs.create_synthetic("shard.log", SHARD_PAGES * page, gen)
                .unwrap();
            Ssd::new(fs, CoreConfig::paper_default())
        })
        .collect();
    (
        SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default()),
        expected,
    )
}

#[test]
fn soak_64_queries_4_drives_under_faults_drains_clean() {
    let (array, expected) = make_array();
    assert!(expected > 0, "the corpus plants needles");

    // An aggressively faulty environment: flaky NAND, panicking SSDlets,
    // and two whole-drive losses, all under one gather deadline.
    let plan = FaultPlan::seeded(
        0xB15C_0C7,
        FaultConfig {
            nand_read_error_rate: 0.01,
            ssdlet_panics: 2,
            drive_losses: 2,
            host_timeout: Some(SimDuration::from_millis(50)),
            ..FaultConfig::default()
        },
    );
    array.attach_fault_plan(&plan);

    let sim = Simulation::new(0x50AC);
    sim.enable_metrics();
    array.attach_metrics(sim.metrics());
    plan.attach_metrics(sim.metrics());

    let sched = QueryScheduler::new(SchedulerConfig {
        users: USERS,
        max_inflight: 6,
        queue_capacity: 4,
        weights: Vec::new(),
    });
    let sched_out = sched.clone();

    let counts: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let got = Arc::clone(&counts);
    sim.spawn("host", move |ctx| {
        let grep = ArrayGrep::prepare(ctx, &array).unwrap();
        sched.attach_metrics(ctx.metrics());
        sched.start(ctx);
        for q in 0..QUERIES {
            let array = array.clone();
            let grep = grep.clone();
            let got = Arc::clone(&got);
            sched.submit(ctx, (q as usize) % USERS, move |qctx| {
                // Three offloaded queries for every Conv scan.
                let n = if q % 4 != 3 {
                    grep.run(qctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                        .unwrap()
                } else {
                    array_conv_grep(qctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                        .unwrap()
                };
                got.lock().push(n);
            });
        }
        sched.close(ctx);
        sched.wait_completed(ctx, QUERIES);
    });

    // (a) Liveness: the run drains with nothing parked.
    let report = sim.run();
    report.assert_quiescent();

    // (b) Exactness: every query saw the whole corpus despite the faults.
    let all = counts.lock();
    assert_eq!(all.len(), QUERIES as usize, "every query completed");
    for (i, &n) in all.iter().enumerate() {
        assert_eq!(
            n, expected,
            "query {i} diverged from the fault-free reference"
        );
    }
    assert_eq!(sched_out.submitted(), QUERIES);
    assert_eq!(sched_out.completed(), QUERIES);

    // The drive losses actually fired and were recovered by re-scatter.
    assert_eq!(
        plan.injected_at(FaultSite::Drive),
        2,
        "both drive losses fired"
    );
    assert_eq!(
        plan.recovered_at(FaultSite::Drive),
        2,
        "both lost shards were re-scattered to the host path"
    );

    // (c) Instrumentation drains to zero; high-water marks prove the
    // storm actually exercised admission control.
    let snap = report.metrics;
    assert_eq!(snap.counter_sum("array_sched_submitted_total"), QUERIES);
    assert_eq!(snap.counter_sum("array_sched_admitted_total"), QUERIES);
    assert_eq!(snap.counter_sum("array_sched_completed_total"), QUERIES);
    assert!(snap.counter_sum("array_scatters_total") >= QUERIES * 3 / 4);
    assert!(snap.counter_sum("array_rescatters_total") >= 2);

    let mut sched_queues = 0;
    for s in &snap.samples {
        let is_sched_queue = s.name == "queue_depth"
            && s.labels
                .iter()
                .any(|(k, v)| k == "queue" && v.starts_with("sched.user"));
        if is_sched_queue || s.name == "array_sched_inflight" {
            let SampleValue::Gauge { value, high_water } = s.value else {
                panic!("{} is a gauge", s.key);
            };
            assert_eq!(value, 0, "{} must drain to zero", s.key);
            assert!(high_water > 0, "{} never moved", s.key);
            if is_sched_queue {
                sched_queues += 1;
                assert!(high_water <= 4, "{} exceeded its bound", s.key);
            } else {
                assert!(high_water <= 6, "{} exceeded max_inflight", s.key);
            }
        }
    }
    assert_eq!(sched_queues, USERS, "every per-user queue was instrumented");

    // Per-tenant SLO substrate: every user's end-to-end query latency
    // landed in its own histogram (p50/p99/p99.9 ride the JSON and
    // Prometheus exports).
    let mut slo_users = 0;
    for s in &snap.samples {
        if s.name != "array_query_latency_ps" {
            continue;
        }
        let SampleValue::Histogram(ref data) = s.value else {
            panic!("{} is a histogram", s.key);
        };
        assert!(data.count > 0, "{} recorded no queries", s.key);
        assert!(data.max > 0, "{} recorded zero latency", s.key);
        slo_users += 1;
    }
    assert_eq!(slo_users, USERS, "one latency histogram per tenant");
    let json = snap.to_json();
    assert!(
        json.contains("\"p999\""),
        "histogram export must carry p99.9"
    );
}
