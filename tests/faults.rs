//! Fault-matrix integration test: every fault kind crossed with its
//! recovery policy over a mini TPC-H workload (Q1 on the conventional
//! datapath, Q6 on the offload datapath), asserting the two invariants the
//! fault framework promises:
//!
//! (a) query results are identical to the fault-free run — read retries,
//!     block retirement, link replays, core stalls, SSDlet restarts, and
//!     the mid-query host fallback are all result-transparent; and
//! (b) with the same seed, trace and metrics exports are byte-identical
//!     across repeated runs — recovery is deterministic, so any failure
//!     can be replayed exactly from its seed.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit::core::{CoreConfig, Ssd};
use biscuit::db::spec::ExecMode;
use biscuit::db::tpch::{all_queries, TpchData};
use biscuit::db::{Db, DbConfig, Row};
use biscuit::fs::Fs;
use biscuit::host::{HostConfig, HostLoad};
use biscuit::sim::fault::{FaultConfig, FaultPlan, FaultSite};
use biscuit::sim::time::SimDuration;
use biscuit::sim::{Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

const SF: f64 = 0.0125;
const SEED: u64 = 0xB15C;

fn make_db() -> Arc<Db> {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 1 << 30,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    TpchData::generate(SF, 42).load_into(&mut db).unwrap();
    Arc::new(db)
}

/// Runs Q1 (conventional datapath) and Q6 (offloaded scan) in Biscuit mode
/// on a freshly built platform, optionally armed with a fault plan.
fn run_mini_tpch(plan: Option<&FaultPlan>) -> (Vec<Row>, Vec<Row>) {
    let db = make_db();
    if let Some(p) = plan {
        db.ssd().attach_fault_plan(p);
    }
    let out: Arc<Mutex<Vec<Vec<Row>>>> = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&out);
    let sim = Simulation::new(0);
    sim.spawn("host", move |ctx| {
        for id in [1, 6] {
            let q = all_queries().into_iter().find(|q| q.id == id).unwrap();
            let r = q
                .run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
                .unwrap_or_else(|e| panic!("Q{id} failed under faults: {e}"));
            o.lock().push(r.rows);
        }
    });
    sim.run().assert_quiescent();
    let mut rows = out.lock().drain(..).collect::<Vec<_>>();
    let q6 = rows.pop().unwrap();
    let q1 = rows.pop().unwrap();
    (q1, q6)
}

/// One row of the fault matrix: a fault kind (via its config) plus the
/// counter-level assertions that prove its recovery policy actually ran.
struct MatrixEntry {
    name: &'static str,
    cfg: FaultConfig,
    check: fn(&FaultPlan),
}

fn matrix() -> Vec<MatrixEntry> {
    vec![
        MatrixEntry {
            name: "nand read error -> escalating read-retry",
            cfg: FaultConfig {
                nand_read_error_rate: 0.05,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.recovered_at(FaultSite::NandRead) >= 1, "read retries ran");
                assert_eq!(p.failed_total(), 0);
            },
        },
        MatrixEntry {
            name: "uncorrectable ECC -> FTL bad-block retirement",
            cfg: FaultConfig {
                nand_read_error_rate: 0.01,
                nand_uncorrectable_rate: 1.0,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.recovered_at(FaultSite::NandRead) >= 1, "blocks retired");
                assert_eq!(p.failed_total(), 0);
            },
        },
        MatrixEntry {
            name: "link corruption -> CRC replay with backoff",
            cfg: FaultConfig {
                link_corrupt_rate: 0.02,
                ..FaultConfig::default()
            },
            check: |p| {
                let replays =
                    p.recovered_at(FaultSite::LinkToHost) + p.recovered_at(FaultSite::LinkToDevice);
                assert!(replays >= 1, "link replays ran");
                assert_eq!(p.failed_total(), 0);
            },
        },
        MatrixEntry {
            name: "device-core stall -> absorbed in request overhead",
            cfg: FaultConfig {
                core_stall_rate: 0.1,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.recovered_at(FaultSite::CoreStall) >= 1, "stalls resumed");
                assert_eq!(p.failed_total(), 0);
            },
        },
        MatrixEntry {
            name: "SSDlet panic within budget -> restart",
            cfg: FaultConfig {
                ssdlet_panics: 1,
                ssdlet_stalls: 1,
                ssdlet_max_restarts: 2,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.recovered_at(FaultSite::Ssdlet) >= 1, "restart recorded");
                assert_eq!(p.failed_total(), 0);
            },
        },
        MatrixEntry {
            name: "SSDlet panics past budget -> host fallback",
            cfg: FaultConfig {
                ssdlet_panics: 8,
                ssdlet_stalls: 0,
                ssdlet_max_restarts: 1,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.failed_total() >= 1, "restart budget exhausted");
                assert!(p.recovered_at(FaultSite::Ssdlet) >= 1, "host fallback ran");
            },
        },
        MatrixEntry {
            name: "host request timeout -> abandon offload, host fallback",
            cfg: FaultConfig {
                host_timeout: Some(SimDuration::from_nanos(50)),
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.failed_total() >= 1, "timeout recorded as failed");
                assert!(p.recovered_at(FaultSite::Ssdlet) >= 1, "host fallback ran");
            },
        },
        MatrixEntry {
            name: "all fault kinds at once",
            cfg: FaultConfig {
                nand_read_error_rate: 0.02,
                nand_uncorrectable_rate: 0.2,
                link_corrupt_rate: 0.01,
                core_stall_rate: 0.05,
                ssdlet_panics: 1,
                ssdlet_stalls: 1,
                ssdlet_max_restarts: 2,
                ..FaultConfig::default()
            },
            check: |p| {
                assert!(p.injected_total() >= 1);
                assert!(p.recovered_total() >= 1);
            },
        },
    ]
}

#[test]
fn fault_matrix_preserves_query_results() {
    let (clean_q1, clean_q6) = run_mini_tpch(None);
    assert!(!clean_q1.is_empty() && !clean_q6.is_empty());
    for entry in matrix() {
        let plan = FaultPlan::seeded(SEED, entry.cfg.clone());
        let (q1, q6) = run_mini_tpch(Some(&plan));
        assert_eq!(clean_q1, q1, "[{}] Q1 rows diverged", entry.name);
        assert_eq!(clean_q6, q6, "[{}] Q6 rows diverged", entry.name);
        assert!(
            plan.injected_total() + plan.failed_total() >= 1,
            "[{}] plan must actually fire",
            entry.name
        );
        (entry.check)(&plan);
    }
}

/// A zero-rate armed plan must be indistinguishable from no plan at all —
/// the guarantee that lets production code keep the instrumentation sites
/// compiled in.
#[test]
fn inert_plan_matches_fault_free_run() {
    let (clean_q1, clean_q6) = run_mini_tpch(None);
    let plan = FaultPlan::seeded(SEED, FaultConfig::default());
    let (q1, q6) = run_mini_tpch(Some(&plan));
    assert_eq!(clean_q1, q1);
    assert_eq!(clean_q6, q6);
    assert_eq!(plan.injected_total(), 0);
}

/// One faulted, traced, metered run of the mini workload; returns the
/// Chrome-JSON trace and the metrics-JSON export.
fn faulted_observable_run() -> (String, String) {
    let db = make_db();
    let sim = Simulation::new(0);
    sim.enable_trace(TraceConfig::default());
    sim.enable_metrics();
    db.ssd().attach_tracer(sim.tracer());
    db.ssd().attach_metrics(sim.metrics());
    let plan = FaultPlan::seeded(
        SEED,
        FaultConfig {
            nand_read_error_rate: 0.02,
            nand_uncorrectable_rate: 0.2,
            link_corrupt_rate: 0.01,
            core_stall_rate: 0.05,
            ssdlet_panics: 1,
            ssdlet_stalls: 1,
            ssdlet_max_restarts: 2,
            ..FaultConfig::default()
        },
    );
    db.ssd().attach_fault_plan(&plan);
    sim.spawn("host", move |ctx| {
        for id in [1, 6] {
            let q = all_queries().into_iter().find(|q| q.id == id).unwrap();
            q.run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE).unwrap();
        }
    });
    let report = sim.run();
    report.assert_quiescent();
    assert!(plan.injected_total() >= 1, "faults were injected");
    (report.trace.to_chrome_json(), report.metrics.to_json())
}

#[test]
fn faulted_exports_are_byte_identical_across_same_seed_runs() {
    let (trace_a, metrics_a) = faulted_observable_run();
    let (trace_b, metrics_b) = faulted_observable_run();
    assert_eq!(
        trace_a, trace_b,
        "trace export must be byte-identical for the same seed"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics export must be byte-identical for the same seed"
    );
    // The exports actually carry the fault observability surface.
    assert!(trace_a.contains("\"inject\""), "trace records injections");
    assert!(
        metrics_a.contains("fault_injected_total"),
        "metrics record injections"
    );
    assert!(
        metrics_a.contains("fault_recovered_total"),
        "metrics record recoveries"
    );
}

// ---------------------------------------------------------------------------
// Whole-drive loss over the scale-out array
// ---------------------------------------------------------------------------

use biscuit::apps::search::ArrayGrep;
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::host::array::ArrayConfig;
use biscuit::host::SsdArray;
use biscuit::sim::fault::DriveLossPhase;
use biscuit::sim::metrics::MetricsSnapshot;

const LOSS_DRIVES: usize = 4;
const LOSS_SHARD_PAGES: u64 = 40;

fn grep_array() -> (SsdArray, u64) {
    let mut expected = 0u64;
    let drives: Vec<Ssd> = (0..LOSS_DRIVES)
        .map(|i| {
            let dev = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 32 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(dev);
            let page = fs.device().config().page_size as u64;
            let gen = Arc::new(WeblogGen::new(300 + i as u64, 200));
            expected += gen.count_needles(LOSS_SHARD_PAGES, page as usize);
            fs.create_synthetic("shard.log", LOSS_SHARD_PAGES * page, gen)
                .unwrap();
            Ssd::new(fs, CoreConfig::paper_default())
        })
        .collect();
    (
        SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default()),
        expected,
    )
}

/// One metered array grep, optionally with a single drive loss armed in
/// the given phase; returns the count, the plan, and the metrics export.
fn drive_loss_run(phase: Option<DriveLossPhase>) -> (u64, FaultPlan, MetricsSnapshot) {
    let (array, _) = grep_array();
    let plan = match phase {
        Some(phase) => FaultPlan::seeded(
            SEED,
            FaultConfig {
                drive_losses: 1,
                drive_loss_phase: phase,
                drive_loss_items: 0,
                host_timeout: Some(SimDuration::from_millis(20)),
                ..FaultConfig::default()
            },
        ),
        None => FaultPlan::seeded(SEED, FaultConfig::default()),
    };
    array.attach_fault_plan(&plan);

    let sim = Simulation::new(0);
    sim.enable_metrics();
    array.attach_metrics(sim.metrics());
    plan.attach_metrics(sim.metrics());

    let count: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let out = Arc::clone(&count);
    sim.spawn("host", move |ctx| {
        let grep = ArrayGrep::prepare(ctx, &array).unwrap();
        let n = grep
            .run(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
            .unwrap();
        *out.lock() = n;
    });
    let report = sim.run();
    report.assert_quiescent();
    let n = *count.lock();
    (n, plan, report.metrics)
}

/// A drive that dies before its job ever runs: the shard's lane stays
/// silent, the gather deadline abandons it, and its slice is re-scanned
/// through the host-side Conv path — the result does not change.
#[test]
fn drive_loss_mid_scatter_is_result_transparent() {
    let (clean, inert, _) = drive_loss_run(None);
    assert!(clean > 0, "the corpus plants needles");
    assert_eq!(inert.injected_total(), 0);

    let (lossy, plan, snap) = drive_loss_run(Some(DriveLossPhase::MidScatter));
    assert_eq!(lossy, clean, "drive loss must not change the result");
    assert_eq!(plan.injected_at(FaultSite::Drive), 1, "the loss fired");
    assert_eq!(
        plan.recovered_at(FaultSite::Drive),
        1,
        "the shard was re-scattered"
    );
    assert!(
        plan.failed_total() >= 1,
        "the gather deadline gave up on the lane"
    );

    assert!(snap.counter_value("fault_injected_total", &[("site", "drive")]) >= Some(1));
    assert!(
        snap.counter_value(
            "fault_failed_total",
            &[("site", "drive"), ("action", "gather_timeout")],
        ) >= Some(1)
    );
    assert!(
        snap.counter_value(
            "fault_recovered_total",
            &[("site", "drive"), ("action", "conv_rescatter")],
        ) >= Some(1)
    );
    assert!(snap.counter_sum("array_rescatters_total") >= 1);
}

/// A drive that dies mid-gather: its lane falls silent partway through
/// (already-merged items from the dead shard are discarded with the lane)
/// and the Conv re-scatter still reproduces the exact result.
#[test]
fn drive_loss_mid_gather_is_result_transparent() {
    let (clean, _, _) = drive_loss_run(None);
    let (lossy, plan, snap) = drive_loss_run(Some(DriveLossPhase::MidGather));
    assert_eq!(lossy, clean, "drive loss must not change the result");
    assert_eq!(plan.injected_at(FaultSite::Drive), 1);
    assert_eq!(plan.recovered_at(FaultSite::Drive), 1);
    assert!(plan.failed_total() >= 1);
    assert!(snap.counter_value("fault_injected_total", &[("site", "drive")]) >= Some(1));
    assert!(
        snap.counter_value(
            "fault_recovered_total",
            &[("site", "drive"), ("action", "conv_rescatter")],
        ) >= Some(1)
    );
}

// ---------------------------------------------------------------------------
// Power loss: journal-replay recovery, crashed mid-write and mid-GC
// ---------------------------------------------------------------------------

use biscuit::fs::{FsError, Mode};
use biscuit::sim::fault::PowerLossPhase;
use biscuit::sim::Ctx;

const PL_SCRATCH: &str = "scratch.dat";
const PL_SCRATCH_BYTES: u64 = 4 << 20;
const PL_ROUNDS: u64 = 6;

/// Tiny-geometry drive (2x2 dies, 1 MiB blocks, 24 MiB logical) so the
/// overwrite phase below cycles the free pool several times over: GC runs
/// repeatedly and a seeded crash can land inside it. `paper_default`'s
/// 64-die granule never feels write pressure in a test-sized run.
fn make_pl_db() -> Arc<Db> {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        channels: 2,
        ways: 2,
        pages_per_block: 64,
        logical_capacity: 24 << 20,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    TpchData::generate(SF, 42).load_into(&mut db).unwrap();
    Arc::new(db)
}

fn pl_payload(round: u64) -> Vec<u8> {
    (0..PL_SCRATCH_BYTES)
        .map(|i| (round.wrapping_mul(157).wrapping_add(i / 64)) as u8)
        .collect()
}

/// One full scratch-file overwrite per round. Rewriting the same range is
/// idempotent, so a host that crashed partway simply recovers the device
/// and calls this again from round zero.
fn pl_write_phase(ctx: &Ctx, fs: &Fs) -> Result<(), FsError> {
    let f = match fs.open(PL_SCRATCH, Mode::ReadWrite) {
        Ok(f) => f,
        Err(FsError::NotFound(_)) => fs.create(PL_SCRATCH)?,
        Err(e) => return Err(e),
    };
    for round in 0..PL_ROUNDS {
        f.write_at(ctx, 0, &pl_payload(round))?;
    }
    Ok(())
}

fn pl_plan(phase: PowerLossPhase) -> FaultPlan {
    FaultPlan::seeded(
        SEED,
        FaultConfig {
            power_losses: 1,
            power_loss_phase: phase,
            // Mid-write instants count host page programs (the first round
            // alone issues 256); mid-GC instants count GC relocations and
            // erases, which are far rarer, so the window is tighter.
            power_loss_window: match phase {
                PowerLossPhase::MidWrite => 64,
                PowerLossPhase::MidGc => 8,
            },
            ..FaultConfig::default()
        },
    )
}

/// The mini TPC-H workload wrapped around a GC-heavy write phase,
/// optionally crashed by a seeded power loss. A crashed host replays the
/// device journal and redoes the phase, then verifies the scratch bytes,
/// syncs, and runs Q1/Q6 as usual. Returns the query rows, the logical
/// device export, and the plan.
fn pl_run(phase: Option<PowerLossPhase>) -> (Vec<Row>, Vec<Row>, String, FaultPlan) {
    let db = make_pl_db();
    let plan = match phase {
        Some(p) => pl_plan(p),
        None => FaultPlan::none(),
    };
    db.ssd().attach_fault_plan(&plan);
    let dev = Arc::clone(db.ssd().device());
    let out: Arc<Mutex<Vec<Vec<Row>>>> = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&out);
    let sim = Simulation::new(0);
    sim.spawn("host", move |ctx| {
        let fs = db.ssd().fs();
        if let Err(e) = pl_write_phase(ctx, fs) {
            // The seeded instant fired: the drive is dead until the
            // journal replays.
            assert!(
                db.ssd().device().is_dead(),
                "write phase failed but the drive is alive: {e}"
            );
            let report = db.ssd().device().recover_power_loss(ctx.now());
            assert!(
                report.replayed_records > 0 || report.torn_reverted > 0,
                "recovery replayed nothing: {report:?}"
            );
            pl_write_phase(ctx, fs).expect("redo after recovery");
        }
        let mut f = fs.open(PL_SCRATCH, Mode::ReadWrite).unwrap();
        f.sync(ctx).unwrap();
        let got = f.read_at(ctx, 0, PL_SCRATCH_BYTES).unwrap();
        assert_eq!(got, pl_payload(PL_ROUNDS - 1), "scratch bytes diverged");
        for id in [1, 6] {
            let q = all_queries().into_iter().find(|q| q.id == id).unwrap();
            let r = q
                .run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
                .unwrap_or_else(|e| panic!("Q{id} failed after power loss: {e}"));
            o.lock().push(r.rows);
        }
    });
    sim.run().assert_quiescent();
    let mut rows = out.lock().drain(..).collect::<Vec<_>>();
    let q6 = rows.pop().unwrap();
    let q1 = rows.pop().unwrap();
    (q1, q6, dev.export_state(), plan)
}

/// Crash during a host page program: the journal's write-ahead record (or
/// its absence, for a torn program) decides the page, replay restores the
/// acked state, the redone phase converges, and the queries are oblivious.
#[test]
fn power_loss_mid_write_recovers_to_identical_state() {
    let (clean_q1, clean_q6, clean_state, _) = pl_run(None);
    assert!(!clean_q1.is_empty() && !clean_q6.is_empty());
    let (q1, q6, state, plan) = pl_run(Some(PowerLossPhase::MidWrite));
    assert_eq!(plan.injected_at(FaultSite::PowerLoss), 1, "the crash fired");
    assert_eq!(
        plan.recovered_at(FaultSite::PowerLoss),
        1,
        "journal replay ran"
    );
    assert_eq!(clean_q1, q1, "Q1 rows diverged after power loss");
    assert_eq!(clean_q6, q6, "Q6 rows diverged after power loss");
    assert_eq!(
        clean_state, state,
        "logical export diverged from the uncrashed twin"
    );
}

/// Crash inside garbage collection — mid-relocation or right before a
/// victim erase: replay must not lose relocated pages or resurrect stale
/// pre-GC copies.
#[test]
fn power_loss_mid_gc_recovers_to_identical_state() {
    let (clean_q1, clean_q6, clean_state, _) = pl_run(None);
    let (q1, q6, state, plan) = pl_run(Some(PowerLossPhase::MidGc));
    assert_eq!(
        plan.injected_at(FaultSite::PowerLoss),
        1,
        "the crash fired mid-GC (the write phase must reach GC pressure)"
    );
    assert_eq!(plan.recovered_at(FaultSite::PowerLoss), 1);
    assert_eq!(clean_q1, q1, "Q1 rows diverged after mid-GC power loss");
    assert_eq!(clean_q6, q6, "Q6 rows diverged after mid-GC power loss");
    assert_eq!(
        clean_state, state,
        "logical export diverged from the uncrashed twin"
    );
}

/// One traced, metered crash/recover run of the power-loss workload;
/// returns the Chrome-JSON trace, the metrics export, and the physical
/// device export.
fn power_loss_observable_run(phase: PowerLossPhase) -> (String, String, String) {
    let db = make_pl_db();
    let sim = Simulation::new(0);
    sim.enable_trace(TraceConfig::default());
    sim.enable_metrics();
    db.ssd().attach_tracer(sim.tracer());
    db.ssd().attach_metrics(sim.metrics());
    let plan = pl_plan(phase);
    db.ssd().attach_fault_plan(&plan);
    plan.attach_metrics(sim.metrics());
    let dev = Arc::clone(db.ssd().device());
    sim.spawn("host", move |ctx| {
        let fs = db.ssd().fs();
        if pl_write_phase(ctx, fs).is_err() {
            db.ssd().device().recover_power_loss(ctx.now());
            pl_write_phase(ctx, fs).expect("redo after recovery");
        }
        let mut f = fs.open(PL_SCRATCH, Mode::ReadWrite).unwrap();
        f.sync(ctx).unwrap();
    });
    let report = sim.run();
    report.assert_quiescent();
    assert_eq!(plan.injected_at(FaultSite::PowerLoss), 1);
    (
        report.trace.to_chrome_json(),
        report.metrics.to_json(),
        dev.export_physical_state(),
    )
}

#[test]
fn power_loss_exports_are_byte_identical_across_same_seed_runs() {
    for phase in [PowerLossPhase::MidWrite, PowerLossPhase::MidGc] {
        let (trace_a, metrics_a, phys_a) = power_loss_observable_run(phase);
        let (trace_b, metrics_b, phys_b) = power_loss_observable_run(phase);
        assert_eq!(
            trace_a, trace_b,
            "[{phase:?}] trace export must be byte-identical for the same seed"
        );
        assert_eq!(
            metrics_a, metrics_b,
            "[{phase:?}] metrics export must be byte-identical for the same seed"
        );
        assert_eq!(
            phys_a, phys_b,
            "[{phase:?}] physical export must be byte-identical for the same seed"
        );
        // The exports carry the write-path observability surface.
        assert!(metrics_a.contains("ftl_gc_runs_total"), "GC was metered");
        assert!(metrics_a.contains("ftl_write_amp"), "write amp exported");
        assert!(
            metrics_a.contains("fault_injected_total"),
            "the crash is in the metrics"
        );
        assert!(
            metrics_a.contains("fault_recovered_total"),
            "the journal replay is in the metrics"
        );
    }
}
