//! Zero-copy accounting for the device-resident grep path.
//!
//! Every memcpy on the NAND-to-result data path increments
//! `sim_bytes_copied_total{site}`. With pages shared as `Buf` handles and
//! synthetic pages cached on the device, a grep scan must duplicate each
//! page's bytes at most once — even across repeated passes over the file.

use std::sync::Arc;

use biscuit::apps::search::{biscuit_grep, load_grep_module};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::sim::Simulation;
use biscuit::ssd::{SsdConfig, SsdDevice};

#[test]
fn grep_path_copies_each_page_at_most_once() {
    const PAGES: u64 = 128;
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let page = device.config().page_size as u64;
    let fs = Fs::format(Arc::clone(&device));
    let gen = WeblogGen::new(7, 400);
    fs.create_synthetic("log", PAGES * page, Arc::new(gen.clone()))
        .unwrap();
    let file = fs.open("log", Mode::ReadOnly).unwrap();
    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let expected = gen.count_needles(PAGES, page as usize);

    let sim = Simulation::new(0);
    sim.enable_metrics();
    ssd.attach_metrics(sim.metrics());
    sim.spawn("host", move |ctx| {
        let mid = load_grep_module(ctx, &ssd).unwrap();
        let first = biscuit_grep(ctx, &ssd, mid, &file, NEEDLE.as_bytes()).unwrap();
        let second = biscuit_grep(ctx, &ssd, mid, &file, NEEDLE.as_bytes()).unwrap();
        assert_eq!(first, expected);
        assert_eq!(second, expected);
    });
    let report = sim.run();
    report.assert_quiescent();
    let snap = report.metrics;

    let corpus = PAGES * page;
    // Each synthetic page is rendered into its frame exactly once; the second
    // pass is served from the shared Buf cache without touching the bytes.
    let synth = snap
        .counter_value("sim_bytes_copied_total", &[("site", "nand_synth")])
        .unwrap_or(0);
    assert_eq!(
        synth, corpus,
        "each page must be materialized exactly once across both grep passes"
    );
    // The device-resident path never stages writes or reassembles pages on
    // the host, so no other page-sized copy site may fire.
    for site in ["host_read_assemble", "device_write_stage"] {
        assert_eq!(
            snap.counter_value("sim_bytes_copied_total", &[("site", site)])
                .unwrap_or(0),
            0,
            "unexpected page copies at site {site}"
        );
    }
    // Port traffic carries only match counts and module metadata; total
    // copied bytes stay within one corpus pass plus that small overhead.
    let total = snap.counter_sum("sim_bytes_copied_total");
    assert!(
        total <= corpus + corpus / 8,
        "total bytes copied {total} exceeds one corpus pass ({corpus}) plus slack"
    );
}
