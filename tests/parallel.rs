//! Parallel-DES determinism: the shard fleet produces byte-identical
//! artifacts — merged results, Chrome traces, metrics exports — for the
//! same seed under every thread policy and lookahead window. This is the
//! hard contract documented in `docs/PARALLEL.md`: parallelism may only
//! change wall-clock time, never a single exported byte.

use biscuit::apps::search::{fleet_grep, fleet_grep_expected};
use biscuit::host::fleet::FleetConfig;
use biscuit::sim::par::{ParConfig, ParMode};
use biscuit::sim::{SimDuration, TraceConfig};

const DRIVES: usize = 4;
const SHARD_PAGES: u64 = 32;
const NEEDLE_EVERY: u64 = 150;
const PASSES: usize = 2;

/// One fully-instrumented fleet soak under the given policy, reduced to
/// its complete observable surface: merged `(shard, count)` items in
/// canonical order, the concatenated trace export, the concatenated
/// metrics export, and the total event count.
fn soak(mode: ParMode, lookahead: Option<SimDuration>) -> (Vec<(usize, u64)>, String, String, u64) {
    let cfg = FleetConfig {
        drives: DRIVES,
        seed: 0xB15C,
        metrics: true,
        trace: Some(TraceConfig::default()),
        qprof: false,
        par: ParConfig { mode, lookahead },
    };
    let report = fleet_grep(&cfg, SHARD_PAGES, NEEDLE_EVERY, PASSES);
    report.assert_quiescent();
    let total: u64 = report.items.iter().map(|(_, c)| *c).sum();
    assert_eq!(
        total,
        fleet_grep_expected(DRIVES, SHARD_PAGES, NEEDLE_EVERY, PASSES),
        "{mode:?} match count"
    );
    (
        report.items.clone(),
        report.trace_json(),
        report.metrics_json(),
        report.events_processed(),
    )
}

#[test]
fn parallel_soak_is_byte_identical_to_single_threaded() {
    let window = Some(SimDuration::from_micros(500));
    let single = soak(ParMode::Single, window);
    assert!(single.3 > 0, "the soak processes events");

    // Repeat the parallel run several times: thread interleavings differ
    // from run to run, the artifacts must not.
    for round in 0..3 {
        let par = soak(ParMode::PerShard, window);
        assert_eq!(par.0, single.0, "round {round}: merged items");
        assert_eq!(par.1, single.1, "round {round}: trace export");
        assert_eq!(par.2, single.2, "round {round}: metrics export");
        assert_eq!(par.3, single.3, "round {round}: event count");
    }
}

#[test]
fn lookahead_window_never_changes_artifacts() {
    // The window bounds memory, not behavior: any window (or none at
    // all — free-running shards) yields the same bytes.
    let reference = soak(ParMode::Single, None);
    for lookahead in [
        None,
        Some(SimDuration::from_micros(50)),
        Some(SimDuration::from_millis(1)),
        Some(SimDuration::from_millis(100)),
    ] {
        for mode in [ParMode::PerShard, ParMode::Threads(2)] {
            let run = soak(mode, lookahead);
            assert_eq!(run.0, reference.0, "{mode:?}/{lookahead:?}: items");
            assert_eq!(run.1, reference.1, "{mode:?}/{lookahead:?}: trace");
            assert_eq!(run.2, reference.2, "{mode:?}/{lookahead:?}: metrics");
            assert_eq!(run.3, reference.3, "{mode:?}/{lookahead:?}: events");
        }
    }
}

#[test]
fn undersized_thread_pool_matches_fleet_wide_pool() {
    // Fewer workers than shards: lanes owed by queued shards stay open
    // and the canonical merge still blocks for them in order.
    let window = Some(SimDuration::from_micros(200));
    let wide = soak(ParMode::PerShard, window);
    let narrow = soak(ParMode::Threads(2), window);
    assert_eq!(narrow, wide, "thread-pool size must be unobservable");
}

#[test]
fn env_selected_policy_matches_reference() {
    // `ParConfig::default()` reads `BISCUIT_PAR` (unset → one thread per
    // shard). CI runs this test both with the variable unset and with
    // `BISCUIT_PAR=2`; whatever policy the environment picks, the
    // artifacts must match the explicit single-threaded reference.
    let reference = soak(ParMode::Single, ParConfig::default().lookahead);
    let cfg = FleetConfig {
        drives: DRIVES,
        seed: 0xB15C,
        metrics: true,
        trace: Some(TraceConfig::default()),
        qprof: false,
        par: ParConfig::default(),
    };
    let report = fleet_grep(&cfg, SHARD_PAGES, NEEDLE_EVERY, PASSES);
    report.assert_quiescent();
    assert_eq!(report.items, reference.0, "env policy: merged items");
    assert_eq!(report.trace_json(), reference.1, "env policy: trace export");
    assert_eq!(
        report.metrics_json(),
        reference.2,
        "env policy: metrics export"
    );
    assert_eq!(report.events_processed(), reference.3);
}

#[test]
fn exports_are_substantive_not_vacuous() {
    // Guard against a vacuous pass: the byte-equalities above would hold
    // trivially if the exports were empty shells. Check the artifacts
    // actually carry per-shard device activity.
    let (items, trace, metrics, events) = soak(ParMode::Single, None);
    assert_eq!(items.len(), DRIVES * PASSES, "one count per shard per pass");
    assert!(events > 1000, "a real soak processes many events: {events}");
    assert!(trace.starts_with("{\"shards\":["));
    assert!(metrics.starts_with("{\"shards\":["));
    assert!(
        metrics.matches("nand_ops_total").count() >= DRIVES,
        "every shard's registry recorded NAND work"
    );
    assert!(
        trace.contains("traceEvents"),
        "shard traces are Chrome JSON"
    );
}
