//! Fused event-chain execution is observationally invisible at full stack.
//!
//! `BISCUIT_FUSE` (see `docs/PERF.md`) lets the hot NAND→bus→match pipeline
//! run to completion inside one fiber activation instead of bouncing every
//! hop through the event heap. These tests pin the contract that makes the
//! optimisation safe to default on: for the same seed and workload, the
//! fused and unfused engines export **byte-identical** artifacts — match
//! counts, virtual end times, event counts, Chrome traces, metrics (minus
//! the engine's own dispatch-path meters), and query profiles — including
//! under injected faults (an ECC retry de-fuses its chain) and under every
//! `BISCUIT_PAR` thread policy.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit::apps::search::{biscuit_grep, conv_grep, load_grep_module};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::host::{ConvIo, HostConfig, HostLoad};
use biscuit::sim::fault::{FaultConfig, FaultPlan};
use biscuit::sim::fuse::VARIANT_METRICS;
use biscuit::sim::par::{ParConfig, ParMode};
use biscuit::sim::{SimDuration, Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

/// Everything one full-stack grep run exports.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    conv_count: u64,
    biscuit_count: u64,
    end_time_ps: u64,
    events: u64,
    trace: String,
    metrics: String,
    profiles: String,
    chains_fused: u64,
}

/// Greps a synthetic web log both ways (Conv read path and device-side
/// offload) on one drive, with trace/metrics/qprof all on, optionally
/// under an armed fault plan.
fn grep_run(fuse: bool, plan: Option<&FaultPlan>) -> Observed {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(Arc::clone(&device));
    let page = device.config().page_size as u64;
    fs.create_synthetic("log", 256 * page, Arc::new(WeblogGen::new(7, 300)))
        .unwrap();
    let file = fs.open("log", Mode::ReadOnly).unwrap();
    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );
    if let Some(p) = plan {
        ssd.device().set_fault_plan(p);
        ssd.link().set_fault_plan(p);
    }

    let sim = Simulation::new(1234);
    sim.set_fuse(fuse);
    sim.enable_trace(TraceConfig::default());
    sim.enable_metrics();
    sim.enable_qprof();
    ssd.attach_tracer(sim.tracer());
    ssd.attach_metrics(sim.metrics());

    let counts: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let c = Arc::clone(&counts);
    sim.spawn("host", move |ctx| {
        let mid = load_grep_module(ctx, &ssd).unwrap();
        let a = conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), HostLoad::new(6)).unwrap();
        let b = biscuit_grep(ctx, &ssd, mid, &file, NEEDLE.as_bytes()).unwrap();
        *c.lock() = (a, b);
    });
    let report = sim.run();
    report.assert_quiescent();
    let (conv_count, biscuit_count) = *counts.lock();
    Observed {
        conv_count,
        biscuit_count,
        end_time_ps: report.end_time.as_ps(),
        events: report.events_processed,
        trace: report.trace.to_chrome_json(),
        metrics: report.metrics.without(VARIANT_METRICS).to_json(),
        profiles: report.profiles.to_json(),
        chains_fused: report.metrics.counter_sum("sim_chains_fused_total"),
    }
}

/// The core contract: toggling fusion changes no exported byte, and the
/// fused engine actually fused chains (the run is not vacuously unfused).
#[test]
fn fuse_toggle_is_byte_identical_full_stack() {
    let unfused = grep_run(false, None);
    let fused = grep_run(true, None);
    assert!(unfused.conv_count > 0, "the corpus plants needles");
    assert_eq!(unfused.chains_fused, 0, "unfused engine counts no chains");
    assert!(
        fused.chains_fused > 0,
        "the fused engine must take the fused path"
    );
    // Compare everything except the intentionally different engine meter.
    let (mut a, mut b) = (unfused, fused);
    a.chains_fused = 0;
    b.chains_fused = 0;
    assert_eq!(a, b);
}

/// Under a saturating fault plan every read request draws an ECC retry,
/// which de-fuses its chain — and the exports still match byte for byte.
#[test]
fn faulted_runs_stay_byte_identical_and_defuse() {
    let plan = || {
        FaultPlan::seeded(
            11,
            FaultConfig {
                nand_read_error_rate: 1.0,
                link_corrupt_rate: 0.5,
                core_stall_rate: 0.5,
                ..FaultConfig::default()
            },
        )
    };
    let (pa, pb) = (plan(), plan());
    let unfused = grep_run(false, Some(&pa));
    let fused = grep_run(true, Some(&pb));
    assert!(pa.injected_total() >= 1, "the plan actually fired");
    assert_eq!(pa.injected_total(), pb.injected_total());
    assert_eq!(
        fused.chains_fused, 0,
        "every read chain drew an ECC retry and must de-fuse"
    );
    let (mut a, mut b) = (unfused, fused);
    a.chains_fused = 0;
    b.chains_fused = 0;
    assert_eq!(a, b);
}

/// A small write-then-read workload (program + journal hop from the write
/// path, then the read pipeline) is equally invariant under fusion.
#[test]
fn write_path_is_fuse_invariant() {
    let run = |fuse: bool| -> (u64, u64, String) {
        let device = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 32 << 20,
            ..SsdConfig::paper_default()
        }));
        let sim = Simulation::new(77);
        sim.set_fuse(fuse);
        sim.enable_metrics();
        device.attach_metrics(sim.metrics());
        let dev = Arc::clone(&device);
        sim.spawn("writer", move |ctx| {
            let pages: Vec<(u64, Vec<u8>)> = (0..64u64)
                .map(|i| (i, vec![(i % 251) as u8; dev.config().page_size]))
                .collect();
            dev.write_pages_async(ctx, &pages, 4).unwrap();
            for (lpn, data) in &pages {
                let got = dev.read_pages(ctx, &[*lpn]).unwrap();
                assert_eq!(&got[0][..], &data[..]);
            }
        });
        let report = sim.run();
        report.assert_quiescent();
        (
            report.end_time.as_ps(),
            report.events_processed,
            report.metrics.without(VARIANT_METRICS).to_json(),
        )
    };
    assert_eq!(run(false), run(true));
}

/// Fusion composes with the parallel fleet: every `BISCUIT_PAR` policy
/// times both fuse settings merges the same items and exports the same
/// bytes as the single-threaded unfused reference.
#[test]
fn fleet_policies_and_fuse_agree() {
    use biscuit::apps::search::{fleet_grep, fleet_grep_expected};
    use biscuit::host::fleet::FleetConfig;

    let (drives, pages, rarity, passes) = (2usize, 24u64, 150u64, 2usize);
    let expected = fleet_grep_expected(drives, pages, rarity, passes);
    assert!(expected > 0);

    let run = |mode: ParMode, fuse: &str| {
        // `Simulation::new` samples BISCUIT_FUSE at construction; scope the
        // override to this closure (the other tests in this file always
        // call `set_fuse` explicitly, so they are insensitive to it).
        std::env::set_var("BISCUIT_FUSE", fuse);
        let cfg = FleetConfig {
            drives,
            seed: 7,
            metrics: true,
            trace: Some(TraceConfig::default()),
            qprof: false,
            par: ParConfig {
                mode,
                lookahead: Some(SimDuration::from_micros(200)),
            },
        };
        let report = fleet_grep(&cfg, pages, rarity, passes);
        std::env::remove_var("BISCUIT_FUSE");
        report.assert_quiescent();
        (
            report.items.clone(),
            report.trace_json(),
            report.metrics_json(),
            report.events_processed(),
        )
    };

    let reference = run(ParMode::Single, "0");
    assert_eq!(
        reference.0.iter().map(|(_, c)| *c).sum::<u64>(),
        expected,
        "fleet count"
    );
    for mode in [ParMode::Single, ParMode::PerShard, ParMode::Threads(2)] {
        for fuse in ["0", "1"] {
            let got = run(mode, fuse);
            assert_eq!(got.0, reference.0, "{mode:?}/fuse={fuse}: merged items");
            assert_eq!(got.1, reference.1, "{mode:?}/fuse={fuse}: trace export");
            assert_eq!(got.2, reference.2, "{mode:?}/fuse={fuse}: metrics export");
            assert_eq!(got.3, reference.3, "{mode:?}/fuse={fuse}: event count");
        }
    }
}
