//! Workload-engine + QoS determinism, and scheduler close/drain edge
//! cases — the contracts behind `docs/QOS.md`.
//!
//! The headline test runs a seeded open-loop Zipf soak with *shedding
//! active* through the real 4-drive datapath and asserts that every
//! export — metrics JSON, Chrome trace, query profiles, and the
//! scheduler's per-tenant QoS summary — is byte-identical across repeat
//! rounds. The QoS stack runs entirely on the host DES kernel, which is
//! independent of the `BISCUIT_PAR` thread policy by construction (the
//! policy only shapes the shard fleet; see `tests/parallel.rs`);
//! `scripts/verify.sh` additionally re-runs this suite under
//! `BISCUIT_PAR=2` so the independence is exercised, not assumed.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit::apps::search::ArrayGrep;
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::Fs;
use biscuit::host::array::ArrayConfig;
use biscuit::host::workload::{drive_closed_loop, drive_open_loop};
use biscuit::host::{
    ArrivalProcess, HostConfig, HostLoad, QueryKind, QueryMix, QueryScheduler, QueryShed,
    SchedulerConfig, ShedReason, SsdArray, WorkloadConfig, WorkloadEngine,
};
use biscuit::sim::time::SimDuration;
use biscuit::sim::{Ctx, Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

const DRIVES: usize = 4;
const SHARD_PAGES: u64 = 24;
const TENANTS: u32 = 8;
const QUERIES: u64 = 128;
const SOAK_SEED: u64 = 0x50AB_0008;

fn make_array() -> (SsdArray, u64) {
    let mut expected = 0u64;
    let drives: Vec<Ssd> = (0..DRIVES)
        .map(|i| {
            let device = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 32 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(device);
            let page = fs.device().config().page_size as u64;
            let gen = Arc::new(WeblogGen::new(90 + i as u64, 200));
            expected += gen.count_needles(SHARD_PAGES, page as usize);
            fs.create_synthetic("shard.log", SHARD_PAGES * page, gen)
                .unwrap();
            Ssd::new(fs, CoreConfig::paper_default())
        })
        .collect();
    (
        SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default()),
        expected,
    )
}

/// Every export surface of one seeded open-loop soak.
struct SoakArtifacts {
    metrics: String,
    trace: String,
    profiles: String,
    qos: String,
    accepted: u64,
    shed: u64,
}

/// A seeded Zipf soak through the real datapath: open-loop arrivals fast
/// enough that the bounded queues must shed, every accepted query a full
/// sharded grep over 4 drives. Returns all four export surfaces.
fn qos_soak(seed: u64) -> SoakArtifacts {
    let (array, expected) = make_array();
    assert!(expected > 0, "the corpus plants needles");

    let sim = Simulation::new(seed);
    sim.enable_metrics();
    sim.enable_trace(TraceConfig::default());
    sim.enable_qprof();
    array.attach_metrics(sim.metrics());
    array.attach_tracer(sim.tracer());
    array.attach_qprof(sim.qprof());

    let sched = QueryScheduler::new(SchedulerConfig {
        users: TENANTS as usize,
        queue_capacity: 2,
        ..SchedulerConfig::for_drives(DRIVES)
    });
    let sched_out = sched.clone();
    let qos_out: Arc<Mutex<String>> = Arc::new(Mutex::new(String::new()));
    let qos = Arc::clone(&qos_out);
    let counts: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let got = Arc::clone(&counts);

    sim.spawn("host", move |ctx| {
        let grep = ArrayGrep::prepare(ctx, &array).unwrap();
        sched.attach_metrics(ctx.metrics());
        sched.start(ctx);
        let mut engine = WorkloadEngine::new(WorkloadConfig {
            seed,
            tenants: TENANTS,
            queries: QUERIES,
            zipf_theta: 1.1,
            mix: QueryMix::default(),
            arrivals: ArrivalProcess::OpenLoop {
                mean_interarrival: SimDuration::from_micros(2),
            },
            phases: vec![],
        });
        let stats = drive_open_loop(ctx, &sched, &mut engine, |_a| {
            let array = array.clone();
            let grep = grep.clone();
            let got = Arc::clone(&got);
            move |qctx: &Ctx| {
                let n = grep
                    .run(qctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                    .unwrap();
                got.lock().push(n);
            }
        });
        sched.close(ctx);
        sched.wait_completed(ctx, sched.submitted());

        // Shed counters reconcile exactly: offered == accepted + shed,
        // and everything accepted completes during the drain.
        assert_eq!(stats.offered, QUERIES, "engine exhausted its budget");
        assert_eq!(stats.offered, stats.accepted + stats.shed);
        assert_eq!(sched.submitted(), stats.accepted);
        assert_eq!(sched.shed(), stats.shed);
        assert_eq!(sched.completed(), stats.accepted);
        assert!(stats.shed > 0, "this soak is sized to overload the array");

        // Zero starved tenants: the engine's coverage sweep guarantees
        // every tenant offers at least one query, and WFQ guarantees the
        // accepted ones complete.
        for r in sched.tenant_reports() {
            assert!(r.offered > 0, "tenant {} never offered", r.user);
            assert!(r.completed > 0, "tenant {} starved", r.user);
            assert_eq!(r.offered, r.accepted + r.shed, "tenant {} books", r.user);
            assert_eq!(r.completed, r.accepted, "tenant {} lost queries", r.user);
        }
        *qos.lock() = sched.qos_json();
    });

    let report = sim.run();
    report.assert_quiescent();

    let accepted = sched_out.submitted();
    let shed = sched_out.shed();
    let all = counts.lock();
    assert_eq!(all.len(), accepted as usize);
    for &n in all.iter() {
        assert_eq!(n, expected, "every accepted query sees the whole corpus");
    }

    // Query profiles close: one profile per accepted query, none left
    // open, no orphan spans.
    assert_eq!(report.profiles.open(), 0, "queries never closed");
    assert_eq!(report.profiles.queries().len(), accepted as usize);
    for q in report.profiles.queries() {
        assert_eq!(q.orphans, 0, "query {} has orphan spans", q.query);
        assert!(q.spans > 0, "query {} recorded no spans", q.query);
    }

    // The shed path is metered per user and in aggregate.
    let snap = &report.metrics;
    assert_eq!(snap.counter_sum("sched_shed_total"), shed);
    assert_eq!(snap.counter_sum("array_sched_submitted_total"), accepted);
    assert_eq!(snap.counter_sum("array_sched_completed_total"), accepted);

    SoakArtifacts {
        metrics: snap.to_json(),
        trace: report.trace.to_chrome_json(),
        profiles: report.profiles.to_json(),
        qos: Arc::try_unwrap(qos_out).unwrap().into_inner(),
        accepted,
        shed,
    }
}

#[test]
fn soak_with_shedding_is_byte_identical_across_rounds() {
    let reference = qos_soak(SOAK_SEED);
    assert!(reference.accepted > 0 && reference.shed > 0);
    assert!(reference.qos.contains("\"wait_p999_ps\""));
    assert!(reference.metrics.contains("sched_shed_total"));
    assert!(reference.metrics.contains("array_queue_wait_ps"));
    for round in 0..2 {
        let repeat = qos_soak(SOAK_SEED);
        assert_eq!(repeat.accepted, reference.accepted, "round {round}");
        assert_eq!(repeat.shed, reference.shed, "round {round}");
        assert_eq!(repeat.qos, reference.qos, "round {round}: QoS export");
        assert_eq!(repeat.metrics, reference.metrics, "round {round}: metrics");
        assert_eq!(repeat.trace, reference.trace, "round {round}: trace");
        assert_eq!(
            repeat.profiles, reference.profiles,
            "round {round}: query profiles"
        );
    }
}

#[test]
fn engine_stream_is_seed_deterministic_and_covers_every_tenant() {
    let cfg = WorkloadConfig {
        seed: 0xAB,
        tenants: 64,
        queries: 4096,
        ..WorkloadConfig::default()
    };
    let mut a = WorkloadEngine::new(cfg.clone());
    let mut b = WorkloadEngine::new(cfg);
    let sa: Vec<(u64, u64, u32, QueryKind, u64)> = std::iter::from_fn(|| a.next_arrival())
        .map(|x| (x.seq, x.at.as_ps(), x.tenant, x.kind, x.cost))
        .collect();
    let sb: Vec<(u64, u64, u32, QueryKind, u64)> = std::iter::from_fn(|| b.next_arrival())
        .map(|x| (x.seq, x.at.as_ps(), x.tenant, x.kind, x.cost))
        .collect();
    assert_eq!(sa, sb, "same seed, same stream");
    assert_eq!(sa.len(), 4096);
    assert_eq!(a.emitted(), 4096);
    assert_eq!(a.remaining(), 0);

    // Arrival times are strictly ordered by construction of the clock.
    assert!(sa.windows(2).all(|w| w[0].1 <= w[1].1));
    // Coverage sweep: the first 64 arrivals visit each tenant once.
    for (i, arr) in sa.iter().take(64).enumerate() {
        assert_eq!(arr.2, i as u32, "coverage sweep is round-robin");
    }
    // Zipf head: tenant 0 is the hottest, and nobody is left out.
    let mut counts = vec![0u64; 64];
    for arr in &sa {
        counts[arr.2 as usize] += 1;
    }
    assert!(counts.iter().all(|&c| c > 0), "coverage sweep covers all");
    assert!(
        counts[0] > counts[63],
        "Zipf(1.1) must skew the head over the tail: {} vs {}",
        counts[0],
        counts[63]
    );
    // The mix actually mixes: all four kinds appear over 4096 draws.
    for kind in [
        QueryKind::Grep,
        QueryKind::TpchQ1,
        QueryKind::TpchQ6,
        QueryKind::PointerChase,
    ] {
        assert!(
            sa.iter().any(|arr| arr.3 == kind),
            "{kind:?} never drawn from the default mix"
        );
        assert!(
            sa.iter()
                .filter(|arr| arr.3 == kind)
                .all(|arr| arr.4 >= kind.base_cost()),
            "{kind:?} cost jitter went below base"
        );
    }
}

#[test]
fn closed_loop_backpressures_and_never_sheds() {
    let sim = Simulation::new(7);
    sim.spawn("host", |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 8,
            max_inflight: 2,
            queue_capacity: 1,
            weights: Vec::new(),
        });
        sched.start(ctx);
        let mut engine = WorkloadEngine::new(WorkloadConfig {
            seed: 3,
            tenants: 8,
            queries: 96,
            zipf_theta: 0.9,
            mix: QueryMix::default(),
            arrivals: ArrivalProcess::ClosedLoop {
                mean_think: SimDuration::from_micros(10),
            },
            phases: vec![],
        });
        let stats = drive_closed_loop(ctx, &sched, &mut engine, |a| {
            let cost_us = a.cost;
            move |qctx: &Ctx| qctx.sleep(SimDuration::from_micros(cost_us))
        });
        assert_eq!(stats.offered, 96, "every budgeted query was submitted");
        assert_eq!(stats.accepted, 96, "closed loop blocks, never sheds");
        assert_eq!(stats.shed, 0);
        assert_eq!(sched.shed(), 0);
        sched.close(ctx);
        sched.wait_completed(ctx, 96);
        for r in sched.tenant_reports() {
            assert!(r.offered > 0, "tenant {} never played", r.user);
            assert_eq!(r.completed, r.offered, "tenant {} lost queries", r.user);
            assert_eq!(r.shed, 0);
        }
    });
    sim.run().assert_quiescent();
}

#[test]
fn closed_loop_with_fewer_queries_than_tenants() {
    let sim = Simulation::new(9);
    sim.spawn("host", |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 8,
            ..SchedulerConfig::default()
        });
        sched.start(ctx);
        let mut engine = WorkloadEngine::new(WorkloadConfig {
            seed: 4,
            tenants: 8,
            queries: 3,
            zipf_theta: 1.0,
            mix: QueryMix::default(),
            arrivals: ArrivalProcess::ClosedLoop {
                mean_think: SimDuration::from_micros(5),
            },
            phases: vec![],
        });
        let stats = drive_closed_loop(ctx, &sched, &mut engine, |_a| {
            move |qctx: &Ctx| qctx.sleep(SimDuration::from_micros(1))
        });
        assert_eq!(stats.offered, 3, "budget caps the warm-up set");
        assert_eq!(stats.shed, 0);
        sched.close(ctx);
        sched.wait_completed(ctx, 3);
    });
    sim.run().assert_quiescent();
}

// ---------------------------------------------------------------------------
// Close / drain edge cases
// ---------------------------------------------------------------------------

#[test]
#[should_panic(expected = "submit on a closed scheduler")]
fn submit_after_close_panics() {
    let sim = Simulation::new(1);
    sim.spawn("host", |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig::default());
        sched.start(ctx);
        sched.close(ctx);
        sched.submit(ctx, 0, |_qctx: &Ctx| {});
    });
    sim.run();
}

#[test]
#[should_panic(expected = "submit on a closed scheduler")]
fn close_wakes_blocked_submitter_into_panic() {
    let sim = Simulation::new(2);
    sim.spawn("host", |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 1,
            max_inflight: 1,
            queue_capacity: 1,
            weights: Vec::new(),
        });
        sched.start(ctx);
        // Occupy the single worker, then fill the single queue slot.
        sched.submit(ctx, 0, |qctx: &Ctx| {
            qctx.sleep(SimDuration::from_micros(100));
        });
        ctx.sleep(SimDuration::from_micros(1));
        sched.submit(ctx, 0, |_qctx: &Ctx| {});
        // A third submission must block on backpressure...
        let s2 = sched.clone();
        ctx.spawn("blocked", move |bctx| {
            s2.submit(bctx, 0, |_qctx: &Ctx| {});
        });
        ctx.sleep(SimDuration::from_micros(1));
        // ...and closing while it waits wakes it into the documented
        // panic rather than leaving it parked forever.
        sched.close(ctx);
    });
    sim.run();
}

#[test]
fn try_submit_after_close_sheds_with_closed_reason() {
    let sim = Simulation::new(3);
    sim.spawn("host", |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig::default());
        sched.start(ctx);
        sched.close(ctx);
        let err = sched.try_submit(ctx, 0, |_qctx: &Ctx| {}).unwrap_err();
        assert_eq!(
            err,
            QueryShed {
                user: 0,
                reason: ShedReason::Closed
            }
        );
        assert_eq!(sched.shed(), 1);
        assert_eq!(sched.submitted(), 0);
        let r = sched.tenant_reports();
        assert_eq!(r[0].offered, 1);
        assert_eq!(r[0].shed, 1);
        assert_eq!(r[0].accepted, 0);
    });
    sim.run().assert_quiescent();
}

#[test]
fn inflight_queries_complete_during_drain() {
    let done: Arc<Mutex<u64>> = Arc::new(Mutex::new(0));
    let out = Arc::clone(&done);
    let sim = Simulation::new(4);
    sim.spawn("host", move |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 2,
            max_inflight: 2,
            queue_capacity: 8,
            weights: Vec::new(),
        });
        sched.start(ctx);
        for i in 0..6usize {
            let out = Arc::clone(&out);
            sched.submit(ctx, i % 2, move |qctx: &Ctx| {
                qctx.sleep(SimDuration::from_micros(10));
                *out.lock() += 1;
            });
        }
        // Close immediately: nothing submitted past this point, but the
        // buffered and in-flight queries all finish during the drain.
        sched.close(ctx);
        sched.wait_completed(ctx, 6);
        assert_eq!(sched.completed(), 6);
        for r in sched.tenant_reports() {
            assert_eq!(r.completed, r.offered, "tenant {} dropped work", r.user);
            assert_eq!(r.shed, 0);
        }
    });
    sim.run().assert_quiescent();
    assert_eq!(*done.lock(), 6, "every job body actually ran");
}

#[test]
fn blocking_submit_meters_backpressure() {
    let sim = Simulation::new(5);
    sim.enable_metrics();
    sim.spawn("host", |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 1,
            max_inflight: 1,
            queue_capacity: 1,
            weights: Vec::new(),
        });
        sched.attach_metrics(ctx.metrics());
        sched.start(ctx);
        for _ in 0..3 {
            sched.submit(ctx, 0, |qctx: &Ctx| {
                qctx.sleep(SimDuration::from_micros(10));
            });
        }
        sched.close(ctx);
        sched.wait_completed(ctx, 3);
    });
    let report = sim.run();
    report.assert_quiescent();
    assert_eq!(report.metrics.counter_sum("array_sched_completed_total"), 3);
    assert!(
        report.metrics.counter_sum("array_sched_backpressure_total") >= 1,
        "a 1-slot queue fed 3 queries must backpressure the submitter"
    );
}
