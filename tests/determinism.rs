//! Full-stack determinism: identical seeds and workloads produce identical
//! virtual timelines, byte counts, and results — the property that makes
//! every number in EXPERIMENTS.md exactly reproducible.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit::apps::search::{
    array_conv_grep, biscuit_grep, conv_grep, load_grep_module, ArrayGrep,
};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::host::array::ArrayConfig;
use biscuit::host::{ConvIo, HostConfig, HostLoad, QueryScheduler, SchedulerConfig, SsdArray};
use biscuit::sim::{Simulation, TraceConfig};
use biscuit::ssd::{SsdConfig, SsdDevice};

/// One complete run: build a platform, search a synthetic log both ways,
/// and return every observable: result, end time, event count, link bytes.
fn full_run() -> (u64, u64, u64, u64, u64) {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 128 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(Arc::clone(&device));
    let page = device.config().page_size as u64;
    fs.create_synthetic("log", 512 * page, Arc::new(WeblogGen::new(7, 400)))
        .unwrap();
    let file = fs.open("log", Mode::ReadOnly).unwrap();
    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );
    let link = Arc::clone(ssd.link());

    let sim = Simulation::new(1234);
    let counts: Arc<Mutex<(u64, u64)>> = Arc::new(Mutex::new((0, 0)));
    let c = Arc::clone(&counts);
    sim.spawn("host", move |ctx| {
        let mid = load_grep_module(ctx, &ssd).unwrap();
        let a = conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), HostLoad::new(6)).unwrap();
        let b = biscuit_grep(ctx, &ssd, mid, &file, NEEDLE.as_bytes()).unwrap();
        *c.lock() = (a, b);
    });
    let report = sim.run();
    report.assert_quiescent();
    let (a, b) = *counts.lock();
    (
        a,
        b,
        report.end_time.as_ps(),
        report.events_processed,
        link.bytes_to_host(),
    )
}

#[test]
fn identical_runs_are_bit_identical() {
    let first = full_run();
    let second = full_run();
    assert_eq!(first, second, "virtual timelines must be reproducible");
    // And internally consistent: both search paths agree.
    assert_eq!(first.0, first.1);
    assert!(first.0 > 0, "the corpus plants needles");
}

/// The same run with full tracing enabled, returning the exported Chrome
/// JSON — the strongest observable: every fiber switch, NAND operation,
/// queue movement, and port message in emission order.
fn traced_run_json() -> String {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 128 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(Arc::clone(&device));
    let page = device.config().page_size as u64;
    fs.create_synthetic("log", 512 * page, Arc::new(WeblogGen::new(7, 400)))
        .unwrap();
    let file = fs.open("log", Mode::ReadOnly).unwrap();
    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );

    let sim = Simulation::new(1234);
    sim.enable_trace(TraceConfig::default());
    ssd.attach_tracer(sim.tracer());
    sim.spawn("host", move |ctx| {
        let mid = load_grep_module(ctx, &ssd).unwrap();
        let a = conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), HostLoad::new(6)).unwrap();
        let b = biscuit_grep(ctx, &ssd, mid, &file, NEEDLE.as_bytes()).unwrap();
        assert_eq!(a, b);
    });
    let report = sim.run();
    report.assert_quiescent();
    assert!(!report.trace.is_empty(), "tracing was enabled");
    report.trace.to_chrome_json()
}

/// The same run with aggregate metrics enabled, returning the exported
/// metrics JSON — every counter, gauge, and histogram keyed by metric name
/// and labels.
fn metered_run_snapshot() -> biscuit::sim::metrics::MetricsSnapshot {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 128 << 20,
        ..SsdConfig::paper_default()
    }));
    let fs = Fs::format(Arc::clone(&device));
    let page = device.config().page_size as u64;
    fs.create_synthetic("log", 512 * page, Arc::new(WeblogGen::new(7, 400)))
        .unwrap();
    let file = fs.open("log", Mode::ReadOnly).unwrap();
    let ssd = Ssd::new(fs, CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );

    let sim = Simulation::new(1234);
    sim.enable_metrics();
    ssd.attach_metrics(sim.metrics());
    sim.spawn("host", move |ctx| {
        let mid = load_grep_module(ctx, &ssd).unwrap();
        let a = conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), HostLoad::new(6)).unwrap();
        let b = biscuit_grep(ctx, &ssd, mid, &file, NEEDLE.as_bytes()).unwrap();
        assert_eq!(a, b);
    });
    let report = sim.run();
    report.assert_quiescent();
    report.metrics
}

#[test]
fn metrics_export_is_byte_identical_across_identical_runs() {
    let first = metered_run_snapshot().to_json();
    let second = metered_run_snapshot().to_json();
    assert_eq!(
        first, second,
        "metrics export must be byte-identical across identical seeded runs"
    );
    assert!(first.starts_with('{') && first.trim_end().ends_with('}'));
}

#[test]
fn quickstart_style_run_reports_nand_and_port_activity() {
    let snap = metered_run_snapshot();

    // The grep workload reads the whole corpus: every NAND channel did work
    // and the device moved bytes over its channel buses.
    assert!(
        snap.counter_sum("nand_ops_total") > 0,
        "NAND channels recorded no operations"
    );
    assert!(snap.counter_sum("bus_bytes_total") > 0);
    assert!(snap.counter_sum("ftl_lookups_total") > 0);
    // The pattern matchers scanned pages and found the planted needles.
    assert!(snap.counter_sum("pm_scans_total") > 0);
    assert!(snap.counter_sum("pm_hits_total") > 0);

    // The Biscuit grep streams matches back over a D2H port.
    assert!(
        snap.counter_sum("port_sends_total") > 0,
        "no port traffic recorded"
    );
    assert_eq!(
        snap.counter_sum("port_sends_total"),
        snap.counter_sum("port_recvs_total"),
        "every sent message was received"
    );
    assert!(snap.counter_sum("port_bytes_total") > 0);

    // Both host-link DMA directions carried data (module image down,
    // conv reads up), and the scheduler ran more than one fiber.
    assert!(snap.counter_value("resource_bytes_total", &[("resource", "link.to_host")]) > Some(0));
    assert!(
        snap.counter_value("resource_bytes_total", &[("resource", "link.to_device")]) > Some(0)
    );
    assert!(snap.counter_sum("sim_fibers_spawned_total") > 1);
}

#[test]
fn traced_runs_export_byte_identical_json() {
    let first = traced_run_json();
    let second = traced_run_json();
    assert_eq!(
        first, second,
        "trace export must be byte-identical across identical seeded runs"
    );

    // Structural spot checks on the export itself.
    assert!(first.starts_with("{\"traceEvents\":["));
    assert!(first.ends_with("\"displayTimeUnit\":\"ms\"}"));

    // Timestamps must be monotonically non-decreasing in file order (what
    // chrome://tracing and Perfetto expect from a well-formed stream).
    let mut last = -1.0f64;
    for chunk in first.split("\"ts\":").skip(1) {
        let end = chunk
            .find([',', '}'])
            .expect("ts value is followed by more JSON");
        let ts: f64 = chunk[..end].parse().expect("ts is a plain decimal");
        assert!(ts >= last, "ts went backwards: {ts} after {last}");
        last = ts;
    }
    assert!(last >= 0.0, "the trace contains timestamped events");
}

/// Scale-out run: 16 concurrent grep queries over an 8-drive array, fed
/// through the admission-controlled scheduler, with full tracing and
/// metrics on. Returns both exports plus the summed match count.
fn scaleout_run() -> (String, String, u64) {
    const DRIVES: usize = 8;
    const SHARD_PAGES: u64 = 64;
    const QUERIES: u64 = 16;

    let mut expected = 0u64;
    let drives: Vec<Ssd> = (0..DRIVES)
        .map(|i| {
            let device = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 32 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(device);
            let page = fs.device().config().page_size as u64;
            let gen = Arc::new(WeblogGen::new(40 + i as u64, 300));
            expected += gen.count_needles(SHARD_PAGES, page as usize);
            fs.create_synthetic("shard.log", SHARD_PAGES * page, gen)
                .unwrap();
            Ssd::new(fs, CoreConfig::paper_default())
        })
        .collect();
    let array = SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default());

    let sim = Simulation::new(99);
    sim.enable_trace(TraceConfig::default());
    sim.enable_metrics();
    array.attach_tracer(sim.tracer());
    array.attach_metrics(sim.metrics());

    let counts: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let got = Arc::clone(&counts);
    sim.spawn("host", move |ctx| {
        let grep = ArrayGrep::prepare(ctx, &array).unwrap();
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 4,
            max_inflight: 4,
            queue_capacity: 4,
            weights: Vec::new(),
        });
        sched.attach_metrics(ctx.metrics());
        sched.start(ctx);
        for q in 0..QUERIES {
            let array = array.clone();
            let grep = grep.clone();
            let got = Arc::clone(&got);
            sched.submit(ctx, (q % 4) as usize, move |qctx| {
                // Even queries offload, odd queries take the Conv loop —
                // both kinds interleave under the same admission gate.
                let n = if q % 2 == 0 {
                    grep.run(qctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                        .unwrap()
                } else {
                    array_conv_grep(qctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                        .unwrap()
                };
                got.lock().push(n);
            });
        }
        sched.close(ctx);
        sched.wait_completed(ctx, QUERIES);
    });
    let report = sim.run();
    report.assert_quiescent();
    let all = counts.lock();
    assert_eq!(all.len(), QUERIES as usize);
    for &n in all.iter() {
        assert_eq!(n, expected, "every query sees the whole corpus");
    }
    (
        report.trace.to_chrome_json(),
        report.metrics.to_json(),
        expected,
    )
}

#[test]
fn scaleout_sixteen_queries_over_eight_drives_are_byte_identical() {
    let (trace_a, metrics_a, expected) = scaleout_run();
    let (trace_b, metrics_b, _) = scaleout_run();
    assert!(expected > 0, "the corpus plants needles");
    assert_eq!(
        trace_a, trace_b,
        "trace export must be byte-identical across identical seeded scale-out runs"
    );
    assert_eq!(
        metrics_a, metrics_b,
        "metrics export must be byte-identical across identical seeded scale-out runs"
    );
    // The exports carry the coordinator's own instrumentation.
    assert!(trace_a.contains("array_scatter"));
    assert!(metrics_a.contains("array_scatters_total"));
    assert!(metrics_a.contains("array_sched_completed_total"));
}
