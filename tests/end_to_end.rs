//! Cross-crate integration tests through the `biscuit` facade: full stacks
//! from workload generator through filesystem, device, framework, and
//! application, in one simulation.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit::apps::graph::{biscuit_chase, chase_module, conv_chase, ChaseArgs, SocialGraph};
use biscuit::apps::search::{biscuit_grep, conv_grep, load_grep_module};
use biscuit::apps::weblog::{WeblogGen, NEEDLE};
use biscuit::apps::wordcount::{reference_wordcount, run_wordcount};
use biscuit::core::{CoreConfig, Ssd};
use biscuit::fs::{Fs, Mode};
use biscuit::host::{ConvIo, HostConfig, HostLoad};
use biscuit::sim::Simulation;
use biscuit::ssd::{SsdConfig, SsdDevice};

fn make_platform(capacity: u64) -> (Ssd, ConvIo) {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: capacity,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(device), CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );
    (ssd, conv)
}

#[test]
fn wordcount_end_to_end() {
    let (ssd, _conv) = make_platform(64 << 20);
    let corpus = "near data processing moves compute to data not data to compute ".repeat(300);
    ssd.fs().create("corpus").unwrap();
    ssd.fs()
        .append_untimed("corpus", corpus.as_bytes())
        .unwrap();
    let file = ssd.fs().open("corpus", Mode::ReadOnly).unwrap();
    let expected = reference_wordcount(corpus.as_bytes());

    let sim = Simulation::new(0);
    let got: Arc<Mutex<Vec<(String, u32)>>> = Arc::new(Mutex::new(Vec::new()));
    let g = Arc::clone(&got);
    sim.spawn("host", move |ctx| {
        *g.lock() = run_wordcount(ctx, &ssd, &file, 2, 3).unwrap();
    });
    sim.run().assert_quiescent();
    assert_eq!(*got.lock(), expected);
}

#[test]
fn search_and_chase_share_one_device() {
    // Two different applications (grep + chase) on the same SSD in one
    // simulation: module coexistence, port isolation, shared datapath.
    let (ssd, conv) = make_platform(512 << 20);
    let page = ssd.device().config().page_size as u64;
    let gen = WeblogGen::new(3, 500);
    ssd.fs()
        .create_synthetic("log", 512 * page, Arc::new(gen.clone()))
        .unwrap();
    let log = ssd.fs().open("log", Mode::ReadOnly).unwrap();
    let graph = SocialGraph::generate(5_000, 9);
    ssd.fs().create("graph").unwrap();
    ssd.fs().append_untimed("graph", graph.as_bytes()).unwrap();
    let gfile = ssd.fs().open("graph", Mode::ReadOnly).unwrap();
    let expected_needles = gen.count_needles(512, page as usize);
    let expected_checksum = graph.reference_walk(3, 40, 21);

    let sim = Simulation::new(0);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    sim.spawn("host", move |ctx| {
        let grep_mid = load_grep_module(ctx, &ssd).unwrap();
        let chase_mid = ssd.load_module(ctx, chase_module()).unwrap();
        assert_eq!(ssd.runtime().loaded_modules(), 2);

        let n = biscuit_grep(ctx, &ssd, grep_mid, &log, NEEDLE.as_bytes()).unwrap();
        assert_eq!(n, expected_needles);
        let n_conv = conv_grep(ctx, &conv, &log, NEEDLE.as_bytes(), HostLoad::IDLE).unwrap();
        assert_eq!(n_conv, expected_needles);

        let c = biscuit_chase(
            ctx,
            &ssd,
            chase_mid,
            ChaseArgs {
                file: gfile.clone(),
                walks: 3,
                steps: 40,
                seed: 21,
                vertices: 5_000,
            },
        )
        .unwrap();
        assert_eq!(c, expected_checksum);
        let c_conv = conv_chase(ctx, &conv, &gfile, 3, 40, 21, 5_000, HostLoad::IDLE).unwrap();
        assert_eq!(c_conv, expected_checksum);

        ssd.unload_module(ctx, grep_mid).unwrap();
        ssd.unload_module(ctx, chase_mid).unwrap();
        assert_eq!(ssd.runtime().loaded_modules(), 0);
        *ok2.lock() = true;
    });
    sim.run().assert_quiescent();
    assert!(*ok.lock());
}

#[test]
fn filesystem_survives_remount_with_device_state() {
    let device = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    {
        let fs = Fs::format(Arc::clone(&device));
        fs.create("a").unwrap();
        fs.append_untimed("a", b"persistent payload").unwrap();
    }
    let fs = Fs::mount(device).unwrap();
    let sim = Simulation::new(0);
    let f = fs.open("a", Mode::ReadOnly).unwrap();
    sim.spawn("host", move |ctx| {
        assert_eq!(f.read_at(ctx, 0, 18).unwrap(), b"persistent payload");
    });
    sim.run().assert_quiescent();
}

#[test]
fn tpch_q14_equality_through_facade() {
    use biscuit::db::spec::ExecMode;
    use biscuit::db::tpch::{all_queries, TpchData};
    use biscuit::db::{Db, DbConfig};

    let (ssd, _conv) = make_platform(1 << 30);
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    TpchData::generate(0.01, 1).load_into(&mut db).unwrap();
    let db = Arc::new(db);
    let sim = Simulation::new(0);
    let ok = Arc::new(Mutex::new(false));
    let ok2 = Arc::clone(&ok);
    sim.spawn("host", move |ctx| {
        let q14 = all_queries().into_iter().nth(13).unwrap();
        let conv = q14.run(&db, ctx, ExecMode::Conv, HostLoad::IDLE).unwrap();
        let bis = q14
            .run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
            .unwrap();
        let (a, b) = (
            conv.rows[0][0].as_f64().unwrap(),
            bis.rows[0][0].as_f64().unwrap(),
        );
        assert!((a - b).abs() < 1e-6, "promo% differs: {a} vs {b}");
        assert_eq!(bis.stats.offloaded_tables, vec!["lineitem".to_string()]);
        assert!(bis.stats.elapsed < conv.stats.elapsed);
        *ok2.lock() = true;
    });
    sim.run().assert_quiescent();
    assert!(*ok.lock());
}

#[test]
fn load_sensitivity_matrix() {
    // Conv paths degrade with host load; Biscuit paths do not. One device,
    // both applications, all load levels.
    let (ssd, conv) = make_platform(256 << 20);
    let page = ssd.device().config().page_size as u64;
    ssd.fs()
        .create_synthetic("log", 1024 * page, Arc::new(WeblogGen::new(3, 500)))
        .unwrap();
    let log = ssd.fs().open("log", Mode::ReadOnly).unwrap();

    let sim = Simulation::new(0);
    let times: Arc<Mutex<Vec<(u32, f64, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let t2 = Arc::clone(&times);
    sim.spawn("host", move |ctx| {
        let mid = load_grep_module(ctx, &ssd).unwrap();
        for threads in [0u32, 6, 12, 18, 24] {
            let t0 = ctx.now();
            conv_grep(ctx, &conv, &log, NEEDLE.as_bytes(), HostLoad::new(threads)).unwrap();
            let conv_t = (ctx.now() - t0).as_secs_f64();
            let t1 = ctx.now();
            biscuit_grep(ctx, &ssd, mid, &log, NEEDLE.as_bytes()).unwrap();
            let bis_t = (ctx.now() - t1).as_secs_f64();
            t2.lock().push((threads, conv_t, bis_t));
        }
    });
    sim.run().assert_quiescent();
    let times = times.lock();
    // Conv strictly increases with load.
    for w in times.windows(2) {
        assert!(w[1].1 > w[0].1, "conv time must grow with load: {times:?}");
    }
    // Biscuit flat within 5%.
    let b0 = times[0].2;
    assert!(times.iter().all(|&(_, _, b)| (b - b0).abs() / b0 < 0.05));
    // Speedup grows with load (paper Table V trend).
    assert!(times.last().unwrap().1 / times.last().unwrap().2 > times[0].1 / times[0].2);
}
