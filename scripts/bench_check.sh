#!/usr/bin/env bash
# The bench regression gate: regenerate every BENCH_<id>.json and diff the
# results against the committed baseline.
#
#   scripts/bench_check.sh             # run benches + gate
#   scripts/bench_check.sh --no-run    # gate existing BENCH_*.json only
#   scripts/bench_check.sh --update    # run benches, then rewrite
#                                      # benchmarks/baseline.json
#
# Every bench harness writes BENCH_<id>.json at the workspace root (or
# $BISCUIT_BENCH_DIR); `bench_check` compares each gated row against
# benchmarks/baseline.json and exits nonzero past tolerance. Deterministic
# rows gate at ±2%; rows derived from randomly generated workload data
# (TPC-H, the social graph) gate at ±50% — see docs/METRICS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

run_benches=true
check_args=()
for arg in "$@"; do
    case "$arg" in
        --no-run) run_benches=false ;;
        *) check_args+=("$arg") ;;
    esac
done

if $run_benches; then
    echo "== regenerating bench reports (cargo bench --workspace)"
    cargo bench --workspace
fi

echo "== bench_check"
cargo run --release -q -p biscuit-bench --bin bench_check -- ${check_args[@]+"${check_args[@]}"}
