#!/usr/bin/env bash
# The full local gate: everything CI runs, in tier order.
#
#   scripts/verify.sh            # run all gates
#   scripts/verify.sh --docs     # docs gates only (rustdoc + doc tests)
#
# Tier 1 (build + tests) must pass before anything merges; the docs gates
# keep `#![warn(missing_docs)]` honest and every doc example compiling.
set -euo pipefail
cd "$(dirname "$0")/.."

docs_only=false
if [[ "${1:-}" == "--docs" ]]; then
    docs_only=true
fi

if ! $docs_only; then
    echo "== tier 1: release build"
    cargo build --release
    echo "== tier 1: test suite"
    cargo test -q
    echo "== fault smoke: matrix test under metrics export"
    BISCUIT_METRICS=/tmp/fault-metrics.json cargo test -q --test faults
    echo "== scale-out: merge proptests, soak, determinism export"
    cargo test -q -p biscuit-host --test array_proptests
    cargo test -q --test scaleout
    cargo test -q --test determinism scaleout
    echo "== parallel DES: kernel windowing, fleet determinism stress"
    cargo test -q -p biscuit-sim par
    cargo test -q --test parallel
    BISCUIT_PAR=2 cargo test -q --test parallel
    echo "== observability: query-profile determinism + span closure"
    cargo test -q -p biscuit-sim qprof
    cargo test -q --test qprof
    BISCUIT_PAR=2 cargo test -q --test qprof
    echo "== qos: WFQ proptests, workload determinism, 64k soak gate"
    cargo test -q -p biscuit-host --test wfq_proptests
    cargo test -q --test workload
    BISCUIT_PAR=2 cargo test -q --test workload
    QOS_SMOKE=1 cargo bench -p biscuit-bench --bench qos
    cargo run --release -q -p biscuit-bench --bin bench_check -- --only qos
    echo "== write path: crash proptests, power-loss fault rows, GC bench gate"
    cargo test -q -p biscuit-ssd --test crash_proptests
    cargo test -q --test faults power_loss
    BISCUIT_PAR=2 cargo test -q --test faults power_loss
    WRITEPATH_SMOKE=1 cargo bench -p biscuit-bench --bench writepath
    cargo run --release -q -p biscuit-bench --bin bench_check -- --only writepath
    echo "== fusion: device/fault suites byte-identical under both engines"
    cargo test -q --test fuse
    cargo test -q -p biscuit-sim --test fuse_proptests
    BISCUIT_FUSE=0 cargo test -q -p biscuit-ssd
    BISCUIT_FUSE=1 cargo test -q -p biscuit-ssd
    BISCUIT_FUSE=0 cargo test -q --test faults
    BISCUIT_FUSE=1 cargo test -q --test faults
    echo "== wall-clock smoke: throughput bench + 2x regression gate"
    WALLCLOCK_SMOKE=1 WALLCLOCK_BASELINE=benchmarks/wallclock_baseline.json \
        cargo bench -p biscuit-bench --bench wallclock
    echo "== lint: clippy, warnings as errors"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "== docs: rustdoc, warnings as errors"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps

echo "== docs: doc tests"
cargo test --doc --workspace

echo "verify: all gates passed"
