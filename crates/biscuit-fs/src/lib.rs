//! # biscuit-fs — the filesystem Biscuit forces the SSD to operate under
//!
//! Paper §III-D: SSDlets may not touch logical block addresses; all device
//! data access goes through files whose handles are created host-side and
//! passed to SSDlets, inheriting the host program's access permission.
//!
//! This crate provides that volume: a flat-namespace, extent-based
//! filesystem persisted in a reserved metadata region of the simulated SSD,
//! with synchronous reads, asynchronous (queue-depth pipelined) reads,
//! pattern-matcher scans, and appends.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod error;
pub mod fs;

pub use alloc::{Extent, ExtentAllocator};
pub use error::{FsError, FsResult};
pub use fs::{File, Fs, Mode};
