//! The on-device filesystem.
//!
//! Biscuit "prohibits SSDlets from directly using low-level, logical block
//! addresses and forces the SSD to operate under a file system" (paper
//! §III-D). This module is that filesystem: a flat-namespace, extent-based
//! volume whose metadata persists in a reserved region of the device, with
//! host-side and device-side file handles that share one inode table (so an
//! SSDlet's access rights are inherited from the host program that opened
//! the file — §III-D's permission model).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_proto::packet::{Packet, PacketBuilder};
use biscuit_sim::Ctx;
use biscuit_ssd::pattern::PatternSet;
use biscuit_ssd::{PageBuf, SsdDevice};

use crate::alloc::{Extent, ExtentAllocator};
use crate::error::{FsError, FsResult};

const MAGIC: u64 = 0x4253_4654_2d52_5331; // "BSFT-RS1"
const DEFAULT_META_PAGES: u64 = 64;
/// Pages added per growth step when appending past current capacity.
const GROWTH_PAGES: u64 = 256;

/// Access mode of a file handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reads only.
    ReadOnly,
    /// Reads and writes.
    ReadWrite,
}

#[derive(Debug, Clone)]
struct Inode {
    size: u64,
    extents: Vec<Extent>,
}

impl Inode {
    fn capacity_pages(&self) -> u64 {
        self.extents.iter().map(|e| e.pages).sum()
    }

    /// Logical page holding byte `offset` of the file.
    fn lpn_of(&self, page_index: u64) -> u64 {
        let mut remaining = page_index;
        for e in &self.extents {
            if remaining < e.pages {
                return e.start + remaining;
            }
            remaining -= e.pages;
        }
        panic!("page index {page_index} beyond file capacity");
    }
}

#[derive(Debug)]
struct FsState {
    files: HashMap<String, Inode>,
    alloc: ExtentAllocator,
}

struct FsInner {
    device: Arc<SsdDevice>,
    page_size: usize,
    meta_pages: u64,
    state: Mutex<FsState>,
}

impl std::fmt::Debug for FsInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fs")
            .field("files", &self.state.lock().files.len())
            .finish()
    }
}

/// The filesystem handle (cheaply cloneable).
///
/// # Examples
///
/// ```
/// use biscuit_fs::{Fs, Mode};
/// use biscuit_ssd::{SsdConfig, SsdDevice};
/// use biscuit_sim::Simulation;
/// use std::sync::Arc;
///
/// let dev = Arc::new(SsdDevice::new(SsdConfig {
///     logical_capacity: 16 << 20,
///     ..SsdConfig::paper_default()
/// }));
/// let fs = Fs::format(dev);
/// fs.create("data.log").unwrap();
/// fs.append_untimed("data.log", b"hello biscuit").unwrap();
///
/// let sim = Simulation::new(0);
/// let file = fs.open("data.log", Mode::ReadOnly).unwrap();
/// sim.spawn("reader", move |ctx| {
///     let bytes = file.read_at(ctx, 0, 13).unwrap();
///     assert_eq!(&bytes, b"hello biscuit");
/// });
/// sim.run().assert_quiescent();
/// ```
#[derive(Debug, Clone)]
pub struct Fs {
    inner: Arc<FsInner>,
}

impl Fs {
    /// Formats the device with an empty volume, reserving a metadata region.
    pub fn format(device: Arc<SsdDevice>) -> Fs {
        let page_size = device.config().page_size;
        let total_pages = device.config().logical_pages();
        assert!(
            total_pages > DEFAULT_META_PAGES,
            "device too small for filesystem metadata"
        );
        let fs = Fs {
            inner: Arc::new(FsInner {
                page_size,
                meta_pages: DEFAULT_META_PAGES,
                state: Mutex::new(FsState {
                    files: HashMap::new(),
                    alloc: ExtentAllocator::new(
                        DEFAULT_META_PAGES,
                        total_pages - DEFAULT_META_PAGES,
                    ),
                }),
                device,
            }),
        };
        fs.sync_untimed().expect("formatting writes metadata");
        fs
    }

    /// Mounts an existing volume by replaying the metadata region.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::Corrupt`] if no valid superblock is present.
    pub fn mount(device: Arc<SsdDevice>) -> FsResult<Fs> {
        let page_size = device.config().page_size;
        let total_pages = device.config().logical_pages();
        // Read the metadata region.
        let mut meta = Vec::new();
        for lpn in 0..DEFAULT_META_PAGES {
            meta.extend_from_slice(&device.peek_page(lpn)?);
        }
        let pkt = Packet::from(meta);
        let mut r = pkt.reader();
        let magic = r.get_u64().map_err(|e| FsError::Corrupt(e.to_string()))?;
        if magic != MAGIC {
            return Err(FsError::Corrupt(format!("bad magic {magic:#x}")));
        }
        let count = r.get_u32().map_err(|e| FsError::Corrupt(e.to_string()))?;
        let mut files = HashMap::new();
        let mut used = Vec::new();
        for _ in 0..count {
            let name = r
                .get_str()
                .map_err(|e| FsError::Corrupt(e.to_string()))?
                .to_owned();
            let size = r.get_u64().map_err(|e| FsError::Corrupt(e.to_string()))?;
            let n_ext = r.get_u32().map_err(|e| FsError::Corrupt(e.to_string()))?;
            let mut extents = Vec::with_capacity(n_ext as usize);
            for _ in 0..n_ext {
                let start = r.get_u64().map_err(|e| FsError::Corrupt(e.to_string()))?;
                let pages = r.get_u64().map_err(|e| FsError::Corrupt(e.to_string()))?;
                let e = Extent { start, pages };
                extents.push(e);
                used.push(e);
            }
            files.insert(name, Inode { size, extents });
        }
        let alloc =
            ExtentAllocator::from_used(DEFAULT_META_PAGES, total_pages - DEFAULT_META_PAGES, &used);
        Ok(Fs {
            inner: Arc::new(FsInner {
                page_size,
                meta_pages: DEFAULT_META_PAGES,
                state: Mutex::new(FsState { files, alloc }),
                device,
            }),
        })
    }

    /// The backing device.
    pub fn device(&self) -> &Arc<SsdDevice> {
        &self.inner.device
    }

    /// Creates an empty file and returns a writable handle.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] if the path is taken.
    pub fn create(&self, path: &str) -> FsResult<File> {
        let mut st = self.inner.state.lock();
        if st.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.to_owned()));
        }
        st.files.insert(
            path.to_owned(),
            Inode {
                size: 0,
                extents: Vec::new(),
            },
        );
        Ok(File {
            inner: Arc::clone(&self.inner),
            path: path.to_owned(),
            mode: Mode::ReadWrite,
            write_buffer: Vec::new(),
        })
    }

    /// Opens an existing file.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn open(&self, path: &str, mode: Mode) -> FsResult<File> {
        let st = self.inner.state.lock();
        if !st.files.contains_key(path) {
            return Err(FsError::NotFound(path.to_owned()));
        }
        Ok(File {
            inner: Arc::clone(&self.inner),
            path: path.to_owned(),
            mode,
            write_buffer: Vec::new(),
        })
    }

    /// Deletes a file, frees its extents, and TRIMs the freed pages on the
    /// device so the FTL stops relocating dead data during GC.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the path does not exist.
    pub fn remove(&self, path: &str) -> FsResult<()> {
        let extents = {
            let mut st = self.inner.state.lock();
            let inode = st
                .files
                .remove(path)
                .ok_or_else(|| FsError::NotFound(path.to_owned()))?;
            for e in &inode.extents {
                st.alloc.free(*e);
            }
            inode.extents
        };
        for e in extents {
            for lpn in e.start..e.end() {
                self.inner.device.trim_page(lpn).map_err(FsError::Device)?;
            }
        }
        self.sync_untimed()
    }

    /// True if the path exists.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.state.lock().files.contains_key(path)
    }

    /// Lists `(path, size)` of every file.
    pub fn list(&self) -> Vec<(String, u64)> {
        let st = self.inner.state.lock();
        let mut out: Vec<(String, u64)> =
            st.files.iter().map(|(k, v)| (k.clone(), v.size)).collect();
        out.sort();
        out
    }

    /// Free pages remaining on the volume.
    pub fn free_pages(&self) -> u64 {
        self.inner.state.lock().alloc.free_pages()
    }

    /// Persists metadata to the reserved region without charging time
    /// (setup/teardown helper; measured paths don't sync metadata).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSpace`] if metadata outgrew the reserved region.
    pub fn sync_untimed(&self) -> FsResult<()> {
        persist_metadata(&self.inner)
    }

    /// Creates a file whose pages are *deterministically regenerated* on
    /// demand instead of stored — the storage-free path for huge synthetic
    /// corpora (the paper's 7.8 GiB web log or 20 GiB graph store would not
    /// fit in host RAM if materialized). Functionally identical to a file
    /// loaded with the generator's bytes.
    ///
    /// The generator receives the file-relative page index, and `len` must
    /// be page-aligned.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::AlreadyExists`] or [`FsError::NoSpace`].
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a multiple of the page size.
    pub fn create_synthetic(
        &self,
        path: &str,
        len: u64,
        gen: Arc<dyn biscuit_ssd::PageGen>,
    ) -> FsResult<File> {
        let ps = self.inner.page_size as u64;
        assert_eq!(len % ps, 0, "synthetic file length must be page-aligned");
        let file = self.create(path)?;
        let pages = len / ps;
        {
            let mut st = self.inner.state.lock();
            Fs::grow_locked(&mut st, path, len, ps)?;
            let inode = st.files.get_mut(path).expect("just created");
            inode.size = len;
        }
        let inode = self
            .inner
            .state
            .lock()
            .files
            .get(path)
            .cloned()
            .expect("just created");
        for page_idx in 0..pages {
            let lpn = inode.lpn_of(page_idx);
            self.inner
                .device
                .load_page(
                    lpn,
                    biscuit_ssd::PageData::Synth {
                        lpn: page_idx,
                        gen: Arc::clone(&gen),
                    },
                )
                .map_err(FsError::Device)?;
        }
        self.sync_untimed()?;
        Ok(file)
    }

    /// Appends bytes to a file without charging virtual time (bulk dataset
    /// loading; generators use this before experiments start).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or [`FsError::NoSpace`].
    pub fn append_untimed(&self, path: &str, data: &[u8]) -> FsResult<()> {
        let ps = self.inner.page_size as u64;
        let (start_offset, lpn_writes) = {
            let mut st = self.inner.state.lock();
            let start = st
                .files
                .get(path)
                .ok_or_else(|| FsError::NotFound(path.to_owned()))?
                .size;
            Self::grow_locked(&mut st, path, start + data.len() as u64, ps)?;
            let inode = st.files.get_mut(path).expect("checked");
            inode.size = start + data.len() as u64;
            // Collect (lpn, page_offset_in_file) pairs touched by the append.
            let first_page = start / ps;
            let last_page = (start + data.len() as u64).div_ceil(ps);
            let writes: Vec<(u64, u64)> = (first_page..last_page)
                .map(|pi| (inode.lpn_of(pi), pi))
                .collect();
            (start, writes)
        };
        for (lpn, page_index) in lpn_writes {
            let page_start = page_index * ps;
            let mut page = if page_start < start_offset {
                // Partially-filled head page: read-modify-write.
                self.inner.device.peek_page(lpn)?.to_vec()
            } else {
                vec![0u8; ps as usize]
            };
            let copy_from = page_start.max(start_offset);
            let copy_to = (page_start + ps).min(start_offset + data.len() as u64);
            let dst = (copy_from - page_start) as usize..(copy_to - page_start) as usize;
            let src = (copy_from - start_offset) as usize..(copy_to - start_offset) as usize;
            page[dst].copy_from_slice(&data[src]);
            self.inner.device.load_bytes(lpn, &page)?;
        }
        self.sync_untimed()
    }

    fn grow_locked(st: &mut FsState, path: &str, need_bytes: u64, ps: u64) -> FsResult<()> {
        let need_pages = need_bytes.div_ceil(ps);
        loop {
            let inode = st.files.get(path).expect("caller checked existence");
            let have = inode.capacity_pages();
            if have >= need_pages {
                return Ok(());
            }
            let want = (need_pages - have).clamp(1, GROWTH_PAGES);
            let Some(ext) = st.alloc.allocate_up_to(want) else {
                return Err(FsError::NoSpace {
                    requested_pages: want,
                    largest_free: st.alloc.largest_free(),
                });
            };
            let inode = st.files.get_mut(path).expect("caller checked existence");
            // Merge with the previous extent when contiguous.
            if let Some(last) = inode.extents.last_mut() {
                if last.end() == ext.start {
                    last.pages += ext.pages;
                    continue;
                }
            }
            inode.extents.push(ext);
        }
    }
}

/// Serializes the inode table + extent lists into the metadata region's
/// wire format (sorted by path, so encoding is deterministic).
fn encode_metadata(inner: &FsInner) -> Vec<u8> {
    let st = inner.state.lock();
    let mut b = PacketBuilder::new();
    b.put_u64(MAGIC);
    let mut names: Vec<&String> = st.files.keys().collect();
    names.sort();
    b.put_u32(names.len() as u32);
    for name in names {
        let inode = &st.files[name];
        b.put_str(name);
        b.put_u64(inode.size);
        b.put_u32(inode.extents.len() as u32);
        for e in &inode.extents {
            b.put_u64(e.start);
            b.put_u64(e.pages);
        }
    }
    b.build().into_buf().to_vec()
}

fn persist_metadata(inner: &FsInner) -> FsResult<()> {
    let bytes = encode_metadata(inner);
    let budget = inner.meta_pages * inner.page_size as u64;
    if bytes.len() as u64 > budget {
        return Err(FsError::NoSpace {
            requested_pages: (bytes.len() as u64).div_ceil(inner.page_size as u64),
            largest_free: inner.meta_pages,
        });
    }
    inner.device.load_bytes(0, &bytes)?;
    Ok(())
}

/// A file handle, usable from host fibers and SSDlet fibers alike.
///
/// Mirrors the paper's split `File` classes: the handle created host-side
/// (libsisc) is passed to SSDlets (libslet) and carries its access mode with
/// it, so device-side permission equals host-side permission. Writes follow
/// the paper's §III-D API: an *asynchronous* write that buffers in the
/// handle ([`File::write_async`]) and a *synchronous* [`File::flush`] that
/// pipelines the buffered pages onto the flash.
#[derive(Debug, Clone)]
pub struct File {
    inner: Arc<FsInner>,
    path: String,
    mode: Mode,
    write_buffer: Vec<u8>,
}

impl File {
    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The handle's access mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// A read-only clone of this handle (what a host program should hand to
    /// an SSDlet that only scans).
    pub fn read_only(&self) -> File {
        File {
            inner: Arc::clone(&self.inner),
            path: self.path.clone(),
            mode: Mode::ReadOnly,
            write_buffer: Vec::new(),
        }
    }

    /// Current size in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the file was removed.
    pub fn len(&self) -> FsResult<u64> {
        Ok(self.snapshot()?.size)
    }

    /// True if the file is empty.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] if the file was removed.
    pub fn is_empty(&self) -> FsResult<bool> {
        Ok(self.len()? == 0)
    }

    fn snapshot(&self) -> FsResult<Inode> {
        self.inner
            .state
            .lock()
            .files
            .get(&self.path)
            .cloned()
            .ok_or_else(|| FsError::NotFound(self.path.clone()))
    }

    /// Logical pages backing byte range `[offset, offset + len)`.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::OutOfBounds`] if the range exceeds the file.
    pub fn lpns_for_range(&self, offset: u64, len: u64) -> FsResult<Vec<u64>> {
        let inode = self.snapshot()?;
        if offset + len > inode.size {
            return Err(FsError::OutOfBounds {
                offset,
                len,
                size: inode.size,
            });
        }
        if len == 0 {
            return Ok(Vec::new());
        }
        let ps = self.inner.page_size as u64;
        let first = offset / ps;
        let last = (offset + len).div_ceil(ps);
        Ok((first..last).map(|pi| inode.lpn_of(pi)).collect())
    }

    /// Synchronous read: one device request covering the range, blocking the
    /// fiber until the data arrives (paper's synchronous read API). Only the
    /// touched bytes of each page occupy the channel buses.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::OutOfBounds`] or a device error.
    pub fn read_at(&self, ctx: &Ctx, offset: u64, len: u64) -> FsResult<Vec<u8>> {
        let lpns = self.lpns_for_range(offset, len)?;
        let ps = self.inner.page_size as u64;
        // Per-page byte spans (head and tail pages may be partial).
        let mut spans = Vec::with_capacity(lpns.len());
        let mut pos = offset;
        let end = offset + len;
        for lpn in lpns {
            let page_end = (pos / ps + 1) * ps;
            let take = page_end.min(end) - pos;
            spans.push((lpn, take as usize));
            pos += take;
        }
        let pages = self.inner.device.read_spans(ctx, &spans)?;
        Ok(self.slice_pages(&pages, offset, len))
    }

    /// Asynchronous read: requests of `request_pages` pages with up to
    /// `queue_depth` in flight (paper's asynchronous read API, recommended
    /// for high-bandwidth file I/O).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::OutOfBounds`] or a device error.
    pub fn read_at_async(
        &self,
        ctx: &Ctx,
        offset: u64,
        len: u64,
        request_pages: usize,
        queue_depth: usize,
    ) -> FsResult<Vec<u8>> {
        let lpns = self.lpns_for_range(offset, len)?;
        let pages = self
            .inner
            .device
            .read_pages_async(ctx, &lpns, request_pages, queue_depth)?;
        Ok(self.slice_pages(&pages, offset, len))
    }

    fn slice_pages(&self, pages: &[PageBuf], offset: u64, len: u64) -> Vec<u8> {
        self.inner
            .device
            .count_copy(biscuit_ssd::CopySite::HostAssemble, len);
        let ps = self.inner.page_size as u64;
        let mut out = Vec::with_capacity(len as usize);
        let head = offset % ps;
        let mut remaining = len;
        for (i, page) in pages.iter().enumerate() {
            let start = if i == 0 { head as usize } else { 0 };
            let take = ((ps as usize - start) as u64).min(remaining) as usize;
            out.extend_from_slice(&page[start..start + take]);
            remaining -= take as u64;
        }
        out
    }

    /// Streams the whole file through the per-channel pattern matcher IP,
    /// returning `(file_page_index, page)` for matching pages only.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NotFound`] or a device error.
    pub fn scan(
        &self,
        ctx: &Ctx,
        pattern: &PatternSet,
        request_pages: usize,
        queue_depth: usize,
    ) -> FsResult<Vec<(u64, PageBuf)>> {
        let inode = self.snapshot()?;
        let ps = self.inner.page_size as u64;
        let n_pages = inode.size.div_ceil(ps);
        let lpns: Vec<u64> = (0..n_pages).map(|pi| inode.lpn_of(pi)).collect();
        let by_lpn: HashMap<u64, u64> = lpns
            .iter()
            .enumerate()
            .map(|(pi, &lpn)| (lpn, pi as u64))
            .collect();
        let hits = self
            .inner
            .device
            .scan_pages(ctx, &lpns, pattern, request_pages, queue_depth)?;
        Ok(hits
            .into_iter()
            .map(|(lpn, buf)| (by_lpn[&lpn], buf))
            .collect())
    }

    /// Timed append (the paper's asynchronous write + flush pair is modeled
    /// as a blocking page-granular write).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::ReadOnly`], [`FsError::NoSpace`], or a device error.
    pub fn append(&self, ctx: &Ctx, data: &[u8]) -> FsResult<()> {
        if self.mode != Mode::ReadWrite {
            return Err(FsError::ReadOnly(self.path.clone()));
        }
        let ps = self.inner.page_size as u64;
        let (start_offset, lpn_writes) = {
            let mut st = self.inner.state.lock();
            let start = st
                .files
                .get(&self.path)
                .ok_or_else(|| FsError::NotFound(self.path.clone()))?
                .size;
            Fs::grow_locked(&mut st, &self.path, start + data.len() as u64, ps)?;
            let inode = st.files.get_mut(&self.path).expect("checked");
            inode.size = start + data.len() as u64;
            let first_page = start / ps;
            let last_page = (start + data.len() as u64).div_ceil(ps);
            let writes: Vec<(u64, u64)> = (first_page..last_page)
                .map(|pi| (inode.lpn_of(pi), pi))
                .collect();
            (start, writes)
        };
        for (lpn, page_index) in lpn_writes {
            let page_start = page_index * ps;
            let mut page = if page_start < start_offset {
                let bufs = self.inner.device.read_pages(ctx, &[lpn])?;
                bufs[0].to_vec()
            } else {
                vec![0u8; ps as usize]
            };
            let copy_from = page_start.max(start_offset);
            let copy_to = (page_start + ps).min(start_offset + data.len() as u64);
            let dst = (copy_from - page_start) as usize..(copy_to - page_start) as usize;
            let src = (copy_from - start_offset) as usize..(copy_to - start_offset) as usize;
            page[dst].copy_from_slice(&data[src]);
            self.inner.device.write_page(ctx, lpn, &page)?;
        }
        Ok(())
    }

    /// Asynchronous write (paper §III-D): buffers `data` in the handle with
    /// no virtual-time cost. Call [`File::flush`] to make it durable.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::ReadOnly`] on a read-only handle.
    pub fn write_async(&mut self, data: &[u8]) -> FsResult<()> {
        if self.mode != Mode::ReadWrite {
            return Err(FsError::ReadOnly(self.path.clone()));
        }
        self.write_buffer.extend_from_slice(data);
        Ok(())
    }

    /// Bytes buffered by [`File::write_async`] and not yet flushed.
    pub fn buffered(&self) -> usize {
        self.write_buffer.len()
    }

    /// Synchronous flush (paper §III-D): appends everything buffered by
    /// [`File::write_async`], pipelining page programs across the dies, and
    /// blocks until all of it is on flash.
    ///
    /// # Errors
    ///
    /// Returns storage errors; on success the buffer is empty.
    pub fn flush(&mut self, ctx: &Ctx) -> FsResult<()> {
        if self.write_buffer.is_empty() {
            return Ok(());
        }
        let data = std::mem::take(&mut self.write_buffer);
        let ps = self.inner.page_size as u64;
        let (start_offset, lpn_writes) = {
            let mut st = self.inner.state.lock();
            let start = st
                .files
                .get(&self.path)
                .ok_or_else(|| FsError::NotFound(self.path.clone()))?
                .size;
            Fs::grow_locked(&mut st, &self.path, start + data.len() as u64, ps)?;
            let inode = st.files.get_mut(&self.path).expect("checked");
            inode.size = start + data.len() as u64;
            let first_page = start / ps;
            let last_page = (start + data.len() as u64).div_ceil(ps);
            let writes: Vec<(u64, u64)> = (first_page..last_page)
                .map(|pi| (inode.lpn_of(pi), pi))
                .collect();
            (start, writes)
        };
        let mut batch: Vec<(u64, PageBuf)> = Vec::with_capacity(lpn_writes.len());
        for (lpn, page_index) in lpn_writes {
            let page_start = page_index * ps;
            let mut frame = self.inner.device.frame_pool().take();
            let page = frame.as_mut_slice();
            if page_start < start_offset {
                // Partially-filled head page: read-modify-write.
                let bufs = self.inner.device.read_pages(ctx, &[lpn])?;
                page.copy_from_slice(&bufs[0]);
            } else {
                page.fill(0);
            }
            let copy_from = page_start.max(start_offset);
            let copy_to = (page_start + ps).min(start_offset + data.len() as u64);
            let dst = (copy_from - page_start) as usize..(copy_to - page_start) as usize;
            let src = (copy_from - start_offset) as usize..(copy_to - start_offset) as usize;
            page[dst].copy_from_slice(&data[src]);
            self.inner
                .device
                .count_copy(biscuit_ssd::CopySite::WriteStage, ps);
            batch.push((lpn, frame.freeze()));
        }
        self.inner
            .device
            .write_bufs_async(ctx, &batch, 16)
            .map_err(FsError::Device)?;
        Ok(())
    }

    /// Positional timed write (paper §III-D `write`): overwrites bytes at
    /// `offset`, extending the file when the range runs past the current
    /// end. Head and tail pages only partially covered by the range are
    /// read-modify-written; full pages are staged zero-copy into device
    /// page frames and pipelined like [`File::flush`]. Writing the same
    /// range twice is idempotent, which is what lets a host redo its write
    /// phase after a power-loss recovery.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::ReadOnly`], [`FsError::NoSpace`], or a device
    /// error.
    pub fn write_at(&self, ctx: &Ctx, offset: u64, data: &[u8]) -> FsResult<()> {
        if self.mode != Mode::ReadWrite {
            return Err(FsError::ReadOnly(self.path.clone()));
        }
        if data.is_empty() {
            return Ok(());
        }
        let ps = self.inner.page_size as u64;
        let end = offset + data.len() as u64;
        let (old_size, lpn_writes) = {
            let mut st = self.inner.state.lock();
            let old = st
                .files
                .get(&self.path)
                .ok_or_else(|| FsError::NotFound(self.path.clone()))?
                .size;
            Fs::grow_locked(&mut st, &self.path, end.max(old), ps)?;
            let inode = st.files.get_mut(&self.path).expect("checked");
            inode.size = inode.size.max(end);
            let first_page = offset / ps;
            let last_page = end.div_ceil(ps);
            let writes: Vec<(u64, u64)> = (first_page..last_page)
                .map(|pi| (inode.lpn_of(pi), pi))
                .collect();
            (old, writes)
        };
        let mut batch: Vec<(u64, PageBuf)> = Vec::with_capacity(lpn_writes.len());
        for (lpn, page_index) in lpn_writes {
            let page_start = page_index * ps;
            let page_end = page_start + ps;
            let full_cover = offset <= page_start && end >= page_end;
            let mut frame = self.inner.device.frame_pool().take();
            let page = frame.as_mut_slice();
            if !full_cover {
                if page_start < old_size {
                    // Page holds live bytes outside the written range.
                    let bufs = self.inner.device.read_pages(ctx, &[lpn])?;
                    page.copy_from_slice(&bufs[0]);
                } else {
                    page.fill(0);
                }
            }
            let copy_from = page_start.max(offset);
            let copy_to = page_end.min(end);
            let dst = (copy_from - page_start) as usize..(copy_to - page_start) as usize;
            let src = (copy_from - offset) as usize..(copy_to - offset) as usize;
            page[dst].copy_from_slice(&data[src]);
            self.inner
                .device
                .count_copy(biscuit_ssd::CopySite::WriteStage, ps);
            batch.push((lpn, frame.freeze()));
        }
        self.inner
            .device
            .write_bufs_async(ctx, &batch, 16)
            .map_err(FsError::Device)?;
        Ok(())
    }

    /// Durability barrier (paper §III-D `sync`): flushes everything
    /// buffered by [`File::write_async`], persists filesystem metadata,
    /// and forces a journal checkpoint of the device's L2P state — after
    /// `sync` returns, a power loss replays nothing issued before it and
    /// every acked byte survives recovery.
    ///
    /// # Errors
    ///
    /// Returns storage errors; a crashed, unrecovered device fails with
    /// the wrapped [`biscuit_ssd::FtlError::PowerLoss`].
    pub fn sync(&mut self, ctx: &Ctx) -> FsResult<()> {
        self.flush(ctx)?;
        persist_metadata(&self.inner)?;
        self.inner.device.checkpoint().map_err(FsError::Device)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_sim::Simulation;
    use biscuit_ssd::SsdConfig;

    fn device() -> Arc<SsdDevice> {
        Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 64 << 20,
            ..SsdConfig::paper_default()
        }))
    }

    #[test]
    fn create_open_remove() {
        let fs = Fs::format(device());
        fs.create("a.txt").unwrap();
        assert!(fs.exists("a.txt"));
        assert!(matches!(fs.create("a.txt"), Err(FsError::AlreadyExists(_))));
        fs.open("a.txt", Mode::ReadOnly).unwrap();
        assert!(matches!(
            fs.open("missing", Mode::ReadOnly),
            Err(FsError::NotFound(_))
        ));
        fs.remove("a.txt").unwrap();
        assert!(!fs.exists("a.txt"));
    }

    #[test]
    fn untimed_append_and_timed_read() {
        let fs = Fs::format(device());
        fs.create("data").unwrap();
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        fs.append_untimed("data", &payload).unwrap();

        let sim = Simulation::new(0);
        let f = fs.open("data", Mode::ReadOnly).unwrap();
        let expect = payload.clone();
        sim.spawn("r", move |ctx| {
            let got = f.read_at(ctx, 0, expect.len() as u64).unwrap();
            assert_eq!(got, expect);
            // Unaligned slice in the middle.
            let mid = f.read_at(ctx, 12_345, 4_321).unwrap();
            assert_eq!(&mid[..], &payload[12_345..12_345 + 4_321]);
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn multiple_appends_accumulate() {
        let fs = Fs::format(device());
        fs.create("log").unwrap();
        fs.append_untimed("log", b"hello ").unwrap();
        fs.append_untimed("log", b"world").unwrap();
        let sim = Simulation::new(0);
        let f = fs.open("log", Mode::ReadOnly).unwrap();
        sim.spawn("r", move |ctx| {
            assert_eq!(f.read_at(ctx, 0, 11).unwrap(), b"hello world");
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn timed_append_via_handle() {
        let fs = Fs::format(device());
        let f = fs.create("w").unwrap();
        let sim = Simulation::new(0);
        let f2 = f.clone();
        sim.spawn("w", move |ctx| {
            f2.append(ctx, b"abc").unwrap();
            f2.append(ctx, b"def").unwrap();
            assert_eq!(f2.read_at(ctx, 0, 6).unwrap(), b"abcdef");
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn read_only_handle_rejects_writes() {
        let fs = Fs::format(device());
        fs.create("x").unwrap();
        let ro = fs.open("x", Mode::ReadOnly).unwrap();
        let sim = Simulation::new(0);
        sim.spawn("w", move |ctx| {
            assert!(matches!(ro.append(ctx, b"no"), Err(FsError::ReadOnly(_))));
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn out_of_bounds_read_rejected() {
        let fs = Fs::format(device());
        fs.create("s").unwrap();
        fs.append_untimed("s", b"1234").unwrap();
        let f = fs.open("s", Mode::ReadOnly).unwrap();
        assert!(matches!(
            f.lpns_for_range(0, 5),
            Err(FsError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn mount_replays_metadata() {
        let dev = device();
        {
            let fs = Fs::format(Arc::clone(&dev));
            fs.create("persisted").unwrap();
            fs.append_untimed("persisted", b"still here after remount")
                .unwrap();
        }
        let fs2 = Fs::mount(dev).unwrap();
        assert!(fs2.exists("persisted"));
        let sim = Simulation::new(0);
        let f = fs2.open("persisted", Mode::ReadOnly).unwrap();
        sim.spawn("r", move |ctx| {
            assert_eq!(f.read_at(ctx, 0, 24).unwrap(), b"still here after remount");
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn mount_unformatted_device_fails() {
        assert!(matches!(Fs::mount(device()), Err(FsError::Corrupt(_))));
    }

    #[test]
    fn scan_finds_matching_pages() {
        let fs = Fs::format(device());
        fs.create("corpus").unwrap();
        let ps = fs.device().config().page_size;
        let mut data = vec![b'.'; ps * 3];
        data[ps + 10..ps + 16].copy_from_slice(b"needle");
        fs.append_untimed("corpus", &data).unwrap();
        let sim = Simulation::new(0);
        let f = fs.open("corpus", Mode::ReadOnly).unwrap();
        sim.spawn("s", move |ctx| {
            let pat = PatternSet::from_strs(&["needle"]).unwrap();
            let hits = f.scan(ctx, &pat, 8, 4).unwrap();
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].0, 1); // second page of the file
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn remove_frees_space() {
        let fs = Fs::format(device());
        let before = fs.free_pages();
        fs.create("big").unwrap();
        fs.append_untimed("big", &vec![0u8; 1 << 20]).unwrap();
        assert!(fs.free_pages() < before);
        fs.remove("big").unwrap();
        assert_eq!(fs.free_pages(), before);
    }

    #[test]
    fn write_at_overwrites_and_extends() {
        let fs = Fs::format(device());
        fs.create("w").unwrap();
        let ps = fs.device().config().page_size as u64;
        fs.append_untimed("w", &vec![b'a'; 3 * ps as usize]).unwrap();
        let sim = Simulation::new(0);
        let f = fs.open("w", Mode::ReadWrite).unwrap();
        sim.spawn("w", move |ctx| {
            // Unaligned overwrite spanning two pages.
            f.write_at(ctx, ps - 5, &[b'x'; 10]).unwrap();
            let got = f.read_at(ctx, ps - 6, 12).unwrap();
            assert_eq!(&got, b"axxxxxxxxxxa");
            // Extend past the end; the gap reads back as zeros.
            f.write_at(ctx, 4 * ps + 7, b"tail").unwrap();
            assert_eq!(f.len().unwrap(), 4 * ps + 11);
            let gap = f.read_at(ctx, 3 * ps, ps + 11).unwrap();
            assert!(gap[..ps as usize + 7].iter().all(|&b| b == 0));
            assert_eq!(&gap[ps as usize + 7..], b"tail");
            // Idempotent redo: same write twice, same bytes.
            f.write_at(ctx, ps - 5, &[b'x'; 10]).unwrap();
            assert_eq!(f.read_at(ctx, ps - 6, 12).unwrap(), b"axxxxxxxxxxa");
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn sync_checkpoints_the_device_journal() {
        let fs = Fs::format(device());
        let mut f = fs.create("s").unwrap();
        let sim = Simulation::new(0);
        let dev = Arc::clone(fs.device());
        sim.spawn("w", move |ctx| {
            f.write_async(&vec![9u8; 100_000]).unwrap();
            let (_, before_ckpts, _) = dev.journal_stats();
            f.sync(ctx).unwrap();
            assert_eq!(f.buffered(), 0);
            let (_, after_ckpts, _) = dev.journal_stats();
            assert!(after_ckpts > before_ckpts, "sync must checkpoint");
            assert_eq!(f.read_at(ctx, 0, 100_000).unwrap(), vec![9u8; 100_000]);
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn flush_survives_remount() {
        let dev = device();
        let fs = Fs::format(Arc::clone(&dev));
        let mut f = fs.create("d").unwrap();
        let payload: Vec<u8> = (0..80_000u32).map(|i| (i % 249) as u8).collect();
        let sim = Simulation::new(0);
        let p2 = payload.clone();
        sim.spawn("w", move |ctx| {
            f.write_async(&p2).unwrap();
            f.sync(ctx).unwrap();
        });
        sim.run().assert_quiescent();
        // sync persisted metadata, so a fresh mount sees the file.
        let fs2 = Fs::mount(dev).unwrap();
        let f2 = fs2.open("d", Mode::ReadOnly).unwrap();
        let sim2 = Simulation::new(0);
        sim2.spawn("r", move |ctx| {
            assert_eq!(f2.read_at(ctx, 0, 80_000).unwrap(), payload);
        });
        sim2.run().assert_quiescent();
    }

    #[test]
    fn async_read_equals_sync_read() {
        let fs = Fs::format(device());
        fs.create("a").unwrap();
        let payload: Vec<u8> = (0..500_000u32).map(|i| (i * 7 % 253) as u8).collect();
        fs.append_untimed("a", &payload).unwrap();
        let sim = Simulation::new(0);
        let f = fs.open("a", Mode::ReadOnly).unwrap();
        sim.spawn("r", move |ctx| {
            let s = f.read_at(ctx, 1000, 400_000).unwrap();
            let a = f.read_at_async(ctx, 1000, 400_000, 8, 16).unwrap();
            assert_eq!(s, a);
        });
        sim.run().assert_quiescent();
    }
}

#[cfg(test)]
mod trim_tests {
    use super::*;
    use biscuit_ssd::SsdConfig;

    #[test]
    fn remove_trims_device_pages() {
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 64 << 20,
            ..SsdConfig::paper_default()
        }));
        let fs = Fs::format(Arc::clone(&dev));
        fs.create("victim").unwrap();
        fs.append_untimed("victim", &vec![7u8; 1 << 20]).unwrap();
        let f = fs.open("victim", Mode::ReadOnly).unwrap();
        let lpns = f.lpns_for_range(0, 1 << 20).unwrap();
        fs.remove("victim").unwrap();
        // The freed pages read back as zero: the FTL unmapped them.
        for lpn in lpns {
            let page = dev.peek_page(lpn).unwrap();
            assert!(page.iter().all(|&b| b == 0), "lpn {lpn} not trimmed");
        }
    }
}
