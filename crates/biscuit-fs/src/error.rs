//! Filesystem error types.

use biscuit_ssd::DeviceError;

/// Errors surfaced by filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No file with the given path exists.
    NotFound(String),
    /// A file with the given path already exists.
    AlreadyExists(String),
    /// The volume has no free extent large enough.
    NoSpace {
        /// Pages requested.
        requested_pages: u64,
        /// Largest free extent available.
        largest_free: u64,
    },
    /// A write was attempted through a read-only handle.
    ReadOnly(String),
    /// A read or write fell outside the file.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Current file size.
        size: u64,
    },
    /// On-device metadata failed to parse at mount time.
    Corrupt(String),
    /// The underlying device rejected an operation.
    Device(DeviceError),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "file not found: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file already exists: {p}"),
            FsError::NoSpace {
                requested_pages,
                largest_free,
            } => write!(
                f,
                "no space: requested {requested_pages} pages, largest free extent {largest_free}"
            ),
            FsError::ReadOnly(p) => write!(f, "file handle is read-only: {p}"),
            FsError::OutOfBounds { offset, len, size } => write!(
                f,
                "range [{offset}, {offset}+{len}) out of bounds for file of {size} bytes"
            ),
            FsError::Corrupt(msg) => write!(f, "corrupt filesystem metadata: {msg}"),
            FsError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for FsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FsError::Device(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DeviceError> for FsError {
    fn from(e: DeviceError) -> Self {
        FsError::Device(e)
    }
}

/// Result alias for filesystem operations.
pub type FsResult<T> = Result<T, FsError>;
