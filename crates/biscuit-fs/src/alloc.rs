//! Extent allocator for the on-device volume.
//!
//! Free space is a sorted list of `(start, len)` page extents. Allocation is
//! first-fit; frees coalesce with neighbours. Extents keep file data mostly
//! contiguous in the logical space, which lets scans hand the device long
//! striped page runs — the access pattern that saturates the internal
//! bandwidth in Fig. 7.

/// A contiguous run of logical pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Extent {
    /// First logical page.
    pub start: u64,
    /// Number of pages.
    pub pages: u64,
}

impl Extent {
    /// One-past-the-end logical page.
    pub fn end(&self) -> u64 {
        self.start + self.pages
    }
}

/// First-fit extent allocator over a logical page range.
#[derive(Debug, Clone)]
pub struct ExtentAllocator {
    free: Vec<Extent>, // sorted by start, non-overlapping, coalesced
}

impl ExtentAllocator {
    /// Creates an allocator managing pages `[start, start + pages)`.
    pub fn new(start: u64, pages: u64) -> Self {
        let free = if pages == 0 {
            Vec::new()
        } else {
            vec![Extent { start, pages }]
        };
        ExtentAllocator { free }
    }

    /// Rebuilds an allocator from a full range minus already-used extents
    /// (used at mount time).
    pub fn from_used(start: u64, pages: u64, used: &[Extent]) -> Self {
        let mut alloc = ExtentAllocator::new(start, pages);
        let mut used = used.to_vec();
        used.sort_by_key(|e| e.start);
        for e in used {
            alloc.reserve(e);
        }
        alloc
    }

    /// Removes a specific extent from the free list (mount-time replay).
    ///
    /// # Panics
    ///
    /// Panics if the extent is not entirely free (metadata corruption).
    fn reserve(&mut self, want: Extent) {
        let idx = self
            .free
            .iter()
            .position(|f| f.start <= want.start && want.end() <= f.end())
            .unwrap_or_else(|| panic!("extent {want:?} is not free; corrupt metadata"));
        let f = self.free.remove(idx);
        let before = Extent {
            start: f.start,
            pages: want.start - f.start,
        };
        let after = Extent {
            start: want.end(),
            pages: f.end() - want.end(),
        };
        let mut insert_at = idx;
        if before.pages > 0 {
            self.free.insert(insert_at, before);
            insert_at += 1;
        }
        if after.pages > 0 {
            self.free.insert(insert_at, after);
        }
    }

    /// Allocates `pages` pages, first-fit. Returns `None` when no single
    /// free extent is large enough.
    pub fn allocate(&mut self, pages: u64) -> Option<Extent> {
        if pages == 0 {
            return Some(Extent { start: 0, pages: 0 });
        }
        let idx = self.free.iter().position(|f| f.pages >= pages)?;
        let f = &mut self.free[idx];
        let out = Extent {
            start: f.start,
            pages,
        };
        f.start += pages;
        f.pages -= pages;
        if f.pages == 0 {
            self.free.remove(idx);
        }
        Some(out)
    }

    /// Allocates up to `pages` pages, possibly less (for chunked growth).
    /// Returns `None` only when nothing is free.
    pub fn allocate_up_to(&mut self, pages: u64) -> Option<Extent> {
        if pages == 0 {
            return Some(Extent { start: 0, pages: 0 });
        }
        // Prefer a full fit; otherwise take the largest free extent.
        if let Some(e) = self.allocate(pages) {
            return Some(e);
        }
        let idx = self
            .free
            .iter()
            .enumerate()
            .max_by_key(|(_, f)| f.pages)
            .map(|(i, _)| i)?;
        let f = self.free.remove(idx);
        Some(f)
    }

    /// Returns an extent to the free pool, coalescing with neighbours.
    ///
    /// # Panics
    ///
    /// Panics if the extent overlaps the free pool (double free).
    pub fn free(&mut self, e: Extent) {
        if e.pages == 0 {
            return;
        }
        let pos = self.free.partition_point(|f| f.start < e.start);
        if pos > 0 {
            assert!(
                self.free[pos - 1].end() <= e.start,
                "double free: {e:?} overlaps {:?}",
                self.free[pos - 1]
            );
        }
        if pos < self.free.len() {
            assert!(
                e.end() <= self.free[pos].start,
                "double free: {e:?} overlaps {:?}",
                self.free[pos]
            );
        }
        self.free.insert(pos, e);
        // Coalesce around pos.
        if pos + 1 < self.free.len() && self.free[pos].end() == self.free[pos + 1].start {
            self.free[pos].pages += self.free[pos + 1].pages;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].end() == self.free[pos].start {
            self.free[pos - 1].pages += self.free[pos].pages;
            self.free.remove(pos);
        }
    }

    /// Total free pages.
    pub fn free_pages(&self) -> u64 {
        self.free.iter().map(|f| f.pages).sum()
    }

    /// Size of the largest free extent.
    pub fn largest_free(&self) -> u64 {
        self.free.iter().map(|f| f.pages).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_first_fit() {
        let mut a = ExtentAllocator::new(10, 100);
        let e = a.allocate(30).unwrap();
        assert_eq!(
            e,
            Extent {
                start: 10,
                pages: 30
            }
        );
        let f = a.allocate(70).unwrap();
        assert_eq!(
            f,
            Extent {
                start: 40,
                pages: 70
            }
        );
        assert!(a.allocate(1).is_none());
    }

    #[test]
    fn free_coalesces_both_sides() {
        let mut a = ExtentAllocator::new(0, 100);
        let e1 = a.allocate(30).unwrap();
        let e2 = a.allocate(30).unwrap();
        let e3 = a.allocate(40).unwrap();
        a.free(e1);
        a.free(e3);
        a.free(e2); // middle: should merge into one 100-page extent
        assert_eq!(a.free_pages(), 100);
        assert_eq!(a.largest_free(), 100);
        assert_eq!(
            a.allocate(100).unwrap(),
            Extent {
                start: 0,
                pages: 100
            }
        );
    }

    #[test]
    fn allocate_up_to_takes_largest_partial() {
        let mut a = ExtentAllocator::new(0, 50);
        let _hold = a.allocate(20).unwrap();
        let got = a.allocate_up_to(100).unwrap();
        assert_eq!(got.pages, 30);
        assert_eq!(a.free_pages(), 0);
    }

    #[test]
    fn from_used_replays_mount_state() {
        let used = vec![
            Extent {
                start: 5,
                pages: 10,
            },
            Extent {
                start: 20,
                pages: 5,
            },
        ];
        let a = ExtentAllocator::from_used(0, 30, &used);
        assert_eq!(a.free_pages(), 15);
        // Free runs: [0,5), [15,20), [25,30)
        assert_eq!(a.largest_free(), 5);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = ExtentAllocator::new(0, 10);
        let e = a.allocate(5).unwrap();
        a.free(e);
        a.free(e);
    }

    #[test]
    fn zero_page_volume() {
        let mut a = ExtentAllocator::new(0, 0);
        assert!(a.allocate(1).is_none());
        assert_eq!(a.free_pages(), 0);
    }
}
