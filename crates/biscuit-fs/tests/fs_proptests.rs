//! Property tests: filesystem round-trips and allocator invariants under
//! arbitrary operation schedules.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;

use biscuit_fs::{Extent, ExtentAllocator, Fs, Mode};
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

fn device() -> Arc<SsdDevice> {
    Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 32 << 20,
        ..SsdConfig::paper_default()
    }))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of appends to multiple files reads back intact, both
    /// before and after a remount.
    #[test]
    fn appends_round_trip_across_remount(
        ops in proptest::collection::vec((0usize..3, 1usize..5000), 1..20)
    ) {
        let dev = device();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        {
            let fs = Fs::format(Arc::clone(&dev));
            for (i, &(file_idx, len)) in ops.iter().enumerate() {
                let name = format!("file{file_idx}");
                if !fs.exists(&name) {
                    fs.create(&name).unwrap();
                }
                let chunk: Vec<u8> = (0..len).map(|j| ((i * 37 + j) % 251) as u8).collect();
                fs.append_untimed(&name, &chunk).unwrap();
                model.entry(name).or_default().extend_from_slice(&chunk);
            }
        }
        let fs = Fs::mount(dev).unwrap();
        let sim = Simulation::new(0);
        let model2 = model.clone();
        let fs2 = fs.clone();
        sim.spawn("verify", move |ctx| {
            for (name, expect) in &model2 {
                let f = fs2.open(name, Mode::ReadOnly).unwrap();
                assert_eq!(f.len().unwrap(), expect.len() as u64);
                let got = f.read_at(ctx, 0, expect.len() as u64).unwrap();
                assert_eq!(&got, expect, "file {name} corrupted");
            }
        });
        sim.run().assert_quiescent();
    }

    /// Arbitrary offset/length slices read back exactly what a byte-array
    /// model says they should.
    #[test]
    fn random_slices_match_model(
        total in 1usize..200_000,
        reads in proptest::collection::vec((any::<u32>(), any::<u16>()), 1..16)
    ) {
        let dev = device();
        let fs = Fs::format(dev);
        fs.create("blob").unwrap();
        let data: Vec<u8> = (0..total).map(|i| (i % 249) as u8).collect();
        fs.append_untimed("blob", &data).unwrap();
        let f = fs.open("blob", Mode::ReadOnly).unwrap();
        let sim = Simulation::new(0);
        sim.spawn("r", move |ctx| {
            for &(off_seed, len_seed) in &reads {
                let offset = off_seed as u64 % total as u64;
                let len = (len_seed as u64).min(total as u64 - offset);
                let got = f.read_at(ctx, offset, len).unwrap();
                assert_eq!(
                    &got[..],
                    &data[offset as usize..(offset + len) as usize]
                );
            }
        });
        sim.run().assert_quiescent();
    }

    /// The allocator never hands out overlapping extents and never loses
    /// pages across arbitrary alloc/free interleavings.
    #[test]
    fn allocator_conserves_pages(
        ops in proptest::collection::vec(prop_oneof![
            (1u64..64).prop_map(Some),  // allocate n pages
            Just(None),                 // free the oldest held extent
        ], 1..200)
    ) {
        let total = 1000u64;
        let mut alloc = ExtentAllocator::new(0, total);
        let mut held: Vec<Extent> = Vec::new();
        for op in ops {
            match op {
                Some(n) => {
                    if let Some(e) = alloc.allocate(n) {
                        // No overlap with anything currently held.
                        for h in &held {
                            prop_assert!(
                                e.end() <= h.start || h.end() <= e.start,
                                "{e:?} overlaps {h:?}"
                            );
                        }
                        held.push(e);
                    }
                }
                None => {
                    if !held.is_empty() {
                        alloc.free(held.remove(0));
                    }
                }
            }
            let held_pages: u64 = held.iter().map(|e| e.pages).sum();
            prop_assert_eq!(alloc.free_pages() + held_pages, total);
        }
    }
}

#[test]
fn write_async_flush_round_trip() {
    use biscuit_sim::Simulation;
    let dev = device();
    let fs = Fs::format(dev);
    let mut f = fs.create("buffered").unwrap();
    let sim = Simulation::new(0);
    sim.spawn("w", move |ctx| {
        // Buffered writes cost no time until the flush.
        let t0 = ctx.now();
        f.write_async(b"hello ").unwrap();
        f.write_async(b"buffered ").unwrap();
        f.write_async(b"world").unwrap();
        assert_eq!(ctx.now(), t0, "write_async is free until flush");
        assert_eq!(f.buffered(), 20);
        f.flush(ctx).unwrap();
        assert!(ctx.now() > t0, "flush charges program time");
        assert_eq!(f.buffered(), 0);
        assert_eq!(f.read_at(ctx, 0, 20).unwrap(), b"hello buffered world");
        // Second flush with nothing buffered is a no-op.
        let t1 = ctx.now();
        f.flush(ctx).unwrap();
        assert_eq!(ctx.now(), t1);
        // Read-only handles reject buffered writes.
        let mut ro = f.read_only();
        assert!(ro.write_async(b"no").is_err());
    });
    sim.run().assert_quiescent();
}
