//! Timed write-path tests: program timing, GC stalls charged to the
//! triggering writer, and read-after-timed-write consistency.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_sim::time::SimDuration;
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

fn tiny_device() -> Arc<SsdDevice> {
    // Tight geometry: physical space barely exceeds logical, so sustained
    // overwrites must trigger garbage collection.
    Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 16 << 20,
        channels: 2,
        ways: 2,
        pages_per_block: 32,
        ..SsdConfig::paper_default()
    }))
}

#[test]
fn single_write_costs_program_time() {
    let dev = tiny_device();
    let t_prog = dev.config().t_program;
    let sim = Simulation::new(0);
    let d = Arc::clone(&dev);
    let elapsed: Arc<Mutex<SimDuration>> = Arc::new(Mutex::new(SimDuration::ZERO));
    let e = Arc::clone(&elapsed);
    sim.spawn("w", move |ctx| {
        let t0 = ctx.now();
        d.write_page(ctx, 0, b"payload").unwrap();
        *e.lock() = ctx.now() - t0;
    });
    sim.run().assert_quiescent();
    let took = *elapsed.lock();
    assert!(
        took >= t_prog,
        "write took {took}, must include tPROG {t_prog}"
    );
    // Not absurdly more either (overhead + transfer on top of tPROG).
    assert!(took < t_prog * 2, "write took {took}");
}

#[test]
fn timed_writes_read_back() {
    let dev = tiny_device();
    let sim = Simulation::new(0);
    let d = Arc::clone(&dev);
    sim.spawn("rw", move |ctx| {
        for i in 0..32u64 {
            d.write_page(ctx, i, format!("page-{i}").as_bytes())
                .unwrap();
        }
        let pages = d.read_pages(ctx, &(0..32).collect::<Vec<_>>()).unwrap();
        for (i, page) in pages.iter().enumerate() {
            let expect = format!("page-{i}");
            assert_eq!(&page[..expect.len()], expect.as_bytes());
        }
    });
    sim.run().assert_quiescent();
}

#[test]
fn sustained_overwrites_trigger_gc_and_charge_the_writer() {
    let dev = tiny_device();
    let logical_pages = dev.config().logical_pages();
    let sim = Simulation::new(0);
    let d = Arc::clone(&dev);
    let write_times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let wt = Arc::clone(&write_times);
    sim.spawn("w", move |ctx| {
        // Fill the logical space repeatedly to force collection.
        for round in 0..6u64 {
            for lpn in 0..logical_pages {
                let t0 = ctx.now();
                d.write_page(ctx, lpn, &[round as u8; 64]).unwrap();
                wt.lock().push((ctx.now() - t0).as_micros());
            }
        }
    });
    sim.run().assert_quiescent();
    let (gc_runs, relocated) = dev.gc_stats();
    assert!(gc_runs > 0, "GC must have run");
    assert!(relocated > 0, "GC must have relocated valid pages");
    // Some writes stalled behind GC (erase takes ~4ms): spot the outliers.
    let times = write_times.lock();
    let max = *times.iter().max().unwrap();
    let min = *times.iter().min().unwrap();
    assert!(
        max > min * 3,
        "GC-stalled writes should be visible: min {min}us max {max}us"
    );
}

#[test]
fn async_writes_pipeline_faster_than_sync() {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let pages: Vec<(u64, Vec<u8>)> = (0..64u64).map(|i| (i, vec![i as u8; 512])).collect();
    let sim = Simulation::new(0);
    let d = Arc::clone(&dev);
    let times: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let t = Arc::clone(&times);
    sim.spawn("w", move |ctx| {
        // Sync: one program at a time.
        let t0 = ctx.now();
        for (lpn, data) in &pages {
            d.write_page(ctx, *lpn + 1000, data).unwrap();
        }
        let sync_us = (ctx.now() - t0).as_micros();
        // Async: queue depth 16 across the dies.
        let t1 = ctx.now();
        d.write_pages_async(ctx, &pages, 16).unwrap();
        let async_us = (ctx.now() - t1).as_micros();
        t.lock().extend([sync_us, async_us]);
        // Data landed correctly.
        for (lpn, data) in &pages {
            let page = d.peek_page(*lpn).unwrap();
            assert_eq!(&page[..data.len()], &data[..]);
        }
    });
    sim.run().assert_quiescent();
    let times = times.lock();
    assert!(
        times[1] * 4 < times[0],
        "async {}us should be well under sync {}us",
        times[1],
        times[0]
    );
}
