//! Property tests for FTL correctness under arbitrary write/trim schedules.

use std::collections::HashMap;

use proptest::prelude::*;

use biscuit_sim::fault::FaultPlan;
use biscuit_ssd::ftl::Ftl;
use biscuit_ssd::nand::{NandArray, PageData, Ppa};

const PAGE: usize = 32;

#[derive(Debug, Clone)]
enum Op {
    Write { lpn: u64, fill: u8 },
    Trim { lpn: u64 },
}

fn op_strategy(logical_pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..logical_pages, any::<u8>()).prop_map(|(lpn, fill)| Op::Write { lpn, fill }),
        1 => (0..logical_pages).prop_map(|lpn| Op::Trim { lpn }),
    ]
}

fn page(fill: u8) -> PageData {
    PageData::Bytes(biscuit_proto::Buf::from_vec(vec![fill; PAGE]))
}

fn read_fill(nand: &NandArray, ftl: &Ftl, lpn: u64) -> Option<u8> {
    let ppa = ftl.lookup(lpn).unwrap()?;
    nand.read(ppa).unwrap().map(|d| d.materialize(PAGE)[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After any schedule of writes and trims (tight enough to force GC),
    /// every logical page reads back its most recent write.
    #[test]
    fn read_after_write_consistency(
        ops in proptest::collection::vec(op_strategy(40), 1..600)
    ) {
        // 2x2 dies x 4 blocks x 4 pages = 64 physical pages for 40 logical.
        let mut nand = NandArray::new(2, 2, 4, 4, PAGE);
        let mut ftl = Ftl::new(2, 2, 4, 4, 40);
        let mut model: HashMap<u64, Option<u8>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Write { lpn, fill } => {
                    ftl.write(&mut nand, lpn, page(fill), &FaultPlan::none()).unwrap();
                    model.insert(lpn, Some(fill));
                }
                Op::Trim { lpn } => {
                    ftl.trim(lpn).unwrap();
                    model.insert(lpn, None);
                }
            }
        }
        for lpn in 0..40u64 {
            let expect = model.get(&lpn).copied().unwrap_or(None);
            prop_assert_eq!(read_fill(&nand, &ftl, lpn), expect, "lpn {}", lpn);
        }
    }

    /// No two logical pages ever map to the same physical page.
    #[test]
    fn no_double_mapping(
        ops in proptest::collection::vec(op_strategy(40), 1..400)
    ) {
        let mut nand = NandArray::new(2, 2, 4, 4, PAGE);
        let mut ftl = Ftl::new(2, 2, 4, 4, 40);
        for op in &ops {
            if let Op::Write { lpn, fill } = *op {
                ftl.write(&mut nand, lpn, page(fill), &FaultPlan::none()).unwrap();
            }
            let mut seen: HashMap<Ppa, u64> = HashMap::new();
            for lpn in 0..40u64 {
                if let Some(ppa) = ftl.lookup(lpn).unwrap() {
                    if let Some(prev) = seen.insert(ppa, lpn) {
                        prop_assert!(false, "lpns {prev} and {lpn} share {ppa:?}");
                    }
                }
            }
        }
    }

    /// Sustained full-capacity overwrites always succeed (GC makes forward
    /// progress given over-provisioning) and GC actually runs.
    #[test]
    fn gc_makes_forward_progress(rounds in 4u32..16) {
        let mut nand = NandArray::new(2, 2, 4, 4, PAGE);
        let mut ftl = Ftl::new(2, 2, 4, 4, 48); // 48 logical of 64 physical
        for round in 0..rounds {
            for lpn in 0..48u64 {
                ftl.write(&mut nand, lpn, page(round as u8), &FaultPlan::none())
                    .unwrap();
            }
        }
        prop_assert!(ftl.gc_runs() > 0);
        for lpn in 0..48u64 {
            prop_assert_eq!(read_fill(&nand, &ftl, lpn), Some((rounds - 1) as u8));
        }
    }
}
