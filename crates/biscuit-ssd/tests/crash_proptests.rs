//! Property tests for crash-consistent recovery: arbitrary write/trim
//! schedules (tight enough to force GC) interrupted by seeded power
//! losses at arbitrary instants, mid-write and mid-GC alike.
//!
//! The recovery contract under test (see `docs/WRITEPATH.md`):
//!
//! 1. **No acked write is ever lost.** Every write that returned `Ok`
//!    before the crash reads back its exact bytes after journal replay.
//! 2. **No trimmed page is ever resurrected.** Every trim that returned
//!    `Ok` stays unmapped after replay, even when GC relocated the
//!    page's old physical copy before the crash.
//! 3. **Recovery is deterministic.** The same seed produces a
//!    byte-identical physical state export (full L2P map, free lists,
//!    frontier, sequence) across repeat crash/recover runs.
//! 4. **A crashed run converges to its uncrashed twin.** Replaying the
//!    journal and re-issuing the interrupted suffix of the schedule
//!    yields a logical state export byte-identical to the same schedule
//!    run without any crash.

use std::collections::HashMap;

use proptest::prelude::*;

use biscuit_sim::fault::{FaultConfig, FaultPlan, PowerLossPhase};
use biscuit_ssd::ftl::{Ftl, FtlError};
use biscuit_ssd::nand::{NandArray, PageData};

const PAGE: usize = 32;
const LOGICAL: u64 = 40;

#[derive(Debug, Clone)]
enum Op {
    Write { lpn: u64, fill: u8 },
    Trim { lpn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0..LOGICAL, any::<u8>()).prop_map(|(lpn, fill)| Op::Write { lpn, fill }),
        1 => (0..LOGICAL).prop_map(|lpn| Op::Trim { lpn }),
    ]
}

fn page(fill: u8) -> PageData {
    PageData::Bytes(biscuit_proto::Buf::from_vec(vec![fill; PAGE]))
}

/// 2x2 dies x 4 blocks x 4 pages = 64 physical pages for 40 logical:
/// every non-trivial schedule runs GC, so crashes land mid-GC too.
fn setup() -> (NandArray, Ftl) {
    let nand = NandArray::new(2, 2, 4, 4, PAGE);
    let ftl = Ftl::new(2, 2, 4, 4, LOGICAL);
    (nand, ftl)
}

fn read_fill(nand: &NandArray, ftl: &Ftl, lpn: u64) -> Option<u8> {
    let ppa = ftl.lookup(lpn).unwrap()?;
    nand.read(ppa).unwrap().map(|d| d.materialize(PAGE)[0])
}

fn plan_for(seed: u64, window: u64, phase: PowerLossPhase) -> FaultPlan {
    FaultPlan::seeded(
        seed,
        FaultConfig {
            power_losses: 1,
            power_loss_phase: phase,
            power_loss_window: window,
            ..FaultConfig::default()
        },
    )
}

/// Applies `ops` until the device dies (or the schedule ends), mirroring
/// acked effects into `model`. Returns the index of the op that observed
/// the crash, if any.
fn run_until_crash(
    nand: &mut NandArray,
    ftl: &mut Ftl,
    ops: &[Op],
    plan: &FaultPlan,
    model: &mut HashMap<u64, Option<u8>>,
) -> Option<usize> {
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Write { lpn, fill } => match ftl.write(nand, lpn, page(fill), plan) {
                Ok(_) => {
                    model.insert(lpn, Some(fill));
                }
                Err(FtlError::PowerLoss { .. }) => return Some(i),
                Err(e) => panic!("unexpected error {e}"),
            },
            Op::Trim { lpn } => match ftl.trim(lpn) {
                Ok(()) => {
                    model.insert(lpn, None);
                }
                Err(FtlError::PowerLoss { .. }) => return Some(i),
                Err(e) => panic!("unexpected error {e}"),
            },
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Properties 1 + 2: after a seeded crash at an arbitrary instant of
    /// an arbitrary schedule, journal replay restores exactly the acked
    /// state — no acked write lost, no trimmed page resurrected, no
    /// unacked write surfacing as anything but the previous acked value.
    #[test]
    fn recovery_restores_exactly_the_acked_state(
        ops in proptest::collection::vec(op_strategy(), 20..400),
        seed in any::<u64>(),
        window in 1u64..96,
        mid_gc in any::<bool>(),
    ) {
        let phase = if mid_gc { PowerLossPhase::MidGc } else { PowerLossPhase::MidWrite };
        let plan = plan_for(seed, window, phase);
        let (mut nand, mut ftl) = setup();
        let mut model: HashMap<u64, Option<u8>> = HashMap::new();
        let crashed = run_until_crash(&mut nand, &mut ftl, &ops, &plan, &mut model);
        if crashed.is_some() {
            prop_assert!(ftl.is_dead());
            prop_assert_eq!(
                ftl.trim(0),
                Err(FtlError::PowerLoss { during_gc: mid_gc }),
                "dead device must reject every op"
            );
            ftl.recover(&mut nand);
        }
        for lpn in 0..LOGICAL {
            let expect = model.get(&lpn).copied().unwrap_or(None);
            prop_assert_eq!(
                read_fill(&nand, &ftl, lpn), expect,
                "lpn {} diverged from acked state after recovery", lpn
            );
        }
        // The recovered device keeps taking writes (free space was
        // rebuilt correctly; no NAND double-program panic).
        for lpn in 0..LOGICAL {
            ftl.write(&mut nand, lpn, page(0xEE), &FaultPlan::none()).unwrap();
        }
    }

    /// Property 3: the same seed crashes at the same instant and
    /// recovers to a byte-identical physical export — map, free lists,
    /// frontiers, bad set, and journal sequence all included.
    #[test]
    fn same_seed_crash_recovery_is_byte_identical(
        ops in proptest::collection::vec(op_strategy(), 20..300),
        seed in any::<u64>(),
        window in 1u64..64,
        mid_gc in any::<bool>(),
    ) {
        let phase = if mid_gc { PowerLossPhase::MidGc } else { PowerLossPhase::MidWrite };
        let run = || {
            let plan = plan_for(seed, window, phase);
            let (mut nand, mut ftl) = setup();
            let mut model = HashMap::new();
            let crashed = run_until_crash(&mut nand, &mut ftl, &ops, &plan, &mut model);
            if crashed.is_some() {
                ftl.recover(&mut nand);
            }
            (crashed, ftl.export_physical(), ftl.export_state(&nand))
        };
        let (c1, phys1, logical1) = run();
        let (c2, phys2, logical2) = run();
        prop_assert_eq!(c1, c2, "same seed must crash at the same op");
        prop_assert_eq!(phys1, phys2, "physical export diverged across same-seed runs");
        prop_assert_eq!(logical1, logical2);
    }

    /// Property 4: recover + redo the interrupted suffix converges to
    /// the uncrashed run — logical exports are byte-identical.
    #[test]
    fn crashed_run_converges_to_uncrashed_twin(
        ops in proptest::collection::vec(op_strategy(), 20..300),
        seed in any::<u64>(),
        window in 1u64..64,
        mid_gc in any::<bool>(),
    ) {
        let phase = if mid_gc { PowerLossPhase::MidGc } else { PowerLossPhase::MidWrite };
        // Uncrashed twin.
        let (mut nand_u, mut ftl_u) = setup();
        let mut model_u = HashMap::new();
        prop_assert_eq!(
            run_until_crash(&mut nand_u, &mut ftl_u, &ops, &FaultPlan::none(), &mut model_u),
            None
        );
        // Crashed run: crash, replay the journal, redo from the failed op.
        let plan = plan_for(seed, window, phase);
        let (mut nand_c, mut ftl_c) = setup();
        let mut model_c = HashMap::new();
        if let Some(at) = run_until_crash(&mut nand_c, &mut ftl_c, &ops, &plan, &mut model_c) {
            ftl_c.recover(&mut nand_c);
            prop_assert_eq!(
                run_until_crash(
                    &mut nand_c, &mut ftl_c, &ops[at..], &FaultPlan::none(), &mut model_c
                ),
                None
            );
        }
        prop_assert_eq!(
            ftl_c.export_state(&nand_c),
            ftl_u.export_state(&nand_u),
            "crash + recover + redo must converge to the uncrashed state"
        );
    }
}
