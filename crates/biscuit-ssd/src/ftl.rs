//! Page-mapped flash translation layer with garbage collection, wear
//! leveling, and crash-consistent journaling.
//!
//! The paper's SSDlets never see logical block addresses — the firmware's
//! FTL handles media management underneath Biscuit (§VI "all I/O requests
//! issued by Biscuit go through the same I/O paths with normal I/O
//! requests"). This module is that firmware layer: logical pages map to
//! physical pages out-of-place, writes stripe across dies for parallelism,
//! and a greedy cost-benefit collector reclaims blocks when free space runs
//! low, picking the least-worn free block as the next write frontier.
//!
//! ## Crash consistency
//!
//! Every mapping change is journaled **write-ahead** in the [`Journal`]
//! (append the redo record, then program the page), so a power loss — a
//! seeded [`FaultPlan::power_loss`] draw consulted at every persistence
//! operation — can always be recovered by [`Ftl::recover`]: restore the
//! last checkpoint, replay the redo tail, roll back torn programs, and
//! rebuild free space from a physical census of the NAND array. The
//! contract (proved by `tests/crash_proptests.rs`) is that recovery never
//! loses an acknowledged write, never resurrects a trimmed page, and is
//! deterministic: same-seed crash/recover runs export byte-identical
//! state. See `docs/WRITEPATH.md` for the annotated crash walkthrough.
//!
//! [`FaultPlan::power_loss`]: biscuit_sim::fault::FaultPlan::power_loss

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use biscuit_sim::fault::FaultPlan;

use crate::journal::{fnv64, Journal, JournalRecord, RecoveryReport};
use crate::nand::{NandArray, PageData, Ppa};

/// Die coordinate (channel, way).
type Die = (u32, u32);

/// Default checkpoint interval in journal records (overridable via
/// [`Ftl::set_checkpoint_interval`] / `SsdConfig::journal_checkpoint_interval`).
pub const DEFAULT_CHECKPOINT_INTERVAL: usize = 8192;

/// Errors surfaced by FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page is beyond the exported capacity.
    LpnOutOfRange {
        /// Requested logical page.
        lpn: u64,
        /// Exported logical pages.
        capacity: u64,
    },
    /// No physical space could be reclaimed: over-provisioning is
    /// exhausted (too many blocks retired as bad, or GC found no victim
    /// with reclaimable space). The device stays readable; the write is
    /// rejected.
    CapacityExhausted,
    /// The device lost power and halted. Every operation fails with this
    /// until [`Ftl::recover`] replays the journal. `during_gc` reports
    /// the phase of the original crash (a GC relocation/erase vs a host
    /// write).
    PowerLoss {
        /// True when the crash interrupted garbage collection.
        during_gc: bool,
    },
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "logical page {lpn} out of range (capacity {capacity})")
            }
            FtlError::CapacityExhausted => {
                f.write_str("over-provisioning exhausted: no reclaimable physical space")
            }
            FtlError::PowerLoss { during_gc: true } => {
                f.write_str("device lost power mid-GC; journal replay required")
            }
            FtlError::PowerLoss { during_gc: false } => {
                f.write_str("device lost power mid-write; journal replay required")
            }
        }
    }
}

impl std::error::Error for FtlError {}

/// What a write did beyond programming one page (for timing/energy charges
/// and metrics deltas at the device layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Pages relocated by garbage collection triggered by this write.
    pub relocated: u64,
    /// Blocks erased by garbage collection triggered by this write.
    pub erased_blocks: u64,
    /// GC invocations triggered by this write (0 or more).
    pub gc_runs: u64,
    /// Journal records appended by this write (user write + relocations).
    pub journal_records: u64,
    /// Journal checkpoints installed by this write.
    pub checkpoints: u64,
}

#[derive(Debug)]
struct DieState {
    free_blocks: Vec<u32>,
    frontier: Option<(u32, u32)>, // (block, next page index)
}

/// The translation layer. Geometry mirrors the paired [`NandArray`].
#[derive(Debug)]
pub struct Ftl {
    channels: u32,
    ways: u32,
    blocks_per_die_cache: u32,
    pages_per_block: u32,
    logical_pages: u64,
    map: Vec<Option<Ppa>>,
    reverse: HashMap<Ppa, u64>,
    valid_count: HashMap<(u32, u32, u32), u32>,
    dies: HashMap<Die, DieState>,
    next_die: usize,
    gc_reserve_blocks: usize,
    gc_runs: u64,
    relocated_total: u64,
    bad: HashSet<(u32, u32, u32)>,
    remapped_total: u64,
    journal: Journal,
    /// `Some(during_gc)` once a power loss has halted the device; every
    /// operation fails with [`FtlError::PowerLoss`] until recovery.
    dead: Option<bool>,
    user_writes: u64,
    total_programs: u64,
}

impl Ftl {
    /// Creates an FTL for a device with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the physical space does not exceed the logical space (no
    /// over-provisioning would leave GC nothing to reclaim into).
    pub fn new(
        channels: u32,
        ways: u32,
        blocks_per_die: u32,
        pages_per_block: u32,
        logical_pages: u64,
    ) -> Self {
        let physical_pages = u64::from(channels)
            * u64::from(ways)
            * u64::from(blocks_per_die)
            * u64::from(pages_per_block);
        assert!(
            physical_pages > logical_pages,
            "physical pages ({physical_pages}) must exceed logical pages ({logical_pages})"
        );
        let mut dies = HashMap::new();
        for c in 0..channels {
            for w in 0..ways {
                dies.insert(
                    (c, w),
                    DieState {
                        // Highest block index last so pop() hands out block 0 first.
                        free_blocks: (0..blocks_per_die).rev().collect(),
                        frontier: None,
                    },
                );
            }
        }
        Ftl {
            channels,
            ways,
            blocks_per_die_cache: blocks_per_die,
            pages_per_block,
            logical_pages,
            map: vec![None; logical_pages as usize],
            reverse: HashMap::new(),
            valid_count: HashMap::new(),
            dies,
            next_die: 0,
            gc_reserve_blocks: 1,
            gc_runs: 0,
            relocated_total: 0,
            bad: HashSet::new(),
            remapped_total: 0,
            journal: Journal::new(logical_pages, DEFAULT_CHECKPOINT_INTERVAL),
            dead: None,
            user_writes: 0,
            total_programs: 0,
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Looks up the physical location of `lpn`, if mapped.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for addresses beyond capacity,
    /// or [`FtlError::PowerLoss`] on a crashed, unrecovered device.
    pub fn lookup(&self, lpn: u64) -> Result<Option<Ppa>, FtlError> {
        self.check_alive()?;
        self.check(lpn)?;
        Ok(self.map[lpn as usize])
    }

    fn check(&self, lpn: u64) -> Result<(), FtlError> {
        if lpn < self.logical_pages {
            Ok(())
        } else {
            Err(FtlError::LpnOutOfRange {
                lpn,
                capacity: self.logical_pages,
            })
        }
    }

    fn check_alive(&self) -> Result<(), FtlError> {
        match self.dead {
            Some(during_gc) => Err(FtlError::PowerLoss { during_gc }),
            None => Ok(()),
        }
    }

    /// Writes `data` to logical page `lpn`, out-of-place. Returns GC and
    /// journal work performed so the device layer can charge its time and
    /// update metrics. `plan` is consulted at every persistence operation
    /// (this write, each GC relocation, each GC erase) for a seeded
    /// power-loss instant; on a crash the device halts and only
    /// [`Ftl::recover`] revives it.
    ///
    /// Write-ahead ordering: the journal record is appended before the
    /// NAND program, and the volatile map is updated only after the
    /// program completes. An `Ok` return therefore means the write is
    /// durable — journal replay will always reproduce it.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`], [`FtlError::CapacityExhausted`],
    /// or [`FtlError::PowerLoss`].
    pub fn write(
        &mut self,
        nand: &mut NandArray,
        lpn: u64,
        data: PageData,
        plan: &FaultPlan,
    ) -> Result<WriteOutcome, FtlError> {
        self.check_alive()?;
        self.check(lpn)?;
        let mut outcome = WriteOutcome::default();
        let records_before = self.journal.appended_total();
        let checkpoints_before = self.journal.checkpoints_total();
        let ppa = self.allocate(nand, plan, &mut outcome)?;
        // Capture the rollback target *after* allocation: GC inside
        // `allocate` may itself relocate this lpn, and the journal must
        // point at wherever the previous version currently lives.
        let old = self.map[lpn as usize];
        if let Some(point) = plan.power_loss(false) {
            // Crash at this write. A torn crash lands between the journal
            // append and the NAND program: the record exists but the page
            // does not, which recovery detects and rolls back to `old`.
            if point.torn {
                self.journal.append(JournalRecord::Write {
                    lpn,
                    new: ppa,
                    old,
                });
            }
            self.dead = Some(false);
            return Err(FtlError::PowerLoss { during_gc: false });
        }
        self.journal.append(JournalRecord::Write {
            lpn,
            new: ppa,
            old,
        });
        nand.program(ppa, data).expect("allocator produced bad ppa");
        self.invalidate(lpn);
        self.map[lpn as usize] = Some(ppa);
        self.reverse.insert(ppa, lpn);
        *self
            .valid_count
            .entry((ppa.channel, ppa.way, ppa.block))
            .or_insert(0) += 1;
        self.user_writes += 1;
        self.total_programs += 1;
        self.maybe_checkpoint();
        outcome.journal_records = self.journal.appended_total() - records_before;
        outcome.checkpoints = self.journal.checkpoints_total() - checkpoints_before;
        Ok(outcome)
    }

    /// Unmaps a logical page (TRIM). The trim is journaled before the map
    /// is touched, so an acknowledged trim is never resurrected by replay.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for addresses beyond capacity,
    /// or [`FtlError::PowerLoss`] on a crashed, unrecovered device.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        self.check_alive()?;
        self.check(lpn)?;
        if self.map[lpn as usize].is_some() {
            self.journal.append(JournalRecord::Trim { lpn });
            self.invalidate(lpn);
            self.maybe_checkpoint();
        }
        Ok(())
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some(old) = self.map[lpn as usize].take() {
            self.reverse.remove(&old);
            let key = (old.channel, old.way, old.block);
            let count = self
                .valid_count
                .get_mut(&key)
                .expect("mapped page with no valid count");
            *count -= 1;
            if *count == 0 {
                self.valid_count.remove(&key);
            }
        }
    }

    fn maybe_checkpoint(&mut self) {
        if self.journal.checkpoint_due() {
            let mut bad: Vec<(u32, u32, u32)> = self.bad.iter().copied().collect();
            bad.sort_unstable();
            self.journal.install_checkpoint(self.map.clone(), bad);
        }
    }

    /// Picks the next physical page on the striped write frontier, running
    /// GC first if free blocks run low.
    fn allocate(
        &mut self,
        nand: &mut NandArray,
        plan: &FaultPlan,
        outcome: &mut WriteOutcome,
    ) -> Result<Ppa, FtlError> {
        // Proactive, best-effort collection to keep a small free reserve.
        if self.total_free_blocks() < self.gc_watermark() {
            self.collect_garbage(nand, plan, outcome)?;
        }
        if let Some(ppa) = self.try_allocate(nand) {
            return Ok(ppa);
        }
        // Out of frontier space everywhere: collection is now mandatory.
        self.collect_garbage(nand, plan, outcome)?;
        self.try_allocate(nand).ok_or(FtlError::CapacityExhausted)
    }

    /// Free-block level below which collection kicks in.
    fn gc_watermark(&self) -> usize {
        self.gc_reserve_blocks.max(2).max(self.dies.len() / 16)
    }

    /// One round-robin allocation attempt across all dies, no GC.
    fn try_allocate(&mut self, nand: &NandArray) -> Option<Ppa> {
        let die_count = self.dies.len();
        for _ in 0..die_count {
            let die = self.die_at(self.next_die);
            self.next_die = (self.next_die + 1) % die_count;
            if let Some(ppa) = self.allocate_on(nand, die) {
                return Some(ppa);
            }
        }
        None
    }

    fn die_at(&self, idx: usize) -> Die {
        let c = (idx as u32) % self.channels;
        let w = (idx as u32) / self.channels % self.ways;
        (c, w)
    }

    fn allocate_on(&mut self, nand: &NandArray, die: Die) -> Option<Ppa> {
        let pages_per_block = self.pages_per_block;
        // Pick the least-worn free block when opening a new frontier
        // (dynamic wear leveling).
        let least_worn = |state: &mut DieState| -> Option<u32> {
            if state.free_blocks.is_empty() {
                return None;
            }
            let (pos, _) = state
                .free_blocks
                .iter()
                .enumerate()
                .min_by_key(|&(_, &b)| (nand.erase_count(die.0, die.1, b), b))?;
            Some(state.free_blocks.swap_remove(pos))
        };
        let state = self.dies.get_mut(&die).expect("die exists");
        if state.frontier.is_none() {
            state.frontier = least_worn(state).map(|b| (b, 0));
        }
        let (block, page) = state.frontier?;
        let ppa = Ppa {
            channel: die.0,
            way: die.1,
            block,
            page,
        };
        state.frontier = if page + 1 < pages_per_block {
            Some((block, page + 1))
        } else {
            None
        };
        Some(ppa)
    }

    fn total_free_blocks(&self) -> usize {
        self.dies.values().map(|d| d.free_blocks.len()).sum()
    }

    /// Greedy garbage collection: repeatedly pick the block with the fewest
    /// valid pages, relocate them, and erase — until the free reserve is
    /// restored or no reclaimable victim remains. Running out of victims
    /// is not an error here (the allocator reports exhaustion if it still
    /// cannot place the write); a power loss is.
    fn collect_garbage(
        &mut self,
        nand: &mut NandArray,
        plan: &FaultPlan,
        outcome: &mut WriteOutcome,
    ) -> Result<(), FtlError> {
        self.gc_runs += 1;
        outcome.gc_runs += 1;
        let target = self.gc_watermark() + 1;
        while self.total_free_blocks() < target {
            let Some(victim) = self.pick_victim() else {
                return Ok(());
            };
            match self.reclaim_block(nand, victim, plan, outcome) {
                Ok(()) => {}
                Err(e @ FtlError::PowerLoss { .. }) => return Err(e),
                Err(_) => return Ok(()),
            }
        }
        Ok(())
    }

    /// The non-frontier block with the fewest valid pages. Fully-invalid
    /// blocks (zero valid pages) are ideal victims but absent from
    /// `valid_count`, so scan those first.
    fn pick_victim(&self) -> Option<(u32, u32, u32)> {
        let frontier: Vec<(u32, u32, u32)> = self
            .dies
            .iter()
            .filter_map(|(&(c, w), st)| st.frontier.map(|(b, _)| (c, w, b)))
            .collect();
        // Candidate blocks = programmed blocks not free and not frontier.
        let mut best: Option<((u32, u32, u32), u32)> = None;
        for c in 0..self.channels {
            for w in 0..self.ways {
                let die = self.dies.get(&(c, w)).expect("die exists");
                let free = &die.free_blocks;
                for b in 0..nand_blocks(self) {
                    if free.contains(&b)
                        || frontier.contains(&(c, w, b))
                        || self.bad.contains(&(c, w, b))
                    {
                        continue;
                    }
                    let valid = self.valid_count.get(&(c, w, b)).copied().unwrap_or(0);
                    // Skip blocks that were never written (not free-listed
                    // but also not programmed cannot happen; free list covers
                    // unwritten blocks).
                    match best {
                        Some((_, v)) if v <= valid => {}
                        _ => best = Some(((c, w, b), valid)),
                    }
                }
            }
        }
        // A victim with every page still valid reclaims nothing.
        best.filter(|&(_, v)| v < self.pages_per_block)
            .map(|(k, _)| k)
    }

    fn reclaim_block(
        &mut self,
        nand: &mut NandArray,
        (c, w, b): (u32, u32, u32),
        plan: &FaultPlan,
        outcome: &mut WriteOutcome,
    ) -> Result<(), FtlError> {
        // Relocate every valid page. Each relocation is journaled
        // write-ahead exactly like a host write; the victim is erased only
        // after every relocation out of it is durable, so a crash at any
        // instant leaves each logical page with exactly one live copy.
        for p in 0..self.pages_per_block {
            let ppa = Ppa {
                channel: c,
                way: w,
                block: b,
                page: p,
            };
            let Some(&lpn) = self.reverse.get(&ppa) else {
                continue;
            };
            let data = nand
                .read(ppa)
                .expect("geometry checked")
                .expect("valid page has data")
                .clone();
            // Allocate a fresh location; allocation during GC must not
            // recurse into GC (we are already freeing space). Aborting here
            // is safe — the victim is only erased after every valid page is
            // relocated, so data is never lost.
            let new_ppa = self.try_allocate(nand).ok_or(FtlError::CapacityExhausted)?;
            if let Some(point) = plan.power_loss(true) {
                if point.torn {
                    self.journal.append(JournalRecord::Write {
                        lpn,
                        new: new_ppa,
                        old: Some(ppa),
                    });
                }
                self.dead = Some(true);
                return Err(FtlError::PowerLoss { during_gc: true });
            }
            self.journal.append(JournalRecord::Write {
                lpn,
                new: new_ppa,
                old: Some(ppa),
            });
            nand.program(new_ppa, data)
                .expect("allocator produced bad ppa");
            self.reverse.remove(&ppa);
            self.reverse.insert(new_ppa, lpn);
            self.map[lpn as usize] = Some(new_ppa);
            let old_key = (c, w, b);
            if let Some(count) = self.valid_count.get_mut(&old_key) {
                *count -= 1;
                if *count == 0 {
                    self.valid_count.remove(&old_key);
                }
            }
            *self
                .valid_count
                .entry((new_ppa.channel, new_ppa.way, new_ppa.block))
                .or_insert(0) += 1;
            outcome.relocated += 1;
            self.relocated_total += 1;
            self.total_programs += 1;
        }
        // The erase itself is a crash-eligible persistence operation. No
        // journal record is needed: free space is rebuilt from a physical
        // census at recovery, so a block that died un-erased simply stays
        // closed until GC picks it again (it now has zero valid pages).
        if plan.power_loss(true).is_some() {
            self.dead = Some(true);
            return Err(FtlError::PowerLoss { during_gc: true });
        }
        nand.erase_block(c, w, b).expect("geometry checked");
        self.valid_count.remove(&(c, w, b));
        self.dies
            .get_mut(&(c, w))
            .expect("die exists")
            .free_blocks
            .push(b);
        outcome.erased_blocks += 1;
        Ok(())
    }

    /// Retires a failing block: every valid page is remapped to a fresh
    /// location and the block is withdrawn from circulation for good — it
    /// leaves the free list, loses frontier status, and is skipped by both
    /// the allocator and the garbage collector from then on. This is the
    /// firmware's uncorrectable-ECC escalation path: the data survives
    /// (rescued via the read-retry copy) while the worn-out block does not.
    /// The retirement and every remap are journaled, so recovery preserves
    /// both the bad-block set and the rescued data.
    ///
    /// Returns the number of pages remapped. Retiring an already-bad block
    /// is a no-op returning zero.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::CapacityExhausted`] if no fresh location exists
    /// for a valid page; pages remapped before the failure keep their new
    /// locations, so no data is ever lost. Returns [`FtlError::PowerLoss`]
    /// on a crashed, unrecovered device.
    pub fn retire_block(
        &mut self,
        nand: &mut NandArray,
        (c, w, b): (u32, u32, u32),
    ) -> Result<u64, FtlError> {
        self.check_alive()?;
        if self.bad.contains(&(c, w, b)) {
            return Ok(0);
        }
        // Withdraw the block first so relocation can never allocate into it.
        {
            let state = self.dies.get_mut(&(c, w)).expect("die exists");
            state.free_blocks.retain(|&blk| blk != b);
            if matches!(state.frontier, Some((blk, _)) if blk == b) {
                state.frontier = None;
            }
        }
        self.journal.append(JournalRecord::Retire {
            channel: c,
            way: w,
            block: b,
        });
        self.bad.insert((c, w, b));
        let mut moved = 0u64;
        for p in 0..self.pages_per_block {
            let ppa = Ppa {
                channel: c,
                way: w,
                block: b,
                page: p,
            };
            let Some(&lpn) = self.reverse.get(&ppa) else {
                continue;
            };
            let data = nand
                .read(ppa)
                .expect("geometry checked")
                .expect("valid page has data")
                .clone();
            let new_ppa = self.try_allocate(nand).ok_or(FtlError::CapacityExhausted)?;
            self.journal.append(JournalRecord::Write {
                lpn,
                new: new_ppa,
                old: Some(ppa),
            });
            nand.program(new_ppa, data)
                .expect("allocator produced bad ppa");
            self.reverse.remove(&ppa);
            self.reverse.insert(new_ppa, lpn);
            self.map[lpn as usize] = Some(new_ppa);
            if let Some(count) = self.valid_count.get_mut(&(c, w, b)) {
                *count -= 1;
                if *count == 0 {
                    self.valid_count.remove(&(c, w, b));
                }
            }
            *self
                .valid_count
                .entry((new_ppa.channel, new_ppa.way, new_ppa.block))
                .or_insert(0) += 1;
            moved += 1;
            self.remapped_total += 1;
            self.total_programs += 1;
        }
        self.valid_count.remove(&(c, w, b));
        self.maybe_checkpoint();
        Ok(moved)
    }

    /// Rebuilds the FTL after a power loss by replaying the journal, the
    /// only state besides the NAND array that survives a crash. Volatile
    /// state — the L2P map, reverse map, valid counts, free lists, open
    /// frontiers, and metering counters — is discarded and reconstructed:
    ///
    /// 1. Restore the last checkpoint's map and bad-block set.
    /// 2. Replay the redo tail in order. A `Write` whose target page was
    ///    never programmed is a torn write (power failed between the
    ///    journal append and the program) and rolls back to its `old`
    ///    mapping, which is still on flash because blocks are only erased
    ///    after every relocation out of them is durable.
    /// 3. Rebuild free lists from a physical census: a non-bad block with
    ///    zero programmed pages is free; every other block stays closed
    ///    (GC reclaims blocks holding only stale/torn pages later). All
    ///    write frontiers are closed, so a partially-programmed block is
    ///    never programmed again before an erase.
    /// 4. Install a fresh checkpoint, so a repeated crash replays from
    ///    the recovered state — replay is idempotent.
    ///
    /// Safe to call on a live (non-crashed) FTL too, modeling a clean
    /// remount; acknowledged state is preserved either way.
    pub fn recover(&mut self, nand: &mut NandArray) -> RecoveryReport {
        let journal = std::mem::take(&mut self.journal);
        let interval = journal.interval();
        let checkpoint = journal.checkpoint();
        let mut report = RecoveryReport {
            checkpoint_seq: checkpoint.seq,
            ..RecoveryReport::default()
        };

        // 1. + 2. — checkpoint restore, then ordered redo replay.
        let mut map = checkpoint.map.clone();
        map.resize(self.logical_pages as usize, None);
        let mut bad: HashSet<(u32, u32, u32)> = checkpoint.bad.iter().copied().collect();
        for rec in journal.records() {
            report.replayed_records += 1;
            match *rec {
                JournalRecord::Write { lpn, new, old } => {
                    let programmed = matches!(nand.read(new), Ok(Some(_)));
                    if programmed {
                        map[lpn as usize] = Some(new);
                    } else {
                        // Torn program (or a completed program whose block
                        // a later journaled relocation already erased — in
                        // which case that later record re-points the lpn).
                        map[lpn as usize] = old;
                        report.torn_reverted += 1;
                    }
                }
                JournalRecord::Trim { lpn } => {
                    map[lpn as usize] = None;
                }
                JournalRecord::Retire {
                    channel,
                    way,
                    block,
                } => {
                    bad.insert((channel, way, block));
                }
            }
        }

        // 3. — physical census: rebuild reverse/valid/free and frontiers.
        let mut reverse = HashMap::new();
        let mut valid_count: HashMap<(u32, u32, u32), u32> = HashMap::new();
        for (lpn, ppa) in map.iter().enumerate() {
            if let Some(ppa) = ppa {
                reverse.insert(*ppa, lpn as u64);
                *valid_count
                    .entry((ppa.channel, ppa.way, ppa.block))
                    .or_insert(0) += 1;
            }
        }
        let programmed = nand.programmed_blocks();
        let mut dies = HashMap::new();
        for c in 0..self.channels {
            for w in 0..self.ways {
                let free_blocks: Vec<u32> = (0..self.blocks_per_die_cache)
                    .rev()
                    .filter(|&b| !bad.contains(&(c, w, b)) && !programmed.contains(&(c, w, b)))
                    .collect();
                report.free_blocks += free_blocks.len() as u64;
                dies.insert((c, w), DieState {
                    free_blocks,
                    frontier: None,
                });
            }
        }
        report.dirty_blocks = programmed
            .iter()
            .filter(|blk| !bad.contains(blk))
            .count() as u64;

        // 3b. — reopen each die's write frontier. Programs within a block
        // are strictly sequential, so a partially-programmed block is a
        // contiguous prefix and the die's surviving frontier (at most one
        // such block) resumes at its first unprogrammed page. Leaving it
        // closed would strand the tail — and after a crash in a GC-tight
        // state (empty free list, no fully-invalid victim) that tail is
        // the only space relocation can write into, so closing it would
        // deadlock the collector with a spurious capacity exhaustion.
        for (&(c, w), state) in dies.iter_mut() {
            'scan: for b in 0..self.blocks_per_die_cache {
                if bad.contains(&(c, w, b)) || !programmed.contains(&(c, w, b)) {
                    continue;
                }
                for p in 0..self.pages_per_block {
                    let ppa = Ppa {
                        channel: c,
                        way: w,
                        block: b,
                        page: p,
                    };
                    if matches!(nand.read(ppa), Ok(None)) {
                        state.frontier = Some((b, p));
                        break 'scan;
                    }
                }
            }
        }

        let mut recovered_journal = Journal::new(self.logical_pages, interval);
        self.map = map;
        self.reverse = reverse;
        self.valid_count = valid_count;
        self.dies = dies;
        self.next_die = 0;
        self.gc_runs = 0;
        self.relocated_total = 0;
        self.bad = bad;
        self.remapped_total = 0;
        self.dead = None;
        self.user_writes = 0;
        self.total_programs = 0;

        // 4. — fresh checkpoint of the recovered state.
        let mut bad_sorted: Vec<(u32, u32, u32)> = self.bad.iter().copied().collect();
        bad_sorted.sort_unstable();
        recovered_journal.install_checkpoint(self.map.clone(), bad_sorted);
        self.journal = recovered_journal;
        report
    }

    /// Whether a block has been retired as bad.
    pub fn is_bad(&self, block: (u32, u32, u32)) -> bool {
        self.bad.contains(&block)
    }

    /// Number of blocks retired as bad so far.
    pub fn bad_blocks(&self) -> u64 {
        self.bad.len() as u64
    }

    /// Total pages remapped off retired blocks so far.
    pub fn remapped_total(&self) -> u64 {
        self.remapped_total
    }

    /// Number of GC invocations so far.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Total pages relocated by GC so far.
    pub fn relocated_total(&self) -> u64 {
        self.relocated_total
    }

    /// Host (user) page writes acknowledged so far.
    pub fn user_writes_total(&self) -> u64 {
        self.user_writes
    }

    /// Total NAND programs issued (user writes + GC relocations + bad-block
    /// remaps); `programs / user_writes` is the write amplification factor.
    pub fn programs_total(&self) -> u64 {
        self.total_programs
    }

    /// Write amplification in fixed-point milli-units (1000 = 1.0x).
    /// Reports 1000 before any user write.
    pub fn write_amp_milli(&self) -> u64 {
        if self.user_writes == 0 {
            1000
        } else {
            self.total_programs * 1000 / self.user_writes
        }
    }

    /// Free (erased, allocatable) blocks across all dies.
    pub fn free_blocks_total(&self) -> u64 {
        self.total_free_blocks() as u64
    }

    /// Whether a power loss has halted the device (recovery pending).
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }

    /// The journaled metadata region (checkpoint + redo tail).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Changes the journal checkpoint interval (records between
    /// checkpoints).
    pub fn set_checkpoint_interval(&mut self, interval: usize) {
        self.journal.set_interval(interval);
    }

    /// Forces a checkpoint of the current state — the host's sync/flush
    /// barrier — truncating the redo tail so later recovery replays only
    /// writes issued after this point.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::PowerLoss`] on a crashed, unrecovered device.
    pub fn checkpoint_now(&mut self) -> Result<(), FtlError> {
        self.check_alive()?;
        let mut bad: Vec<(u32, u32, u32)> = self.bad.iter().copied().collect();
        bad.sort_unstable();
        self.journal.install_checkpoint(self.map.clone(), bad);
        Ok(())
    }

    /// Deterministic **logical** state export: one line per mapped logical
    /// page with an FNV-1a fingerprint of its contents, independent of
    /// physical placement. Two devices holding the same logical data
    /// export identical bytes even if their FTLs placed pages differently
    /// — this is the "byte-identical exported state" a recovered crash run
    /// is held to versus its uncrashed twin.
    pub fn export_state(&self, nand: &NandArray) -> String {
        let page_size = nand.page_size();
        let mut out = String::new();
        let _ = writeln!(out, "logical_pages={}", self.logical_pages);
        let _ = writeln!(out, "bad_blocks={}", self.bad.len());
        for lpn in 0..self.logical_pages {
            if let Some(ppa) = self.map[lpn as usize] {
                let data = nand
                    .read(ppa)
                    .expect("mapped ppa in geometry")
                    .expect("mapped ppa programmed");
                let fp = fnv64(data.materialize(page_size).as_slice());
                let _ = writeln!(out, "{lpn}={fp:016x}");
            }
        }
        out
    }

    /// Deterministic **physical** state export: the full L2P map, free
    /// lists, and bad set. Two same-seed runs of the same operation
    /// sequence (including same-seed crashes and recoveries) must export
    /// identical bytes; used by the crash proptests.
    pub fn export_physical(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "seq={} dead={}",
            self.journal.seq(),
            self.dead.is_some()
        );
        for lpn in 0..self.logical_pages {
            if let Some(p) = self.map[lpn as usize] {
                let _ = writeln!(
                    out,
                    "{lpn}=({},{},{},{})",
                    p.channel, p.way, p.block, p.page
                );
            }
        }
        let mut dies: Vec<&Die> = self.dies.keys().collect();
        dies.sort();
        for die in dies {
            let st = &self.dies[die];
            let _ = writeln!(
                out,
                "die({},{}) free={:?} frontier={:?}",
                die.0, die.1, st.free_blocks, st.frontier
            );
        }
        let mut bad: Vec<(u32, u32, u32)> = self.bad.iter().copied().collect();
        bad.sort_unstable();
        let _ = writeln!(out, "bad={bad:?}");
        out
    }
}

fn nand_blocks(ftl: &Ftl) -> u32 {
    ftl.blocks_per_die_cache
}

impl Ftl {
    /// Erase blocks per die (geometry accessor).
    pub fn blocks_per_die(&self) -> u32 {
        self.blocks_per_die_cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_sim::fault::{FaultConfig, PowerLossPhase};

    fn page(fill: u8, size: usize) -> PageData {
        PageData::Bytes(biscuit_proto::Buf::from_vec(vec![fill; size]))
    }

    fn setup(blocks_per_die: u32, logical_pages: u64) -> (NandArray, Ftl) {
        let nand = NandArray::new(2, 2, blocks_per_die, 4, 32);
        let ftl = Ftl::new(2, 2, blocks_per_die, 4, logical_pages);
        (nand, ftl)
    }

    fn read_lpn(nand: &NandArray, ftl: &Ftl, lpn: u64) -> Option<Vec<u8>> {
        let ppa = ftl.lookup(lpn).unwrap()?;
        nand.read(ppa)
            .unwrap()
            .map(|d| d.materialize(32).as_ref().to_vec())
    }

    fn w(ftl: &mut Ftl, nand: &mut NandArray, lpn: u64, fill: u8) -> Result<WriteOutcome, FtlError> {
        ftl.write(nand, lpn, page(fill, 32), &FaultPlan::none())
    }

    #[test]
    fn write_then_read_back() {
        let (mut nand, mut ftl) = setup(8, 32);
        w(&mut ftl, &mut nand, 5, 0xAA).unwrap();
        assert_eq!(read_lpn(&nand, &ftl, 5).unwrap(), vec![0xAA; 32]);
        assert_eq!(read_lpn(&nand, &ftl, 6), None);
    }

    #[test]
    fn overwrite_goes_out_of_place() {
        let (mut nand, mut ftl) = setup(8, 32);
        w(&mut ftl, &mut nand, 0, 1).unwrap();
        let first = ftl.lookup(0).unwrap().unwrap();
        w(&mut ftl, &mut nand, 0, 2).unwrap();
        let second = ftl.lookup(0).unwrap().unwrap();
        assert_ne!(first, second);
        assert_eq!(read_lpn(&nand, &ftl, 0).unwrap(), vec![2; 32]);
    }

    #[test]
    fn writes_stripe_across_dies() {
        let (mut nand, mut ftl) = setup(8, 32);
        let mut dies_used = std::collections::HashSet::new();
        for lpn in 0..4 {
            w(&mut ftl, &mut nand, lpn, lpn as u8).unwrap();
            let ppa = ftl.lookup(lpn).unwrap().unwrap();
            dies_used.insert((ppa.channel, ppa.way));
        }
        assert_eq!(dies_used.len(), 4, "4 writes should hit 4 distinct dies");
    }

    #[test]
    fn gc_reclaims_and_preserves_data() {
        // Tiny device: 2x2 dies x 4 blocks x 4 pages = 64 physical pages,
        // 40 logical. Overwriting repeatedly must trigger GC.
        let (mut nand, mut ftl) = setup(4, 40);
        for round in 0..20u32 {
            for lpn in 0..40u64 {
                w(&mut ftl, &mut nand, lpn, (round as u8) ^ (lpn as u8)).unwrap();
            }
        }
        assert!(ftl.gc_runs() > 0, "expected GC under heavy overwrite");
        for lpn in 0..40u64 {
            assert_eq!(
                read_lpn(&nand, &ftl, lpn).unwrap(),
                vec![19u8 ^ (lpn as u8); 32],
                "lpn {lpn} corrupted after GC"
            );
        }
    }

    #[test]
    fn trim_unmaps() {
        let (mut nand, mut ftl) = setup(8, 32);
        w(&mut ftl, &mut nand, 3, 9).unwrap();
        ftl.trim(3).unwrap();
        assert_eq!(read_lpn(&nand, &ftl, 3), None);
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut nand, mut ftl) = setup(8, 32);
        assert!(matches!(
            w(&mut ftl, &mut nand, 32, 0),
            Err(FtlError::LpnOutOfRange { .. })
        ));
        assert!(ftl.lookup(99).is_err());
    }

    #[test]
    fn retire_remaps_valid_pages_and_preserves_data() {
        let (mut nand, mut ftl) = setup(8, 32);
        for lpn in 0..8u64 {
            w(&mut ftl, &mut nand, lpn, 0x10 + lpn as u8).unwrap();
        }
        // Retire the block holding lpn 0; its valid pages must move.
        let victim = ftl.lookup(0).unwrap().unwrap();
        let blk = (victim.channel, victim.way, victim.block);
        let moved = ftl.retire_block(&mut nand, blk).unwrap();
        assert!(moved > 0, "retired block held valid pages");
        assert!(ftl.is_bad(blk));
        assert_eq!(ftl.bad_blocks(), 1);
        assert_eq!(ftl.remapped_total(), moved);
        let relocated = ftl.lookup(0).unwrap().unwrap();
        assert_ne!(
            (relocated.channel, relocated.way, relocated.block),
            blk,
            "remapped page must leave the bad block"
        );
        for lpn in 0..8u64 {
            assert_eq!(
                read_lpn(&nand, &ftl, lpn).unwrap(),
                vec![0x10 + lpn as u8; 32],
                "lpn {lpn} corrupted by retirement"
            );
        }
        // Retiring again is a no-op.
        assert_eq!(ftl.retire_block(&mut nand, blk).unwrap(), 0);
        assert_eq!(ftl.bad_blocks(), 1);
    }

    #[test]
    fn retired_block_is_never_reused() {
        let (mut nand, mut ftl) = setup(4, 40);
        w(&mut ftl, &mut nand, 0, 1).unwrap();
        let victim = ftl.lookup(0).unwrap().unwrap();
        let blk = (victim.channel, victim.way, victim.block);
        ftl.retire_block(&mut nand, blk).unwrap();
        let erases_before = nand.erase_count(blk.0, blk.1, blk.2);
        // Heavy overwrite traffic forces GC; the bad block must stay out.
        for round in 0..20u32 {
            for lpn in 0..40u64 {
                w(&mut ftl, &mut nand, lpn, round as u8 ^ lpn as u8).unwrap();
            }
        }
        assert!(ftl.gc_runs() > 0, "expected GC under heavy overwrite");
        assert_eq!(
            nand.erase_count(blk.0, blk.1, blk.2),
            erases_before,
            "bad block must never be erased for reuse"
        );
        for lpn in 0..40u64 {
            let ppa = ftl.lookup(lpn).unwrap().unwrap();
            assert_ne!(
                (ppa.channel, ppa.way, ppa.block),
                blk,
                "lpn {lpn} allocated onto a retired block"
            );
        }
    }

    #[test]
    fn wear_spreads_over_blocks() {
        let (mut nand, mut ftl) = setup(4, 40);
        for round in 0..40u32 {
            for lpn in 0..40u64 {
                w(&mut ftl, &mut nand, lpn, round as u8).unwrap();
            }
        }
        // Every die should have erased more than one distinct block.
        let mut per_die_erased: HashMap<(u32, u32), u32> = HashMap::new();
        for c in 0..2 {
            for w in 0..2 {
                for b in 0..4 {
                    if nand.erase_count(c, w, b) > 0 {
                        *per_die_erased.entry((c, w)).or_insert(0) += 1;
                    }
                }
            }
        }
        assert!(
            per_die_erased.values().all(|&n| n >= 2),
            "wear concentrated: {per_die_erased:?}"
        );
    }

    #[test]
    fn wear_spread_stays_within_tolerance() {
        // Uniform overwrite traffic: dynamic wear leveling (least-worn
        // free block opens each frontier) must keep the max-min erase
        // spread small relative to the mean.
        let (mut nand, mut ftl) = setup(4, 40);
        for round in 0..100u32 {
            for lpn in 0..40u64 {
                w(&mut ftl, &mut nand, lpn, (round as u8).wrapping_mul(lpn as u8)).unwrap();
            }
        }
        let counts: Vec<u64> = (0..2)
            .flat_map(|c| (0..2).flat_map(move |w| (0..4).map(move |b| (c, w, b))))
            .map(|(c, w, b)| nand.erase_count(c, w, b))
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        let mean = counts.iter().sum::<u64>() / counts.len() as u64;
        assert!(mean > 5, "workload must actually wear the device");
        assert!(
            max - min <= mean,
            "wear spread too wide: max={max} min={min} mean={mean}"
        );
    }

    #[test]
    fn zipf_overwrite_write_amp_stays_bounded() {
        // Zipf-like skewed overwrites (most traffic on few hot pages).
        // Greedy fewest-valid victim selection must keep amplification
        // well under the pathological bound.
        let (mut nand, mut ftl) = setup(4, 40);
        let mut x = 0x9E37_79B9u64;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = (x >> 11) as f64 / (1u64 << 53) as f64;
            // Power-law skew toward low lpns.
            let lpn = ((u * u) * 40.0) as u64 % 40;
            w(&mut ftl, &mut nand, lpn, x as u8).unwrap();
        }
        let amp = ftl.write_amp_milli();
        assert!(
            ftl.gc_runs() > 0 && amp > 1000,
            "workload must trigger GC (amp={amp})"
        );
        assert!(amp < 3000, "write amp {amp} milli exceeds 3.0x bound");
        assert_eq!(
            ftl.programs_total() * 1000 / ftl.user_writes_total(),
            amp,
            "write amp derives from program/user counters"
        );
    }

    #[test]
    fn over_provisioning_exhaustion_is_a_typed_error() {
        // Retire every block in the device; the next write must surface
        // CapacityExhausted instead of panicking.
        let (mut nand, mut ftl) = setup(4, 40);
        w(&mut ftl, &mut nand, 0, 1).unwrap();
        let mut err = None;
        'outer: for c in 0..2 {
            for way in 0..2 {
                for b in 0..4 {
                    match ftl.retire_block(&mut nand, (c, way, b)) {
                        Ok(_) => {}
                        Err(e) => {
                            err = Some(e);
                            break 'outer;
                        }
                    }
                }
            }
        }
        let exhausted = match err {
            Some(e) => e,
            // All retires succeeded (data fit in shrinking space): the
            // next write over the dead device must fail typed.
            None => w(&mut ftl, &mut nand, 1, 2).unwrap_err(),
        };
        assert_eq!(exhausted, FtlError::CapacityExhausted);
        assert!(!exhausted.to_string().is_empty());
    }

    #[test]
    fn journal_checkpoints_roll_over() {
        let (mut nand, mut ftl) = setup(8, 32);
        ftl.set_checkpoint_interval(4);
        for i in 0..10u64 {
            w(&mut ftl, &mut nand, i % 8, i as u8).unwrap();
        }
        assert!(ftl.journal().checkpoints_total() >= 2);
        assert!(ftl.journal().records().len() < 4);
        assert_eq!(ftl.journal().appended_total(), 10);
    }

    #[test]
    fn recover_on_clean_device_preserves_state() {
        let (mut nand, mut ftl) = setup(4, 40);
        for round in 0..10u32 {
            for lpn in 0..40u64 {
                w(&mut ftl, &mut nand, lpn, round as u8 ^ lpn as u8).unwrap();
            }
        }
        ftl.trim(7).unwrap();
        let before = ftl.export_state(&nand);
        let report = ftl.recover(&mut nand);
        assert_eq!(ftl.export_state(&nand), before, "clean remount is lossless");
        assert!(report.free_blocks + report.dirty_blocks > 0);
        // Device keeps working after recovery.
        w(&mut ftl, &mut nand, 7, 0x55).unwrap();
        assert_eq!(read_lpn(&nand, &ftl, 7).unwrap(), vec![0x55; 32]);
    }

    #[test]
    fn power_loss_mid_write_halts_then_recovers() {
        let cfg = FaultConfig {
            power_losses: 1,
            power_loss_phase: PowerLossPhase::MidWrite,
            power_loss_window: 16,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::seeded(0xB15C, cfg);
        let (mut nand, mut ftl) = setup(8, 32);
        let mut acked: HashMap<u64, u8> = HashMap::new();
        let mut crashed = false;
        for i in 0..64u64 {
            let lpn = i % 16;
            let fill = i as u8;
            match ftl.write(&mut nand, lpn, page(fill, 32), &plan) {
                Ok(_) => {
                    acked.insert(lpn, fill);
                }
                Err(FtlError::PowerLoss { during_gc }) => {
                    assert!(!during_gc);
                    crashed = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(crashed, "window 16 must crash within 64 writes");
        assert!(ftl.is_dead());
        assert_eq!(
            ftl.lookup(0),
            Err(FtlError::PowerLoss { during_gc: false }),
            "dead device rejects reads"
        );
        let report = ftl.recover(&mut nand);
        assert!(report.replayed_records >= acked.len() as u64);
        for (lpn, fill) in &acked {
            assert_eq!(
                read_lpn(&nand, &ftl, *lpn).unwrap(),
                vec![*fill; 32],
                "acked write to lpn {lpn} lost"
            );
        }
    }

    #[test]
    fn power_loss_mid_gc_recovers_all_acked_data() {
        let cfg = FaultConfig {
            power_losses: 1,
            power_loss_phase: PowerLossPhase::MidGc,
            power_loss_window: 4,
            ..FaultConfig::default()
        };
        let plan = FaultPlan::seeded(7, cfg);
        let (mut nand, mut ftl) = setup(4, 40);
        let mut acked: HashMap<u64, u8> = HashMap::new();
        let mut crashed = false;
        'outer: for round in 0..20u32 {
            for lpn in 0..40u64 {
                let fill = round as u8 ^ lpn as u8;
                match ftl.write(&mut nand, lpn, page(fill, 32), &plan) {
                    Ok(_) => {
                        acked.insert(lpn, fill);
                    }
                    Err(FtlError::PowerLoss { during_gc }) => {
                        assert!(during_gc);
                        crashed = true;
                        break 'outer;
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        assert!(crashed, "overwrite workload must crash in GC");
        ftl.recover(&mut nand);
        for (lpn, fill) in &acked {
            assert_eq!(
                read_lpn(&nand, &ftl, *lpn).unwrap(),
                vec![*fill; 32],
                "acked write to lpn {lpn} lost in GC crash"
            );
        }
        // And the device keeps taking writes without tripping the NAND
        // double-program panic.
        for lpn in 0..40u64 {
            w(&mut ftl, &mut nand, lpn, 0xEE).unwrap();
        }
    }
}
