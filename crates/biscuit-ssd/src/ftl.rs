//! Page-mapped flash translation layer with garbage collection and wear
//! leveling.
//!
//! The paper's SSDlets never see logical block addresses — the firmware's
//! FTL handles media management underneath Biscuit (§VI "all I/O requests
//! issued by Biscuit go through the same I/O paths with normal I/O
//! requests"). This module is that firmware layer: logical pages map to
//! physical pages out-of-place, writes stripe across dies for parallelism,
//! and a greedy cost-benefit collector reclaims blocks when free space runs
//! low, picking the least-worn free block as the next write frontier.

use std::collections::{HashMap, HashSet};

use crate::nand::{NandArray, PageData, Ppa};

/// Die coordinate (channel, way).
type Die = (u32, u32);

/// Errors surfaced by FTL operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page is beyond the exported capacity.
    LpnOutOfRange {
        /// Requested logical page.
        lpn: u64,
        /// Exported logical pages.
        capacity: u64,
    },
    /// No physical space could be reclaimed (would indicate a provisioning
    /// bug, since logical capacity is strictly below physical).
    CapacityExhausted,
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn, capacity } => {
                write!(f, "logical page {lpn} out of range (capacity {capacity})")
            }
            FtlError::CapacityExhausted => f.write_str("no reclaimable physical space"),
        }
    }
}

impl std::error::Error for FtlError {}

/// What a write did beyond programming one page (for timing/energy charges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Pages relocated by garbage collection triggered by this write.
    pub relocated: u64,
    /// Blocks erased by garbage collection triggered by this write.
    pub erased_blocks: u64,
}

#[derive(Debug)]
struct DieState {
    free_blocks: Vec<u32>,
    frontier: Option<(u32, u32)>, // (block, next page index)
}

/// The translation layer. Geometry mirrors the paired [`NandArray`].
#[derive(Debug)]
pub struct Ftl {
    channels: u32,
    ways: u32,
    blocks_per_die_cache: u32,
    pages_per_block: u32,
    logical_pages: u64,
    map: Vec<Option<Ppa>>,
    reverse: HashMap<Ppa, u64>,
    valid_count: HashMap<(u32, u32, u32), u32>,
    dies: HashMap<Die, DieState>,
    next_die: usize,
    gc_reserve_blocks: usize,
    gc_runs: u64,
    relocated_total: u64,
    bad: HashSet<(u32, u32, u32)>,
    remapped_total: u64,
}

impl Ftl {
    /// Creates an FTL for a device with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the physical space does not exceed the logical space (no
    /// over-provisioning would leave GC nothing to reclaim into).
    pub fn new(
        channels: u32,
        ways: u32,
        blocks_per_die: u32,
        pages_per_block: u32,
        logical_pages: u64,
    ) -> Self {
        let physical_pages = u64::from(channels)
            * u64::from(ways)
            * u64::from(blocks_per_die)
            * u64::from(pages_per_block);
        assert!(
            physical_pages > logical_pages,
            "physical pages ({physical_pages}) must exceed logical pages ({logical_pages})"
        );
        let mut dies = HashMap::new();
        for c in 0..channels {
            for w in 0..ways {
                dies.insert(
                    (c, w),
                    DieState {
                        // Highest block index last so pop() hands out block 0 first.
                        free_blocks: (0..blocks_per_die).rev().collect(),
                        frontier: None,
                    },
                );
            }
        }
        Ftl {
            channels,
            ways,
            blocks_per_die_cache: blocks_per_die,
            pages_per_block,
            logical_pages,
            map: vec![None; logical_pages as usize],
            reverse: HashMap::new(),
            valid_count: HashMap::new(),
            dies,
            next_die: 0,
            gc_reserve_blocks: 1,
            gc_runs: 0,
            relocated_total: 0,
            bad: HashSet::new(),
            remapped_total: 0,
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    /// Looks up the physical location of `lpn`, if mapped.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for addresses beyond capacity.
    pub fn lookup(&self, lpn: u64) -> Result<Option<Ppa>, FtlError> {
        self.check(lpn)?;
        Ok(self.map[lpn as usize])
    }

    fn check(&self, lpn: u64) -> Result<(), FtlError> {
        if lpn < self.logical_pages {
            Ok(())
        } else {
            Err(FtlError::LpnOutOfRange {
                lpn,
                capacity: self.logical_pages,
            })
        }
    }

    /// Writes `data` to logical page `lpn`, out-of-place. Returns GC work
    /// performed so the device layer can charge its time.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] or [`FtlError::CapacityExhausted`].
    pub fn write(
        &mut self,
        nand: &mut NandArray,
        lpn: u64,
        data: PageData,
    ) -> Result<WriteOutcome, FtlError> {
        self.check(lpn)?;
        let mut outcome = WriteOutcome::default();
        self.invalidate(lpn);
        let ppa = self.allocate(nand, &mut outcome)?;
        nand.program(ppa, data).expect("allocator produced bad ppa");
        self.map[lpn as usize] = Some(ppa);
        self.reverse.insert(ppa, lpn);
        *self
            .valid_count
            .entry((ppa.channel, ppa.way, ppa.block))
            .or_insert(0) += 1;
        Ok(outcome)
    }

    /// Unmaps a logical page (TRIM).
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::LpnOutOfRange`] for addresses beyond capacity.
    pub fn trim(&mut self, lpn: u64) -> Result<(), FtlError> {
        self.check(lpn)?;
        self.invalidate(lpn);
        Ok(())
    }

    fn invalidate(&mut self, lpn: u64) {
        if let Some(old) = self.map[lpn as usize].take() {
            self.reverse.remove(&old);
            let key = (old.channel, old.way, old.block);
            let count = self
                .valid_count
                .get_mut(&key)
                .expect("mapped page with no valid count");
            *count -= 1;
            if *count == 0 {
                self.valid_count.remove(&key);
            }
        }
    }

    /// Picks the next physical page on the striped write frontier, running
    /// GC first if free blocks run low.
    fn allocate(
        &mut self,
        nand: &mut NandArray,
        outcome: &mut WriteOutcome,
    ) -> Result<Ppa, FtlError> {
        // Proactive, best-effort collection to keep a small free reserve.
        if self.total_free_blocks() < self.gc_watermark() {
            self.collect_garbage(nand, outcome);
        }
        if let Some(ppa) = self.try_allocate(nand) {
            return Ok(ppa);
        }
        // Out of frontier space everywhere: collection is now mandatory.
        self.collect_garbage(nand, outcome);
        self.try_allocate(nand).ok_or(FtlError::CapacityExhausted)
    }

    /// Free-block level below which collection kicks in.
    fn gc_watermark(&self) -> usize {
        self.gc_reserve_blocks.max(2).max(self.dies.len() / 16)
    }

    /// One round-robin allocation attempt across all dies, no GC.
    fn try_allocate(&mut self, nand: &NandArray) -> Option<Ppa> {
        let die_count = self.dies.len();
        for _ in 0..die_count {
            let die = self.die_at(self.next_die);
            self.next_die = (self.next_die + 1) % die_count;
            if let Some(ppa) = self.allocate_on(nand, die) {
                return Some(ppa);
            }
        }
        None
    }

    fn die_at(&self, idx: usize) -> Die {
        let c = (idx as u32) % self.channels;
        let w = (idx as u32) / self.channels % self.ways;
        (c, w)
    }

    fn allocate_on(&mut self, nand: &NandArray, die: Die) -> Option<Ppa> {
        let pages_per_block = self.pages_per_block;
        // Pick the least-worn free block when opening a new frontier
        // (dynamic wear leveling).
        let least_worn = |state: &mut DieState| -> Option<u32> {
            if state.free_blocks.is_empty() {
                return None;
            }
            let (pos, _) = state
                .free_blocks
                .iter()
                .enumerate()
                .min_by_key(|&(_, &b)| nand.erase_count(die.0, die.1, b))?;
            Some(state.free_blocks.swap_remove(pos))
        };
        let state = self.dies.get_mut(&die).expect("die exists");
        if state.frontier.is_none() {
            state.frontier = least_worn(state).map(|b| (b, 0));
        }
        let (block, page) = state.frontier?;
        let ppa = Ppa {
            channel: die.0,
            way: die.1,
            block,
            page,
        };
        state.frontier = if page + 1 < pages_per_block {
            Some((block, page + 1))
        } else {
            None
        };
        Some(ppa)
    }

    fn total_free_blocks(&self) -> usize {
        self.dies.values().map(|d| d.free_blocks.len()).sum()
    }

    /// Greedy garbage collection: repeatedly pick the block with the fewest
    /// valid pages, relocate them, and erase — until the free reserve is
    /// restored or no reclaimable victim remains. Best-effort: running out
    /// of victims is not an error here (the allocator reports exhaustion if
    /// it still cannot place the write).
    fn collect_garbage(&mut self, nand: &mut NandArray, outcome: &mut WriteOutcome) {
        self.gc_runs += 1;
        let target = self.gc_watermark() + 1;
        while self.total_free_blocks() < target {
            let Some(victim) = self.pick_victim() else {
                return;
            };
            if self.reclaim_block(nand, victim, outcome).is_err() {
                return;
            }
        }
    }

    /// The non-frontier block with the fewest valid pages. Fully-invalid
    /// blocks (zero valid pages) are ideal victims but absent from
    /// `valid_count`, so scan those first.
    fn pick_victim(&self) -> Option<(u32, u32, u32)> {
        let frontier: Vec<(u32, u32, u32)> = self
            .dies
            .iter()
            .filter_map(|(&(c, w), st)| st.frontier.map(|(b, _)| (c, w, b)))
            .collect();
        // Candidate blocks = programmed blocks not free and not frontier.
        let mut best: Option<((u32, u32, u32), u32)> = None;
        for c in 0..self.channels {
            for w in 0..self.ways {
                let die = self.dies.get(&(c, w)).expect("die exists");
                let free = &die.free_blocks;
                for b in 0..nand_blocks(self) {
                    if free.contains(&b)
                        || frontier.contains(&(c, w, b))
                        || self.bad.contains(&(c, w, b))
                    {
                        continue;
                    }
                    let valid = self.valid_count.get(&(c, w, b)).copied().unwrap_or(0);
                    // Skip blocks that were never written (not free-listed
                    // but also not programmed cannot happen; free list covers
                    // unwritten blocks).
                    match best {
                        Some((_, v)) if v <= valid => {}
                        _ => best = Some(((c, w, b), valid)),
                    }
                }
            }
        }
        // A victim with every page still valid reclaims nothing.
        best.filter(|&(_, v)| v < self.pages_per_block)
            .map(|(k, _)| k)
    }

    fn reclaim_block(
        &mut self,
        nand: &mut NandArray,
        (c, w, b): (u32, u32, u32),
        outcome: &mut WriteOutcome,
    ) -> Result<(), FtlError> {
        // Relocate every valid page.
        for p in 0..self.pages_per_block {
            let ppa = Ppa {
                channel: c,
                way: w,
                block: b,
                page: p,
            };
            let Some(&lpn) = self.reverse.get(&ppa) else {
                continue;
            };
            let data = nand
                .read(ppa)
                .expect("geometry checked")
                .expect("valid page has data")
                .clone();
            // Allocate a fresh location; allocation during GC must not
            // recurse into GC (we are already freeing space). Aborting here
            // is safe — the victim is only erased after every valid page is
            // relocated, so data is never lost.
            let new_ppa = self.try_allocate(nand).ok_or(FtlError::CapacityExhausted)?;
            nand.program(new_ppa, data)
                .expect("allocator produced bad ppa");
            self.reverse.remove(&ppa);
            self.reverse.insert(new_ppa, lpn);
            self.map[lpn as usize] = Some(new_ppa);
            let old_key = (c, w, b);
            if let Some(count) = self.valid_count.get_mut(&old_key) {
                *count -= 1;
                if *count == 0 {
                    self.valid_count.remove(&old_key);
                }
            }
            *self
                .valid_count
                .entry((new_ppa.channel, new_ppa.way, new_ppa.block))
                .or_insert(0) += 1;
            outcome.relocated += 1;
            self.relocated_total += 1;
        }
        nand.erase_block(c, w, b).expect("geometry checked");
        self.valid_count.remove(&(c, w, b));
        self.dies
            .get_mut(&(c, w))
            .expect("die exists")
            .free_blocks
            .push(b);
        outcome.erased_blocks += 1;
        Ok(())
    }

    /// Retires a failing block: every valid page is remapped to a fresh
    /// location and the block is withdrawn from circulation for good — it
    /// leaves the free list, loses frontier status, and is skipped by both
    /// the allocator and the garbage collector from then on. This is the
    /// firmware's uncorrectable-ECC escalation path: the data survives
    /// (rescued via the read-retry copy) while the worn-out block does not.
    ///
    /// Returns the number of pages remapped. Retiring an already-bad block
    /// is a no-op returning zero.
    ///
    /// # Errors
    ///
    /// Returns [`FtlError::CapacityExhausted`] if no fresh location exists
    /// for a valid page; pages remapped before the failure keep their new
    /// locations, so no data is ever lost.
    pub fn retire_block(
        &mut self,
        nand: &mut NandArray,
        (c, w, b): (u32, u32, u32),
    ) -> Result<u64, FtlError> {
        if self.bad.contains(&(c, w, b)) {
            return Ok(0);
        }
        // Withdraw the block first so relocation can never allocate into it.
        {
            let state = self.dies.get_mut(&(c, w)).expect("die exists");
            state.free_blocks.retain(|&blk| blk != b);
            if matches!(state.frontier, Some((blk, _)) if blk == b) {
                state.frontier = None;
            }
        }
        self.bad.insert((c, w, b));
        let mut moved = 0u64;
        for p in 0..self.pages_per_block {
            let ppa = Ppa {
                channel: c,
                way: w,
                block: b,
                page: p,
            };
            let Some(&lpn) = self.reverse.get(&ppa) else {
                continue;
            };
            let data = nand
                .read(ppa)
                .expect("geometry checked")
                .expect("valid page has data")
                .clone();
            let new_ppa = self.try_allocate(nand).ok_or(FtlError::CapacityExhausted)?;
            nand.program(new_ppa, data)
                .expect("allocator produced bad ppa");
            self.reverse.remove(&ppa);
            self.reverse.insert(new_ppa, lpn);
            self.map[lpn as usize] = Some(new_ppa);
            if let Some(count) = self.valid_count.get_mut(&(c, w, b)) {
                *count -= 1;
                if *count == 0 {
                    self.valid_count.remove(&(c, w, b));
                }
            }
            *self
                .valid_count
                .entry((new_ppa.channel, new_ppa.way, new_ppa.block))
                .or_insert(0) += 1;
            moved += 1;
            self.remapped_total += 1;
        }
        self.valid_count.remove(&(c, w, b));
        Ok(moved)
    }

    /// Whether a block has been retired as bad.
    pub fn is_bad(&self, block: (u32, u32, u32)) -> bool {
        self.bad.contains(&block)
    }

    /// Number of blocks retired as bad so far.
    pub fn bad_blocks(&self) -> u64 {
        self.bad.len() as u64
    }

    /// Total pages remapped off retired blocks so far.
    pub fn remapped_total(&self) -> u64 {
        self.remapped_total
    }

    /// Number of GC invocations so far.
    pub fn gc_runs(&self) -> u64 {
        self.gc_runs
    }

    /// Total pages relocated by GC so far.
    pub fn relocated_total(&self) -> u64 {
        self.relocated_total
    }
}

fn nand_blocks(ftl: &Ftl) -> u32 {
    ftl.blocks_per_die_cache
}

impl Ftl {
    /// Erase blocks per die (geometry accessor).
    pub fn blocks_per_die(&self) -> u32 {
        self.blocks_per_die_cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(fill: u8, size: usize) -> PageData {
        PageData::Bytes(biscuit_proto::Buf::from_vec(vec![fill; size]))
    }

    fn setup(blocks_per_die: u32, logical_pages: u64) -> (NandArray, Ftl) {
        let nand = NandArray::new(2, 2, blocks_per_die, 4, 32);
        let ftl = Ftl::new(2, 2, blocks_per_die, 4, logical_pages);
        (nand, ftl)
    }

    fn read_lpn(nand: &NandArray, ftl: &Ftl, lpn: u64) -> Option<Vec<u8>> {
        let ppa = ftl.lookup(lpn).unwrap()?;
        nand.read(ppa)
            .unwrap()
            .map(|d| d.materialize(32).as_ref().to_vec())
    }

    #[test]
    fn write_then_read_back() {
        let (mut nand, mut ftl) = setup(8, 32);
        ftl.write(&mut nand, 5, page(0xAA, 32)).unwrap();
        assert_eq!(read_lpn(&nand, &ftl, 5).unwrap(), vec![0xAA; 32]);
        assert_eq!(read_lpn(&nand, &ftl, 6), None);
    }

    #[test]
    fn overwrite_goes_out_of_place() {
        let (mut nand, mut ftl) = setup(8, 32);
        ftl.write(&mut nand, 0, page(1, 32)).unwrap();
        let first = ftl.lookup(0).unwrap().unwrap();
        ftl.write(&mut nand, 0, page(2, 32)).unwrap();
        let second = ftl.lookup(0).unwrap().unwrap();
        assert_ne!(first, second);
        assert_eq!(read_lpn(&nand, &ftl, 0).unwrap(), vec![2; 32]);
    }

    #[test]
    fn writes_stripe_across_dies() {
        let (mut nand, mut ftl) = setup(8, 32);
        let mut dies_used = std::collections::HashSet::new();
        for lpn in 0..4 {
            ftl.write(&mut nand, lpn, page(lpn as u8, 32)).unwrap();
            let ppa = ftl.lookup(lpn).unwrap().unwrap();
            dies_used.insert((ppa.channel, ppa.way));
        }
        assert_eq!(dies_used.len(), 4, "4 writes should hit 4 distinct dies");
    }

    #[test]
    fn gc_reclaims_and_preserves_data() {
        // Tiny device: 2x2 dies x 4 blocks x 4 pages = 64 physical pages,
        // 40 logical. Overwriting repeatedly must trigger GC.
        let (mut nand, mut ftl) = setup(4, 40);
        for round in 0..20u32 {
            for lpn in 0..40u64 {
                ftl.write(&mut nand, lpn, page((round as u8) ^ (lpn as u8), 32))
                    .unwrap();
            }
        }
        assert!(ftl.gc_runs() > 0, "expected GC under heavy overwrite");
        for lpn in 0..40u64 {
            assert_eq!(
                read_lpn(&nand, &ftl, lpn).unwrap(),
                vec![19u8 ^ (lpn as u8); 32],
                "lpn {lpn} corrupted after GC"
            );
        }
    }

    #[test]
    fn trim_unmaps() {
        let (mut nand, mut ftl) = setup(8, 32);
        ftl.write(&mut nand, 3, page(9, 32)).unwrap();
        ftl.trim(3).unwrap();
        assert_eq!(read_lpn(&nand, &ftl, 3), None);
    }

    #[test]
    fn out_of_range_rejected() {
        let (mut nand, mut ftl) = setup(8, 32);
        assert!(matches!(
            ftl.write(&mut nand, 32, page(0, 32)),
            Err(FtlError::LpnOutOfRange { .. })
        ));
        assert!(ftl.lookup(99).is_err());
    }

    #[test]
    fn retire_remaps_valid_pages_and_preserves_data() {
        let (mut nand, mut ftl) = setup(8, 32);
        for lpn in 0..8u64 {
            ftl.write(&mut nand, lpn, page(0x10 + lpn as u8, 32))
                .unwrap();
        }
        // Retire the block holding lpn 0; its valid pages must move.
        let victim = ftl.lookup(0).unwrap().unwrap();
        let blk = (victim.channel, victim.way, victim.block);
        let moved = ftl.retire_block(&mut nand, blk).unwrap();
        assert!(moved > 0, "retired block held valid pages");
        assert!(ftl.is_bad(blk));
        assert_eq!(ftl.bad_blocks(), 1);
        assert_eq!(ftl.remapped_total(), moved);
        let relocated = ftl.lookup(0).unwrap().unwrap();
        assert_ne!(
            (relocated.channel, relocated.way, relocated.block),
            blk,
            "remapped page must leave the bad block"
        );
        for lpn in 0..8u64 {
            assert_eq!(
                read_lpn(&nand, &ftl, lpn).unwrap(),
                vec![0x10 + lpn as u8; 32],
                "lpn {lpn} corrupted by retirement"
            );
        }
        // Retiring again is a no-op.
        assert_eq!(ftl.retire_block(&mut nand, blk).unwrap(), 0);
        assert_eq!(ftl.bad_blocks(), 1);
    }

    #[test]
    fn retired_block_is_never_reused() {
        let (mut nand, mut ftl) = setup(4, 40);
        ftl.write(&mut nand, 0, page(1, 32)).unwrap();
        let victim = ftl.lookup(0).unwrap().unwrap();
        let blk = (victim.channel, victim.way, victim.block);
        ftl.retire_block(&mut nand, blk).unwrap();
        let erases_before = nand.erase_count(blk.0, blk.1, blk.2);
        // Heavy overwrite traffic forces GC; the bad block must stay out.
        for round in 0..20u32 {
            for lpn in 0..40u64 {
                ftl.write(&mut nand, lpn, page(round as u8 ^ lpn as u8, 32))
                    .unwrap();
            }
        }
        assert!(ftl.gc_runs() > 0, "expected GC under heavy overwrite");
        assert_eq!(
            nand.erase_count(blk.0, blk.1, blk.2),
            erases_before,
            "bad block must never be erased for reuse"
        );
        for lpn in 0..40u64 {
            let ppa = ftl.lookup(lpn).unwrap().unwrap();
            assert_ne!(
                (ppa.channel, ppa.way, ppa.block),
                blk,
                "lpn {lpn} allocated onto a retired block"
            );
        }
    }

    #[test]
    fn wear_spreads_over_blocks() {
        let (mut nand, mut ftl) = setup(4, 40);
        for round in 0..40u32 {
            for lpn in 0..40u64 {
                ftl.write(&mut nand, lpn, page(round as u8, 32)).unwrap();
            }
        }
        // Every die should have erased more than one distinct block.
        let mut per_die_erased: HashMap<(u32, u32), u32> = HashMap::new();
        for c in 0..2 {
            for w in 0..2 {
                for b in 0..4 {
                    if nand.erase_count(c, w, b) > 0 {
                        *per_die_erased.entry((c, w)).or_insert(0) += 1;
                    }
                }
            }
        }
        assert!(
            per_die_erased.values().all(|&n| n >= 2),
            "wear concentrated: {per_die_erased:?}"
        );
    }
}
