//! SSD configuration, calibrated to the paper's target device.
//!
//! Table I of the paper specifies the hardware: PCIe Gen.3 x4 (3.2 GB/s),
//! NVMe 1.1, 1 TB of multi-bit NAND over multiple channels/ways, two ARM
//! Cortex-R7 cores @750 MHz for Biscuit, and a key-based pattern matcher per
//! channel. Section V-B gives the measured behaviour the timing parameters
//! below are calibrated against:
//!
//! - 4 KiB internal read ≈ 75.9 µs vs 90.0 µs over the host path (Table III);
//! - internal sequential bandwidth >30 % above the 3.2 GB/s host cap (Fig. 7);
//! - pattern-matched reads slightly below raw internal bandwidth, above Conv.

use biscuit_sim::time::SimDuration;

/// Geometry and timing of the simulated SSD.
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Number of flash channels.
    pub channels: usize,
    /// Dies ("ways") per channel; reads on different dies of one channel
    /// overlap their sense time but share the channel bus.
    pub ways: usize,
    /// Flash page size in bytes. The DB engine uses the same page size.
    pub page_size: usize,
    /// Pages per erase block.
    pub pages_per_block: usize,
    /// Logical capacity exposed to the host, in bytes.
    pub logical_capacity: u64,
    /// Extra physical space for out-of-place writes, as a fraction of
    /// logical capacity (over-provisioning).
    pub over_provisioning: f64,
    /// NAND page sense time (tR).
    pub t_read: SimDuration,
    /// NAND page program time (tPROG).
    pub t_program: SimDuration,
    /// Block erase time (tBERS).
    pub t_erase: SimDuration,
    /// Per-channel bus rate, bytes/second.
    pub channel_rate: f64,
    /// Device CPU cores available to Biscuit.
    pub cores: usize,
    /// Device-software overhead charged per I/O request (FTL lookup,
    /// request marshalling on the ARM cores).
    pub request_overhead: SimDuration,
    /// Device DRAM available to Biscuit's user memory allocator, bytes.
    pub dram_bytes: u64,
    /// Rate at which device CPUs process data in software (bytes/second) —
    /// used when an SSDlet scans data *without* the pattern-matcher IP. The
    /// paper found software scanning on the embedded cores cannot keep up
    /// with the flash bandwidth; this constant is deliberately low.
    pub cpu_scan_rate: f64,
    /// Per-request software overhead for configuring the pattern-matcher IP
    /// (the reason Fig. 7 shows pattern-matched bandwidth below raw reads).
    pub pm_setup_overhead: SimDuration,
    /// Pattern matcher throughput per channel, bytes/second. The paper says
    /// raw matching throughput corresponds to channel throughput; a small
    /// derating accounts for the per-stripe handshaking.
    pub pm_rate: f64,
    /// Maximum keywords the pattern matcher accepts (paper: 3).
    pub pm_max_keys: usize,
    /// Maximum keyword length in bytes (paper: 16).
    pub pm_max_key_len: usize,
    /// Device-DRAM page frames cached for synthetic (generator-backed)
    /// pages, so repeated reads of the same logical page share one buffer
    /// instead of regenerating it. Purely a host-memory/wall-clock
    /// optimization: simulated timing always charges the full NAND sense
    /// and transfer, and eviction is FIFO in first-touch order, so results
    /// and traces are byte-identical at any setting. Zero disables caching.
    pub synth_cache_pages: usize,
    /// Journal records between L2P checkpoints. A smaller interval bounds
    /// recovery-replay work at the cost of more frequent checkpoint
    /// snapshots; see `docs/WRITEPATH.md`.
    pub journal_checkpoint_interval: usize,
}

impl SsdConfig {
    /// The paper's device (Table I), with a laptop-friendly 4 GiB logical
    /// capacity. Bump [`SsdConfig::logical_capacity`] for larger datasets.
    pub fn paper_default() -> Self {
        SsdConfig {
            channels: 16,
            ways: 4,
            page_size: 16 * 1024,
            pages_per_block: 256,
            logical_capacity: 4 << 30,
            over_provisioning: 0.125,
            // Calibration: request_overhead + t_read + 4096 B / channel_rate
            // = 7.0 + 55.25 + 13.65 = 75.9 us (Table III, internal read).
            t_read: SimDuration::from_micros_f64(55.25),
            t_program: SimDuration::from_micros_f64(660.0),
            t_erase: SimDuration::from_millis(4),
            channel_rate: 300.0e6, // 16 channels x 300 MB/s = 4.8 GB/s raw
            cores: 2,
            request_overhead: SimDuration::from_micros_f64(7.0),
            dram_bytes: 1 << 30,
            cpu_scan_rate: 220.0e6, // two R7 cores' software scan ceiling
            pm_setup_overhead: SimDuration::from_micros_f64(45.0),
            pm_rate: 235.0e6, // slightly below channel_rate: IP handshaking
            pm_max_keys: 3,
            pm_max_key_len: 16,
            synth_cache_pages: 4096, // 64 MiB of 16 KiB frames
            journal_checkpoint_interval: 8192,
        }
    }

    /// Logical pages exposed by the device.
    pub fn logical_pages(&self) -> u64 {
        self.logical_capacity / self.page_size as u64
    }

    /// Physical pages, including over-provisioned space, rounded up to whole
    /// blocks spread over every (channel, way) pair. Every die gets at least
    /// four blocks so the write frontier, GC reserve, and free pool never
    /// degenerate on small test capacities.
    pub fn physical_pages(&self) -> u64 {
        let want = (self.logical_capacity as f64 * (1.0 + self.over_provisioning)) as u64
            / self.page_size as u64;
        let per_die_pages = self.pages_per_block as u64;
        let dies = (self.channels * self.ways) as u64;
        let granule = per_die_pages * dies;
        let blocks_per_die = want.div_ceil(granule).max(4);
        blocks_per_die * granule
    }

    /// Total erase blocks on the device.
    pub fn total_blocks(&self) -> u64 {
        self.physical_pages() / self.pages_per_block as u64
    }

    /// Aggregate raw internal bandwidth (all channel buses), bytes/second.
    pub fn internal_bandwidth(&self) -> f64 {
        self.channels as f64 * self.channel_rate
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.channels == 0 || self.ways == 0 {
            return Err("channels and ways must be positive".into());
        }
        if self.page_size == 0 || !self.page_size.is_power_of_two() {
            return Err(format!(
                "page_size must be a power of two, got {}",
                self.page_size
            ));
        }
        if self.pages_per_block == 0 {
            return Err("pages_per_block must be positive".into());
        }
        if self.logical_capacity < self.page_size as u64 {
            return Err("logical capacity smaller than one page".into());
        }
        if self.over_provisioning <= 0.0 {
            return Err("over-provisioning must be positive for GC headroom".into());
        }
        if self.channel_rate <= 0.0 || self.cpu_scan_rate <= 0.0 || self.pm_rate <= 0.0 {
            return Err("rates must be positive".into());
        }
        if self.cores == 0 {
            return Err("device must have at least one core".into());
        }
        if self.pm_max_keys == 0 || self.pm_max_key_len == 0 {
            return Err("pattern matcher limits must be positive".into());
        }
        if self.journal_checkpoint_interval == 0 {
            return Err("journal checkpoint interval must be positive".into());
        }
        Ok(())
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let cfg = SsdConfig::paper_default();
        cfg.validate().unwrap();
        assert_eq!(cfg.logical_pages(), (4 << 30) / (16 * 1024));
    }

    #[test]
    fn physical_exceeds_logical_by_op() {
        let cfg = SsdConfig::paper_default();
        let logical = cfg.logical_pages();
        let physical = cfg.physical_pages();
        assert!(physical as f64 >= logical as f64 * 1.125);
        // Whole blocks per die
        assert_eq!(
            physical % (cfg.pages_per_block as u64 * (cfg.channels * cfg.ways) as u64),
            0
        );
    }

    #[test]
    fn internal_bandwidth_exceeds_host_link() {
        let cfg = SsdConfig::paper_default();
        // Paper: internal bandwidth is >30% above the 3.2 GB/s host cap.
        assert!(cfg.internal_bandwidth() > 3.2e9 * 1.3);
    }

    #[test]
    fn internal_4k_read_latency_matches_table3() {
        let cfg = SsdConfig::paper_default();
        let us = cfg.request_overhead.as_micros_f64()
            + cfg.t_read.as_micros_f64()
            + 4096.0 / cfg.channel_rate * 1e6;
        assert!((75.0..77.0).contains(&us), "internal 4KiB read = {us}us");
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = SsdConfig::paper_default();
        cfg.channels = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::paper_default();
        cfg.page_size = 3000;
        assert!(cfg.validate().is_err());

        let mut cfg = SsdConfig::paper_default();
        cfg.over_provisioning = 0.0;
        assert!(cfg.validate().is_err());
    }
}
