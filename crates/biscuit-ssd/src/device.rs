//! The timed SSD datapath: internal reads, pattern-matched scans, writes.
//!
//! This is the device the Biscuit runtime sits on. All timing flows through
//! three resource banks — NAND dies (sense time), channel buses (transfer
//! time), and the two device CPU cores (per-request software overhead) — so
//! latency, bandwidth saturation, and queueing under concurrency emerge from
//! the same structure as on the paper's hardware:
//!
//! - a small synchronous read pays `request_overhead + tR + transfer`
//!   (Table III's 75.9 µs for 4 KiB);
//! - large/asynchronous reads stripe pages across all channels and approach
//!   the aggregate channel bandwidth, which exceeds the PCIe cap (Fig. 7);
//! - pattern-matched scans stream at a slightly lower per-channel rate with
//!   an extra per-request IP-setup cost, landing between Conv and raw
//!   Biscuit bandwidth (Fig. 7), while only matching pages surface.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use biscuit_proto::{Buf, BufPool};

use biscuit_sim::fault::{FaultPlan, FaultSite};
use biscuit_sim::fuse::{ChainDesc, StageKind};
use biscuit_sim::metrics::{self, MetricsRegistry};
use biscuit_sim::power::{ComponentId, PowerMeter};
use biscuit_sim::qprof::{QueryProfiler, Stage};
use biscuit_sim::resource::ServerBank;
use biscuit_sim::stats::Counter;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::trace::{NandOpKind, TraceEvent, Tracer};
use biscuit_sim::Ctx;

use crate::config::SsdConfig;
use crate::ftl::{Ftl, FtlError};
use crate::memory::DeviceMemory;
use crate::nand::{NandArray, PageData, PageGen, Ppa};
use crate::pattern::PatternSet;

/// A materialized page payload: a shared window onto one allocation. Every
/// layer from the NAND to the host holds the same bytes by reference.
pub type PageBuf = Buf;

/// A byte-copy (memcpy) site on the data path, for the
/// `sim_bytes_copied_total` metric. The zero-copy work tracks every place
/// payload bytes are duplicated rather than shared; each site increments the
/// counter by the bytes it copied so the claim "a page is allocated once at
/// the NAND and shared to the host" stays measurable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopySite {
    /// A synthetic page was (re)generated at the NAND instead of being
    /// served from a shared buffer.
    NandSynth,
    /// Host-side assembly of page buffers into one contiguous read result.
    HostAssemble,
    /// Host bytes staged into a full device page on the write path.
    WriteStage,
}

impl CopySite {
    /// The `site` label value used on `sim_bytes_copied_total`.
    pub fn label(self) -> &'static str {
        match self {
            CopySite::NandSynth => "nand_synth",
            CopySite::HostAssemble => "host_read_assemble",
            CopySite::WriteStage => "device_write_stage",
        }
    }
}

/// Errors surfaced by device operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The FTL rejected the request.
    Ftl(FtlError),
    /// A write payload did not fit the page size.
    BadWriteSize {
        /// Bytes supplied.
        got: usize,
        /// Page size required.
        page_size: usize,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::Ftl(e) => write!(f, "ftl: {e}"),
            DeviceError::BadWriteSize { got, page_size } => {
                write!(f, "write of {got} bytes does not fit page size {page_size}")
            }
        }
    }
}

impl std::error::Error for DeviceError {}

impl From<FtlError> for DeviceError {
    fn from(e: FtlError) -> Self {
        DeviceError::Ftl(e)
    }
}

/// Result alias for device operations.
pub type DeviceResult<T> = Result<T, DeviceError>;

/// Operation counters exposed for the experiment harnesses.
#[derive(Debug, Default)]
pub struct DeviceStats {
    /// Pages read (plain reads).
    pub pages_read: Counter,
    /// Pages streamed through the pattern matcher.
    pub pages_scanned: Counter,
    /// Pages the pattern matcher flagged as matching.
    pub pages_matched: Counter,
    /// Pages written.
    pub pages_written: Counter,
}

/// Per-channel flash-path instruments registered in a
/// [`MetricsRegistry`] by [`SsdDevice::attach_metrics`].
struct ChannelInstruments {
    /// `nand_ops_total{channel,kind=read|program|erase}`.
    nand_read: metrics::Counter,
    nand_program: metrics::Counter,
    nand_erase: metrics::Counter,
    /// `nand_busy_ps_total{channel}` — die occupancy (sense + program).
    nand_busy_ps: metrics::Counter,
    /// `bus_bytes_total{channel}` / `bus_busy_ps_total{channel}`.
    bus_bytes: metrics::Counter,
    bus_busy_ps: metrics::Counter,
    /// Pattern-matcher IP: `pm_scans_total` / `pm_hits_total` /
    /// `pm_bytes_total` / `pm_busy_ps_total`, all `{channel}`.
    pm_scans: metrics::Counter,
    pm_hits: metrics::Counter,
    pm_bytes: metrics::Counter,
    pm_busy_ps: metrics::Counter,
    /// `nand_read_wait_ps{channel}` / `nand_write_wait_ps{channel}` —
    /// queueing delay between request issue and die start, per op class.
    /// Reads stalling behind programs (and vice versa) show up here: the
    /// read/write interference signal on a shared die.
    read_wait_ps: metrics::Histogram,
    write_wait_ps: metrics::Histogram,
}

struct DeviceInstruments {
    channels: Vec<ChannelInstruments>,
    /// `ftl_lookups_total` — logical-to-physical map resolutions.
    ftl_lookups: metrics::Counter,
    /// `ftl_bad_blocks_total` / `ftl_remapped_pages_total` — uncorrectable
    /// ECC escalations: blocks retired and pages remapped off them.
    ftl_bad_blocks: metrics::Counter,
    ftl_remapped_pages: metrics::Counter,
    /// Write-path FTL metering: `ftl_gc_runs_total`,
    /// `ftl_gc_relocated_pages_total`, `ftl_gc_erased_blocks_total`,
    /// `ftl_journal_records_total`, `ftl_checkpoints_total`, and the
    /// `ftl_write_amp` gauge (milli-units: 1000 = 1.0x amplification).
    ftl_gc_runs: metrics::Counter,
    ftl_gc_relocated: metrics::Counter,
    ftl_gc_erased: metrics::Counter,
    ftl_journal_records: metrics::Counter,
    ftl_checkpoints: metrics::Counter,
    ftl_write_amp: metrics::Gauge,
    /// Whole-device page counters mirroring [`DeviceStats`].
    pages_read: metrics::Counter,
    pages_scanned: metrics::Counter,
    pages_matched: metrics::Counter,
    pages_written: metrics::Counter,
    /// `sim_bytes_copied_total{site}` — bytes duplicated per [`CopySite`].
    copy_nand_synth: metrics::Counter,
    copy_host_assemble: metrics::Counter,
    copy_write_stage: metrics::Counter,
}

impl DeviceInstruments {
    fn new(registry: &MetricsRegistry, channels: usize) -> Self {
        let per_channel = (0..channels)
            .map(|ch| {
                let ch = ch.to_string();
                let l = |kind: &str| {
                    registry.counter("nand_ops_total", &[("channel", &ch), ("kind", kind)])
                };
                ChannelInstruments {
                    nand_read: l("read"),
                    nand_program: l("program"),
                    nand_erase: l("erase"),
                    nand_busy_ps: registry.counter("nand_busy_ps_total", &[("channel", &ch)]),
                    bus_bytes: registry.counter("bus_bytes_total", &[("channel", &ch)]),
                    bus_busy_ps: registry.counter("bus_busy_ps_total", &[("channel", &ch)]),
                    pm_scans: registry.counter("pm_scans_total", &[("channel", &ch)]),
                    pm_hits: registry.counter("pm_hits_total", &[("channel", &ch)]),
                    pm_bytes: registry.counter("pm_bytes_total", &[("channel", &ch)]),
                    pm_busy_ps: registry.counter("pm_busy_ps_total", &[("channel", &ch)]),
                    read_wait_ps: registry.histogram("nand_read_wait_ps", &[("channel", &ch)]),
                    write_wait_ps: registry.histogram("nand_write_wait_ps", &[("channel", &ch)]),
                }
            })
            .collect();
        DeviceInstruments {
            channels: per_channel,
            ftl_lookups: registry.counter("ftl_lookups_total", &[]),
            ftl_bad_blocks: registry.counter("ftl_bad_blocks_total", &[]),
            ftl_remapped_pages: registry.counter("ftl_remapped_pages_total", &[]),
            ftl_gc_runs: registry.counter("ftl_gc_runs_total", &[]),
            ftl_gc_relocated: registry.counter("ftl_gc_relocated_pages_total", &[]),
            ftl_gc_erased: registry.counter("ftl_gc_erased_blocks_total", &[]),
            ftl_journal_records: registry.counter("ftl_journal_records_total", &[]),
            ftl_checkpoints: registry.counter("ftl_checkpoints_total", &[]),
            ftl_write_amp: registry.gauge("ftl_write_amp", &[]),
            pages_read: registry.counter("device_pages_read_total", &[]),
            pages_scanned: registry.counter("device_pages_scanned_total", &[]),
            pages_matched: registry.counter("device_pages_matched_total", &[]),
            pages_written: registry.counter("device_pages_written_total", &[]),
            copy_nand_synth: registry.counter(
                "sim_bytes_copied_total",
                &[("site", CopySite::NandSynth.label())],
            ),
            copy_host_assemble: registry.counter(
                "sim_bytes_copied_total",
                &[("site", CopySite::HostAssemble.label())],
            ),
            copy_write_stage: registry.counter(
                "sim_bytes_copied_total",
                &[("site", CopySite::WriteStage.label())],
            ),
        }
    }

    fn copy_counter(&self, site: CopySite) -> &metrics::Counter {
        match site {
            CopySite::NandSynth => &self.copy_nand_synth,
            CopySite::HostAssemble => &self.copy_host_assemble,
            CopySite::WriteStage => &self.copy_write_stage,
        }
    }
}

struct PowerHook {
    meter: Arc<PowerMeter>,
    component: ComponentId,
    nesting: usize,
}

struct Storage {
    nand: NandArray,
    ftl: Ftl,
}

/// Bounded cache of materialized synthetic pages, keyed by (generator
/// identity, file-relative lpn). Without it every read of a generator-backed
/// page re-runs the generator — the dominant wall-clock cost of scan-heavy
/// workloads — even though the simulated timing is identical. FIFO eviction
/// in first-touch order keeps behaviour independent of hash iteration order,
/// so same-seed runs stay byte-identical.
#[derive(Default)]
struct SynthCache {
    // Each entry pins its generator Arc so the address in the key cannot be
    // freed and reused by a different generator while the entry lives.
    map: HashMap<(usize, u64), (Buf, Arc<dyn PageGen>)>,
    order: VecDeque<(usize, u64)>,
}

/// The simulated SSD.
pub struct SsdDevice {
    cfg: SsdConfig,
    storage: Mutex<Storage>,
    dies: ServerBank,
    buses: ServerBank,
    cores: ServerBank,
    mem: DeviceMemory,
    stats: DeviceStats,
    power: Mutex<Option<PowerHook>>,
    trace: OnceLock<Tracer>,
    metrics: OnceLock<DeviceInstruments>,
    qprof: OnceLock<QueryProfiler>,
    fault: OnceLock<FaultPlan>,
    /// Bumped whenever the armed fault plan draws a NAND read fault.
    /// Chain builders snapshot it around a request's reservations: a bump
    /// means an ECC retry (or block retirement) landed mid-chain, and the
    /// request de-fuses — deterministically, since the draw itself comes
    /// from the seeded plan at build time.
    fault_epoch: AtomicU64,
    zero_page: PageBuf,
    synth_cache: Mutex<SynthCache>,
    pool: BufPool,
}

impl std::fmt::Debug for SsdDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdDevice")
            .field("channels", &self.cfg.channels)
            .field("logical_pages", &self.cfg.logical_pages())
            .finish()
    }
}

impl SsdDevice {
    /// Builds a device from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: SsdConfig) -> Self {
        cfg.validate().expect("invalid SSD configuration");
        let blocks_per_die = (cfg.total_blocks() / (cfg.channels * cfg.ways) as u64) as u32;
        let nand = NandArray::new(
            cfg.channels as u32,
            cfg.ways as u32,
            blocks_per_die,
            cfg.pages_per_block as u32,
            cfg.page_size,
        );
        let mut ftl = Ftl::new(
            cfg.channels as u32,
            cfg.ways as u32,
            blocks_per_die,
            cfg.pages_per_block as u32,
            cfg.logical_pages(),
        );
        ftl.set_checkpoint_interval(cfg.journal_checkpoint_interval);
        let zero_page: PageBuf = Buf::from_vec(vec![0u8; cfg.page_size]);
        // Page frames for write staging and recycled synth-cache evictions;
        // the free-list cap keeps idle frames bounded by one cache's worth.
        let pool = BufPool::new(cfg.page_size, cfg.synth_cache_pages.max(64));
        SsdDevice {
            dies: ServerBank::new(cfg.channels * cfg.ways),
            buses: ServerBank::new(cfg.channels),
            cores: ServerBank::new(cfg.cores),
            mem: DeviceMemory::new(64 << 20, cfg.dram_bytes),
            stats: DeviceStats::default(),
            power: Mutex::new(None),
            trace: OnceLock::new(),
            metrics: OnceLock::new(),
            qprof: OnceLock::new(),
            fault: OnceLock::new(),
            fault_epoch: AtomicU64::new(0),
            storage: Mutex::new(Storage { nand, ftl }),
            zero_page,
            synth_cache: Mutex::new(SynthCache::default()),
            pool,
            cfg,
        }
    }

    /// The device's page-frame pool (diagnostics: frames allocated/recycled).
    pub fn frame_pool(&self) -> &BufPool {
        &self.pool
    }

    /// The device's configuration.
    pub fn config(&self) -> &SsdConfig {
        &self.cfg
    }

    /// Operation counters.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// The DRAM budget (system/user arenas).
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// The device CPU cores, for runtime layers that charge SSDlet compute.
    pub fn cores(&self) -> &ServerBank {
        &self.cores
    }

    /// Garbage-collection statistics `(runs, pages_relocated)`.
    pub fn gc_stats(&self) -> (u64, u64) {
        let st = self.storage.lock();
        (st.ftl.gc_runs(), st.ftl.relocated_total())
    }

    /// Bad-block statistics `(blocks_retired, pages_remapped)` from
    /// uncorrectable-ECC escalations.
    pub fn bad_block_stats(&self) -> (u64, u64) {
        let st = self.storage.lock();
        (st.ftl.bad_blocks(), st.ftl.remapped_total())
    }

    /// Write-path statistics `(user_writes, nand_programs, write_amp_milli)`.
    /// `nand_programs / user_writes` is the write amplification factor;
    /// the milli value reports it in fixed point (1000 = 1.0x).
    pub fn write_stats(&self) -> (u64, u64, u64) {
        let st = self.storage.lock();
        (
            st.ftl.user_writes_total(),
            st.ftl.programs_total(),
            st.ftl.write_amp_milli(),
        )
    }

    /// Journal statistics `(records_appended, checkpoints_installed, seq)`.
    pub fn journal_stats(&self) -> (u64, u64, u64) {
        let st = self.storage.lock();
        let j = st.ftl.journal();
        (j.appended_total(), j.checkpoints_total(), j.seq())
    }

    /// True when a seeded power loss has halted the device. Every I/O
    /// fails with [`FtlError::PowerLoss`] until [`SsdDevice::recover_power_loss`].
    pub fn is_dead(&self) -> bool {
        self.storage.lock().ftl.is_dead()
    }

    /// Forces a journal checkpoint of the current L2P state — the host's
    /// sync/flush barrier. Bounds later recovery replay to writes issued
    /// after this point.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] ([`FtlError::PowerLoss`]) on a crashed,
    /// unrecovered device.
    pub fn checkpoint(&self) -> DeviceResult<()> {
        self.storage.lock().ftl.checkpoint_now()?;
        if let Some(m) = self.instruments() {
            m.ftl_checkpoints.inc();
        }
        Ok(())
    }

    /// Replays the journal after a power loss, reviving the device:
    /// checkpoint restore, ordered redo, torn-program rollback, and a free
    /// list rebuilt from a physical census of the NAND array. Safe on a
    /// live device too (models a clean remount). `now` stamps the recovery
    /// trace event when a fault plan is armed.
    pub fn recover_power_loss(&self, now: SimTime) -> crate::journal::RecoveryReport {
        let report = {
            let mut st = self.storage.lock();
            let st = &mut *st;
            st.ftl.recover(&mut st.nand)
        };
        if let Some(plan) = self.fault() {
            plan.record_recovered(now, FaultSite::PowerLoss, "journal_replay");
        }
        report
    }

    /// Deterministic logical state export: one line per mapped logical page
    /// with a content fingerprint, independent of physical placement. A
    /// recovered crash run must export bytes identical to its same-seed
    /// uncrashed twin.
    pub fn export_state(&self) -> String {
        let st = self.storage.lock();
        st.ftl.export_state(&st.nand)
    }

    /// Deterministic physical state export (full L2P map, free lists, bad
    /// set) for same-seed run-to-run identity checks.
    pub fn export_physical_state(&self) -> String {
        self.storage.lock().ftl.export_physical()
    }

    /// Arms the device's fault-injection sites with `plan`: NAND page senses
    /// draw read errors (extra tR per retry, uncorrectable escalation to
    /// block retirement), and per-request core charges draw firmware stalls.
    /// The first call wins; later calls are ignored. A [`FaultPlan::none`]
    /// plan (or no call at all) leaves every timing and data path
    /// bit-identical to the fault-free device.
    pub fn set_fault_plan(&self, plan: &FaultPlan) {
        let _ = self.fault.set(plan.clone());
    }

    #[inline]
    fn fault(&self) -> Option<&FaultPlan> {
        self.fault.get().filter(|p| p.is_active())
    }

    /// Records the device's datapath into `tracer`: NAND die operations,
    /// channel-bus transfers, and pattern-matcher invocations per channel,
    /// plus per-core software-overhead spans (`cpu.core.N`). The first call
    /// wins; later calls are ignored. Tracing disabled (the default state of
    /// a [`Tracer`]) costs one atomic load per operation.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        self.cores.set_trace(tracer.clone(), "cpu.core");
        let _ = self.trace.set(tracer.clone());
    }

    #[inline]
    fn trace(&self) -> Option<&Tracer> {
        self.trace.get()
    }

    /// Registers the device's datapath in `registry`: per-channel NAND op
    /// and busy-time counters, channel-bus bytes/busy time, pattern-matcher
    /// scan/hit/byte counters, FTL map lookups, whole-device page counters,
    /// and per-core service spans (`resource=cpu.core.N`). The first call
    /// wins; later calls are ignored. With the registry disabled (the
    /// default), each site costs one relaxed atomic load.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        self.cores.set_metrics(registry, "cpu.core");
        let _ = self
            .metrics
            .set(DeviceInstruments::new(registry, self.cfg.channels));
    }

    #[inline]
    fn instruments(&self) -> Option<&DeviceInstruments> {
        self.metrics.get()
    }

    /// Attaches the query profiler: NAND senses (including fault retries),
    /// channel-bus transfers, pattern-matcher streams, and per-request core
    /// overhead become spans of whichever query context the calling fiber
    /// currently carries. Pass `sim.qprof()` after `sim.enable_qprof()`. The
    /// first call wins; later calls are ignored. A disabled profiler (the
    /// default) costs one relaxed atomic load per site.
    pub fn attach_qprof(&self, prof: &QueryProfiler) {
        let _ = self.qprof.set(prof.clone());
    }

    #[inline]
    fn qprof(&self) -> Option<&QueryProfiler> {
        self.qprof.get().filter(|p| p.is_enabled())
    }

    /// Records `bytes` duplicated at `site` into `sim_bytes_copied_total`.
    /// Host-side layers (I/O assembly, the filesystem) call this for their
    /// own memcpy sites so every copy on the NAND-to-host path lands in one
    /// metric. Costs one relaxed atomic load when metrics are disabled.
    #[inline]
    pub fn count_copy(&self, site: CopySite, bytes: u64) {
        if let Some(m) = self.instruments() {
            m.copy_counter(site).add(bytes);
        }
    }

    /// Materializes fetched page data. `Bytes` pages share their stored
    /// allocation. `Synth` pages are served from the device's synth cache
    /// when possible; on a miss the generator runs (counted as a
    /// `nand_synth` copy — the one place a fresh page buffer is filled) and
    /// the result is cached, evicting the oldest entry first.
    fn materialize_counted(&self, d: &PageData) -> PageBuf {
        let (lpn, gen) = match d {
            PageData::Bytes(b) => return b.clone(),
            PageData::Synth { lpn, gen } => (*lpn, gen),
        };
        let cap = self.cfg.synth_cache_pages;
        if cap == 0 {
            self.count_copy(CopySite::NandSynth, self.cfg.page_size as u64);
            return d.materialize(self.cfg.page_size);
        }
        let key = (Arc::as_ptr(gen) as *const u8 as usize, lpn);
        let mut cache = self.synth_cache.lock();
        if let Some((b, _pin)) = cache.map.get(&key) {
            return b.clone();
        }
        self.count_copy(CopySite::NandSynth, self.cfg.page_size as u64);
        let buf = d.materialize(self.cfg.page_size);
        if cache.map.len() >= cap {
            if let Some(old) = cache.order.pop_front() {
                if let Some((evicted, _)) = cache.map.remove(&old) {
                    self.pool.recycle(evicted);
                }
            }
        }
        cache.map.insert(key, (buf.clone(), Arc::clone(gen)));
        cache.order.push_back(key);
        buf
    }

    /// Attaches a power meter component toggled while the datapath is busy.
    pub fn attach_power(&self, meter: Arc<PowerMeter>, component: ComponentId) {
        *self.power.lock() = Some(PowerHook {
            meter,
            component,
            nesting: 0,
        });
    }

    fn power_busy(&self, now: SimTime) {
        let mut hook = self.power.lock();
        if let Some(h) = hook.as_mut() {
            h.nesting += 1;
            if h.nesting == 1 {
                h.meter.set_active(now, h.component, true);
            }
        }
    }

    fn power_idle(&self, now: SimTime) {
        let mut hook = self.power.lock();
        if let Some(h) = hook.as_mut() {
            debug_assert!(h.nesting > 0, "power nesting underflow");
            h.nesting -= 1;
            if h.nesting == 0 {
                h.meter.set_active(now, h.component, false);
            }
        }
    }

    /// Placement for an unmapped logical page: deterministic stripe, so the
    /// timing of reading never-written space still spreads over channels.
    fn stripe_ppa(&self, lpn: u64) -> Ppa {
        Ppa {
            channel: (lpn % self.cfg.channels as u64) as u32,
            way: ((lpn / self.cfg.channels as u64) % self.cfg.ways as u64) as u32,
            block: 0,
            page: 0,
        }
    }

    fn die_index(&self, ppa: Ppa) -> usize {
        ppa.die_index(self.cfg.ways)
    }

    /// Current NAND-read-fault epoch (see the `fault_epoch` field). Chain
    /// builders — including the host I/O path — compare snapshots taken
    /// around a request's reservations to decide whether to de-fuse.
    pub fn fault_epoch(&self) -> u64 {
        self.fault_epoch.load(Ordering::Relaxed)
    }

    /// Fetches page contents and its physical location without timing.
    fn fetch(&self, lpn: u64) -> DeviceResult<(Ppa, Option<PageData>)> {
        if let Some(m) = self.instruments() {
            m.ftl_lookups.inc();
        }
        let st = self.storage.lock();
        match st.ftl.lookup(lpn)? {
            Some(ppa) => {
                let data = st
                    .nand
                    .read(ppa)
                    .expect("FTL mapping within geometry")
                    .cloned();
                Ok((ppa, data))
            }
            None => Ok((self.stripe_ppa(lpn), None)),
        }
    }

    /// The fault plan handed to FTL persistence operations (which take one
    /// unconditionally so the power-loss draw happens on every write path);
    /// inert when no plan is armed.
    fn write_plan(&self) -> FaultPlan {
        self.fault().cloned().unwrap_or_else(FaultPlan::none)
    }

    /// Folds one write's FTL work into the registry counters and gauges.
    fn note_write_outcome(&self, outcome: &crate::ftl::WriteOutcome, amp_milli: u64) {
        if let Some(m) = self.instruments() {
            m.ftl_gc_runs.add(outcome.gc_runs);
            m.ftl_gc_relocated.add(outcome.relocated);
            m.ftl_gc_erased.add(outcome.erased_blocks);
            m.ftl_journal_records.add(outcome.journal_records);
            m.ftl_checkpoints.add(outcome.checkpoints);
            m.ftl_write_amp.set(amp_milli as i64);
        }
    }

    /// One FTL write under the storage lock. Detects the alive→dead
    /// power-loss transition and records the injection exactly once (later
    /// operations on the dead device fail with the same error but are not
    /// fresh injections).
    fn ftl_write(
        &self,
        now: SimTime,
        lpn: u64,
        data: PageData,
    ) -> Result<crate::ftl::WriteOutcome, FtlError> {
        let plan = self.write_plan();
        let mut st = self.storage.lock();
        let st = &mut *st;
        let was_alive = !st.ftl.is_dead();
        match st.ftl.write(&mut st.nand, lpn, data, &plan) {
            Ok(outcome) => {
                let amp = st.ftl.write_amp_milli();
                self.note_write_outcome(&outcome, amp);
                Ok(outcome)
            }
            Err(e) => {
                if was_alive {
                    if let FtlError::PowerLoss { during_gc } = e {
                        if let Some(p) = self.fault() {
                            p.record_injected(
                                now,
                                FaultSite::PowerLoss,
                                if during_gc { "mid-gc" } else { "mid-write" },
                            );
                        }
                    }
                }
                Err(e)
            }
        }
    }

    /// Charges the per-request software overhead on the least-loaded core,
    /// starting no earlier than `now`; returns when the core finishes. An
    /// armed fault plan may draw a firmware stall here, extending the core
    /// occupancy by the configured stall time.
    pub fn charge_request_overhead(&self, now: SimTime) -> SimTime {
        let (idx, _) = self.cores.least_loaded();
        let mut overhead = self.cfg.request_overhead;
        if let Some(plan) = self.fault() {
            if let Some(stall) = plan.core_stall() {
                plan.record_injected(now, FaultSite::CoreStall, "firmware stall");
                plan.record_recovered(now + stall, FaultSite::CoreStall, "resume");
                overhead += stall;
            }
        }
        let end = self.cores.enqueue(now, idx, overhead);
        if let Some(q) = self.qprof() {
            // The window includes queueing behind other requests on the
            // core; the profile sweep surfaces that as blocked time.
            q.record(Stage::SsdletCompute, now, end, 0, idx as u32);
        }
        end
    }

    /// Applies a drawn NAND read fault to a page sense that ended at
    /// `die_end`: each retry re-senses the page (one extra tR on the same
    /// die, traced as another NAND op), and an uncorrectable draw escalates
    /// to the FTL retiring the failing block — the data survives because the
    /// final retry rescues it before the block leaves circulation.
    fn apply_nand_read_fault(&self, lpn: u64, ppa: Ppa, mut die_end: SimTime) -> SimTime {
        let Some(plan) = self.fault() else {
            return die_end;
        };
        let Some(f) = plan.nand_read_fault() else {
            return die_end;
        };
        // Mid-chain disruption: whoever is building a chain descriptor
        // around this sense must de-fuse (see `fault_epoch`).
        self.fault_epoch.fetch_add(1, Ordering::Relaxed);
        plan.record_injected(
            die_end,
            FaultSite::NandRead,
            &format!(
                "lpn {lpn} retries {} uncorrectable {}",
                f.retries, f.uncorrectable
            ),
        );
        for _ in 0..f.retries {
            let (rs, re) = self
                .dies
                .enqueue_span(die_end, self.die_index(ppa), self.cfg.t_read);
            if let Some(tracer) = self.trace() {
                tracer.emit(|| TraceEvent::NandOp {
                    kind: NandOpKind::Read,
                    channel: ppa.channel,
                    way: ppa.way,
                    start: rs,
                    end: re,
                });
            }
            if let Some(m) = self.instruments() {
                let ch = &m.channels[ppa.channel as usize];
                ch.nand_read.inc();
                ch.nand_busy_ps.add((re - rs).as_ps());
            }
            die_end = re;
        }
        if f.uncorrectable {
            let blk = (ppa.channel, ppa.way, ppa.block);
            let (newly_bad, moved, retired) = {
                let mut st = self.storage.lock();
                let st = &mut *st;
                let before = st.ftl.bad_blocks();
                match st.ftl.retire_block(&mut st.nand, blk) {
                    Ok(moved) => (st.ftl.bad_blocks() - before, moved, true),
                    // Over-provisioning exhausted (or the device already
                    // crashed): the block cannot be fully evacuated, so it
                    // stays in service. The payload itself already survived
                    // via the read retries above.
                    Err(_) => (st.ftl.bad_blocks() - before, 0, false),
                }
            };
            if let Some(m) = self.instruments() {
                m.ftl_bad_blocks.add(newly_bad);
                m.ftl_remapped_pages.add(moved);
            }
            if retired {
                plan.record_recovered(die_end, FaultSite::NandRead, "block_retire");
            } else {
                plan.record_failed(die_end, FaultSite::NandRead, "retire_exhausted");
            }
        } else {
            plan.record_recovered(die_end, FaultSite::NandRead, "read_retry");
        }
        die_end
    }

    /// Non-blocking single-page read: reserves die + bus time and returns
    /// `(completion_time, data)`. `bytes` caps the bus transfer (≤ page).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] for an out-of-range page.
    pub fn enqueue_read(
        &self,
        start: SimTime,
        lpn: u64,
        bytes: usize,
    ) -> DeviceResult<(SimTime, PageBuf)> {
        self.enqueue_read_chained(start, lpn, bytes, None)
    }

    /// [`SsdDevice::enqueue_read`], additionally recording the page's
    /// NAND-sense and bus-transfer stages into a chain descriptor (the host
    /// I/O path builds its per-request chains this way).
    pub fn enqueue_read_chained(
        &self,
        start: SimTime,
        lpn: u64,
        bytes: usize,
        mut chain: Option<&mut ChainDesc>,
    ) -> DeviceResult<(SimTime, PageBuf)> {
        let (ppa, data) = self.fetch(lpn)?;
        let buf = match data {
            Some(d) => self.materialize_counted(&d),
            None => self.zero_page.clone(),
        };
        let (die_start, die_end) =
            self.dies
                .enqueue_span(start, self.die_index(ppa), self.cfg.t_read);
        let die_done = self.apply_nand_read_fault(lpn, ppa, die_end);
        let xfer_bytes = bytes.min(self.cfg.page_size) as u64;
        let xfer = SimDuration::for_bytes(xfer_bytes, self.cfg.channel_rate);
        let (bus_start, bus_end) = self
            .buses
            .enqueue_span(die_done, ppa.channel as usize, xfer);
        if let Some(chain) = chain.as_deref_mut() {
            chain.push(StageKind::NandSense, die_start, die_done);
            chain.push(StageKind::BusTransfer, bus_start, bus_end);
        }
        if let Some(tracer) = self.trace() {
            tracer.emit(|| TraceEvent::NandOp {
                kind: NandOpKind::Read,
                channel: ppa.channel,
                way: ppa.way,
                start: die_start,
                end: die_end,
            });
            tracer.emit(|| TraceEvent::ChannelTransfer {
                channel: ppa.channel,
                start: bus_start,
                end: bus_end,
                bytes: xfer_bytes,
            });
        }
        if let Some(m) = self.instruments() {
            let ch = &m.channels[ppa.channel as usize];
            ch.nand_read.inc();
            ch.nand_busy_ps.add((die_end - die_start).as_ps());
            ch.read_wait_ps.record((die_start - start).as_ps());
            ch.bus_bytes.add(xfer_bytes);
            ch.bus_busy_ps.add((bus_end - bus_start).as_ps());
            m.pages_read.inc();
        }
        if let Some(q) = self.qprof() {
            // die_done extends past die_end when fault retries re-sensed
            // the page, so the span closes over the whole recovery.
            q.record(Stage::NandRead, die_start, die_done, 0, ppa.channel);
            q.record(
                Stage::BusTransfer,
                bus_start,
                bus_end,
                xfer_bytes,
                ppa.channel,
            );
        }
        self.stats.pages_read.add(1);
        Ok((bus_end, buf))
    }

    /// Non-blocking pattern-matched page scan: the page streams through the
    /// per-channel matcher IP at `pm_rate`; only a match surfaces data.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] for an out-of-range page.
    pub fn enqueue_scan(
        &self,
        start: SimTime,
        lpn: u64,
        pattern: &PatternSet,
    ) -> DeviceResult<(SimTime, Option<PageBuf>)> {
        self.enqueue_scan_chained(start, lpn, pattern, None)
    }

    /// [`SsdDevice::enqueue_scan`] recording the page's sense and matcher
    /// stages into a chain descriptor.
    fn enqueue_scan_chained(
        &self,
        start: SimTime,
        lpn: u64,
        pattern: &PatternSet,
        mut chain: Option<&mut ChainDesc>,
    ) -> DeviceResult<(SimTime, Option<PageBuf>)> {
        let (ppa, data) = self.fetch(lpn)?;
        let (die_start, die_end) =
            self.dies
                .enqueue_span(start, self.die_index(ppa), self.cfg.t_read);
        let die_done = self.apply_nand_read_fault(lpn, ppa, die_end);
        let xfer = pattern.scan_time(self.cfg.page_size as u64, self.cfg.pm_rate);
        let (bus_start, bus_end) = self
            .buses
            .enqueue_span(die_done, ppa.channel as usize, xfer);
        if let Some(chain) = chain.as_deref_mut() {
            chain.push(StageKind::NandSense, die_start, die_done);
            chain.push(StageKind::MatcherScan, bus_start, bus_end);
        }
        self.stats.pages_scanned.add(1);
        let hit = match data {
            Some(d) => {
                let buf = self.materialize_counted(&d);
                if pattern.matches(&buf) {
                    self.stats.pages_matched.add(1);
                    Some(buf)
                } else {
                    None
                }
            }
            None => None,
        };
        if let Some(tracer) = self.trace() {
            let matched = hit.is_some();
            tracer.emit(|| TraceEvent::NandOp {
                kind: NandOpKind::Read,
                channel: ppa.channel,
                way: ppa.way,
                start: die_start,
                end: die_end,
            });
            tracer.emit(|| TraceEvent::PatternScan {
                channel: ppa.channel,
                start: bus_start,
                end: bus_end,
                bytes: self.cfg.page_size as u64,
                matched,
            });
        }
        if let Some(m) = self.instruments() {
            let ch = &m.channels[ppa.channel as usize];
            ch.nand_read.inc();
            ch.nand_busy_ps.add((die_end - die_start).as_ps());
            ch.read_wait_ps.record((die_start - start).as_ps());
            ch.pm_scans.inc();
            ch.pm_bytes.add(self.cfg.page_size as u64);
            ch.pm_busy_ps.add((bus_end - bus_start).as_ps());
            m.pages_scanned.inc();
            if hit.is_some() {
                ch.pm_hits.inc();
                m.pages_matched.inc();
            }
        }
        if let Some(q) = self.qprof() {
            q.record(Stage::NandRead, die_start, die_done, 0, ppa.channel);
            q.record(
                Stage::Match,
                bus_start,
                bus_end,
                self.cfg.page_size as u64,
                ppa.channel,
            );
        }
        Ok((bus_end, hit))
    }

    /// Synchronous read of one request spanning `lpns` (striped across
    /// channels), blocking the fiber until the slowest page arrives.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] if any page is out of range.
    pub fn read_pages(&self, ctx: &Ctx, lpns: &[u64]) -> DeviceResult<Vec<PageBuf>> {
        self.power_busy(ctx.now());
        let result = self.read_pages_inner(ctx, lpns);
        self.power_idle(ctx.now());
        result
    }

    fn read_pages_inner(&self, ctx: &Ctx, lpns: &[u64]) -> DeviceResult<Vec<PageBuf>> {
        let start = self.charge_request_overhead(ctx.now());
        let epoch = self.fault_epoch();
        let mut chain = ChainDesc::new();
        let mut out = Vec::with_capacity(lpns.len());
        let mut end = start;
        for &lpn in lpns {
            let (t, buf) =
                self.enqueue_read_chained(start, lpn, self.cfg.page_size, Some(&mut chain))?;
            end = end.max(t);
            out.push(buf);
        }
        // An ECC retry was drawn while building this request: de-fuse so the
        // perturbed completion goes through the event heap like any other
        // rare-path wake.
        if self.fault_epoch() != epoch {
            chain.defuse();
        }
        chain.set_completion(end);
        ctx.run_chain(chain);
        Ok(out)
    }

    /// Synchronous read of `(lpn, bytes)` page spans in one request; only
    /// the touched bytes occupy the channel buses (a 4 KiB read of a 16 KiB
    /// page pays a 4 KiB transfer — the Table III small-read path).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] if any page is out of range.
    pub fn read_spans(&self, ctx: &Ctx, spans: &[(u64, usize)]) -> DeviceResult<Vec<PageBuf>> {
        self.power_busy(ctx.now());
        let result = (|| {
            let start = self.charge_request_overhead(ctx.now());
            let epoch = self.fault_epoch();
            let mut chain = ChainDesc::new();
            let mut out = Vec::with_capacity(spans.len());
            let mut end = start;
            for &(lpn, bytes) in spans {
                let (t, buf) = self.enqueue_read_chained(start, lpn, bytes, Some(&mut chain))?;
                end = end.max(t);
                out.push(buf);
            }
            if self.fault_epoch() != epoch {
                chain.defuse();
            }
            chain.set_completion(end);
            ctx.run_chain(chain);
            Ok(out)
        })();
        self.power_idle(ctx.now());
        result
    }

    /// Asynchronous read: splits `lpns` into requests of `request_pages`
    /// pages and keeps up to `queue_depth` requests in flight.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] if any page is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `request_pages` or `queue_depth` is zero.
    pub fn read_pages_async(
        &self,
        ctx: &Ctx,
        lpns: &[u64],
        request_pages: usize,
        queue_depth: usize,
    ) -> DeviceResult<Vec<PageBuf>> {
        assert!(request_pages > 0 && queue_depth > 0);
        self.power_busy(ctx.now());
        let result = (|| {
            let mut out = Vec::with_capacity(lpns.len());
            let mut inflight: std::collections::VecDeque<ChainDesc> = Default::default();
            for chunk in lpns.chunks(request_pages) {
                if inflight.len() >= queue_depth {
                    let earliest = inflight.pop_front().expect("inflight nonempty");
                    ctx.run_chain(earliest);
                }
                let start = self.charge_request_overhead(ctx.now());
                let epoch = self.fault_epoch();
                let mut chain = ChainDesc::new();
                let mut end = start;
                for &lpn in chunk {
                    let (t, buf) = self.enqueue_read_chained(
                        start,
                        lpn,
                        self.cfg.page_size,
                        Some(&mut chain),
                    )?;
                    end = end.max(t);
                    out.push(buf);
                }
                if self.fault_epoch() != epoch {
                    chain.defuse();
                }
                chain.set_completion(end);
                inflight.push_back(chain);
            }
            // Only the newest in-flight request gates batch completion (its
            // completion time dominates); the rest are dropped unexecuted,
            // exactly as their wake times were dropped unslept before.
            if let Some(chain) = inflight.pop_back() {
                ctx.run_chain(chain);
            }
            Ok(out)
        })();
        self.power_idle(ctx.now());
        result
    }

    /// Pattern-matched scan over `lpns` with the per-channel matcher IP.
    /// Returns only matching pages, tagged with their logical page number.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] if any page is out of range.
    ///
    /// # Panics
    ///
    /// Panics if `request_pages` or `queue_depth` is zero.
    pub fn scan_pages(
        &self,
        ctx: &Ctx,
        lpns: &[u64],
        pattern: &PatternSet,
        request_pages: usize,
        queue_depth: usize,
    ) -> DeviceResult<Vec<(u64, PageBuf)>> {
        assert!(request_pages > 0 && queue_depth > 0);
        self.power_busy(ctx.now());
        let result = (|| {
            let mut out = Vec::new();
            let mut inflight: std::collections::VecDeque<ChainDesc> = Default::default();
            for chunk in lpns.chunks(request_pages) {
                if inflight.len() >= queue_depth {
                    let earliest = inflight.pop_front().expect("inflight nonempty");
                    ctx.run_chain(earliest);
                }
                // IP setup costs software time on a core per request.
                let (core, _) = self.cores.least_loaded();
                let start = self
                    .cores
                    .enqueue(ctx.now(), core, self.cfg.pm_setup_overhead);
                if let Some(q) = self.qprof() {
                    q.record(Stage::SsdletCompute, ctx.now(), start, 0, core as u32);
                }
                let epoch = self.fault_epoch();
                let mut chain = ChainDesc::new();
                let mut end = start;
                for &lpn in chunk {
                    let (t, hit) =
                        self.enqueue_scan_chained(start, lpn, pattern, Some(&mut chain))?;
                    end = end.max(t);
                    if let Some(buf) = hit {
                        out.push((lpn, buf));
                    }
                }
                if self.fault_epoch() != epoch {
                    chain.defuse();
                }
                chain.set_completion(end);
                inflight.push_back(chain);
            }
            if let Some(chain) = inflight.pop_back() {
                ctx.run_chain(chain);
            }
            Ok(out)
        })();
        self.power_idle(ctx.now());
        result
    }

    /// Timed write of one page. GC work triggered by the write is charged to
    /// the calling fiber (relocations + erase time), as on real firmware
    /// where a colliding host write stalls behind GC.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadWriteSize`] or [`DeviceError::Ftl`].
    pub fn write_page(&self, ctx: &Ctx, lpn: u64, data: &[u8]) -> DeviceResult<()> {
        if data.len() > self.cfg.page_size {
            return Err(DeviceError::BadWriteSize {
                got: data.len(),
                page_size: self.cfg.page_size,
            });
        }
        self.power_busy(ctx.now());
        let result = (|| {
            self.count_copy(CopySite::WriteStage, self.cfg.page_size as u64);
            let mut frame = self.pool.take();
            frame.as_mut_slice()[..data.len()].copy_from_slice(data);
            let outcome = self.ftl_write(ctx.now(), lpn, PageData::Bytes(frame.freeze()))?;
            let ppa = self
                .storage
                .lock()
                .ftl
                .lookup(lpn)
                .expect("checked")
                .expect("just written");
            let start = self.charge_request_overhead(ctx.now());
            let (die_start, die_end) =
                self.dies
                    .enqueue_span(start, self.die_index(ppa), self.cfg.t_program);
            let xfer = SimDuration::for_bytes(self.cfg.page_size as u64, self.cfg.channel_rate);
            let (bus_start, bus_end) = self.buses.enqueue_span(die_end, ppa.channel as usize, xfer);
            let mut end = bus_end;
            // Amortized GC penalty.
            if outcome.relocated > 0 || outcome.erased_blocks > 0 {
                let gc_time = (self.cfg.t_read + self.cfg.t_program) * outcome.relocated
                    + self.cfg.t_erase * outcome.erased_blocks;
                end += gc_time;
            }
            let mut chain = ChainDesc::new();
            chain.push(StageKind::ProgramJournal, die_start, die_end);
            chain.push(StageKind::BusTransfer, bus_start, bus_end);
            if end > bus_end {
                // GC relocations + erase ride the same chain as a tail stage.
                chain.push(StageKind::ProgramJournal, bus_end, end);
            }
            chain.set_completion(end);
            if let Some(tracer) = self.trace() {
                tracer.emit(|| TraceEvent::NandOp {
                    kind: NandOpKind::Program,
                    channel: ppa.channel,
                    way: ppa.way,
                    start: die_start,
                    end: die_end,
                });
                tracer.emit(|| TraceEvent::ChannelTransfer {
                    channel: ppa.channel,
                    start: bus_start,
                    end: bus_end,
                    bytes: self.cfg.page_size as u64,
                });
                if end > bus_end {
                    tracer.emit(|| TraceEvent::NandOp {
                        kind: NandOpKind::Erase,
                        channel: ppa.channel,
                        way: ppa.way,
                        start: bus_end,
                        end,
                    });
                }
            }
            if let Some(m) = self.instruments() {
                let ch = &m.channels[ppa.channel as usize];
                ch.nand_program.inc();
                ch.nand_busy_ps.add((die_end - die_start).as_ps());
                ch.write_wait_ps.record((die_start - start).as_ps());
                ch.bus_bytes.add(self.cfg.page_size as u64);
                ch.bus_busy_ps.add((bus_end - bus_start).as_ps());
                if end > bus_end {
                    ch.nand_erase.add(outcome.erased_blocks);
                    ch.nand_busy_ps.add((end - bus_end).as_ps());
                }
                m.pages_written.inc();
            }
            if let Some(q) = self.qprof() {
                q.record(Stage::NandRead, die_start, die_end, 0, ppa.channel);
                q.record(
                    Stage::BusTransfer,
                    bus_start,
                    bus_end,
                    self.cfg.page_size as u64,
                    ppa.channel,
                );
                if end > bus_end {
                    // GC stall charged to this write (relocation reads +
                    // programs + the erase), attributed as die time.
                    q.record(Stage::NandRead, bus_end, end, 0, ppa.channel);
                }
            }
            self.stats.pages_written.add(1);
            ctx.run_chain(chain);
            Ok(())
        })();
        self.power_idle(ctx.now());
        result
    }

    /// Asynchronous write of whole pages: FTL allocations happen up front,
    /// program operations pipeline across dies with up to `queue_depth`
    /// in flight, and the fiber blocks only on the final completion (the
    /// paper's asynchronous write API, §III-D). GC work triggered along the
    /// way is charged at the end, like a flush absorbing the stall.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadWriteSize`] or [`DeviceError::Ftl`].
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn write_pages_async(
        &self,
        ctx: &Ctx,
        pages: &[(u64, Vec<u8>)],
        queue_depth: usize,
    ) -> DeviceResult<()> {
        assert!(queue_depth > 0);
        self.power_busy(ctx.now());
        let result = (|| {
            let mut gc_penalty = SimDuration::ZERO;
            let mut inflight: std::collections::VecDeque<ChainDesc> = Default::default();
            for (lpn, data) in pages {
                if data.len() > self.cfg.page_size {
                    return Err(DeviceError::BadWriteSize {
                        got: data.len(),
                        page_size: self.cfg.page_size,
                    });
                }
                self.count_copy(CopySite::WriteStage, self.cfg.page_size as u64);
                let mut frame = self.pool.take();
                frame.as_mut_slice()[..data.len()].copy_from_slice(data);
                self.write_one_async(
                    ctx,
                    *lpn,
                    PageData::Bytes(frame.freeze()),
                    &mut inflight,
                    queue_depth,
                    &mut gc_penalty,
                )?;
            }
            if let Some(chain) = inflight.pop_back() {
                ctx.run_chain(chain);
            }
            self.charge_gc_penalty(ctx, gc_penalty);
            Ok(())
        })();
        self.power_idle(ctx.now());
        result
    }

    /// Asynchronous write of pre-staged device page frames: like
    /// [`SsdDevice::write_pages_async`] but the payloads are already full
    /// page buffers (typically taken from [`SsdDevice::frame_pool`] and
    /// filled in place), so no staging copy happens here — the zero-copy
    /// write path the filesystem uses.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::BadWriteSize`] if a buffer is not exactly one
    /// page, or [`DeviceError::Ftl`].
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn write_bufs_async(
        &self,
        ctx: &Ctx,
        pages: &[(u64, PageBuf)],
        queue_depth: usize,
    ) -> DeviceResult<()> {
        assert!(queue_depth > 0);
        self.power_busy(ctx.now());
        let result = (|| {
            let mut gc_penalty = SimDuration::ZERO;
            let mut inflight: std::collections::VecDeque<ChainDesc> = Default::default();
            for (lpn, buf) in pages {
                if buf.len() != self.cfg.page_size {
                    return Err(DeviceError::BadWriteSize {
                        got: buf.len(),
                        page_size: self.cfg.page_size,
                    });
                }
                self.write_one_async(
                    ctx,
                    *lpn,
                    PageData::Bytes(buf.clone()),
                    &mut inflight,
                    queue_depth,
                    &mut gc_penalty,
                )?;
            }
            if let Some(chain) = inflight.pop_back() {
                ctx.run_chain(chain);
            }
            self.charge_gc_penalty(ctx, gc_penalty);
            Ok(())
        })();
        self.power_idle(ctx.now());
        result
    }

    /// One page of the asynchronous write pipeline: FTL allocation (and any
    /// GC it triggers), die program, bus transfer, instrumentation.
    fn write_one_async(
        &self,
        ctx: &Ctx,
        lpn: u64,
        data: PageData,
        inflight: &mut std::collections::VecDeque<ChainDesc>,
        queue_depth: usize,
        gc_penalty: &mut SimDuration,
    ) -> DeviceResult<()> {
        if inflight.len() >= queue_depth {
            let earliest = inflight.pop_front().expect("nonempty");
            ctx.run_chain(earliest);
        }
        let outcome = self.ftl_write(ctx.now(), lpn, data)?;
        let ppa = self
            .storage
            .lock()
            .ftl
            .lookup(lpn)
            .expect("checked")
            .expect("just written");
        let start = self.charge_request_overhead(ctx.now());
        let (die_start, die_end) =
            self.dies
                .enqueue_span(start, self.die_index(ppa), self.cfg.t_program);
        let xfer = SimDuration::for_bytes(self.cfg.page_size as u64, self.cfg.channel_rate);
        let (bus_start, end) = self.buses.enqueue_span(die_end, ppa.channel as usize, xfer);
        if let Some(tracer) = self.trace() {
            tracer.emit(|| TraceEvent::NandOp {
                kind: NandOpKind::Program,
                channel: ppa.channel,
                way: ppa.way,
                start: die_start,
                end: die_end,
            });
            tracer.emit(|| TraceEvent::ChannelTransfer {
                channel: ppa.channel,
                start: bus_start,
                end,
                bytes: self.cfg.page_size as u64,
            });
        }
        if let Some(m) = self.instruments() {
            let ch = &m.channels[ppa.channel as usize];
            ch.nand_program.inc();
            ch.nand_busy_ps.add((die_end - die_start).as_ps());
            ch.write_wait_ps.record((die_start - start).as_ps());
            ch.bus_bytes.add(self.cfg.page_size as u64);
            ch.bus_busy_ps.add((end - bus_start).as_ps());
            ch.nand_erase.add(outcome.erased_blocks);
            m.pages_written.inc();
        }
        if let Some(q) = self.qprof() {
            q.record(Stage::NandRead, die_start, die_end, 0, ppa.channel);
            q.record(
                Stage::BusTransfer,
                bus_start,
                end,
                self.cfg.page_size as u64,
                ppa.channel,
            );
        }
        *gc_penalty += (self.cfg.t_read + self.cfg.t_program) * outcome.relocated
            + self.cfg.t_erase * outcome.erased_blocks;
        self.stats.pages_written.add(1);
        let mut chain = ChainDesc::new();
        chain.push(StageKind::ProgramJournal, die_start, die_end);
        chain.push(StageKind::BusTransfer, bus_start, end);
        chain.set_completion(end);
        inflight.push_back(chain);
        Ok(())
    }

    /// Charges accumulated GC time at the end of an asynchronous write
    /// batch (a flush absorbing the stall), attributing it as die time.
    fn charge_gc_penalty(&self, ctx: &Ctx, gc_penalty: SimDuration) {
        let start = ctx.now();
        ctx.advance(gc_penalty);
        if gc_penalty > SimDuration::ZERO {
            if let Some(q) = self.qprof() {
                q.record(Stage::NandRead, start, ctx.now(), 0, 0);
            }
        }
    }

    /// Untimed bulk load used by workload generators to populate the device
    /// before an experiment (the paper pre-loads datasets the same way —
    /// load time is not part of any measured result).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] for out-of-range pages.
    pub fn load_page(&self, lpn: u64, data: PageData) -> DeviceResult<()> {
        self.ftl_write(SimTime::ZERO, lpn, data)?;
        Ok(())
    }

    /// Untimed bulk load of a byte buffer starting at `lpn_start`, split
    /// into pages (the tail page is zero-padded).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] for out-of-range pages.
    pub fn load_bytes(&self, lpn_start: u64, bytes: &[u8]) -> DeviceResult<()> {
        let ps = self.cfg.page_size;
        for (i, chunk) in bytes.chunks(ps).enumerate() {
            self.count_copy(CopySite::WriteStage, ps as u64);
            let mut frame = self.pool.take();
            frame.as_mut_slice()[..chunk.len()].copy_from_slice(chunk);
            self.load_page(lpn_start + i as u64, PageData::Bytes(frame.freeze()))?;
        }
        Ok(())
    }

    /// Unmaps a logical page (TRIM). The freed physical page becomes GC
    /// fodder; subsequent reads return zeroes.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] for out-of-range pages.
    pub fn trim_page(&self, lpn: u64) -> DeviceResult<()> {
        let mut st = self.storage.lock();
        st.ftl.trim(lpn)?;
        Ok(())
    }

    /// Untimed read used by tests and by setup code (not part of any
    /// measured path).
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::Ftl`] for out-of-range pages.
    pub fn peek_page(&self, lpn: u64) -> DeviceResult<PageBuf> {
        let (_, data) = self.fetch(lpn)?;
        Ok(match data {
            Some(d) => self.materialize_counted(&d),
            None => self.zero_page.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_sim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn small_cfg() -> SsdConfig {
        SsdConfig {
            logical_capacity: 64 << 20, // 64 MiB keeps maps tiny
            ..SsdConfig::paper_default()
        }
    }

    #[test]
    fn single_4k_read_latency_matches_table3() {
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        dev.load_bytes(0, &vec![1u8; 16 * 1024]).unwrap();
        let d = Arc::clone(&dev);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("r", move |ctx| {
            let start = ctx.now();
            let (end, _) = d
                .enqueue_read(d.charge_request_overhead(start), 0, 4096)
                .unwrap();
            ctx.sleep_until(end);
            t2.store((ctx.now() - start).as_nanos(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let us = t.load(Ordering::SeqCst) as f64 / 1000.0;
        assert!(
            (74.5..77.5).contains(&us),
            "internal 4KiB read took {us}us, expected ~75.9us"
        );
    }

    #[test]
    fn read_returns_written_data() {
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        let d = Arc::clone(&dev);
        sim.spawn("rw", move |ctx| {
            d.write_page(ctx, 7, b"hello device").unwrap();
            let pages = d.read_pages(ctx, &[7]).unwrap();
            assert_eq!(&pages[0][..12], b"hello device");
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn unwritten_page_reads_zero() {
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        let d = Arc::clone(&dev);
        sim.spawn("r", move |ctx| {
            let pages = d.read_pages(ctx, &[100]).unwrap();
            assert!(pages[0].iter().all(|&b| b == 0));
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn async_read_beats_sync_on_large_transfers() {
        // 16 MiB: sync (one request at a time, qd=1 chunks) vs async qd=32.
        let cfg = small_cfg();
        let pages_total = (16 << 20) / cfg.page_size as u64;
        let lpns: Vec<u64> = (0..pages_total).collect();

        fn run(lpns: Vec<u64>, chunk: usize, qd: usize) -> f64 {
            let sim = Simulation::new(0);
            let dev = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 64 << 20,
                ..SsdConfig::paper_default()
            }));
            let t = Arc::new(AtomicU64::new(0));
            let t2 = Arc::clone(&t);
            sim.spawn("r", move |ctx| {
                dev.read_pages_async(ctx, &lpns, chunk, qd).unwrap();
                t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
            });
            sim.run().assert_quiescent();
            t.load(Ordering::SeqCst) as f64 / 1e9
        }
        let sync_secs = run(lpns.clone(), 8, 1);
        let async_secs = run(lpns, 8, 32);
        assert!(
            async_secs < sync_secs,
            "async {async_secs}s should beat sync {sync_secs}s"
        );
    }

    #[test]
    fn internal_bandwidth_exceeds_host_cap() {
        // Async full-stripe read of 64 MiB approaches aggregate channel BW.
        let cfg = small_cfg();
        let pages_total = (64 << 20) / cfg.page_size as u64;
        let lpns: Vec<u64> = (0..pages_total).collect();
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(cfg));
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("r", move |ctx| {
            dev.read_pages_async(ctx, &lpns, 64, 32).unwrap();
            t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let secs = t.load(Ordering::SeqCst) as f64 / 1e9;
        let gbps = (64u64 << 20) as f64 / secs / 1e9;
        assert!(
            gbps > 3.2 * 1.25,
            "internal bandwidth {gbps} GB/s should exceed host cap by >25%"
        );
    }

    #[test]
    fn scan_returns_only_matching_pages() {
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        let ps = dev.config().page_size;
        // Page 0 and 2 contain the needle; page 1 does not.
        let mut p0 = vec![b'x'; ps];
        p0[100..106].copy_from_slice(b"needle");
        let p1 = vec![b'y'; ps];
        let mut p2 = vec![b'z'; ps];
        p2[0..6].copy_from_slice(b"needle");
        dev.load_bytes(0, &p0).unwrap();
        dev.load_bytes(1, &p1).unwrap();
        dev.load_bytes(2, &p2).unwrap();
        let d = Arc::clone(&dev);
        sim.spawn("s", move |ctx| {
            let pat = PatternSet::from_strs(&["needle"]).unwrap();
            let hits = d.scan_pages(ctx, &[0, 1, 2], &pat, 8, 4).unwrap();
            let lpns: Vec<u64> = hits.iter().map(|&(l, _)| l).collect();
            assert_eq!(lpns, vec![0, 2]);
        });
        sim.run().assert_quiescent();
        assert_eq!(dev.stats().pages_scanned.get(), 3);
        assert_eq!(dev.stats().pages_matched.get(), 2);
    }

    #[test]
    fn scan_bandwidth_between_conv_and_raw() {
        // Pattern-matched streaming should be under raw internal BW but
        // above the 3.2 GB/s host cap (Fig. 7 ordering).
        let cfg = small_cfg();
        let pages_total = (64 << 20) / cfg.page_size as u64;
        let lpns: Vec<u64> = (0..pages_total).collect();
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(cfg));
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("s", move |ctx| {
            let pat = PatternSet::from_strs(&["nomatch"]).unwrap();
            dev.scan_pages(ctx, &lpns, &pat, 64, 32).unwrap();
            t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let secs = t.load(Ordering::SeqCst) as f64 / 1e9;
        let gbps = (64u64 << 20) as f64 / secs / 1e9;
        assert!(
            gbps > 3.2 && gbps < 4.8,
            "pattern-matched bandwidth {gbps} GB/s should sit between Conv and raw"
        );
    }

    #[test]
    fn write_too_large_rejected() {
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        let ps = dev.config().page_size;
        let d = Arc::clone(&dev);
        sim.spawn("w", move |ctx| {
            let err = d.write_page(ctx, 0, &vec![0u8; ps + 1]).unwrap_err();
            assert!(matches!(err, DeviceError::BadWriteSize { .. }));
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn out_of_range_read_errors() {
        let dev = SsdDevice::new(small_cfg());
        let max = dev.config().logical_pages();
        assert!(matches!(
            dev.peek_page(max),
            Err(DeviceError::Ftl(FtlError::LpnOutOfRange { .. }))
        ));
    }

    #[test]
    fn read_retry_fault_adds_latency_but_keeps_data() {
        use biscuit_sim::fault::{FaultConfig, FaultPlan, FaultSite};

        fn timed_read(plan: FaultPlan) -> (u64, Vec<u8>) {
            let sim = Simulation::new(0);
            let dev = Arc::new(SsdDevice::new(small_cfg()));
            dev.set_fault_plan(&plan);
            dev.load_bytes(0, &vec![0x5A; 16 * 1024]).unwrap();
            let d = Arc::clone(&dev);
            let t = Arc::new(AtomicU64::new(0));
            let t2 = Arc::clone(&t);
            let data = Arc::new(Mutex::new(Vec::new()));
            let data2 = Arc::clone(&data);
            sim.spawn("r", move |ctx| {
                let start = ctx.now();
                let pages = d.read_pages(ctx, &[0]).unwrap();
                t2.store((ctx.now() - start).as_nanos(), Ordering::SeqCst);
                *data2.lock() = pages[0][..64].to_vec();
            });
            sim.run().assert_quiescent();
            let bytes = data.lock().clone();
            (t.load(Ordering::SeqCst), bytes)
        }

        let (clean_ns, clean_data) = timed_read(FaultPlan::none());
        let plan = FaultPlan::seeded(
            42,
            FaultConfig {
                nand_read_error_rate: 1.0,
                ..FaultConfig::default()
            },
        );
        let (faulty_ns, faulty_data) = timed_read(plan.clone());
        assert_eq!(faulty_data, clean_data, "retries must not corrupt data");
        assert!(
            faulty_ns > clean_ns,
            "read retries must cost time: {faulty_ns} <= {clean_ns}"
        );
        assert!(plan.injected_at(FaultSite::NandRead) > 0);
        assert_eq!(
            plan.injected_at(FaultSite::NandRead),
            plan.recovered_at(FaultSite::NandRead),
            "every injected read error must be recovered"
        );
    }

    #[test]
    fn uncorrectable_read_retires_block_and_preserves_data() {
        use biscuit_sim::fault::{FaultConfig, FaultPlan};

        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        let plan = FaultPlan::seeded(
            7,
            FaultConfig {
                nand_read_error_rate: 1.0,
                nand_uncorrectable_rate: 1.0,
                ..FaultConfig::default()
            },
        );
        dev.set_fault_plan(&plan);
        let d = Arc::clone(&dev);
        sim.spawn("rw", move |ctx| {
            d.write_page(ctx, 3, b"fragile payload").unwrap();
            let pages = d.read_pages(ctx, &[3]).unwrap();
            assert_eq!(&pages[0][..15], b"fragile payload");
            // The block retired; a re-read hits the remapped copy.
            let again = d.read_pages(ctx, &[3]).unwrap();
            assert_eq!(&again[0][..15], b"fragile payload");
        });
        sim.run().assert_quiescent();
        let (bad, remapped) = dev.bad_block_stats();
        assert!(bad >= 1, "uncorrectable read must retire its block");
        assert!(remapped >= 1, "the surviving page must be remapped");
    }

    #[test]
    fn inactive_fault_plan_changes_nothing() {
        fn timed_read(arm: bool) -> u64 {
            let sim = Simulation::new(0);
            let dev = Arc::new(SsdDevice::new(small_cfg()));
            if arm {
                dev.set_fault_plan(&biscuit_sim::fault::FaultPlan::none());
            }
            dev.load_bytes(0, &vec![1u8; 16 * 1024]).unwrap();
            let d = Arc::clone(&dev);
            let t = Arc::new(AtomicU64::new(0));
            let t2 = Arc::clone(&t);
            sim.spawn("r", move |ctx| {
                d.read_pages(ctx, &[0]).unwrap();
                t2.store(ctx.now().as_nanos(), Ordering::SeqCst);
            });
            sim.run().assert_quiescent();
            t.load(Ordering::SeqCst)
        }
        assert_eq!(timed_read(false), timed_read(true));
    }

    #[test]
    fn power_hook_toggles_busy() {
        let sim = Simulation::new(0);
        let dev = Arc::new(SsdDevice::new(small_cfg()));
        let meter = Arc::new(PowerMeter::new());
        meter.register("base", 103.0, 103.0);
        let ssd = meter.register("ssd", 0.0, 33.0);
        dev.attach_power(Arc::clone(&meter), ssd);
        let d = Arc::clone(&dev);
        sim.spawn("r", move |ctx| {
            d.read_pages(ctx, &[0, 1, 2, 3]).unwrap();
        });
        sim.run().assert_quiescent();
        let trace = meter.trace();
        assert!(
            trace.iter().any(|&(_, p)| (p - 136.0).abs() < 1e-9),
            "expected a 136W busy interval, trace: {trace:?}"
        );
        assert!((meter.power_watts() - 103.0).abs() < 1e-9, "back to idle");
    }
}
