//! The per-channel hardware pattern matcher IP (paper §IV-A, Fig. 7).
//!
//! The target SSD carries a key-based matcher on every flash channel: given
//! at most three keywords of up to 16 bytes each, data streamed off the
//! channel flows through the matcher at channel rate and only matching
//! chunks are surfaced to the device CPU. This module reproduces both the
//! *functional* behaviour (real substring search over real page bytes) and
//! the *capability limits* the paper calls out — e.g. the TPC-H planner must
//! reject `NOT LIKE` predicates because the IP only reports presence.

use std::fmt;

/// Limits of the matcher hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternLimits {
    /// Maximum number of keywords per configuration.
    pub max_keys: usize,
    /// Maximum keyword length in bytes.
    pub max_key_len: usize,
}

impl Default for PatternLimits {
    fn default() -> Self {
        // Paper: "Given at most three keywords, each of which is up to 16
        // bytes long" (§V-A).
        PatternLimits {
            max_keys: 3,
            max_key_len: 16,
        }
    }
}

/// Why a pattern set was rejected by the hardware constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// No keywords were supplied.
    Empty,
    /// More keywords than the IP supports.
    TooManyKeys {
        /// Keywords supplied.
        got: usize,
        /// Hardware limit.
        max: usize,
    },
    /// A keyword exceeds the IP's length limit.
    KeyTooLong {
        /// Offending keyword index.
        index: usize,
        /// Its length.
        len: usize,
        /// Hardware limit.
        max: usize,
    },
    /// A keyword was empty (would match everything, which the IP rejects).
    EmptyKey {
        /// Offending keyword index.
        index: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => f.write_str("pattern set has no keywords"),
            PatternError::TooManyKeys { got, max } => {
                write!(f, "{got} keywords exceed the hardware limit of {max}")
            }
            PatternError::KeyTooLong { index, len, max } => {
                write!(f, "keyword {index} is {len} bytes, limit is {max}")
            }
            PatternError::EmptyKey { index } => write!(f, "keyword {index} is empty"),
        }
    }
}

impl std::error::Error for PatternError {}

/// A validated pattern-matcher configuration: up to `max_keys` keywords.
///
/// # Examples
///
/// ```
/// use biscuit_ssd::pattern::{PatternSet, PatternLimits};
///
/// let pat = PatternSet::new(
///     vec![b"1995-01-17".to_vec()],
///     PatternLimits::default(),
/// ).unwrap();
/// assert!(pat.matches(b"...|1995-01-17|3|..."));
/// assert!(!pat.matches(b"...|1996-01-17|3|..."));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSet {
    keys: Vec<Vec<u8>>,
    limits: PatternLimits,
}

impl PatternSet {
    /// Validates keywords against the hardware limits.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] describing the first violated constraint.
    pub fn new(keys: Vec<Vec<u8>>, limits: PatternLimits) -> Result<Self, PatternError> {
        if keys.is_empty() {
            return Err(PatternError::Empty);
        }
        if keys.len() > limits.max_keys {
            return Err(PatternError::TooManyKeys {
                got: keys.len(),
                max: limits.max_keys,
            });
        }
        for (index, k) in keys.iter().enumerate() {
            if k.is_empty() {
                return Err(PatternError::EmptyKey { index });
            }
            if k.len() > limits.max_key_len {
                return Err(PatternError::KeyTooLong {
                    index,
                    len: k.len(),
                    max: limits.max_key_len,
                });
            }
        }
        Ok(PatternSet { keys, limits })
    }

    /// Convenience constructor from string keywords with default limits.
    ///
    /// # Errors
    ///
    /// Returns a [`PatternError`] if the keywords violate the limits.
    pub fn from_strs(keys: &[&str]) -> Result<Self, PatternError> {
        Self::new(
            keys.iter().map(|s| s.as_bytes().to_vec()).collect(),
            PatternLimits::default(),
        )
    }

    /// The configured keywords.
    pub fn keys(&self) -> &[Vec<u8>] {
        &self.keys
    }

    /// The limits this set was validated against.
    pub fn limits(&self) -> PatternLimits {
        self.limits
    }

    /// Time for the matcher to stream `bytes` off the channel at `rate`
    /// bytes/sec. The IP runs at line rate regardless of key count (§IV-A),
    /// so the scan stage of a fused chain is a pure function of page size
    /// and the channel's pattern-match rate.
    pub fn scan_time(&self, bytes: u64, rate: f64) -> biscuit_sim::time::SimDuration {
        biscuit_sim::time::SimDuration::for_bytes(bytes, rate)
    }

    /// True if any keyword occurs in `data` (the IP's page-granular verdict).
    pub fn matches(&self, data: &[u8]) -> bool {
        self.keys.iter().any(|k| find_sub(data, k).is_some())
    }

    /// Byte offsets of every occurrence of every keyword (diagnostic /
    /// verification helper; the real IP only reports presence per chunk).
    pub fn find_all(&self, data: &[u8]) -> Vec<usize> {
        let mut hits = Vec::new();
        for k in &self.keys {
            let mut from = 0;
            while let Some(pos) = find_sub(&data[from..], k) {
                hits.push(from + pos);
                from += pos + 1;
                if from >= data.len() {
                    break;
                }
            }
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }
}

/// Substring search used by the matcher model. A straightforward memcmp scan
/// is plenty here: the *timing* of matching is modeled by the channel-rate
/// shaper in the device datapath, not by host CPU cycles.
fn find_sub(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    if needle.is_empty() || needle.len() > haystack.len() {
        return None;
    }
    let first = needle[0];
    let mut i = 0;
    while i + needle.len() <= haystack.len() {
        if haystack[i] == first && &haystack[i..i + needle.len()] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_up_to_three_keys() {
        assert!(PatternSet::from_strs(&["a"]).is_ok());
        assert!(PatternSet::from_strs(&["a", "b", "c"]).is_ok());
    }

    #[test]
    fn rejects_four_keys() {
        assert_eq!(
            PatternSet::from_strs(&["a", "b", "c", "d"]),
            Err(PatternError::TooManyKeys { got: 4, max: 3 })
        );
    }

    #[test]
    fn rejects_long_key() {
        let long = "x".repeat(17);
        assert_eq!(
            PatternSet::from_strs(&[&long]),
            Err(PatternError::KeyTooLong {
                index: 0,
                len: 17,
                max: 16
            })
        );
        let ok = "x".repeat(16);
        assert!(PatternSet::from_strs(&[&ok]).is_ok());
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(PatternSet::from_strs(&[]), Err(PatternError::Empty));
        assert_eq!(
            PatternSet::from_strs(&["a", ""]),
            Err(PatternError::EmptyKey { index: 1 })
        );
    }

    #[test]
    fn matches_any_keyword() {
        let p = PatternSet::from_strs(&["foo", "bar"]).unwrap();
        assert!(p.matches(b"xxbarxx"));
        assert!(p.matches(b"foo"));
        assert!(!p.matches(b"fobaz"));
        assert!(!p.matches(b""));
    }

    #[test]
    fn match_at_boundaries() {
        let p = PatternSet::from_strs(&["end"]).unwrap();
        assert!(p.matches(b"endxxxx"));
        assert!(p.matches(b"xxxxend"));
        assert!(!p.matches(b"en"));
    }

    #[test]
    fn find_all_reports_offsets() {
        let p = PatternSet::from_strs(&["ab"]).unwrap();
        assert_eq!(p.find_all(b"abxabab"), vec![0, 3, 5]);
    }

    #[test]
    fn overlapping_occurrences_found() {
        let p = PatternSet::from_strs(&["aa"]).unwrap();
        assert_eq!(p.find_all(b"aaaa"), vec![0, 1, 2]);
    }

    #[test]
    fn reference_equivalence_with_std() {
        let p = PatternSet::from_strs(&["needle"]).unwrap();
        let hay = "some text with a needle inside and neeedle decoys";
        assert_eq!(p.matches(hay.as_bytes()), hay.contains("needle"));
    }
}
