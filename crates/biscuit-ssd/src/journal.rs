//! Write-ahead redo journal for the FTL's logical-to-physical mapping.
//!
//! The journal is the only FTL state that survives a power loss (it models
//! the metadata region real drives keep on flash or in capacitor-backed
//! SRAM). It is a classic redo log in the style of Memento's
//! checkpoint-and-replay: a periodic full **checkpoint** of the L2P map
//! plus an ordered tail of **records**, each appended *before* the
//! physical operation it describes (write-ahead ordering). Recovery
//! restores the checkpoint, replays the tail in order, and cross-checks
//! every replayed mapping against the physical NAND array: a record whose
//! target page was never programmed is a *torn write* — the power failed
//! between the journal append and the NAND program — and rolls back to the
//! previous mapping, which is still intact on flash because blocks are
//! only erased after every relocation out of them is journaled and
//! programmed.
//!
//! Replay is idempotent by construction: records are applied in sequence
//! order to a state snapshot that the replay itself never feeds back into
//! the log, so replaying once, twice, or after a crash-during-recovery
//! always converges to the same map. `tests/crash_proptests.rs` proves
//! this for arbitrary write/trim/GC interleavings and crash instants.
//!
//! Free-space bookkeeping is deliberately *not* journaled. Which blocks
//! are free is derivable from physics: a non-bad block with zero
//! programmed pages is erased and reusable; any other block stays closed
//! until garbage collection erases it. Deriving the free list from a
//! physical census ([`NandArray::programmed_blocks`]) makes it impossible
//! for a stale journal to direct a program at a dirty page — the NAND
//! model's double-program panic enforces exactly the invariant real flash
//! enforces with read-only pages.
//!
//! [`NandArray::programmed_blocks`]: crate::nand::NandArray::programmed_blocks

use crate::nand::Ppa;

/// One redo record, appended before the physical operation it describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecord {
    /// `lpn` is about to be programmed at `new`; it previously lived at
    /// `old` (`None` for a first write). Covers both host writes and GC
    /// relocations — recovery treats them identically.
    Write {
        /// Logical page being written.
        lpn: u64,
        /// Destination physical page (programmed *after* this record).
        new: Ppa,
        /// Previous mapping to roll back to if the program was torn.
        old: Option<Ppa>,
    },
    /// `lpn` is about to be unmapped (host TRIM / file delete).
    Trim {
        /// Logical page being unmapped.
        lpn: u64,
    },
    /// Block `(channel, way, block)` is about to be retired as bad.
    Retire {
        /// Flash channel of the retired block.
        channel: u32,
        /// Die (way) of the retired block.
        way: u32,
        /// Block index of the retired block.
        block: u32,
    },
}

/// A full snapshot of the durable FTL state at one journal sequence
/// number. Checkpoint writes are modeled as atomic (real implementations
/// double-buffer two checkpoint slots and flip a sequence-stamped header,
/// so a torn checkpoint write leaves the previous slot valid).
#[derive(Debug, Clone, Default)]
pub struct Checkpoint {
    /// Journal sequence number this checkpoint covers through.
    pub seq: u64,
    /// The L2P map at `seq` (indexed by lpn).
    pub map: Vec<Option<Ppa>>,
    /// Retired (bad) blocks at `seq`, sorted for determinism.
    pub bad: Vec<(u32, u32, u32)>,
}

/// The journaled metadata region: checkpoint + redo tail.
#[derive(Debug, Default)]
pub struct Journal {
    checkpoint: Checkpoint,
    records: Vec<JournalRecord>,
    seq: u64,
    interval: usize,
    appended_total: u64,
    checkpoints_total: u64,
}

impl Journal {
    /// An empty journal for a freshly formatted device with `logical_pages`
    /// logical pages, checkpointing every `interval` records.
    pub fn new(logical_pages: u64, interval: usize) -> Self {
        Journal {
            checkpoint: Checkpoint {
                seq: 0,
                map: vec![None; logical_pages as usize],
                bad: Vec::new(),
            },
            records: Vec::new(),
            seq: 0,
            interval: interval.max(1),
            appended_total: 0,
            checkpoints_total: 0,
        }
    }

    /// Appends one record (write-ahead: call *before* the physical op).
    pub fn append(&mut self, rec: JournalRecord) {
        self.records.push(rec);
        self.seq += 1;
        self.appended_total += 1;
    }

    /// True when the redo tail has reached the checkpoint interval.
    pub fn checkpoint_due(&self) -> bool {
        self.records.len() >= self.interval
    }

    /// Installs a new checkpoint covering everything appended so far and
    /// truncates the redo tail.
    pub fn install_checkpoint(&mut self, map: Vec<Option<Ppa>>, mut bad: Vec<(u32, u32, u32)>) {
        bad.sort_unstable();
        self.checkpoint = Checkpoint {
            seq: self.seq,
            map,
            bad,
        };
        self.records.clear();
        self.checkpoints_total += 1;
    }

    /// The current checkpoint.
    pub fn checkpoint(&self) -> &Checkpoint {
        &self.checkpoint
    }

    /// The redo tail (records appended after the checkpoint), in order.
    pub fn records(&self) -> &[JournalRecord] {
        &self.records
    }

    /// Sequence number of the most recent record.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Total records ever appended (metering).
    pub fn appended_total(&self) -> u64 {
        self.appended_total
    }

    /// Total checkpoints ever installed (metering).
    pub fn checkpoints_total(&self) -> u64 {
        self.checkpoints_total
    }

    /// Current checkpoint interval in records.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Changes the checkpoint interval (takes effect at the next append).
    pub fn set_interval(&mut self, interval: usize) {
        self.interval = interval.max(1);
    }
}

/// What journal replay did, returned by `Ftl::recover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Sequence number of the checkpoint replay started from.
    pub checkpoint_seq: u64,
    /// Redo records replayed after the checkpoint.
    pub replayed_records: u64,
    /// Write records whose program was torn and rolled back to `old`.
    pub torn_reverted: u64,
    /// Blocks found physically erased and returned to the free lists.
    pub free_blocks: u64,
    /// Non-free, non-bad blocks left closed for GC to reclaim (includes
    /// blocks holding only stale or torn pages).
    pub dirty_blocks: u64,
}

/// FNV-1a 64-bit content fingerprint, used by the deterministic state
/// exports to compare logical page contents without embedding raw bytes.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ppa(block: u32, page: u32) -> Ppa {
        Ppa {
            channel: 0,
            way: 0,
            block,
            page,
        }
    }

    #[test]
    fn append_then_checkpoint_truncates_tail() {
        let mut j = Journal::new(4, 3);
        assert_eq!(j.checkpoint().map.len(), 4);
        j.append(JournalRecord::Write {
            lpn: 0,
            new: ppa(0, 0),
            old: None,
        });
        j.append(JournalRecord::Trim { lpn: 0 });
        assert!(!j.checkpoint_due());
        j.append(JournalRecord::Retire {
            channel: 0,
            way: 0,
            block: 1,
        });
        assert!(j.checkpoint_due());
        assert_eq!(j.records().len(), 3);
        assert_eq!(j.seq(), 3);
        j.install_checkpoint(vec![None; 4], vec![(0, 0, 1)]);
        assert_eq!(j.records().len(), 0);
        assert_eq!(j.checkpoint().seq, 3);
        assert_eq!(j.checkpoint().bad, vec![(0, 0, 1)]);
        assert_eq!(j.appended_total(), 3);
        assert_eq!(j.checkpoints_total(), 1);
        // Sequence keeps rising after the checkpoint.
        j.append(JournalRecord::Trim { lpn: 1 });
        assert_eq!(j.seq(), 4);
    }

    #[test]
    fn fnv64_is_stable_and_content_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"biscuit"), fnv64(b"biscuit"));
        assert_ne!(fnv64(b"biscuit"), fnv64(b"biscuif"));
    }
}
