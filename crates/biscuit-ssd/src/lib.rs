//! # biscuit-ssd — the simulated NVMe SSD under the Biscuit runtime
//!
//! A functional-plus-timed model of the paper's target device (Table I):
//! multi-channel/way NAND with real page contents, a page-mapped [`ftl`]
//! with garbage collection and wear leveling, the per-channel hardware
//! [`pattern`] matcher, a dual-arena DRAM budget ([`memory`]), and the timed
//! internal datapath ([`device`]) whose latencies and bandwidths are
//! calibrated to Section V-B of the paper.
//!
//! ## Crate layout
//!
//! - [`config`] — [`SsdConfig`]: geometry, timing, and bandwidth knobs,
//!   with [`SsdConfig::paper_default`] matching Table I.
//! - [`nand`] — the NAND array: channels × ways of dies holding real page
//!   bytes ([`PageData`]), plus deterministic content generators.
//! - [`ftl`] — page-mapped flash translation layer with greedy garbage
//!   collection, wear leveling, and crash-consistent recovery.
//! - [`journal`] — the write-ahead L2P redo log + checkpoint that recovery
//!   replays after a power loss (see `docs/WRITEPATH.md`).
//! - [`pattern`] — the per-channel hardware pattern matcher ([`PatternSet`],
//!   multi-key substring scan with [`PatternLimits`]).
//! - [`memory`] — the dual-arena device DRAM budget.
//! - [`device`] — [`SsdDevice`], the timed façade gluing the above into the
//!   internal datapath: die reservations, channel-bus transfers, matcher
//!   streaming, and per-core software overheads.
//!
//! The datapath is observable: [`SsdDevice::attach_tracer`] records every
//! NAND operation, bus transfer, and pattern-matcher scan into a
//! [`biscuit_sim::Tracer`] as per-channel span tracks (see `docs/TRACING.md`
//! at the repo root).
//!
//! ## Example
//!
//! ```
//! use biscuit_ssd::{SsdConfig, SsdDevice};
//! use biscuit_sim::Simulation;
//! use std::sync::Arc;
//!
//! let sim = Simulation::new(0);
//! let dev = Arc::new(SsdDevice::new(SsdConfig {
//!     logical_capacity: 16 << 20,
//!     ..SsdConfig::paper_default()
//! }));
//! dev.load_bytes(0, b"hello flash").unwrap();
//! let d = Arc::clone(&dev);
//! sim.spawn("reader", move |ctx| {
//!     let pages = d.read_pages(ctx, &[0]).unwrap();
//!     assert_eq!(&pages[0][..11], b"hello flash");
//! });
//! sim.run().assert_quiescent();
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod ftl;
pub mod journal;
pub mod memory;
pub mod nand;
pub mod pattern;

pub use config::SsdConfig;
pub use device::{CopySite, DeviceError, DeviceResult, PageBuf, SsdDevice};
pub use ftl::{Ftl, FtlError, WriteOutcome};
pub use journal::{Journal, JournalRecord, RecoveryReport};
pub use nand::{NandArray, PageData, PageGen, Ppa};
pub use pattern::{PatternError, PatternLimits, PatternSet};
