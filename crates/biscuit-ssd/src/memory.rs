//! Device DRAM budget tracking — the runtime's dual-allocator discipline.
//!
//! Biscuit maintains two allocators on the device (paper §IV-B): a *system*
//! allocator reserved for the runtime, and a *user* allocator backing SSDlet
//! instances. The device has no MMU, so isolation is a matter of accounting
//! and discipline. We reproduce the accounting: each arena has a byte
//! budget; exhaustion is an explicit error an SSDlet must handle, not an
//! abort of the SSD.

use parking_lot::Mutex;

/// Which arena an allocation charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arena {
    /// Runtime-reserved memory, off-limits to SSDlets.
    System,
    /// SSDlet-accessible memory.
    User,
}

/// Error returned when an arena's budget would be exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfDeviceMemory {
    /// The arena that was exhausted.
    pub arena: Arena,
    /// Bytes requested.
    pub requested: u64,
    /// Bytes that were still available.
    pub available: u64,
}

impl std::fmt::Display for OutOfDeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} arena exhausted: requested {} bytes, {} available",
            self.arena, self.requested, self.available
        )
    }
}

impl std::error::Error for OutOfDeviceMemory {}

#[derive(Debug, Default, Clone, Copy)]
struct ArenaState {
    capacity: u64,
    used: u64,
    high_water: u64,
}

/// The device DRAM budget, split into system and user arenas.
///
/// # Examples
///
/// ```
/// use biscuit_ssd::memory::{DeviceMemory, Arena};
///
/// let mem = DeviceMemory::new(1024, 4096);
/// let grant = mem.allocate(Arena::User, 4000).unwrap();
/// assert!(mem.allocate(Arena::User, 200).is_err());
/// mem.free(grant);
/// assert!(mem.allocate(Arena::User, 200).is_ok());
/// ```
#[derive(Debug)]
pub struct DeviceMemory {
    system: Mutex<ArenaState>,
    user: Mutex<ArenaState>,
}

/// Receipt for an allocation; hand it back to [`DeviceMemory::free`].
#[derive(Debug)]
#[must_use = "dropping a grant without freeing it leaks device memory"]
pub struct MemoryGrant {
    arena: Arena,
    bytes: u64,
}

impl MemoryGrant {
    /// Size of the granted region.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Arena the grant charges.
    pub fn arena(&self) -> Arena {
        self.arena
    }
}

impl DeviceMemory {
    /// Creates budgets for the two arenas.
    pub fn new(system_bytes: u64, user_bytes: u64) -> Self {
        DeviceMemory {
            system: Mutex::new(ArenaState {
                capacity: system_bytes,
                ..Default::default()
            }),
            user: Mutex::new(ArenaState {
                capacity: user_bytes,
                ..Default::default()
            }),
        }
    }

    fn arena(&self, which: Arena) -> &Mutex<ArenaState> {
        match which {
            Arena::System => &self.system,
            Arena::User => &self.user,
        }
    }

    /// Reserves `bytes` in `arena`.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfDeviceMemory`] if the arena's budget would be exceeded.
    pub fn allocate(&self, arena: Arena, bytes: u64) -> Result<MemoryGrant, OutOfDeviceMemory> {
        let mut st = self.arena(arena).lock();
        let available = st.capacity - st.used;
        if bytes > available {
            return Err(OutOfDeviceMemory {
                arena,
                requested: bytes,
                available,
            });
        }
        st.used += bytes;
        st.high_water = st.high_water.max(st.used);
        Ok(MemoryGrant { arena, bytes })
    }

    /// Returns a grant's bytes to its arena.
    pub fn free(&self, grant: MemoryGrant) {
        let mut st = self.arena(grant.arena).lock();
        debug_assert!(st.used >= grant.bytes, "double free of device memory");
        st.used -= grant.bytes;
    }

    /// Bytes currently used in `arena`.
    pub fn used(&self, arena: Arena) -> u64 {
        self.arena(arena).lock().used
    }

    /// The arena's capacity.
    pub fn capacity(&self, arena: Arena) -> u64 {
        self.arena(arena).lock().capacity
    }

    /// Peak usage observed in `arena`.
    pub fn high_water(&self, arena: Arena) -> u64 {
        self.arena(arena).lock().high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arenas_are_independent() {
        let mem = DeviceMemory::new(100, 100);
        let g = mem.allocate(Arena::System, 100).unwrap();
        // System full; user unaffected.
        assert!(mem.allocate(Arena::System, 1).is_err());
        assert!(mem.allocate(Arena::User, 100).is_ok());
        mem.free(g);
    }

    #[test]
    fn exhaustion_reports_availability() {
        let mem = DeviceMemory::new(0, 64);
        let _g = mem.allocate(Arena::User, 40).unwrap();
        let err = mem.allocate(Arena::User, 30).unwrap_err();
        assert_eq!(err.available, 24);
        assert_eq!(err.requested, 30);
        assert_eq!(err.arena, Arena::User);
    }

    #[test]
    fn free_restores_budget() {
        let mem = DeviceMemory::new(0, 10);
        let g = mem.allocate(Arena::User, 10).unwrap();
        mem.free(g);
        assert_eq!(mem.used(Arena::User), 0);
        assert!(mem.allocate(Arena::User, 10).is_ok());
    }

    #[test]
    fn high_water_tracks_peak() {
        let mem = DeviceMemory::new(0, 100);
        let a = mem.allocate(Arena::User, 60).unwrap();
        let b = mem.allocate(Arena::User, 30).unwrap();
        mem.free(a);
        mem.free(b);
        assert_eq!(mem.high_water(Arena::User), 90);
        assert_eq!(mem.used(Arena::User), 0);
    }

    #[test]
    fn zero_sized_allocation_succeeds() {
        let mem = DeviceMemory::new(0, 0);
        let g = mem.allocate(Arena::User, 0).unwrap();
        mem.free(g);
    }
}
