//! Simple string search, both ways (paper §V-C, Table V).
//!
//! - **Conv**: the host streams the file over the link and runs Boyer–Moore
//!   (what Linux `grep` does), throttled by memory-bandwidth contention.
//! - **Biscuit**: a grep SSDlet streams the file through the per-channel
//!   pattern matcher at internal bandwidth; only match counting touches the
//!   device CPU, and a single number crosses the link. Load-insensitive.

use std::sync::Arc;

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{Application, BiscuitError, BiscuitResult, CoreConfig, Ssd, SsdletModule};
use biscuit_fs::{File, Fs, Mode};
use biscuit_host::array::{ArrayShard, ShardFailure, SsdArray};
use biscuit_host::fleet::{FleetConfig, FleetReport};
use biscuit_host::{BoyerMoore, ConvIo, HostConfig, HostLoad};
use biscuit_sim::time::SimDuration;
use biscuit_sim::Ctx;
use biscuit_ssd::pattern::{PatternLimits, PatternSet};
use biscuit_ssd::{SsdConfig, SsdDevice};

use crate::weblog::{WeblogGen, NEEDLE};

/// Host-side `grep`: returns the number of needle occurrences.
///
/// I/O and scanning pipeline as in a single-threaded reader: the CPU works
/// on previous chunks while the next chunk's I/O is in flight.
///
/// # Errors
///
/// Returns filesystem errors.
pub fn conv_grep(
    ctx: &Ctx,
    conv: &ConvIo,
    file: &File,
    needle: &[u8],
    load: HostLoad,
) -> biscuit_fs::FsResult<u64> {
    let bm = BoyerMoore::new(needle);
    let page_size = conv.device().config().page_size;
    let total_pages = file.len()?.div_ceil(page_size as u64);
    let chunk_pages = 1024u64;
    let scan_rate = conv.config().scan_rate / load.bandwidth_slowdown(conv.config());
    let mut count = 0u64;
    let mut cpu_backlog = SimDuration::ZERO;
    let mut page_idx = 0u64;
    while page_idx < total_pages {
        let n = chunk_pages.min(total_pages - page_idx);
        let t0 = ctx.now();
        let pages = conv.read_file_pages_async(ctx, file, page_idx, n, 64, 16, load)?;
        let io_elapsed = ctx.now() - t0;
        cpu_backlog = cpu_backlog.saturating_sub(io_elapsed);
        cpu_backlog += SimDuration::for_bytes(n * page_size as u64, scan_rate);
        for page in &pages {
            count += bm.count(page) as u64;
        }
        page_idx += n;
    }
    ctx.sleep(cpu_backlog);
    Ok(count)
}

/// Arguments for the grep SSDlet.
#[derive(Debug, Clone)]
pub struct GrepArgs {
    /// File to scan.
    pub file: File,
    /// Needle bytes (≤16, per the matcher's key length limit).
    pub needle: Vec<u8>,
}

/// SSDlet identifier inside [`grep_module`].
pub const GREP_ID: &str = "idGrep";

/// Builds the `grepper` module.
pub fn grep_module() -> SsdletModule {
    ModuleBuilder::new("grepper")
        .binary_size(64 << 10)
        .register(
            GREP_ID,
            SsdletSpec::new().output::<u64>().memory(256 << 10),
            |args| {
                let args = args_as::<GrepArgs>(args)?;
                Ok(Box::new(Grep { args }))
            },
        )
        .build()
}

struct Grep {
    args: GrepArgs,
}

impl Ssdlet for Grep {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let limits = PatternLimits {
            max_keys: ctx.device().config().pm_max_keys,
            max_key_len: ctx.device().config().pm_max_key_len,
        };
        let pattern = PatternSet::new(vec![self.args.needle.clone()], limits)
            .expect("needle validated by caller");
        let hits = self
            .args
            .file
            .scan(ctx.sim(), &pattern, 64, 32)
            .expect("scan of search corpus");
        let mut count = 0u64;
        for (_idx, page) in hits {
            let occurrences = pattern.find_all(&page);
            // The device CPU only touches the vicinity of each hit.
            ctx.compute_bytes((occurrences.len() * self.args.needle.len()) as u64);
            count += occurrences.len() as u64;
        }
        ctx.send(0, count).expect("host port open");
    }
}

/// Device-side `grep` over the Biscuit framework: returns the occurrence
/// count. `module` is the pre-loaded [`grep_module`].
///
/// # Errors
///
/// Returns framework errors.
pub fn biscuit_grep(
    ctx: &Ctx,
    ssd: &Ssd,
    module: biscuit_core::ModuleId,
    file: &File,
    needle: &[u8],
) -> BiscuitResult<u64> {
    let app = Application::new(ssd, "grep");
    let g = app.ssdlet_with(
        module,
        GREP_ID,
        GrepArgs {
            file: file.read_only(),
            needle: needle.to_vec(),
        },
    )?;
    let rx = app.connect_to::<u64>(g.out(0))?;
    app.start(ctx)?;
    let count = rx.get(ctx).unwrap_or(0);
    app.join(ctx);
    Ok(count)
}

/// Convenience: load the grep module once.
///
/// # Errors
///
/// Returns framework errors.
pub fn load_grep_module(ctx: &Ctx, ssd: &Ssd) -> BiscuitResult<biscuit_core::ModuleId> {
    ssd.load_module(ctx, grep_module())
}

/// Device-side grep prepared over every drive of an [`SsdArray`]: the
/// grepper module is loaded once per shard, then [`ArrayGrep::run`]
/// scatters each query across all drives concurrently.
#[derive(Debug, Clone)]
pub struct ArrayGrep {
    modules: Vec<biscuit_core::ModuleId>,
}

impl ArrayGrep {
    /// Loads the grep module onto every drive of `array`.
    ///
    /// # Errors
    ///
    /// Returns framework errors from module loading.
    pub fn prepare(ctx: &Ctx, array: &SsdArray) -> BiscuitResult<ArrayGrep> {
        let mut modules = Vec::with_capacity(array.len());
        for shard in array.shards() {
            modules.push(load_grep_module(ctx, &shard.ssd)?);
        }
        Ok(ArrayGrep { modules })
    }

    /// Counts needle occurrences in `path` summed over all shards: every
    /// drive greps its own shard file concurrently and streams its count
    /// through the array's ordered merge port. A shard whose device path
    /// fails — SSDlet panic, request timeout, or whole-drive loss — is
    /// re-scattered to a host-side [`conv_grep`] over the same shard
    /// file, so the returned count is identical to a fault-free run.
    ///
    /// # Errors
    ///
    /// Returns filesystem/framework errors from the fallback path.
    pub fn run(
        &self,
        ctx: &Ctx,
        array: &SsdArray,
        path: &str,
        needle: &[u8],
        load: HostLoad,
    ) -> BiscuitResult<u64> {
        let modules = self.modules.clone();
        let job_path = path.to_string();
        let job_needle = needle.to_vec();
        let timeout = array.fault_plan().host_timeout();
        let results = array.scatter::<u64, BiscuitError, _, _>(
            ctx,
            "agrep",
            move |fctx, shard, tx| {
                let fail = |e: BiscuitError| ShardFailure::new(e.to_string());
                let file = shard
                    .ssd
                    .fs()
                    .open(&job_path, Mode::ReadOnly)
                    .map_err(|e| ShardFailure::new(e.to_string()))?;
                let app = Application::new(&shard.ssd, "agrep");
                let g = app
                    .ssdlet_with(
                        modules[shard.id],
                        GREP_ID,
                        GrepArgs {
                            file,
                            needle: job_needle.clone(),
                        },
                    )
                    .map_err(fail)?;
                let rx = app.connect_to::<u64>(g.out(0)).map_err(fail)?;
                app.start(fctx).map_err(fail)?;
                let got = match timeout {
                    Some(t) => match rx.get_deadline(fctx, t) {
                        Ok(v) => v,
                        Err(e) => {
                            // Drain-discard so the device fibers can
                            // finish, then surface the timeout.
                            while rx.get(fctx).is_some() {}
                            app.join(fctx);
                            return Err(fail(e));
                        }
                    },
                    None => rx.get(fctx),
                };
                app.join(fctx);
                if let Some(failure) = app.failure() {
                    return Err(fail(failure));
                }
                tx.send(fctx, got.unwrap_or(0))
                    .map_err(|_| ShardFailure::new("merge lane abandoned"))?;
                Ok(())
            },
            |fctx, shard| {
                let file = shard.ssd.fs().open(path, Mode::ReadOnly)?;
                let count = conv_grep(fctx, &shard.conv, &file, needle, load)?;
                Ok(vec![count])
            },
        )?;
        Ok(results.iter().map(|r| r.items.iter().sum::<u64>()).sum())
    }
}

/// Host-side baseline over an array: one host CPU greps every shard file
/// sequentially over each drive's link (the Conv side of Fig. 1(b) —
/// adding drives adds data but no compute).
///
/// # Errors
///
/// Returns filesystem errors.
pub fn array_conv_grep(
    ctx: &Ctx,
    array: &SsdArray,
    path: &str,
    needle: &[u8],
    load: HostLoad,
) -> BiscuitResult<u64> {
    let mut total = 0u64;
    for shard in array.shards() {
        let file = shard.ssd.fs().open(path, Mode::ReadOnly)?;
        total += conv_grep(ctx, &shard.conv, &file, needle, load)?;
    }
    Ok(total)
}

/// Device-side grep over a **parallel shard fleet**
/// ([`SsdArray::scatter_parallel`]): each of `cfg.drives` shard kernels
/// gets a fresh drive holding a `shard_pages`-page synthetic web log
/// (generator seed `100 + shard`, needle rarity `needle_every`), loads
/// the grepper module, and runs `passes` grep passes, streaming each
/// pass's count through the fleet merge port.
///
/// The workload mirrors the wallclock bench's in-sim array soak, so
/// the two regimes are directly comparable; `tests/parallel.rs` and
/// the `par_soak` bench rows both drive this function. The merged
/// counts (and, when enabled, trace/metrics exports) are byte-identical
/// for a given `cfg.seed` across every thread policy.
///
/// # Panics
///
/// Panics on filesystem or framework errors inside a shard (corpus
/// creation, module load, grep) — this is a benchmark/test harness, not
/// a fallible API.
pub fn fleet_grep(
    cfg: &FleetConfig,
    shard_pages: u64,
    needle_every: u64,
    passes: usize,
) -> FleetReport<u64> {
    SsdArray::scatter_parallel::<u64, _, _>(
        cfg,
        move |i, _sim| {
            let dev = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 64 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(Arc::clone(&dev));
            let page = dev.config().page_size;
            fs.create_synthetic(
                "shard.log",
                shard_pages * page as u64,
                Arc::new(WeblogGen::new(100 + i as u64, needle_every)),
            )
            .expect("synthetic shard corpus");
            let ssd = Ssd::new(fs, CoreConfig::paper_default());
            let conv = ConvIo::new(
                Arc::clone(ssd.device()),
                Arc::clone(ssd.link()),
                HostConfig::paper_default(),
            );
            ArrayShard { id: i, ssd, conv }
        },
        move |ctx, shard, tx| {
            let module = load_grep_module(ctx, &shard.ssd).expect("grep module");
            let file = shard
                .ssd
                .fs()
                .open("shard.log", Mode::ReadOnly)
                .expect("shard corpus");
            // Each pass is one profiled query (tenant = shard id); module
            // load stays outside query time, mirroring the DB engine.
            let qp = ctx.qprof().clone();
            for _ in 0..passes {
                let span = qp.begin_query(ctx, shard.id as u32);
                let count = biscuit_grep(ctx, &shard.ssd, module, &file, NEEDLE.as_bytes())
                    .expect("fleet grep");
                if let Some(sc) = span {
                    qp.end_query(ctx, sc);
                }
                tx.send(count);
            }
        },
    )
}

/// Exact total count [`fleet_grep`] must report: per-shard needle count
/// times `passes`, summed over `drives` shards. Pure function of the
/// corpus parameters (the generators are deterministic), independent of
/// the fleet seed and thread policy.
pub fn fleet_grep_expected(
    drives: usize,
    shard_pages: u64,
    needle_every: u64,
    passes: usize,
) -> u64 {
    let page = SsdConfig::paper_default().page_size;
    (0..drives)
        .map(|i| WeblogGen::new(100 + i as u64, needle_every).count_needles(shard_pages, page))
        .sum::<u64>()
        * passes as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::weblog::{WeblogGen, NEEDLE};
    use biscuit_core::CoreConfig;
    use biscuit_fs::{Fs, Mode};
    use biscuit_host::HostConfig;
    use biscuit_sim::Simulation;
    use biscuit_ssd::{SsdConfig, SsdDevice};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn setup(corpus_pages: u64) -> (Ssd, ConvIo, File, u64) {
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 1 << 30,
            ..SsdConfig::paper_default()
        }));
        let fs = Fs::format(Arc::clone(&dev));
        let page = dev.config().page_size;
        let gen = Arc::new(WeblogGen::new(11, 200));
        let expected = gen.count_needles(corpus_pages, page);
        fs.create_synthetic("weblog", corpus_pages * page as u64, gen)
            .unwrap();
        let file = fs.open("weblog", Mode::ReadOnly).unwrap();
        let ssd = Ssd::new(fs, CoreConfig::paper_default());
        let conv = ConvIo::new(
            Arc::clone(ssd.device()),
            Arc::clone(ssd.link()),
            HostConfig::paper_default(),
        );
        (ssd, conv, file, expected)
    }

    #[test]
    fn both_paths_count_the_same_needles() {
        let (ssd, conv, file, expected) = setup(256);
        let sim = Simulation::new(0);
        let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&results);
        sim.spawn("host", move |ctx| {
            let c = conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), HostLoad::IDLE).unwrap();
            let module = load_grep_module(ctx, &ssd).unwrap();
            let b = biscuit_grep(ctx, &ssd, module, &file, NEEDLE.as_bytes()).unwrap();
            r.lock().extend([c, b]);
        });
        sim.run().assert_quiescent();
        let results = results.lock();
        assert!(expected > 0);
        assert_eq!(results[0], expected, "conv count");
        assert_eq!(results[1], expected, "biscuit count");
    }

    #[test]
    fn array_grep_matches_sequential_conv_over_all_shards() {
        use biscuit_host::array::{ArrayConfig, SsdArray};

        let mut expected = 0u64;
        let drives: Vec<Ssd> = (0..3)
            .map(|i| {
                let dev = Arc::new(SsdDevice::new(SsdConfig {
                    logical_capacity: 1 << 30,
                    ..SsdConfig::paper_default()
                }));
                let fs = Fs::format(Arc::clone(&dev));
                let page = dev.config().page_size;
                let gen = Arc::new(WeblogGen::new(20 + i, 150));
                expected += gen.count_needles(128, page);
                fs.create_synthetic("shard.log", 128 * page as u64, gen)
                    .unwrap();
                Ssd::new(fs, CoreConfig::paper_default())
            })
            .collect();
        let array = SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default());
        let sim = Simulation::new(0);
        let counts: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let c = Arc::clone(&counts);
        let arr = array.clone();
        sim.spawn("host", move |ctx| {
            let grep = ArrayGrep::prepare(ctx, &arr).unwrap();
            let b = grep
                .run(ctx, &arr, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                .unwrap();
            let s =
                array_conv_grep(ctx, &arr, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE).unwrap();
            c.lock().extend([b, s]);
        });
        sim.run().assert_quiescent();
        let counts = counts.lock();
        assert!(expected > 0);
        assert_eq!(counts[0], expected, "array biscuit count");
        assert_eq!(counts[1], expected, "array conv count");
    }

    #[test]
    fn fleet_grep_counts_match_and_modes_agree() {
        use biscuit_sim::par::{ParConfig, ParMode};
        use biscuit_sim::time::SimDuration;

        let (drives, pages, rarity, passes) = (2usize, 32u64, 150u64, 2usize);
        let expected = fleet_grep_expected(drives, pages, rarity, passes);
        assert!(expected > 0);
        let run = |mode: ParMode| {
            let cfg = FleetConfig {
                drives,
                seed: 7,
                metrics: true,
                par: ParConfig {
                    mode,
                    lookahead: Some(SimDuration::from_micros(200)),
                },
                ..FleetConfig::default()
            };
            let report = fleet_grep(&cfg, pages, rarity, passes);
            report.assert_quiescent();
            report
        };
        let single = run(ParMode::Single);
        assert_eq!(
            single.items.iter().map(|(_, c)| *c).sum::<u64>(),
            expected,
            "fleet count"
        );
        let par = run(ParMode::PerShard);
        assert_eq!(par.items, single.items, "merged items");
        assert_eq!(par.metrics_json(), single.metrics_json(), "metrics export");
        assert_eq!(par.events_processed(), single.events_processed());
    }

    #[test]
    fn biscuit_is_faster_and_load_insensitive() {
        let (ssd, conv, file, _) = setup(512);
        let sim = Simulation::new(0);
        let times: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&times);
        sim.spawn("host", move |ctx| {
            let module = load_grep_module(ctx, &ssd).unwrap();
            for load in [HostLoad::IDLE, HostLoad::new(24)] {
                let t0 = ctx.now();
                conv_grep(ctx, &conv, &file, NEEDLE.as_bytes(), load).unwrap();
                let conv_t = (ctx.now() - t0).as_secs_f64();
                let t1 = ctx.now();
                biscuit_grep(ctx, &ssd, module, &file, NEEDLE.as_bytes()).unwrap();
                let bis_t = (ctx.now() - t1).as_secs_f64();
                t.lock().extend([conv_t, bis_t]);
            }
        });
        sim.run().assert_quiescent();
        let t = times.lock();
        let (conv0, bis0, conv24, bis24) = (t[0], t[1], t[2], t[3]);
        // Paper Table V: 5.3x at idle, growing to 8.3x under load.
        assert!(conv0 / bis0 > 3.0, "idle speedup {:.2}", conv0 / bis0);
        assert!(conv24 > conv0 * 1.4, "conv must degrade under load");
        assert!(
            (bis24 - bis0).abs() / bis0 < 0.05,
            "biscuit must be load-insensitive: {bis0} vs {bis24}"
        );
        assert!(conv24 / bis24 > conv0 / bis0, "speedup grows with load");
    }
}
