//! # biscuit-apps — the paper's application studies
//!
//! Runnable implementations of every application the paper evaluates on
//! Biscuit (§III-E, §V-C):
//!
//! - [`wordcount`] — the working example of Fig. 5 / Code 1–3 (mappers,
//!   shuffler, reducers over typed ports).
//! - [`search`] — simple string search: host Boyer–Moore (`grep`) vs the
//!   pattern-matcher SSDlet (Table V).
//! - [`graph`] — pointer chasing over an on-SSD social-graph store
//!   (Table IV).
//! - [`weblog`] — the synthetic web-log corpus generator (stands in for the
//!   paper's 7.8 GiB log).

#![warn(missing_docs)]

pub mod graph;
pub mod search;
pub mod weblog;
pub mod wordcount;

pub use graph::{biscuit_chase, chase_module, conv_chase, ChaseArgs, SocialGraph};
pub use search::{
    array_conv_grep, biscuit_grep, conv_grep, fleet_grep, fleet_grep_expected, grep_module,
    load_grep_module, ArrayGrep, GrepArgs,
};
pub use weblog::{WeblogGen, NEEDLE};
pub use wordcount::{reference_wordcount, run_wordcount, wordcount_module};
