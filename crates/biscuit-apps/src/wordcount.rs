//! Wordcount — the paper's working example (§III-E, Fig. 5, Code 1–3).
//!
//! Mappers read slices of the input file and tokenize; a shuffler routes
//! words by hash; reducers count and stream `(word, count)` pairs back to
//! the host. The dataflow exercises every port flavour the framework
//! offers: MPSC into the shuffler, typed SPSC fan-out to reducers, and
//! device-to-host result ports.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{Application, BiscuitResult, Ssd, SsdletModule};
use biscuit_fs::File;
use biscuit_sim::Ctx;

/// Arguments for one mapper: its slice of the input file.
#[derive(Debug, Clone)]
pub struct MapperArgs {
    /// Input file.
    pub file: File,
    /// First byte of this mapper's slice.
    pub offset: u64,
    /// Slice length.
    pub len: u64,
}

/// Builds the wordcount module. The shuffler fans out to `n_reducers`
/// output ports, so the module is parameterized the way the paper's
/// host-side program parameterizes its SSDlet graph.
pub fn wordcount_module(n_reducers: usize) -> SsdletModule {
    assert!(n_reducers > 0, "wordcount needs at least one reducer");
    let mut shuffler_spec = SsdletSpec::new().input::<String>().memory(256 << 10);
    for _ in 0..n_reducers {
        shuffler_spec = shuffler_spec.output::<String>();
    }
    ModuleBuilder::new("wordcount")
        .binary_size(96 << 10)
        .register(
            "idMapper",
            SsdletSpec::new().output::<String>().memory(256 << 10),
            |args| {
                let args = args_as::<MapperArgs>(args)?;
                Ok(Box::new(Mapper { args }))
            },
        )
        .register("idShuffler", shuffler_spec, move |_args| {
            Ok(Box::new(Shuffler {
                outputs: n_reducers,
            }))
        })
        .register(
            "idReducer",
            SsdletSpec::new()
                .input::<String>()
                .output::<(String, u32)>()
                .memory(512 << 10),
            |_args| Ok(Box::new(Reducer)),
        )
        .build()
}

struct Mapper {
    args: MapperArgs,
}

/// Extra bytes read past the slice so a word straddling the boundary can be
/// finished by the mapper that owns its first character.
const WORD_TAIL: u64 = 256;

impl Ssdlet for Mapper {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let total = self.args.file.len().expect("file exists");
        // Read one byte before the slice (to detect a word continuing over
        // the boundary) and a tail after it (to finish an owned word).
        let pre = u64::from(self.args.offset > 0);
        let start = self.args.offset - pre;
        let len = (self.args.len + pre + WORD_TAIL).min(total - start);
        let bytes = self
            .args
            .file
            .read_at_async(ctx.sim(), start, len, 16, 8)
            .expect("mapper reads its slice");
        ctx.compute_bytes(bytes.len() as u64);
        // A token belongs to this mapper iff it *starts* within the slice.
        let own_from = pre as usize;
        let own_to = (pre + self.args.len).min(len) as usize;
        for word in tokenize_region(&bytes, own_from, own_to) {
            ctx.send(0, word).expect("shuffler port open");
        }
    }
}

/// Tokens whose first character lies in `[from, to)`. A leading byte before
/// `from` disambiguates words that continue across the slice boundary.
pub fn tokenize_region(bytes: &[u8], from: usize, to: usize) -> Vec<String> {
    let is_word = |b: u8| b.is_ascii_alphanumeric();
    let mut out = Vec::new();
    let mut i = from;
    // Skip the remainder of a word that started before the slice.
    if from > 0 && is_word(bytes[from - 1]) {
        while i < bytes.len() && is_word(bytes[i]) {
            i += 1;
        }
    }
    while i < to {
        if !is_word(bytes[i]) {
            i += 1;
            continue;
        }
        let start = i;
        while i < bytes.len() && is_word(bytes[i]) {
            i += 1;
        }
        if start < to {
            out.push(String::from_utf8_lossy(&bytes[start..i]).to_lowercase());
        }
    }
    out
}

struct Shuffler {
    outputs: usize,
}

impl Ssdlet for Shuffler {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(word) = ctx.recv::<String>(0).expect("typed input") {
            let mut h = DefaultHasher::new();
            word.hash(&mut h);
            let target = (h.finish() % self.outputs as u64) as usize;
            ctx.send(target, word).expect("reducer port open");
        }
    }
}

struct Reducer;

impl Ssdlet for Reducer {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let mut counts: HashMap<String, u32> = HashMap::new();
        while let Some(word) = ctx.recv::<String>(0).expect("typed input") {
            *counts.entry(word).or_insert(0) += 1;
        }
        let mut pairs: Vec<(String, u32)> = counts.into_iter().collect();
        pairs.sort();
        for pair in pairs {
            ctx.send(0, pair).expect("host port open");
        }
    }
}

/// Splits text into lowercase alphanumeric words.
pub fn tokenize(bytes: &[u8]) -> Vec<String> {
    String::from_utf8_lossy(bytes)
        .split(|ch: char| !ch.is_alphanumeric())
        .filter(|w| !w.is_empty())
        .map(str::to_lowercase)
        .collect()
}

/// Reference host-side wordcount (ground truth for tests).
pub fn reference_wordcount(bytes: &[u8]) -> Vec<(String, u32)> {
    let mut counts: HashMap<String, u32> = HashMap::new();
    for w in tokenize(bytes) {
        *counts.entry(w).or_insert(0) += 1;
    }
    let mut pairs: Vec<(String, u32)> = counts.into_iter().collect();
    pairs.sort();
    pairs
}

/// Runs the full wordcount dataflow on the device (paper Code 3) and
/// returns sorted `(word, count)` pairs.
///
/// # Errors
///
/// Returns framework errors.
pub fn run_wordcount(
    ctx: &Ctx,
    ssd: &Ssd,
    file: &File,
    n_mappers: usize,
    n_reducers: usize,
) -> BiscuitResult<Vec<(String, u32)>> {
    assert!(n_mappers > 0 && n_reducers > 0);
    let mid = ssd.load_module(ctx, wordcount_module(n_reducers))?;
    let app = Application::new(ssd, "wordcount");

    // Slice the file at page boundaries so words never straddle mappers
    // (the loader pads pages with newlines/whitespace-safe content).
    let page = ssd.device().config().page_size as u64;
    let total = file.len()?;
    let total_pages = total.div_ceil(page);
    let pages_per_mapper = total_pages.div_ceil(n_mappers as u64).max(1);

    let shuffler = app.ssdlet(mid, "idShuffler")?;
    for m in 0..n_mappers {
        let first = m as u64 * pages_per_mapper;
        if first >= total_pages {
            break;
        }
        let len = ((first + pages_per_mapper).min(total_pages) * page).min(total) - first * page;
        let mapper = app.ssdlet_with(
            mid,
            "idMapper",
            MapperArgs {
                file: file.read_only(),
                offset: first * page,
                len,
            },
        )?;
        app.connect::<String>(mapper.out(0), shuffler.input(0))?;
    }
    let mut result_ports = Vec::with_capacity(n_reducers);
    for r in 0..n_reducers {
        let reducer = app.ssdlet(mid, "idReducer")?;
        app.connect::<String>(shuffler.out(r), reducer.input(0))?;
        result_ports.push(app.connect_to::<(String, u32)>(reducer.out(0))?);
    }
    app.start(ctx)?;
    let mut pairs = Vec::new();
    for port in &result_ports {
        while let Some(pair) = port.get(ctx) {
            pairs.push(pair);
        }
    }
    app.join(ctx);
    ssd.unload_module(ctx, mid)?;
    pairs.sort();
    Ok(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_core::CoreConfig;
    use biscuit_fs::{Fs, Mode};
    use biscuit_sim::Simulation;
    use biscuit_ssd::{SsdConfig, SsdDevice};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn tokenizer_basics() {
        assert_eq!(
            tokenize(b"Hello, world! hello"),
            vec!["hello", "world", "hello"]
        );
        assert_eq!(tokenize(b"  \n\t "), Vec::<String>::new());
        assert_eq!(tokenize(b"a-b_c"), vec!["a", "b", "c"]);
    }

    #[test]
    fn dataflow_matches_reference() {
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 64 << 20,
            ..SsdConfig::paper_default()
        }));
        let fs = Fs::format(dev);
        let corpus =
            "the quick brown fox jumps over the lazy dog the fox is quick and the dog is lazy "
                .repeat(50);
        fs.create("corpus.txt").unwrap();
        fs.append_untimed("corpus.txt", corpus.as_bytes()).unwrap();
        let file = fs.open("corpus.txt", Mode::ReadOnly).unwrap();
        let expected = reference_wordcount(corpus.as_bytes());
        let ssd = Ssd::new(fs, CoreConfig::paper_default());

        let sim = Simulation::new(0);
        let got: Arc<Mutex<Vec<(String, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        sim.spawn("host", move |ctx| {
            let pairs = run_wordcount(ctx, &ssd, &file, 1, 2).unwrap();
            *g.lock() = pairs;
        });
        sim.run().assert_quiescent();
        assert_eq!(*got.lock(), expected);
    }

    #[test]
    fn multiple_mappers_still_exact() {
        // Corpus small enough to fit one page: only one mapper gets work,
        // but requesting more must not duplicate or lose words.
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 64 << 20,
            ..SsdConfig::paper_default()
        }));
        let fs = Fs::format(dev);
        let corpus = "alpha beta gamma alpha ".repeat(2000); // spans pages
        fs.create("c").unwrap();
        fs.append_untimed("c", corpus.as_bytes()).unwrap();
        let file = fs.open("c", Mode::ReadOnly).unwrap();
        let expected = reference_wordcount(corpus.as_bytes());
        let ssd = Ssd::new(fs, CoreConfig::paper_default());
        let sim = Simulation::new(0);
        let got: Arc<Mutex<Vec<(String, u32)>>> = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        sim.spawn("host", move |ctx| {
            let pairs = run_wordcount(ctx, &ssd, &file, 3, 2).unwrap();
            *g.lock() = pairs;
        });
        sim.run().assert_quiescent();
        assert_eq!(*got.lock(), expected);
    }
}
