//! Pointer chasing over an on-SSD graph store (paper §V-C, Table IV).
//!
//! The paper traverses a Twitter-derived social graph in Neo4j; the work is
//! "essentially the sum of individual time needed for subsequent read
//! operations" — pure read-latency chasing. We reproduce the access
//! pattern: a synthetic power-law graph stored as fixed 128-byte adjacency
//! records, walked by reading one 4 KiB block per hop. Conv pays the full
//! host round-trip per hop (and degrades under host load); the Biscuit
//! walker chases pointers entirely inside the device.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{Application, BiscuitResult, Ssd, SsdletModule};
use biscuit_fs::File;
use biscuit_host::{ConvIo, HostLoad};
use biscuit_sim::Ctx;

/// Neighbor slots per vertex record.
pub const MAX_DEGREE: usize = 15;
/// Bytes per vertex record: 8 (degree) + 15 x 8 (neighbors).
pub const RECORD_SIZE: usize = 128;
/// Read granularity per hop (a Neo4j-like store page).
pub const BLOCK_SIZE: u64 = 4096;

/// A synthetic social graph serialized as adjacency records.
#[derive(Debug)]
pub struct SocialGraph {
    /// Vertex count.
    pub vertices: u64,
    bytes: Vec<u8>,
}

impl SocialGraph {
    /// Generates a power-law-ish graph: high-degree hubs at low vertex ids,
    /// every vertex with at least one out-neighbor.
    pub fn generate(vertices: u64, seed: u64) -> SocialGraph {
        assert!(vertices > 1, "graph needs at least two vertices");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut bytes = Vec::with_capacity(vertices as usize * RECORD_SIZE);
        for _v in 0..vertices {
            let degree = rng.random_range(1..=MAX_DEGREE as u64);
            bytes.extend_from_slice(&degree.to_le_bytes());
            for slot in 0..MAX_DEGREE as u64 {
                let neighbor = if slot < degree {
                    // Quadratic skew: most edges point at low-id hubs.
                    let u: f64 = rng.random();
                    (u * u * vertices as f64) as u64 % vertices
                } else {
                    0
                };
                bytes.extend_from_slice(&neighbor.to_le_bytes());
            }
        }
        SocialGraph { vertices, bytes }
    }

    /// The serialized store (page-padded by the filesystem on load).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Reference walk over the in-memory store (ground truth for tests).
    pub fn reference_walk(&self, walks: u64, steps: u64, seed: u64) -> u64 {
        let mut checksum = 0u64;
        for w in 0..walks {
            let mut rng = SmallRng::seed_from_u64(seed ^ w);
            let mut v = rng.random_range(0..self.vertices);
            for _ in 0..steps {
                let off = v as usize * RECORD_SIZE;
                let record = &self.bytes[off..off + RECORD_SIZE];
                v = next_vertex(record, &mut rng);
                checksum = checksum.wrapping_mul(31).wrapping_add(v);
            }
        }
        checksum
    }
}

/// Decodes a record and picks the walk's next vertex.
fn next_vertex(record: &[u8], rng: &mut SmallRng) -> u64 {
    let degree =
        u64::from_le_bytes(record[..8].try_into().expect("8 bytes")).clamp(1, MAX_DEGREE as u64);
    let pick = rng.random_range(0..degree) as usize;
    let start = 8 + pick * 8;
    u64::from_le_bytes(record[start..start + 8].try_into().expect("8 bytes"))
}

/// Reads the 4 KiB block holding `vertex`'s record via `read_block` and
/// returns the record slice offsets.
fn record_in_block(vertex: u64) -> (u64, usize) {
    let offset = vertex * RECORD_SIZE as u64;
    let block = offset / BLOCK_SIZE * BLOCK_SIZE;
    (block, (offset - block) as usize)
}

/// Host-side pointer chasing: one Conv read round-trip per hop.
///
/// # Errors
///
/// Returns filesystem errors.
#[allow(clippy::too_many_arguments)] // flat benchmark-driver signature
pub fn conv_chase(
    ctx: &Ctx,
    conv: &ConvIo,
    file: &File,
    walks: u64,
    steps: u64,
    seed: u64,
    vertices: u64,
    load: HostLoad,
) -> biscuit_fs::FsResult<u64> {
    let mut checksum = 0u64;
    for w in 0..walks {
        let mut rng = SmallRng::seed_from_u64(seed ^ w);
        let mut v = rng.random_range(0..vertices);
        for _ in 0..steps {
            let (block, rec_off) = record_in_block(v);
            let bytes = conv.read(ctx, file, block, BLOCK_SIZE, load)?;
            v = next_vertex(&bytes[rec_off..rec_off + RECORD_SIZE], &mut rng);
            checksum = checksum.wrapping_mul(31).wrapping_add(v);
        }
    }
    Ok(checksum)
}

/// Arguments for the chase SSDlet.
#[derive(Debug, Clone)]
pub struct ChaseArgs {
    /// Graph store file.
    pub file: File,
    /// Number of random walks.
    pub walks: u64,
    /// Steps per walk.
    pub steps: u64,
    /// Walk seed (same seed ⇒ same path as the Conv walker).
    pub seed: u64,
    /// Vertex count.
    pub vertices: u64,
}

/// SSDlet identifier inside [`chase_module`].
pub const CHASE_ID: &str = "idChase";

/// Builds the `chaser` module.
pub fn chase_module() -> SsdletModule {
    ModuleBuilder::new("chaser")
        .binary_size(64 << 10)
        .register(
            CHASE_ID,
            SsdletSpec::new().output::<u64>().memory(128 << 10),
            |args| {
                let args = args_as::<ChaseArgs>(args)?;
                Ok(Box::new(Chaser { args }))
            },
        )
        .build()
}

struct Chaser {
    args: ChaseArgs,
}

impl Ssdlet for Chaser {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let mut checksum = 0u64;
        for w in 0..self.args.walks {
            let mut rng = SmallRng::seed_from_u64(self.args.seed ^ w);
            let mut v = rng.random_range(0..self.args.vertices);
            for _ in 0..self.args.steps {
                let (block, rec_off) = record_in_block(v);
                let bytes = self
                    .args
                    .file
                    .read_at(ctx.sim(), block, BLOCK_SIZE)
                    .expect("graph store read");
                // Decode on the device CPU.
                ctx.compute_bytes(RECORD_SIZE as u64);
                v = next_vertex(&bytes[rec_off..rec_off + RECORD_SIZE], &mut rng);
                checksum = checksum.wrapping_mul(31).wrapping_add(v);
            }
        }
        ctx.send(0, checksum).expect("host port open");
    }
}

/// Device-side pointer chasing over the framework.
///
/// # Errors
///
/// Returns framework errors.
pub fn biscuit_chase(
    ctx: &Ctx,
    ssd: &Ssd,
    module: biscuit_core::ModuleId,
    args: ChaseArgs,
) -> BiscuitResult<u64> {
    let app = Application::new(ssd, "chase");
    let t = app.ssdlet_with(module, CHASE_ID, args)?;
    let rx = app.connect_to::<u64>(t.out(0))?;
    app.start(ctx)?;
    let checksum = rx.get(ctx).unwrap_or(0);
    app.join(ctx);
    Ok(checksum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_core::CoreConfig;
    use biscuit_fs::{Fs, Mode};
    use biscuit_host::HostConfig;
    use biscuit_sim::Simulation;
    use biscuit_ssd::{SsdConfig, SsdDevice};
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn setup(vertices: u64) -> (Ssd, ConvIo, File, SocialGraph) {
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 256 << 20,
            ..SsdConfig::paper_default()
        }));
        let fs = Fs::format(Arc::clone(&dev));
        let graph = SocialGraph::generate(vertices, 5);
        fs.create("graph").unwrap();
        fs.append_untimed("graph", graph.as_bytes()).unwrap();
        let file = fs.open("graph", Mode::ReadOnly).unwrap();
        let ssd = Ssd::new(fs, CoreConfig::paper_default());
        let conv = ConvIo::new(
            Arc::clone(ssd.device()),
            Arc::clone(ssd.link()),
            HostConfig::paper_default(),
        );
        (ssd, conv, file, graph)
    }

    #[test]
    fn generator_records_are_well_formed() {
        let g = SocialGraph::generate(100, 1);
        assert_eq!(g.as_bytes().len(), 100 * RECORD_SIZE);
        for v in 0..100 {
            let rec = &g.as_bytes()[v * RECORD_SIZE..(v + 1) * RECORD_SIZE];
            let degree = u64::from_le_bytes(rec[..8].try_into().unwrap());
            assert!((1..=MAX_DEGREE as u64).contains(&degree));
            for slot in 0..degree as usize {
                let n = u64::from_le_bytes(rec[8 + slot * 8..16 + slot * 8].try_into().unwrap());
                assert!(n < 100);
            }
        }
    }

    #[test]
    fn all_three_walkers_agree() {
        let (ssd, conv, file, graph) = setup(2000);
        let expected = graph.reference_walk(4, 50, 99);
        let sim = Simulation::new(0);
        let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let r = Arc::clone(&results);
        sim.spawn("host", move |ctx| {
            let c = conv_chase(ctx, &conv, &file, 4, 50, 99, 2000, HostLoad::IDLE).unwrap();
            let module = ssd.load_module(ctx, chase_module()).unwrap();
            let b = biscuit_chase(
                ctx,
                &ssd,
                module,
                ChaseArgs {
                    file: file.clone(),
                    walks: 4,
                    steps: 50,
                    seed: 99,
                    vertices: 2000,
                },
            )
            .unwrap();
            r.lock().extend([c, b]);
        });
        sim.run().assert_quiescent();
        let results = results.lock();
        assert_eq!(results[0], expected, "conv checksum");
        assert_eq!(results[1], expected, "biscuit checksum");
    }

    #[test]
    fn biscuit_gains_match_table4_shape() {
        let (ssd, conv, file, _graph) = setup(5000);
        let sim = Simulation::new(0);
        let times: Arc<Mutex<Vec<f64>>> = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&times);
        sim.spawn("host", move |ctx| {
            let module = ssd.load_module(ctx, chase_module()).unwrap();
            for load in [HostLoad::IDLE, HostLoad::new(24)] {
                let t0 = ctx.now();
                conv_chase(ctx, &conv, &file, 4, 100, 7, 5000, load).unwrap();
                let conv_t = (ctx.now() - t0).as_secs_f64();
                let t1 = ctx.now();
                biscuit_chase(
                    ctx,
                    &ssd,
                    module,
                    ChaseArgs {
                        file: file.clone(),
                        walks: 4,
                        steps: 100,
                        seed: 7,
                        vertices: 5000,
                    },
                )
                .unwrap();
                let bis_t = (ctx.now() - t1).as_secs_f64();
                t.lock().extend([conv_t, bis_t]);
            }
        });
        sim.run().assert_quiescent();
        let t = times.lock();
        let (conv0, bis0, conv24, bis24) = (t[0], t[1], t[2], t[3]);
        // Paper: ~11% gain idle, ~25% under load; Biscuit flat.
        let gain_idle = conv0 / bis0;
        let gain_loaded = conv24 / bis24;
        assert!(
            (1.05..1.35).contains(&gain_idle),
            "idle pointer-chasing gain {gain_idle:.3}, paper ~1.11"
        );
        assert!(gain_loaded > gain_idle, "gain must grow with load");
        assert!(
            (bis24 - bis0).abs() / bis0 < 0.05,
            "biscuit flat under load: {bis0} vs {bis24}"
        );
        assert!(conv24 / conv0 > 1.08, "conv degrades under load");
    }
}
