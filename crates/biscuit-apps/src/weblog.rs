//! Web-log workload generator (paper §V-C "Simple String Search").
//!
//! Produces Apache-style access-log lines with a rare planted token that
//! the search benchmarks hunt for. Content is generated per page, aligned
//! so no line spans a page boundary, which lets the same generator back
//! either a materialized file or a storage-free synthetic file of paper
//! scale (7.8 GiB).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use biscuit_ssd::PageGen;

/// The token the search benchmarks look for.
pub const NEEDLE: &str = "PANIC_0xB15C";

const METHODS: [&str; 4] = ["GET", "POST", "PUT", "DELETE"];
const PATHS: [&str; 8] = [
    "/index.html",
    "/api/v1/users",
    "/static/app.js",
    "/login",
    "/img/logo.png",
    "/api/v1/orders",
    "/health",
    "/search?q=biscuit",
];
const CODES: [u32; 6] = [200, 200, 200, 304, 404, 500];

/// Deterministic page-aligned web-log generator.
///
/// Roughly one line in `needle_every` carries [`NEEDLE`].
#[derive(Debug, Clone)]
pub struct WeblogGen {
    seed: u64,
    needle_every: u64,
}

impl WeblogGen {
    /// Creates a generator; `needle_every` controls needle rarity
    /// (0 = never).
    pub fn new(seed: u64, needle_every: u64) -> Self {
        WeblogGen { seed, needle_every }
    }

    fn line(&self, rng: &mut SmallRng, global_line: u64) -> String {
        let ip = format!(
            "{}.{}.{}.{}",
            rng.random_range(1..255),
            rng.random_range(0..255),
            rng.random_range(0..255),
            rng.random_range(1..255)
        );
        let tag =
            if self.needle_every > 0 && global_line % self.needle_every == self.needle_every / 2 {
                format!(" {NEEDLE}")
            } else {
                String::new()
            };
        format!(
            "{ip} - - [17/Jan/1995:{:02}:{:02}:{:02}] \"{} {} HTTP/1.1\" {} {}{}\n",
            rng.random_range(0..24),
            rng.random_range(0..60),
            rng.random_range(0..60),
            METHODS[rng.random_range(0..METHODS.len())],
            PATHS[rng.random_range(0..PATHS.len())],
            CODES[rng.random_range(0..CODES.len())],
            rng.random_range(64..65_536),
            tag
        )
    }

    /// Generates `total_bytes` of log as contiguous pages (for materialized
    /// files and tests).
    pub fn generate_bytes(&self, total_bytes: usize, page_size: usize) -> Vec<u8> {
        let pages = total_bytes.div_ceil(page_size);
        let mut out = Vec::with_capacity(pages * page_size);
        for p in 0..pages {
            out.extend_from_slice(&self.generate(p as u64, page_size));
        }
        out.truncate(total_bytes);
        out
    }

    /// Expected needle count in a span of pages (exact, since placement is
    /// deterministic per line index).
    pub fn count_needles(&self, pages: u64, page_size: usize) -> u64 {
        let mut n = 0;
        for p in 0..pages {
            let page = self.generate(p, page_size);
            let mut from = 0;
            let needle = NEEDLE.as_bytes();
            while let Some(pos) = page[from..].windows(needle.len()).position(|w| w == needle) {
                n += 1;
                from += pos + 1;
            }
        }
        n
    }
}

impl PageGen for WeblogGen {
    fn generate(&self, lpn: u64, page_size: usize) -> Vec<u8> {
        // Page-local RNG: page contents depend only on (seed, lpn).
        let mut rng =
            SmallRng::seed_from_u64(self.seed ^ (lpn.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        // Lines per page vary with line lengths; assign deterministic global
        // line numbers by reserving a fixed per-page budget.
        let line_budget = (page_size / 96) as u64;
        let mut page = Vec::with_capacity(page_size);
        let mut i = 0u64;
        loop {
            let line = self.line(&mut rng, lpn * line_budget + i);
            if page.len() + line.len() > page_size || i >= line_budget {
                break;
            }
            page.extend_from_slice(line.as_bytes());
            i += 1;
        }
        page.resize(page_size, b'\n');
        page
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_are_deterministic() {
        let g = WeblogGen::new(42, 100);
        assert_eq!(g.generate(7, 4096), g.generate(7, 4096));
        assert_ne!(g.generate(7, 4096), g.generate(8, 4096));
    }

    #[test]
    fn pages_are_exactly_page_sized() {
        let g = WeblogGen::new(1, 0);
        assert_eq!(g.generate(0, 16 << 10).len(), 16 << 10);
        assert_eq!(g.generate(123, 4096).len(), 4096);
    }

    #[test]
    fn needles_are_planted_at_requested_rarity() {
        let g = WeblogGen::new(3, 50);
        let n = g.count_needles(64, 16 << 10);
        // 64 pages x ~170 lines/page / 50 ≈ 218 needles; allow slack.
        assert!(n > 50, "needle count {n}");
        let g0 = WeblogGen::new(3, 0);
        assert_eq!(g0.count_needles(16, 16 << 10), 0);
    }

    #[test]
    fn lines_do_not_span_pages() {
        let g = WeblogGen::new(9, 10);
        for p in 0..4 {
            let page = g.generate(p, 4096);
            assert_eq!(*page.last().unwrap(), b'\n');
        }
    }

    #[test]
    fn generate_bytes_concatenates_pages() {
        let g = WeblogGen::new(5, 10);
        let bytes = g.generate_bytes(3 * 4096, 4096);
        assert_eq!(bytes.len(), 3 * 4096);
        assert_eq!(&bytes[..4096], &g.generate(0, 4096)[..]);
    }
}
