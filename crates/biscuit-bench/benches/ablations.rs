//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **Pattern matcher on/off** — §VI: "Software optimizations on embedded
//!    processors can't simply keep up"; the paper could not reproduce prior
//!    software-scan gains on a modern SSD.
//! 2. **NDP-first join order on/off** — the heuristic behind Q14's 315x I/O
//!    reduction.
//! 3. **Selectivity sweep** — where offload stops paying (the planner's
//!    threshold rationale).
//! 4. **Storage-medium latency sweep** — §V-B: the relative read-latency
//!    gain grows past 40% as the medium approaches 1 µs.

use biscuit_bench::{
    header, platform, platform_with, ratio, row, secs, simulate, simulate_metered, tpch_db_with,
    weblog_file, BenchReport, GATE_LOOSE,
};
use biscuit_db::expr::Expr;
use biscuit_db::spec::{ExecMode, SelectSpec};
use biscuit_db::tpch::all_queries;
use biscuit_db::tpch::schema::l;
use biscuit_db::{DbConfig, Value};
use biscuit_fs::Mode;
use biscuit_host::HostLoad;
use biscuit_sim::time::SimDuration;
use biscuit_ssd::{PatternSet, SsdConfig};

/// Ablation 1: hardware pattern matcher vs software scanning on the device
/// CPU vs host grep, over the same corpus.
fn ablation_pattern_matcher(report: &mut BenchReport) {
    const PAGES: u64 = 8 << 10; // 128 MiB
    header("Ablation: hardware pattern matcher vs software NDP scan");
    let plat = platform(1 << 30);
    let (file, _gen) = weblog_file(&plat, PAGES, 5000);
    let (results, metrics) = simulate_metered("ablations/pm", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let page = plat.ssd.device().config().page_size as u64;
        let lpns = file.lpns_for_range(0, PAGES * page).expect("range");
        // Host grep (Conv baseline).
        let t0 = ctx.now();
        biscuit_apps::search::conv_grep(
            ctx,
            &plat.conv,
            &file,
            biscuit_apps::weblog::NEEDLE.as_bytes(),
            HostLoad::IDLE,
        )
        .expect("conv");
        let conv_t = (ctx.now() - t0).as_secs_f64();
        // Software NDP: read internally, scan on the device CPU.
        let t1 = ctx.now();
        plat.ssd
            .device()
            .read_pages_async(ctx, &lpns, 64, 32)
            .expect("read");
        let cpu_rate = plat.ssd.device().config().cpu_scan_rate;
        ctx.sleep(SimDuration::for_bytes(PAGES * page, cpu_rate));
        let sw_t = (ctx.now() - t1).as_secs_f64();
        // Hardware pattern matcher.
        let t2 = ctx.now();
        let pat = PatternSet::from_strs(&[biscuit_apps::weblog::NEEDLE]).expect("keys");
        plat.ssd
            .device()
            .scan_pages(ctx, &lpns, &pat, 64, 32)
            .expect("scan");
        let pm_t = (ctx.now() - t2).as_secs_f64();
        (conv_t, sw_t, pm_t)
    });
    let (conv_t, sw_t, pm_t) = results;
    row(&["path", "time", "vs Conv"]);
    row(&["Conv (host grep)", &secs(conv_t), "1.0x"]);
    row(&["software NDP scan", &secs(sw_t), &ratio(conv_t / sw_t)]);
    row(&["hardware PM scan", &secs(pm_t), &ratio(conv_t / pm_t)]);
    println!("paper: software in-storage scanning loses on modern SSDs; the IP wins.");
    // Deterministic corpus: gate tightly.
    report.push("pm_sw_scan_speedup", "x", None, conv_t / sw_t);
    report.push("pm_hw_scan_speedup", "x", None, conv_t / pm_t);
    report.set_metrics(metrics);
}

/// Ablation 2: the NDP-first join-order heuristic, measured on Q14.
fn ablation_join_order(report: &mut BenchReport) {
    header("Ablation: NDP-first join order (Q14)");
    let q14 = all_queries().into_iter().nth(13).expect("Q14");
    let mut rows_out = Vec::new();
    for reorder in [true, false] {
        let (_plat, db) = tpch_db_with(
            0.05,
            DbConfig {
                ndp_join_reorder: reorder,
                ..DbConfig::paper_default()
            },
        );
        let q = q14.clone();
        let (t, io) = simulate(move |ctx| {
            db.prepare(ctx).expect("module");
            let out = q
                .run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
                .expect("q14");
            (
                out.stats.elapsed.as_secs_f64(),
                out.stats.link_bytes_to_host,
            )
        });
        rows_out.push((reorder, t, io));
    }
    row(&["join order", "Q14 Biscuit time", "link bytes"]);
    for (reorder, t, io) in &rows_out {
        row(&[
            if *reorder {
                "NDP-filtered first"
            } else {
                "smallest first"
            },
            &secs(*t),
            &format!("{:.1} MiB", *io as f64 / (1 << 20) as f64),
        ]);
    }
    println!(
        "reorder gain: {} (the paper credits this heuristic for Q14's 166.8x)",
        ratio(rows_out[1].1 / rows_out[0].1)
    );
    // TPC-H data comes from `rand`: gate loosely.
    report.push_tol(
        "join_reorder_gain",
        "x",
        None,
        rows_out[1].1 / rows_out[0].1,
        GATE_LOOSE,
    );
}

/// Ablation 3: predicate selectivity sweep — at which selectivity the
/// planner's offload stops paying.
fn ablation_selectivity(report: &mut BenchReport) {
    header("Ablation: selectivity sweep on lineitem date filters");
    let cases: [(&str, Expr); 4] = [
        (
            "one day (~0.04%)",
            Expr::col_eq(l::SHIPDATE, Value::date("1995-01-17")),
        ),
        (
            "one month (~1.2%)",
            Expr::Between(
                Box::new(Expr::Col(l::SHIPDATE)),
                Value::date("1995-09-01"),
                Value::date("1995-09-30"),
            ),
        ),
        (
            "one quarter (~3.7%)",
            Expr::Between(
                Box::new(Expr::Col(l::SHIPDATE)),
                Value::date("1995-07-01"),
                Value::date("1995-09-30"),
            ),
        ),
        (
            "two years (~29%)",
            Expr::Between(
                Box::new(Expr::Col(l::SHIPDATE)),
                Value::date("1995-01-01"),
                Value::date("1996-12-31"),
            ),
        ),
    ];
    row(&["predicate span", "Conv", "Biscuit", "speedup", "offloaded"]);
    for (i, (name, pred)) in cases.into_iter().enumerate() {
        let (_plat, db) = tpch_db_with(0.05, DbConfig::paper_default());
        let result = simulate(move |ctx| {
            db.prepare(ctx).expect("module");
            let mut spec = SelectSpec::new("sweep");
            spec.scan("lineitem", Some(pred));
            spec.projection = vec![Expr::Col(l::ORDERKEY)];
            let conv = db
                .execute(ctx, &spec, ExecMode::Conv, HostLoad::IDLE)
                .expect("conv");
            let bis = db
                .execute(ctx, &spec, ExecMode::Biscuit, HostLoad::IDLE)
                .expect("bis");
            (
                conv.stats.elapsed.as_secs_f64(),
                bis.stats.elapsed.as_secs_f64(),
                !bis.stats.offloaded_tables.is_empty(),
            )
        });
        let (conv_t, bis_t, offloaded) = result;
        row(&[
            name,
            &secs(conv_t),
            &secs(bis_t),
            &ratio(conv_t / bis_t),
            &offloaded.to_string(),
        ]);
        // The offload verdict is the structural result of this sweep; gate
        // it exactly. Speed-ups ride on `rand` data: gate loosely.
        report.push_tol(
            &format!("selectivity_case{i}_offloaded"),
            "",
            None,
            offloaded as u64 as f64,
            0.0,
        );
        report.push_tol(
            &format!("selectivity_case{i}_speedup"),
            "x",
            None,
            conv_t / bis_t,
            GATE_LOOSE,
        );
    }
    println!("past the threshold the planner declines and Biscuit == Conv (1.0x).");
}

/// Ablation 4: storage-medium latency sweep (paper §V-B: the relative
/// latency gain grows as tR shrinks toward storage-class memory).
fn ablation_media_latency(report: &mut BenchReport) {
    header("Ablation: storage-medium latency sweep (4 KiB read)");
    row(&["tR (us)", "Conv (us)", "Biscuit (us)", "relative gain"]);
    for tr_us in [55.25, 25.0, 10.0, 1.0] {
        let plat = platform_with(SsdConfig {
            logical_capacity: 64 << 20,
            t_read: SimDuration::from_micros_f64(tr_us),
            ..SsdConfig::paper_default()
        });
        plat.ssd.fs().create("blk").expect("create");
        plat.ssd
            .fs()
            .append_untimed("blk", &vec![1u8; 16 << 10])
            .expect("load");
        let (conv_us, int_us) = simulate(move |ctx| {
            let file = plat.ssd.fs().open("blk", Mode::ReadOnly).expect("open");
            let t0 = ctx.now();
            plat.conv
                .read(ctx, &file, 0, 4096, HostLoad::IDLE)
                .expect("conv");
            let conv_us = (ctx.now() - t0).as_micros_f64();
            let t1 = ctx.now();
            file.read_at(ctx, 0, 4096).expect("internal");
            let int_us = (ctx.now() - t1).as_micros_f64();
            (conv_us, int_us)
        });
        row(&[
            &format!("{tr_us:.2}"),
            &format!("{conv_us:.1}"),
            &format!("{int_us:.1}"),
            &format!("{:.0}%", (1.0 - int_us / conv_us) * 100.0),
        ]);
        report.push(
            &format!("media_tr{}_gain_pct", tr_us as u64),
            "%",
            None,
            (1.0 - int_us / conv_us) * 100.0,
        );
    }
    println!("paper: 18% today, growing past 40% as the medium approaches 1 us.");
}

/// Ablation 5 (extension): on-device aggregation. The paper offloads
/// filters only; wiring the scan SSDlet into an aggregator SSDlet over an
/// inter-SSDlet port sends one row instead of every qualifying row.
fn ablation_aggregate_pushdown(report: &mut BenchReport) {
    use biscuit_db::spec::AggFun;
    use biscuit_db::tpch::schema::l;
    header("Ablation (extension): on-device aggregation (Q6-shaped query)");
    row(&["configuration", "time", "link bytes"]);
    let mut link_bytes = Vec::new();
    for pushdown in [false, true] {
        let (_plat, db) = tpch_db_with(
            0.05,
            DbConfig {
                aggregate_pushdown: pushdown,
                ..DbConfig::paper_default()
            },
        );
        let (t, bytes) = simulate(move |ctx| {
            db.prepare(ctx).expect("module");
            let mut spec = SelectSpec::new("q6agg");
            spec.scan(
                "lineitem",
                Some(Expr::Between(
                    Box::new(Expr::Col(l::SHIPDATE)),
                    Value::date("1994-01-01"),
                    Value::date("1994-12-31"),
                )),
            );
            spec.aggregates = vec![(
                AggFun::Sum,
                Expr::Arith(
                    biscuit_db::expr::ArithOp::Mul,
                    Box::new(Expr::Col(l::EXTENDEDPRICE)),
                    Box::new(Expr::Col(l::DISCOUNT)),
                ),
            )];
            let out = db
                .execute(ctx, &spec, ExecMode::Biscuit, HostLoad::IDLE)
                .expect("run");
            (
                out.stats.elapsed.as_secs_f64(),
                out.stats.link_bytes_to_host,
            )
        });
        row(&[
            if pushdown {
                "scan + aggregate on device"
            } else {
                "filter-only offload (paper)"
            },
            &secs(t),
            &format!("{:.2} MiB", bytes as f64 / (1 << 20) as f64),
        ]);
        link_bytes.push(bytes as f64);
    }
    println!("the aggregator SSDlet returns one row; the link carries ~nothing.");
    report.push_tol(
        "agg_pushdown_io_reduction",
        "x",
        None,
        link_bytes[0] / link_bytes[1].max(1.0),
        GATE_LOOSE,
    );
}

fn main() {
    let mut report = BenchReport::new("ablations");
    ablation_pattern_matcher(&mut report);
    ablation_join_order(&mut report);
    ablation_selectivity(&mut report);
    ablation_media_latency(&mut report);
    ablation_aggregate_pushdown(&mut report);
    report.write();
}
