//! Fig. 7 — read bandwidth vs request size, synchronous (left panel) and
//! asynchronous with queue depth 32 (right panel), for three series:
//! Conv (over the host link), Biscuit (internal), and Biscuit with the
//! per-channel pattern matcher enabled.
//!
//! Paper shape: Conv saturates at the ~3.2 GB/s link; Biscuit internal
//! exceeds it by ~1 GB/s; pattern-matched reads sit between; async reaches
//! the plateau by ~512 KiB while sync still climbs at 4 MiB.

use biscuit_bench::{header, platform, row, simulate_metered, BenchReport, Platform};
use biscuit_fs::Mode;
use biscuit_host::HostLoad;
use biscuit_sim::metrics::MetricsSnapshot;
use biscuit_ssd::PatternSet;

const TOTAL_BYTES: u64 = 256 << 20;
const SIZES: [u64; 7] = [
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    512 << 10,
    1 << 20,
    4 << 20,
];

fn setup() -> Platform {
    let plat = platform(1 << 30);
    let page = plat.ssd.device().config().page_size as u64;
    let pages = TOTAL_BYTES / page;
    let gen = std::sync::Arc::new(biscuit_apps::weblog::WeblogGen::new(3, 0));
    plat.ssd
        .fs()
        .create_synthetic("corpus", pages * page, gen)
        .expect("corpus");
    plat
}

/// Bandwidth in GB/s for reading `TOTAL_BYTES` at the given request size.
fn run(
    plat: Platform,
    request: u64,
    queue_depth: usize,
    series: &'static str,
) -> (f64, MetricsSnapshot) {
    simulate_metered("fig7", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let page = plat.ssd.device().config().page_size as u64;
        let file = plat.ssd.fs().open("corpus", Mode::ReadOnly).expect("open");
        let request_pages = (request / page).max(1) as usize;
        let total_pages = TOTAL_BYTES / page;
        let lpns: Vec<u64> = file
            .lpns_for_range(0, total_pages * page)
            .expect("range valid");
        let t0 = ctx.now();
        match series {
            "conv" => {
                plat.conv
                    .read_file_pages_async(
                        ctx,
                        &file,
                        0,
                        total_pages,
                        request_pages,
                        queue_depth,
                        HostLoad::IDLE,
                    )
                    .expect("conv read");
            }
            "biscuit" => {
                plat.ssd
                    .device()
                    .read_pages_async(ctx, &lpns, request_pages, queue_depth)
                    .expect("internal read");
            }
            "pm" => {
                let pat = PatternSet::from_strs(&["zzznope"]).expect("keys");
                plat.ssd
                    .device()
                    .scan_pages(ctx, &lpns, &pat, request_pages, queue_depth)
                    .expect("scan");
            }
            _ => unreachable!(),
        }
        let secs = (ctx.now() - t0).as_secs_f64();
        TOTAL_BYTES as f64 / secs / 1e9
    })
}

fn panel(report: &mut BenchReport, title: &str, panel_key: &str, queue_depth: usize) {
    header(title);
    row(&[
        "request size",
        "Conv GB/s",
        "Biscuit GB/s",
        "Biscuit+PM GB/s",
    ]);
    for size in SIZES {
        let (conv, _) = run(setup(), size, queue_depth, "conv");
        let (bis, metrics) = run(setup(), size, queue_depth, "biscuit");
        let (pm, _) = run(setup(), size, queue_depth, "pm");
        let label = if size >= 1 << 20 {
            format!("{} MiB", size >> 20)
        } else {
            format!("{} KiB", size >> 10)
        };
        row(&[
            &label,
            &format!("{conv:.2}"),
            &format!("{bis:.2}"),
            &format!("{pm:.2}"),
        ]);
        for (series, gbps) in [("conv", conv), ("biscuit", bis), ("pm", pm)] {
            report.push(
                &format!("{panel_key}_{series}_{}k_gbps", size >> 10),
                "GB/s",
                None,
                gbps,
            );
        }
        // Keep a snapshot of the largest async internal read: it exercises
        // every channel and both panels share the same platform shape.
        if size == *SIZES.last().expect("sizes nonempty") && queue_depth > 1 {
            report.set_metrics(metrics);
        }
    }
}

fn main() {
    let mut report = BenchReport::new("fig7_read_bandwidth");
    panel(
        &mut report,
        "Fig. 7 (left): synchronous read bandwidth (qd=1)",
        "sync",
        1,
    );
    panel(
        &mut report,
        "Fig. 7 (right): asynchronous read bandwidth (qd=32)",
        "async",
        32,
    );
    println!("\npaper shape: Conv caps at ~3.2 GB/s (PCIe); Biscuit internal ~+1 GB/s;");
    println!("pattern-matched in between; async saturates by ~512 KiB requests.");
    report.write();
}
