//! Write-path bench (`docs/WRITEPATH.md`): sustained overwrite pressure
//! on a tiny-geometry drive so GC cycles the free pool several times
//! over, then seeded power-loss crashes recovered by journal replay.
//!
//! One report comes out, `BENCH_writepath.json`:
//!
//! - rows guaranteed by construction or by in-harness asserts gate
//!   exactly from day one: `pages_written`, `lost_writes` (bytes that
//!   diverged after crash + recovery + redo), and
//!   `determinism_divergence` (two same-seed crash runs must export
//!   byte-identical physical state);
//! - the measured rows — virtual write throughput, write amplification,
//!   GC runs, GC pause p99, journal records/checkpoints, replayed
//!   records, and the wall-clock journal-replay time — are seeded in
//!   `benchmarks/baseline.json` as placeholders (value 1, tol 1e18; the
//!   gate passes on any result) until the first
//!   `scripts/bench_check.sh --update` records real values. The
//!   wall-clock replay row stays wide forever: it is machine-dependent.
//!
//! `WRITEPATH_SMOKE=1` (CI's `write-smoke` job) skips the extra
//! crash-matrix sweep — eight more seeds crossed with both crash phases,
//! pure asserts, no gated rows — and keeps the gated workload identical.

use std::sync::Arc;

use biscuit_bench::{header, row, simulate_metered, simulate_named, BenchReport};
use biscuit_fs::{File, Fs, FsError, Mode};
use biscuit_sim::fault::{FaultConfig, FaultPlan, FaultSite, PowerLossPhase};
use biscuit_sim::time::SimTime;
use biscuit_sim::Ctx;
use biscuit_ssd::{SsdConfig, SsdDevice};

const SEED: u64 = 0xB15C;
const SCRATCH: &str = "scratch.dat";
/// 14 MiB scratch file on a 16 MiB (logical) drive: the free pool is
/// thin enough that GC fires during the first overwrite round, while
/// round 0's blocks are still mostly valid — so victims carry live
/// pages and write amplification is real, not 1.0x.
const FILE_PAGES: u64 = 896;
/// Full overwrites of the scratch file.
const ROUNDS: u64 = 6;
/// Pages per timed `write_at` batch — the latency sample the GC-pause
/// percentile is computed over. Small (1/16 of a block) so scattered
/// batch orders leave every block with mixed-lifetime pages.
const BATCH_PAGES: u64 = 4;
/// Per-round batch-walk strides, each coprime with the 224-batch count
/// (224 = 2^5 * 7: no even numbers, no multiples of 7).
const STRIDES: [u64; 6] = [1, 3, 5, 9, 11, 13];

/// Tiny-geometry drive: 2x2 dies, 1 MiB blocks, 16 MiB logical, 20
/// blocks physical. `paper_default`'s 64-die granule would never feel
/// write pressure in a bench-sized run.
fn device() -> Arc<SsdDevice> {
    Arc::new(SsdDevice::new(SsdConfig {
        channels: 2,
        ways: 2,
        pages_per_block: 64,
        logical_capacity: 16 << 20,
        ..SsdConfig::paper_default()
    }))
}

fn payload(round: u64, batch: u64, bytes: usize) -> Vec<u8> {
    let tag = round.wrapping_mul(0x9E37).wrapping_add(batch);
    (0..bytes)
        .map(|i| (tag as usize).wrapping_add(i / 64) as u8)
        .collect()
}

fn open_scratch(fs: &Fs) -> Result<File, FsError> {
    match fs.open(SCRATCH, Mode::ReadWrite) {
        Ok(f) => Ok(f),
        Err(FsError::NotFound(_)) => fs.create(SCRATCH),
        Err(e) => Err(e),
    }
}

/// The overwrite phase: `ROUNDS` full passes over the scratch file in
/// `BATCH_PAGES`-page batches, returning each batch's virtual latency.
/// Rewriting the same ranges is idempotent, so a crashed host recovers
/// the device and calls this again from round zero.
fn write_phase(ctx: &Ctx, fs: &Fs) -> Result<Vec<u64>, FsError> {
    let f = open_scratch(fs)?;
    let ps = fs.device().config().page_size as u64;
    let batch_bytes = (BATCH_PAGES * ps) as usize;
    let nbatches = FILE_PAGES / BATCH_PAGES;
    let mut lat_ps = Vec::with_capacity((ROUNDS * nbatches) as usize);
    for round in 0..ROUNDS {
        // Walk the batches in a different coprime-stride order each
        // round: a same-order sweep invalidates blocks front-to-back and
        // GC always finds a fully-dead victim (write amp exactly 1.0x);
        // scattered invalidation forces it to relocate live pages.
        let stride = STRIDES[(round % ROUNDS) as usize];
        for i in 0..nbatches {
            let batch = (i * stride + round) % nbatches;
            let t0 = ctx.now();
            f.write_at(ctx, batch * BATCH_PAGES * ps, &payload(round, batch, batch_bytes))?;
            lat_ps.push((ctx.now() - t0).as_ps());
        }
    }
    Ok(lat_ps)
}

/// Bytes of the final file image that diverge from the last round's
/// payload (0 on a correct write path).
fn diverged_bytes(ctx: &Ctx, fs: &Fs) -> u64 {
    let f = fs.open(SCRATCH, Mode::ReadOnly).expect("scratch exists");
    let ps = fs.device().config().page_size as u64;
    let batch_bytes = (BATCH_PAGES * ps) as usize;
    let mut diverged = 0u64;
    for batch in 0..FILE_PAGES / BATCH_PAGES {
        let got = f
            .read_at(ctx, batch * BATCH_PAGES * ps, batch_bytes as u64)
            .expect("read back");
        let want = payload(ROUNDS - 1, batch, batch_bytes);
        diverged += got
            .iter()
            .zip(want.iter())
            .filter(|(g, w)| g != w)
            .count() as u64;
    }
    diverged
}

struct UncrashedOutcome {
    elapsed_s: f64,
    lat_ps: Vec<u64>,
    user_writes: u64,
    write_amp_milli: u64,
    journal_records: u64,
    checkpoints: u64,
    logical_export: String,
}

/// The metered uncrashed run: every measured row of the report comes
/// from here.
fn uncrashed() -> (UncrashedOutcome, biscuit_sim::metrics::MetricsSnapshot, u64) {
    let dev = device();
    let fs = Fs::format(Arc::clone(&dev));
    let d = Arc::clone(&dev);
    let (out, snap) = simulate_metered("writepath", move |ctx| {
        d.attach_metrics(ctx.metrics());
        let lat_ps = write_phase(ctx, &fs).expect("uncrashed write phase");
        let mut f = fs.open(SCRATCH, Mode::ReadWrite).expect("scratch exists");
        f.sync(ctx).expect("sync");
        assert_eq!(diverged_bytes(ctx, &fs), 0, "uncrashed read-back diverged");
        let (user_writes, _programs, write_amp_milli) = d.write_stats();
        let (journal_records, checkpoints, _seq) = d.journal_stats();
        UncrashedOutcome {
            elapsed_s: (ctx.now() - SimTime::ZERO).as_secs_f64(),
            lat_ps,
            user_writes,
            write_amp_milli,
            journal_records,
            checkpoints,
            logical_export: d.export_state(),
        }
    });
    let gc_runs = snap.counter_sum("ftl_gc_runs_total");
    (out, snap, gc_runs)
}

struct CrashOutcome {
    replayed_records: u64,
    replay_wall_us: f64,
    lost_bytes: u64,
    logical_export: String,
    physical_export: String,
}

/// One crashed run: the seeded instant kills the drive mid-phase, the
/// host replays the journal (timed on the wall clock) and redoes the
/// phase, and the result must converge byte-for-byte.
fn crashed(phase: PowerLossPhase, seed: u64) -> CrashOutcome {
    let dev = device();
    let fs = Fs::format(Arc::clone(&dev));
    let plan = FaultPlan::seeded(
        seed,
        FaultConfig {
            power_losses: 1,
            power_loss_phase: phase,
            power_loss_window: match phase {
                PowerLossPhase::MidWrite => 256,
                PowerLossPhase::MidGc => 8,
            },
            ..FaultConfig::default()
        },
    );
    dev.set_fault_plan(&plan);
    let d = Arc::clone(&dev);
    let out = simulate_named("writepath-crash", move |ctx| {
        let (replayed, wall_us) = match write_phase(ctx, &fs) {
            Ok(_) => panic!("the seeded {phase:?} crash never fired"),
            Err(e) => {
                assert!(d.is_dead(), "write phase failed but the drive is alive: {e}");
                let wall = std::time::Instant::now();
                let report = d.recover_power_loss(ctx.now());
                let wall_us = wall.elapsed().as_secs_f64() * 1e6;
                (report.replayed_records + report.torn_reverted, wall_us)
            }
        };
        write_phase(ctx, &fs).expect("redo after recovery");
        let mut f = fs.open(SCRATCH, Mode::ReadWrite).expect("scratch exists");
        f.sync(ctx).expect("sync after redo");
        CrashOutcome {
            replayed_records: replayed,
            replay_wall_us: wall_us,
            lost_bytes: diverged_bytes(ctx, &fs),
            logical_export: d.export_state(),
            physical_export: d.export_physical_state(),
        }
    });
    assert_eq!(
        plan.injected_at(FaultSite::PowerLoss),
        1,
        "{phase:?} crash must fire exactly once"
    );
    assert_eq!(
        plan.recovered_at(FaultSite::PowerLoss),
        1,
        "journal replay must be recorded"
    );
    out
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let smoke = std::env::var("WRITEPATH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);

    header(&format!(
        "Write path: GC pressure + power-loss recovery ({} config)",
        if smoke { "smoke" } else { "full" }
    ));

    let (base, snap, gc_runs) = uncrashed();
    let bytes = ROUNDS * FILE_PAGES * 16 * 1024;
    let throughput_mibps = bytes as f64 / (1 << 20) as f64 / base.elapsed_s.max(1e-12);
    let mut sorted = base.lat_ps.clone();
    sorted.sort_unstable();
    // A batch that triggered no GC takes the pipeline minimum; anything
    // above it is stall — GC pauses absorbed by the flush.
    let floor = sorted[0];
    let gc_pause_p99_ps = percentile(&sorted, 99.0).saturating_sub(floor);
    // user_writes also counts FS metadata persistence (create + sync),
    // so it sits a hair above the data-page count.
    assert!(
        base.user_writes >= ROUNDS * FILE_PAGES,
        "every data page written once: {} < {}",
        base.user_writes,
        ROUNDS * FILE_PAGES
    );
    assert!(gc_runs > 0, "the phase is sized to force GC");
    assert!(
        base.write_amp_milli > 1000,
        "GC relocation must cost something: amp {} <= 1.0x",
        base.write_amp_milli
    );

    // Crash runs: mid-write and mid-GC, both converging to the uncrashed
    // image; mid-write twice for the physical determinism row.
    let mw1 = crashed(PowerLossPhase::MidWrite, SEED);
    let mw2 = crashed(PowerLossPhase::MidWrite, SEED);
    let mg = crashed(PowerLossPhase::MidGc, SEED);
    assert_eq!(
        mw1.logical_export, base.logical_export,
        "mid-write crash diverged from the uncrashed image"
    );
    assert_eq!(
        mg.logical_export, base.logical_export,
        "mid-GC crash diverged from the uncrashed image"
    );
    let divergence = u64::from(mw1.physical_export != mw2.physical_export);
    assert_eq!(divergence, 0, "same-seed crash runs must be byte-identical");
    let lost = mw1.lost_bytes + mw2.lost_bytes + mg.lost_bytes;
    assert_eq!(lost, 0, "acked bytes lost across recovery");

    row(&["metric", "value"]);
    row(&["pages_written", &base.user_writes.to_string()]);
    row(&["throughput", &format!("{throughput_mibps:.1} MiB/s")]);
    row(&[
        "write_amp",
        &format!("{:.3}x", base.write_amp_milli as f64 / 1000.0),
    ]);
    row(&["gc_runs", &gc_runs.to_string()]);
    row(&[
        "gc_pause_p99",
        &format!("{:.1}us", gc_pause_p99_ps as f64 / 1e6),
    ]);
    row(&["replayed_records", &mw1.replayed_records.to_string()]);
    row(&[
        "replay_wall",
        &format!("{:.0}us", mw1.replay_wall_us),
    ]);

    let mut report = BenchReport::new("writepath");
    report.push_tol(
        "pages_written",
        "pages",
        None,
        (ROUNDS * FILE_PAGES) as f64,
        0.0,
    );
    report.push_tol("lost_writes", "bytes", None, lost as f64, 0.0);
    report.push_tol("determinism_divergence", "diffs", None, divergence as f64, 0.0);
    report.push_tol(
        "write_throughput_mibps",
        "MiB/s",
        None,
        throughput_mibps,
        1e18,
    );
    report.push_tol(
        "write_amp_milli",
        "milli-x",
        None,
        base.write_amp_milli as f64,
        1e18,
    );
    report.push_tol("gc_runs", "runs", None, gc_runs as f64, 1e18);
    report.push_tol("gc_pause_p99_ps", "ps", None, gc_pause_p99_ps as f64, 1e18);
    report.push_tol(
        "journal_records",
        "records",
        None,
        base.journal_records as f64,
        1e18,
    );
    report.push_tol("checkpoints", "ckpts", None, base.checkpoints as f64, 1e18);
    report.push_tol(
        "recovery_replayed_records",
        "records",
        None,
        mw1.replayed_records as f64,
        1e18,
    );
    report.push_tol(
        "recovery_replay_wall_us",
        "us",
        None,
        mw1.replay_wall_us,
        1e18,
    );
    report.set_metrics(snap);
    report.write();

    if smoke {
        println!("\nWRITEPATH_SMOKE=1: skipping the crash-matrix sweep");
        return;
    }

    // The sweep: more seeds, both phases, every run must converge. Pure
    // asserts — a miss panics the bench.
    header("crash-matrix sweep (8 seeds x 2 phases)");
    for seed in 0..8u64 {
        for phase in [PowerLossPhase::MidWrite, PowerLossPhase::MidGc] {
            let out = crashed(phase, SEED ^ (seed.wrapping_mul(0x9E37_79B9) + 1));
            assert_eq!(
                out.logical_export, base.logical_export,
                "sweep seed {seed} {phase:?} diverged"
            );
            assert_eq!(out.lost_bytes, 0);
        }
    }
    println!("sweep: 16/16 crash runs converged");
}
