//! Fig. 10 — relative TPC-H performance of Biscuit over Conv for all 22
//! queries, with I/O reduction ratios.
//!
//! Paper: 8 queries leverage NDP (geomean 6.1x; the top five average 15.4x;
//! Q14 reaches 166.8x with a 315.4x I/O reduction thanks to the NDP-first
//! join order), 14 queries stay at 1.0x, and the whole suite finishes 3.6x
//! faster.

use biscuit_bench::{
    geomean, header, ratio, row, secs, simulate_metered, tpch_db, BenchReport, GATE_LOOSE,
};
use biscuit_db::spec::ExecMode;
use biscuit_db::tpch::all_queries;
use biscuit_host::HostLoad;

const SF: f64 = 0.05;

struct QueryResult {
    id: usize,
    conv_secs: f64,
    bis_secs: f64,
    io_reduction: f64,
    offloaded: Vec<String>,
}

fn main() {
    let (plat, db) = tpch_db(SF);
    let (results, metrics) = simulate_metered("fig10", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        db.prepare(ctx).expect("module load");
        let mut out = Vec::new();
        for q in all_queries() {
            let conv = q
                .run(&db, ctx, ExecMode::Conv, HostLoad::IDLE)
                .unwrap_or_else(|e| panic!("Q{} conv failed: {e}", q.id));
            let bis = q
                .run(&db, ctx, ExecMode::Biscuit, HostLoad::IDLE)
                .unwrap_or_else(|e| panic!("Q{} biscuit failed: {e}", q.id));
            assert_eq!(
                conv.rows.len(),
                bis.rows.len(),
                "Q{} row count mismatch",
                q.id
            );
            out.push(QueryResult {
                id: q.id,
                conv_secs: conv.stats.elapsed.as_secs_f64(),
                bis_secs: bis.stats.elapsed.as_secs_f64(),
                io_reduction: conv.stats.link_bytes_to_host as f64
                    / bis.stats.link_bytes_to_host.max(1) as f64,
                offloaded: bis.stats.offloaded_tables.clone(),
            });
        }
        out
    });

    header(&format!("Fig. 10: TPC-H relative performance (SF {SF})"));
    row(&[
        "query",
        "Conv",
        "Biscuit",
        "speedup",
        "I/O reduction",
        "offloaded",
    ]);
    let mut sorted: Vec<&QueryResult> = results.iter().collect();
    sorted.sort_by(|a, b| {
        let ra = a.conv_secs / a.bis_secs;
        let rb = b.conv_secs / b.bis_secs;
        rb.partial_cmp(&ra).expect("finite")
    });
    for r in &sorted {
        let speedup = r.conv_secs / r.bis_secs;
        row(&[
            &format!("Q{}", r.id),
            &secs(r.conv_secs),
            &secs(r.bis_secs),
            &ratio(speedup),
            &if r.offloaded.is_empty() {
                "-".to_owned()
            } else {
                ratio(r.io_reduction)
            },
            &r.offloaded.join(","),
        ]);
    }

    let offloaded: Vec<&QueryResult> = results.iter().filter(|r| !r.offloaded.is_empty()).collect();
    let speedups: Vec<f64> = offloaded.iter().map(|r| r.conv_secs / r.bis_secs).collect();
    let mut top = speedups.clone();
    top.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
    let top5: Vec<f64> = top.into_iter().take(5).collect();
    let conv_total: f64 = results.iter().map(|r| r.conv_secs).sum();
    let bis_total: f64 = results.iter().map(|r| r.bis_secs).sum();

    println!();
    row(&["summary", "paper", "measured"]);
    row(&[
        "queries offloaded",
        "8 of 22",
        &format!("{} of 22", offloaded.len()),
    ]);
    row(&["geomean (offloaded)", "6.1x", &ratio(geomean(&speedups))]);
    row(&[
        "top-5 average",
        "15.4x",
        &ratio(top5.iter().sum::<f64>() / top5.len() as f64),
    ]);
    row(&[
        "total suite speedup",
        "3.6x",
        &ratio(conv_total / bis_total),
    ]);
    let best = sorted.first().expect("22 queries");
    row(&[
        "best query",
        "Q14: 166.8x (315x I/O)",
        &format!(
            "Q{}: {} ({} I/O)",
            best.id,
            ratio(best.conv_secs / best.bis_secs),
            ratio(best.io_reduction)
        ),
    ]);

    // TPC-H data comes from `rand`, so the exact speed-ups shift with the
    // rand implementation. The offload count is structural (the planner's
    // verdicts on 22 fixed queries) but a borderline table can flip, so it
    // gets a moderate gate; the aggregates get the loose one.
    let mut report = BenchReport::new("fig10_tpch");
    report.push_tol(
        "queries_offloaded",
        "",
        Some(8.0),
        offloaded.len() as f64,
        0.3,
    );
    report.push_tol(
        "geomean_offloaded_speedup",
        "x",
        Some(6.1),
        geomean(&speedups),
        GATE_LOOSE,
    );
    report.push_tol(
        "top5_avg_speedup",
        "x",
        Some(15.4),
        top5.iter().sum::<f64>() / top5.len() as f64,
        GATE_LOOSE,
    );
    report.push_tol(
        "total_suite_speedup",
        "x",
        Some(3.6),
        conv_total / bis_total,
        GATE_LOOSE,
    );
    report.set_metrics(metrics);
    report.write();
}
