//! Fig. 8 — the two lineitem filter queries from the Ibex paper that §V-C
//! uses to demonstrate DB scan offload:
//!
//! ```sql
//! -- Query 1 (selectivity ~0.02)
//! SELECT l_orderkey, l_shipdate, l_linenumber FROM lineitem
//! WHERE l_shipdate = '1995-01-17';
//! -- Query 2 (selectivity ~0.04)
//! SELECT l_orderkey, l_shipdate, l_linenumber FROM lineitem
//! WHERE (l_shipdate = '1995-01-17' OR l_shipdate = '1995-01-18')
//!   AND (l_linenumber = 1 OR l_linenumber = 2);
//! ```
//!
//! Paper: ~11x and ~10x speed-up; Conv times vary with system load while
//! Biscuit stays consistent. We run each query at several background load
//! levels to reproduce the variance structure.

use biscuit_bench::{header, ratio, row, secs, simulate_metered, tpch_db, BenchReport, GATE_LOOSE};
use biscuit_db::expr::Expr;
use biscuit_db::spec::{ExecMode, SelectSpec};
use biscuit_db::tpch::schema::l;
use biscuit_db::Value;
use biscuit_host::HostLoad;

const SF: f64 = 0.05;

fn query1() -> SelectSpec {
    let mut spec = SelectSpec::new("fig8-q1");
    spec.scan(
        "lineitem",
        Some(Expr::col_eq(l::SHIPDATE, Value::date("1995-01-17"))),
    );
    spec.projection = vec![
        Expr::Col(l::ORDERKEY),
        Expr::Col(l::SHIPDATE),
        Expr::Col(l::LINENUMBER),
    ];
    spec
}

fn query2() -> SelectSpec {
    let mut spec = SelectSpec::new("fig8-q2");
    spec.scan(
        "lineitem",
        Some(Expr::And(vec![
            Expr::Or(vec![
                Expr::col_eq(l::SHIPDATE, Value::date("1995-01-17")),
                Expr::col_eq(l::SHIPDATE, Value::date("1995-01-18")),
            ]),
            Expr::Or(vec![
                Expr::col_eq(l::LINENUMBER, Value::Int(1)),
                Expr::col_eq(l::LINENUMBER, Value::Int(2)),
            ]),
        ])),
    );
    spec.projection = vec![
        Expr::Col(l::ORDERKEY),
        Expr::Col(l::SHIPDATE),
        Expr::Col(l::LINENUMBER),
    ];
    spec
}

fn main() {
    let (plat, db) = tpch_db(SF);
    let loads = [0u32, 6, 12];
    let results = simulate_metered("fig8", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        db.prepare(ctx).expect("module load");
        let mut out = Vec::new();
        for (name, spec) in [("Query 1", query1()), ("Query 2", query2())] {
            for threads in loads {
                let load = HostLoad::new(threads);
                let conv = db
                    .execute(ctx, &spec, ExecMode::Conv, load)
                    .expect("conv run");
                let bis = db
                    .execute(ctx, &spec, ExecMode::Biscuit, load)
                    .expect("biscuit run");
                assert_eq!(conv.rows.len(), bis.rows.len(), "row counts agree");
                out.push((
                    name,
                    threads,
                    conv.stats.elapsed.as_secs_f64(),
                    bis.stats.elapsed.as_secs_f64(),
                    bis.rows.len(),
                    !bis.stats.offloaded_tables.is_empty(),
                ));
            }
        }
        out
    });
    let (results, metrics) = results;

    header(&format!("Fig. 8: lineitem filter queries (TPC-H SF {SF})"));
    row(&[
        "query/load",
        "Conv",
        "Biscuit",
        "speedup",
        "rows",
        "offloaded",
    ]);
    for (name, threads, conv_t, bis_t, rows_n, offloaded) in &results {
        row(&[
            &format!("{name} @{threads}thr"),
            &secs(*conv_t),
            &secs(*bis_t),
            &ratio(conv_t / bis_t),
            &rows_n.to_string(),
            &offloaded.to_string(),
        ]);
    }
    // Variance structure: Conv spread vs Biscuit spread across loads.
    for name in ["Query 1", "Query 2"] {
        let convs: Vec<f64> = results
            .iter()
            .filter(|r| r.0 == name)
            .map(|r| r.2)
            .collect();
        let biss: Vec<f64> = results
            .iter()
            .filter(|r| r.0 == name)
            .map(|r| r.3)
            .collect();
        let spread = |v: &[f64]| {
            let max = v.iter().cloned().fold(f64::MIN, f64::max);
            let min = v.iter().cloned().fold(f64::MAX, f64::min);
            (max - min) / min * 100.0
        };
        println!(
            "{name}: Conv spread across loads {:.0}% vs Biscuit {:.1}% (paper: Conv varied, Biscuit consistent)",
            spread(&convs),
            spread(&biss)
        );
    }
    println!("paper speed-ups: ~11x (Query 1), ~10x (Query 2)");

    // TPC-H data comes from `rand`, so absolute times shift with the rand
    // implementation: gate the speed-ups (and idle times) loosely.
    let mut report = BenchReport::new("fig8_db_filter");
    for (name, threads, conv_t, bis_t, _rows, _off) in &results {
        let key = if *name == "Query 1" { "q1" } else { "q2" };
        report.push_tol(
            &format!("{key}_load{threads}_speedup"),
            "x",
            None,
            conv_t / bis_t,
            GATE_LOOSE,
        );
    }
    report.set_metrics(metrics);
    report.write();
}
