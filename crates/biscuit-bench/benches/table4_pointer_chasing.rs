//! Table IV — pointer chasing under background load.
//!
//! Paper (seconds, 100 walk starts over a 20 GiB Twitter graph):
//!
//! | threads | 0     | 6 | 12 | 18    | 24    |
//! |---------|-------|---|----|-------|-------|
//! | Conv    | 138.6 | . | .  | 154.9 | 155.0 |
//! | Biscuit | 124.4 | . | .  | 123.9 | 123.5 |
//!
//! We run a scaled-down walk (same per-hop structure) and also report the
//! extrapolation to the paper's hop count (138.6 s / 90 µs ≈ 1.54 M hops).

use biscuit_apps::graph::{biscuit_chase, chase_module, conv_chase, ChaseArgs, SocialGraph};
use biscuit_bench::{header, platform, row, simulate_metered, BenchReport, GATE_LOOSE};
use biscuit_fs::Mode;
use biscuit_host::HostLoad;

const WALKS: u64 = 10;
const STEPS: u64 = 200;
const PAPER_HOPS: f64 = 138.6 / 90.0e-6;

fn main() {
    let plat = platform(256 << 20);
    let graph = SocialGraph::generate(20_000, 5);
    plat.ssd.fs().create("graph").expect("create");
    plat.ssd
        .fs()
        .append_untimed("graph", graph.as_bytes())
        .expect("load");

    let loads = [0u32, 6, 12, 18, 24];
    let (results, metrics) = simulate_metered("table4", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let file = plat.ssd.fs().open("graph", Mode::ReadOnly).expect("open");
        let module = plat.ssd.load_module(ctx, chase_module()).expect("load");
        let mut out = Vec::new();
        for threads in loads {
            let load = HostLoad::new(threads);
            let t0 = ctx.now();
            let c = conv_chase(ctx, &plat.conv, &file, WALKS, STEPS, 7, 20_000, load)
                .expect("conv chase");
            let conv_t = (ctx.now() - t0).as_secs_f64();
            let t1 = ctx.now();
            let b = biscuit_chase(
                ctx,
                &plat.ssd,
                module,
                ChaseArgs {
                    file: file.clone(),
                    walks: WALKS,
                    steps: STEPS,
                    seed: 7,
                    vertices: 20_000,
                },
            )
            .expect("biscuit chase");
            let bis_t = (ctx.now() - t1).as_secs_f64();
            assert_eq!(c, b, "walk checksums must agree");
            out.push((threads, conv_t, bis_t));
        }
        out
    });

    let hops = (WALKS * STEPS) as f64;
    header("Table IV: pointer chasing execution time");
    row(&[
        "threads",
        "Conv (paper s)",
        "Conv (extrap s)",
        "Biscuit (paper s)",
        "Biscuit (extrap s)",
        "gain",
    ]);
    let paper_conv = [138.6, f64::NAN, f64::NAN, 154.9, 155.0];
    let paper_bis = [124.4, f64::NAN, f64::NAN, 123.9, 123.5];
    for (i, (threads, conv_t, bis_t)) in results.iter().enumerate() {
        let conv_x = conv_t / hops * PAPER_HOPS;
        let bis_x = bis_t / hops * PAPER_HOPS;
        let fmt_paper = |v: f64| {
            if v.is_nan() {
                "-".to_owned()
            } else {
                format!("{v:.1}")
            }
        };
        row(&[
            &threads.to_string(),
            &fmt_paper(paper_conv[i]),
            &format!("{conv_x:.1}"),
            &fmt_paper(paper_bis[i]),
            &format!("{bis_x:.1}"),
            &format!("{:.2}x", conv_t / bis_t),
        ]);
    }
    println!("\npaper: >=11% gain, Conv degrades with load, Biscuit flat.");

    // The graph is generated with `rand`, so the walk path (and thus the
    // timing) shifts with the rand implementation: gate loosely.
    let mut report = BenchReport::new("table4_pointer_chasing");
    for (i, (threads, conv_t, bis_t)) in results.iter().enumerate() {
        let conv_x = conv_t / hops * PAPER_HOPS;
        let bis_x = bis_t / hops * PAPER_HOPS;
        let paper_c = (!paper_conv[i].is_nan()).then_some(paper_conv[i]);
        let paper_b = (!paper_bis[i].is_nan()).then_some(paper_bis[i]);
        report.push_tol(
            &format!("conv_load{threads}_s"),
            "s",
            paper_c,
            conv_x,
            GATE_LOOSE,
        );
        report.push_tol(
            &format!("biscuit_load{threads}_s"),
            "s",
            paper_b,
            bis_x,
            GATE_LOOSE,
        );
    }
    report.set_metrics(metrics);
    report.write();
}
