//! Scale-out: grep throughput vs drive count (paper Fig. 1(b), §II).
//!
//! One host front-ends 1/2/4/8 simulated SSDs through the
//! [`SsdArray`] shard coordinator, each drive holding a fixed-size web-log
//! shard. The Conv path is one host thread scanning the drives in turn,
//! so its aggregate throughput is pinned at the host CPU's Boyer–Moore
//! rate no matter how many drives feed it; the Biscuit path scatters the
//! grep SSDlet to every drive and gathers counts through the ordered
//! merge port, so aggregate throughput multiplies with the drive count.
//!
//! The harness asserts the tentpole acceptance criteria directly:
//! Biscuit ≥ 3x aggregate throughput from 1 to 4 drives, Conv within 10%
//! of its single-drive rate at 4 drives.

use std::sync::Arc;

use biscuit_apps::search::{array_conv_grep, ArrayGrep};
use biscuit_apps::weblog::{WeblogGen, NEEDLE};
use biscuit_bench::{header, row, simulate_metered, BenchReport, GATE_LOOSE};
use biscuit_core::{CoreConfig, Ssd};
use biscuit_fs::Fs;
use biscuit_host::array::ArrayConfig;
use biscuit_host::{HostConfig, HostLoad, SsdArray};
use biscuit_ssd::{SsdConfig, SsdDevice};

const SHARD_PAGES: u64 = 1024; // 16 MiB per drive, fixed per-drive work

fn make_array(drives: usize) -> SsdArray {
    let drives: Vec<Ssd> = (0..drives)
        .map(|i| {
            let device = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 64 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(device);
            let page = fs.device().config().page_size as u64;
            fs.create_synthetic(
                "shard.log",
                SHARD_PAGES * page,
                Arc::new(WeblogGen::new(100 + i as u64, 3000)),
            )
            .expect("shard");
            Ssd::new(fs, CoreConfig::paper_default())
        })
        .collect();
    SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default())
}

fn main() {
    let counts = [1usize, 2, 4, 8];
    let mut results: Vec<(usize, f64, f64)> = Vec::new(); // (drives, conv MiB/s, biscuit MiB/s)
    let mut report = BenchReport::new("scaleout");

    for n in counts {
        let array = make_array(n);
        let mib = (n as u64 * SHARD_PAGES * 16 / 1024) as f64;
        let ((conv_t, bis_t, matches), metrics) =
            simulate_metered(&format!("scaleout{n}"), move |ctx| {
                array.attach_metrics(ctx.metrics());
                let grep = ArrayGrep::prepare(ctx, &array).expect("load modules");
                let t0 = ctx.now();
                let c =
                    array_conv_grep(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                        .expect("conv");
                let conv_t = (ctx.now() - t0).as_secs_f64();
                let t1 = ctx.now();
                let b = grep
                    .run(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                    .expect("biscuit");
                let bis_t = (ctx.now() - t1).as_secs_f64();
                assert_eq!(c, b, "both paths count the same needles");
                (conv_t, bis_t, c)
            });
        let conv_mibps = mib / conv_t;
        let bis_mibps = mib / bis_t;
        results.push((n, conv_mibps, bis_mibps));
        // Loose gates: the web-log content and fiber interleaving depend
        // on the `rand` implementation, so absolute rates may shift.
        report.push_tol(
            &format!("conv_mibps_{n}drives"),
            "MiB/s",
            None,
            conv_mibps,
            GATE_LOOSE,
        );
        report.push_tol(
            &format!("biscuit_mibps_{n}drives"),
            "MiB/s",
            None,
            bis_mibps,
            GATE_LOOSE,
        );
        report.set_metrics(metrics);
        let _ = matches;
    }

    header("Scale-out: aggregate grep throughput vs drive count");
    row(&["drives", "Conv (MiB/s)", "Biscuit (MiB/s)", "Biscuit/Conv"]);
    for (n, conv, bis) in &results {
        row(&[
            &n.to_string(),
            &format!("{conv:.0}"),
            &format!("{bis:.0}"),
            &format!("{:.1}x", bis / conv),
        ]);
    }

    let conv1 = results[0].1;
    let bis1 = results[0].2;
    let (conv4, bis4) = results
        .iter()
        .find(|(n, _, _)| *n == 4)
        .map(|(_, c, b)| (*c, *b))
        .expect("4-drive point");
    let scaling = bis4 / bis1;
    let flatness = (conv4 - conv1).abs() / conv1;
    println!(
        "\nBiscuit 1->4 drive scaling: {scaling:.2}x (>= 3x required); \
         Conv drift from 1-drive rate: {:.1}% (<= 10% required)",
        flatness * 100.0
    );
    assert!(
        scaling >= 3.0,
        "Biscuit aggregate throughput must scale >= 3x from 1 to 4 drives, got {scaling:.2}x"
    );
    assert!(
        flatness <= 0.10,
        "Conv aggregate throughput must stay within 10% of its 1-drive rate, drifted {:.1}%",
        flatness * 100.0
    );
    report.push_tol("biscuit_scaling_1to4", "x", None, scaling, GATE_LOOSE);
    // The drift's *baseline value* is a small percentage, so gate it with a
    // wide relative band; the in-harness assert above bounds it at 10%.
    report.push_tol("conv_drift_1to4_pct", "%", None, flatness * 100.0, 20.0);
    report.write();
}
