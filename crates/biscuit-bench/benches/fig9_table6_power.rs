//! Fig. 9 + Table VI — system power during Fig. 8's Query 1 and the total
//! energy per execution.
//!
//! Paper: idle 103 W; Conv averages ~122 W (host CPU busy); Biscuit ~136 W
//! (SSD at full internal bandwidth) but for a much shorter window; energy
//! 60.5 kJ (Conv) vs 12.2 kJ (Biscuit), ~5x.

use std::sync::Arc;

use biscuit_bench::{header, row, simulate_metered, tpch_db, BenchReport, GATE_LOOSE};
use biscuit_db::expr::Expr;
use biscuit_db::spec::{ExecMode, SelectSpec};
use biscuit_db::tpch::schema::l;
use biscuit_db::Value;
use biscuit_host::HostLoad;
use biscuit_sim::power::PowerMeter;
use biscuit_sim::time::SimDuration;

const SF: f64 = 0.05;

fn query1() -> SelectSpec {
    let mut spec = SelectSpec::new("fig9-q1");
    spec.scan(
        "lineitem",
        Some(Expr::col_eq(l::SHIPDATE, Value::date("1995-01-17"))),
    );
    spec.projection = vec![
        Expr::Col(l::ORDERKEY),
        Expr::Col(l::SHIPDATE),
        Expr::Col(l::LINENUMBER),
    ];
    spec
}

struct PowerRun {
    trace: Vec<(f64, f64)>,
    window_secs: f64,
    energy_j: f64,
    avg_watts: f64,
}

fn run(mode: ExecMode) -> (PowerRun, biscuit_sim::metrics::MetricsSnapshot) {
    let (plat, db) = tpch_db(SF);
    let name = if mode == ExecMode::Conv {
        "fig9/conv"
    } else {
        "fig9/biscuit"
    };
    simulate_metered(name, move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        db.prepare(ctx).expect("module load");
        let meter = Arc::new(PowerMeter::new());
        meter.register("baseline", 103.0, 103.0);
        let host_cpu = meter.register("host-cpu", 0.0, 19.0);
        let ssd = meter.register("ssd", 0.0, 33.0);
        db.ssd().device().attach_power(Arc::clone(&meter), ssd);

        let t0 = ctx.now();
        // Host CPU is pinned busy for the duration of a Conv run; during a
        // Biscuit run the host mostly waits on the result port.
        if mode == ExecMode::Conv {
            meter.set_active(ctx.now(), host_cpu, true);
        }
        db.execute(ctx, &query1(), mode, HostLoad::IDLE)
            .expect("query run");
        if mode == ExecMode::Conv {
            meter.set_active(ctx.now(), host_cpu, false);
        }
        let t1 = ctx.now();

        let window = (t1 - t0).as_secs_f64();
        let energy = meter.energy_joules(t1) - 103.0 * t0.as_secs_f64();
        let samples = meter.sample(t1, SimDuration::from_millis(20));
        let trace: Vec<(f64, f64)> = samples
            .into_iter()
            .filter(|&(t, _)| t >= t0)
            .map(|(t, p)| ((t - t0).as_secs_f64(), p))
            .collect();
        PowerRun {
            trace,
            window_secs: window,
            energy_j: energy,
            avg_watts: energy / window,
        }
    })
}

fn sparkline(trace: &[(f64, f64)], window: f64) -> String {
    const BUCKETS: usize = 48;
    let glyphs = [' ', '.', ':', '-', '=', '+', '*', '#'];
    let mut out = String::new();
    for b in 0..BUCKETS {
        let t = window * b as f64 / BUCKETS as f64;
        let p = trace
            .iter()
            .rev()
            .find(|&&(ts, _)| ts <= t)
            .map_or(103.0, |&(_, p)| p);
        let idx = (((p - 103.0) / 33.0) * (glyphs.len() - 1) as f64)
            .round()
            .clamp(0.0, (glyphs.len() - 1) as f64) as usize;
        out.push(glyphs[idx]);
    }
    out
}

fn main() {
    let (conv, _) = run(ExecMode::Conv);
    let (bis, metrics) = run(ExecMode::Biscuit);

    header(&format!("Fig. 9: power during Query 1 (TPC-H SF {SF})"));
    println!("power ramp over each run's own window (103W idle .. 136W peak):");
    println!(
        "  Conv    [{}] {:.2}s",
        sparkline(&conv.trace, conv.window_secs),
        conv.window_secs
    );
    println!(
        "  Biscuit [{}] {:.2}s",
        sparkline(&bis.trace, bis.window_secs),
        bis.window_secs
    );
    row(&["system", "paper avg (W)", "measured avg (W)"]);
    row(&["idle", "103", "103"]);
    row(&["Conv", "122", &format!("{:.0}", conv.avg_watts)]);
    row(&["Biscuit", "136", &format!("{:.0}", bis.avg_watts)]);

    header("Table VI: overall energy consumption (per Query 1 execution)");
    row(&["system", "paper (kJ)", "measured (J, this SF)"]);
    row(&["Conv", "60.5", &format!("{:.1}", conv.energy_j)]);
    row(&["Biscuit", "12.2", &format!("{:.1}", bis.energy_j)]);
    println!(
        "\nenergy ratio: paper 5.0x, measured {:.1}x",
        conv.energy_j / bis.energy_j
    );
    println!("(the paper's window includes a post-query buffer-sync tail that");
    println!(" lengthens the Biscuit window; we report the pure execution window)");

    // TPC-H data comes from `rand`: gate the power/energy shape loosely.
    let mut report = BenchReport::new("fig9_table6_power");
    report.push_tol(
        "conv_avg_watts",
        "W",
        Some(122.0),
        conv.avg_watts,
        GATE_LOOSE,
    );
    report.push_tol(
        "biscuit_avg_watts",
        "W",
        Some(136.0),
        bis.avg_watts,
        GATE_LOOSE,
    );
    report.push_tol(
        "energy_ratio",
        "x",
        Some(5.0),
        conv.energy_j / bis.energy_j,
        GATE_LOOSE,
    );
    report.set_metrics(metrics);
    report.write();
}
