//! Wall-clock throughput harness: how fast the *simulator itself* runs.
//!
//! Every other bench reports virtual-time results; this one reports real
//! time. For three representative workloads (Table-V grep, TPC-H Q1+Q6,
//! and a 4-drive scale-out soak) it measures:
//!
//! - **sim-events/sec** — DES kernel events processed per wall-clock
//!   second (the simulator's engine speed);
//! - **bytes copied** — the `sim_bytes_copied_total` metric, incremented
//!   at every remaining memcpy on the data path (NAND synth
//!   materialization, host read assembly, device write staging, port
//!   codec encode/decode). Deterministic, so it gates the zero-copy
//!   claim exactly;
//! - **peak RSS** — `VmHWM` from `/proc/self/status` (0 off Linux).
//!
//! A pure-kernel microbench additionally reports events/sec with
//! instrumentation disabled vs enabled, pinning the cost of the metrics
//! cold path.
//!
//! A fourth workload, the **parallel fleet soak**, runs a 4-drive grep
//! fleet through `SsdArray::scatter_parallel` twice — single-threaded
//! (`par_soak_single_*` rows) and one-thread-per-shard (`par_soak_par_*`
//! rows) — asserts their exports byte-identical, and reports the
//! speedup with a machine-aware floor (see `docs/PARALLEL.md`).
//!
//! Results land in `BENCH_wallclock.json`. The wall-clock rows are
//! machine-dependent and deliberately *not* part of
//! `benchmarks/baseline.json`; instead the smoke gate uses env vars:
//!
//! - `WALLCLOCK_SMOKE=1` — reduced workload sizes (CI-friendly);
//! - `WALLCLOCK_BASELINE=<path>` — after writing the report, compare
//!   every `*_events_per_sec` row against the same-shaped baseline file
//!   and exit nonzero on a >2x regression;
//! - `WALLCLOCK_UPDATE=1` — rewrite `WALLCLOCK_BASELINE` from this run;
//! - `WALLCLOCK_UPDATE=<prefix>` — refresh only the baseline rows whose
//!   name starts with `<prefix>` (e.g. `par_soak`) from this run,
//!   keeping every other row as recorded. Lets a multi-core runner
//!   regenerate just the parallel-soak rows without clobbering numbers
//!   measured elsewhere.
//!
//! See `docs/PERF.md` for the methodology and how to read the report.

use std::sync::Arc;
use std::time::Instant;

use biscuit_apps::search::{
    array_conv_grep, biscuit_grep, fleet_grep, fleet_grep_expected, load_grep_module, ArrayGrep,
};
use biscuit_apps::weblog::{WeblogGen, NEEDLE};
use biscuit_bench::report::{parse_json, Json};
use biscuit_bench::{header, platform, row, simulate_profiled, weblog_file, BenchReport};
use biscuit_core::{CoreConfig, Ssd};
use biscuit_db::spec::ExecMode;
use biscuit_db::tpch::all_queries;
use biscuit_fs::Fs;
use biscuit_host::array::ArrayConfig;
use biscuit_host::fleet::FleetConfig;
use biscuit_host::{HostConfig, HostLoad, SsdArray};
use biscuit_sim::par::{ParConfig, ParMode};
use biscuit_sim::time::SimDuration;
use biscuit_ssd::{SsdConfig, SsdDevice};

/// Grep passes over the same file: repeated scans are exactly what the
/// device-DRAM page cache accelerates, and what a real "serve heavy
/// traffic" deployment looks like.
const GREP_PASSES: usize = 6;

struct Sizes {
    grep_pages: u64,
    tpch_sf: f64,
    soak_drives: usize,
    soak_runs: usize,
    micro_events: u64,
    par_pages: u64,
    par_passes: usize,
}

impl Sizes {
    fn pick(smoke: bool) -> Sizes {
        if smoke {
            Sizes {
                grep_pages: 256, // 4 MiB
                tpch_sf: 0.01,
                soak_drives: 2,
                soak_runs: 1,
                micro_events: 200_000,
                par_pages: 256,
                par_passes: 2,
            }
        } else {
            Sizes {
                grep_pages: 2048, // 32 MiB
                tpch_sf: 0.05,
                soak_drives: 4,
                soak_runs: 3,
                micro_events: 1_000_000,
                par_pages: 1024, // 16 MiB per drive, matching make_array
                par_passes: 6,
            }
        }
    }
}

/// Peak resident set size in MiB (`VmHWM`), 0 when unavailable.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

struct Measured {
    events: u64,
    bytes_copied: u64,
    wall_secs: f64,
    rss_mb: f64,
    /// Dispatch-path meters (see `docs/PERF.md`): how many events went
    /// through the heap vs the at-now fast path, how many chains ran
    /// fully fused, and how many fiber handshakes the dispatch loop paid.
    events_heap: u64,
    events_at_now: u64,
    chains_fused: u64,
    fiber_switches: u64,
}

impl Measured {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs.max(1e-9)
    }

    fn push_rows(&self, report: &mut BenchReport, wl: &str) {
        // Deterministic rows (exact functions of the seed + data path).
        report.push_tol(
            &format!("{wl}_events"),
            "events",
            None,
            self.events as f64,
            0.0,
        );
        report.push_tol(
            &format!("{wl}_bytes_copied"),
            "bytes",
            None,
            self.bytes_copied as f64,
            0.0,
        );
        // Machine-dependent rows: never gated by the baseline.json
        // machinery (this report is absent from it); the smoke gate below
        // applies its own 2x band to events/sec.
        report.push_tol(
            &format!("{wl}_events_per_sec"),
            "events/s",
            None,
            self.events_per_sec(),
            1e18,
        );
        report.push_tol(
            &format!("{wl}_wall_ms"),
            "ms",
            None,
            self.wall_secs * 1e3,
            1e18,
        );
        report.push_tol(&format!("{wl}_peak_rss_mb"), "MiB", None, self.rss_mb, 1e18);
        // Dispatch-path coverage (deterministic for a fixed BISCUIT_FUSE).
        for (suffix, v) in [
            ("events_heap", self.events_heap),
            ("events_at_now", self.events_at_now),
            ("chains_fused", self.chains_fused),
            ("fiber_switches", self.fiber_switches),
        ] {
            report.push_tol(&format!("{wl}_{suffix}"), "events", None, v as f64, 1e18);
        }
    }
}

/// Pulls the dispatch-path meters out of a metrics snapshot.
fn dispatch_meters(snap: &biscuit_sim::metrics::MetricsSnapshot) -> (u64, u64, u64, u64) {
    (
        snap.counter_sum("sim_events_heap_total"),
        snap.counter_sum("sim_events_at_now_total"),
        snap.counter_sum("sim_chains_fused_total"),
        snap.counter_sum("sim_fiber_switches_total"),
    )
}

/// Runs one metered workload, timing the whole simulation (setup inside
/// the closure included) against the kernel's event count.
fn measure<R, F>(name: &'static str, f: F) -> (R, Measured)
where
    R: Send + 'static,
    F: FnOnce(&biscuit_sim::Ctx) -> R + Send + 'static,
{
    let t0 = Instant::now();
    let (result, snap, events) = simulate_profiled(name, true, f);
    let wall_secs = t0.elapsed().as_secs_f64();
    let bytes_copied = snap.counter_sum("sim_bytes_copied_total");
    let (events_heap, events_at_now, chains_fused, fiber_switches) = dispatch_meters(&snap);
    (
        result,
        Measured {
            events,
            bytes_copied,
            wall_secs,
            rss_mb: peak_rss_mb(),
            events_heap,
            events_at_now,
            chains_fused,
            fiber_switches,
        },
    )
}

fn grep_workload(sizes: &Sizes) -> Measured {
    let plat = platform(1 << 30);
    let (file, _gen) = weblog_file(&plat, sizes.grep_pages, 5000);
    let (_matches, m) = measure("wallclock-grep", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let module = load_grep_module(ctx, &plat.ssd).expect("load");
        let mut total = 0u64;
        for _ in 0..GREP_PASSES {
            total += biscuit_grep(ctx, &plat.ssd, module, &file, NEEDLE.as_bytes())
                .expect("biscuit grep");
        }
        total
    });
    m
}

fn tpch_workload(sizes: &Sizes) -> Measured {
    let (plat, db) = biscuit_bench::tpch_db(sizes.tpch_sf);
    let (_rows, m) = measure("wallclock-tpch", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        db.prepare(ctx).expect("module load");
        let mut rows = 0usize;
        for q in all_queries().into_iter().filter(|q| q.id == 1 || q.id == 6) {
            for mode in [ExecMode::Conv, ExecMode::Biscuit] {
                let out = q
                    .run(&db, ctx, mode, HostLoad::IDLE)
                    .unwrap_or_else(|e| panic!("Q{} failed: {e}", q.id));
                rows += out.rows.len();
            }
        }
        rows
    });
    m
}

fn make_array(drives: usize) -> SsdArray {
    const SHARD_PAGES: u64 = 1024; // 16 MiB per drive
    let drives: Vec<Ssd> = (0..drives)
        .map(|i| {
            let device = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 64 << 20,
                ..SsdConfig::paper_default()
            }));
            let fs = Fs::format(device);
            let page = fs.device().config().page_size as u64;
            fs.create_synthetic(
                "shard.log",
                SHARD_PAGES * page,
                Arc::new(WeblogGen::new(100 + i as u64, 3000)),
            )
            .expect("shard");
            Ssd::new(fs, CoreConfig::paper_default())
        })
        .collect();
    SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default())
}

fn soak_workload(sizes: &Sizes) -> Measured {
    let array = make_array(sizes.soak_drives);
    let runs = sizes.soak_runs;
    let (_matches, m) = measure("wallclock-soak", move |ctx| {
        array.attach_metrics(ctx.metrics());
        let grep = ArrayGrep::prepare(ctx, &array).expect("load modules");
        let mut total = 0u64;
        for _ in 0..runs {
            total += array_conv_grep(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                .expect("conv");
            total += grep
                .run(ctx, &array, "shard.log", NEEDLE.as_bytes(), HostLoad::IDLE)
                .expect("biscuit");
        }
        total
    });
    m
}

/// Parallel-DES fleet soak (`docs/PARALLEL.md`): a 4-drive grep corpus
/// like `soak_workload`'s, but each drive lives in its own shard kernel
/// (`fleet_grep`) — run once single-threaded and once with a thread per
/// shard. The fleet is 4 drives in smoke AND full so the gated row names
/// and the determinism contract cover the same fleet shape everywhere;
/// only corpus size and pass count shrink in smoke.
///
/// Beyond timing, this *asserts* the concurrency contract: merged items,
/// metrics exports, and event counts must be byte-identical across the
/// two thread policies.
fn par_soak_workload(sizes: &Sizes) -> (Measured, Measured) {
    const DRIVES: usize = 4;
    const NEEDLE_EVERY: u64 = 3000;
    let (pages, passes) = (sizes.par_pages, sizes.par_passes);
    let expected = fleet_grep_expected(DRIVES, pages, NEEDLE_EVERY, passes);
    let run = |mode: ParMode| {
        let cfg = FleetConfig {
            drives: DRIVES,
            seed: 0xB15C,
            metrics: true,
            trace: None,
            qprof: false,
            par: ParConfig {
                mode,
                lookahead: Some(SimDuration::from_millis(1)),
            },
        };
        let t0 = Instant::now();
        let report = fleet_grep(&cfg, pages, NEEDLE_EVERY, passes);
        let wall_secs = t0.elapsed().as_secs_f64();
        report.assert_quiescent();
        let total: u64 = report.items.iter().map(|(_, c)| *c).sum();
        assert_eq!(total, expected, "{mode:?} fleet match count");
        let bytes_copied = report
            .reports
            .iter()
            .map(|r| r.metrics.counter_sum("sim_bytes_copied_total"))
            .sum();
        let sum_meter = |name: &str| -> u64 {
            report
                .reports
                .iter()
                .map(|r| r.metrics.counter_sum(name))
                .sum()
        };
        let m = Measured {
            events: report.events_processed(),
            bytes_copied,
            wall_secs,
            rss_mb: peak_rss_mb(),
            events_heap: sum_meter("sim_events_heap_total"),
            events_at_now: sum_meter("sim_events_at_now_total"),
            chains_fused: sum_meter("sim_chains_fused_total"),
            fiber_switches: sum_meter("sim_fiber_switches_total"),
        };
        (m, report.metrics_json(), report.items.clone())
    };
    let (single, single_metrics, single_items) = run(ParMode::Single);
    let (par, par_metrics, par_items) = run(ParMode::PerShard);
    assert_eq!(par_items, single_items, "parallel merged items diverged");
    assert_eq!(
        par_metrics, single_metrics,
        "parallel metrics export diverged"
    );
    assert_eq!(par.events, single.events, "parallel event count diverged");
    (single, par)
}

/// Pure-kernel switch microbench: one fiber sleeping `n` times, so the
/// event count is `n` + spawn/teardown. Measures the DES hot path with no
/// workload attached — `metered` toggles the instrumentation cold path.
fn kernel_microbench(n: u64, metered: bool) -> f64 {
    let t0 = Instant::now();
    let (_out, _snap, events) = simulate_profiled("wallclock-kernel", metered, move |ctx| {
        for _ in 0..n {
            ctx.sleep(SimDuration::from_nanos(100));
        }
    });
    events as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

/// Fused-vs-unfused chain microbench: one fiber running `n` three-stage
/// chains (sense → transfer → scan shape, no competing wakes, so with
/// fusion on every hop runs inline). The unfused run pays the full
/// heap-push + two-rendezvous cost per chain; the fused run is the upper
/// bound fusion buys on this machine. Returns events/sec and asserts the
/// fused engine actually took the fused path.
fn chain_microbench(n: u64, fuse: bool) -> f64 {
    use biscuit_sim::fuse::{ChainDesc, StageKind};
    use biscuit_sim::Simulation;

    let sim = Simulation::new(0);
    sim.set_fuse(fuse);
    sim.enable_metrics();
    let t0 = Instant::now();
    sim.spawn("chains", move |ctx| {
        let stage = SimDuration::from_nanos(100);
        for _ in 0..n {
            let t = ctx.now();
            let mut chain = ChainDesc::new();
            chain.push(StageKind::NandSense, t, t + stage);
            chain.push(StageKind::BusTransfer, t + stage, t + stage + stage);
            chain.push(StageKind::MatcherScan, t + stage + stage, t + stage * 3);
            ctx.run_chain(chain);
        }
    });
    let report = sim.run();
    let rate = report.events_processed as f64 / t0.elapsed().as_secs_f64().max(1e-9);
    report.assert_quiescent();
    let fused_chains = report.metrics.counter_sum("sim_chains_fused_total");
    if fuse {
        assert_eq!(fused_chains, n, "every chain must fuse in the clean run");
    } else {
        assert_eq!(fused_chains, 0, "the unfused engine must not fuse");
    }
    rate
}

/// Rewrites the baseline at `path`, replacing the `measured` value of
/// every row whose name starts with `prefix` by this run's value (rows
/// of this run matching the prefix but absent from the baseline are
/// appended). All other rows keep their recorded values. Returns the
/// number of rows refreshed.
fn refresh_prefix(path: &str, report: &BenchReport, prefix: &str) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = parse_json(&text)?;
    let old_rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline missing 'rows'")?;
    let mut merged = BenchReport::new("wallclock");
    let mut refreshed = 0usize;
    for base_row in old_rows {
        let name = base_row
            .get("name")
            .and_then(Json::as_str)
            .ok_or("baseline row without 'name'")?;
        let fresh = name
            .starts_with(prefix)
            .then(|| report.rows().iter().find(|r| r.name == name))
            .flatten();
        match fresh {
            Some(r) => {
                merged.push_tol(&r.name, &r.unit, r.paper, r.measured, r.tol);
                refreshed += 1;
            }
            None => {
                let unit = base_row.get("unit").and_then(Json::as_str).unwrap_or("");
                let paper = base_row.get("paper").and_then(Json::as_f64);
                let measured = base_row
                    .get("measured")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("baseline row '{name}' without 'measured'"))?;
                let tol = base_row.get("tol").and_then(Json::as_f64).unwrap_or(1e18);
                merged.push_tol(name, unit, paper, measured, tol);
            }
        }
    }
    for r in report.rows() {
        if r.name.starts_with(prefix) && !merged.rows().iter().any(|m| m.name == r.name) {
            merged.push_tol(&r.name, &r.unit, r.paper, r.measured, r.tol);
            refreshed += 1;
        }
    }
    std::fs::write(path, merged.to_json()).map_err(|e| e.to_string())?;
    Ok(refreshed)
}

/// Applies the smoke gate: each `*_events_per_sec` row must be at least
/// half its baseline value. Returns the failure messages.
fn gate_against(baseline_text: &str, report: &BenchReport) -> Result<Vec<String>, String> {
    let doc = parse_json(baseline_text)?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("baseline missing 'rows'")?;
    let mut failures = Vec::new();
    for base_row in rows {
        let Some(name) = base_row.get("name").and_then(Json::as_str) else {
            continue;
        };
        if !name.ends_with("_events_per_sec") {
            continue;
        }
        let Some(base) = base_row.get("measured").and_then(Json::as_f64) else {
            continue;
        };
        match report.rows().iter().find(|r| r.name == name) {
            None => failures.push(format!("{name}: missing from this run")),
            Some(r) if r.measured < base / 2.0 => failures.push(format!(
                "{name}: {:.0} events/s is a >2x regression vs baseline {:.0}",
                r.measured, base
            )),
            Some(r) => println!(
                "gate ok {name}: {:.0} events/s (baseline {:.0}, floor {:.0})",
                r.measured,
                base,
                base / 2.0
            ),
        }
    }
    Ok(failures)
}

fn main() {
    let smoke = std::env::var("WALLCLOCK_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let sizes = Sizes::pick(smoke);
    let mut report = BenchReport::new("wallclock");

    header(&format!(
        "Wall-clock throughput ({} config)",
        if smoke { "smoke" } else { "full" }
    ));
    row(&[
        "workload",
        "events",
        "events/s",
        "bytes copied",
        "wall",
        "peak RSS",
    ]);

    let workloads: [(&str, Measured); 3] = [
        ("grep", grep_workload(&sizes)),
        ("tpch", tpch_workload(&sizes)),
        ("scaleout", soak_workload(&sizes)),
    ];
    for (wl, m) in &workloads {
        row(&[
            wl,
            &m.events.to_string(),
            &format!("{:.0}", m.events_per_sec()),
            &m.bytes_copied.to_string(),
            &format!("{:.0}ms", m.wall_secs * 1e3),
            &format!("{:.0}MiB", m.rss_mb),
        ]);
        m.push_rows(&mut report, wl);
    }

    let (par_single, par_par) = par_soak_workload(&sizes);
    for (wl, m) in [("par_soak_single", &par_single), ("par_soak_par", &par_par)] {
        row(&[
            wl,
            &m.events.to_string(),
            &format!("{:.0}", m.events_per_sec()),
            &m.bytes_copied.to_string(),
            &format!("{:.0}ms", m.wall_secs * 1e3),
            &format!("{:.0}MiB", m.rss_mb),
        ]);
        m.push_rows(&mut report, wl);
    }
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup = par_par.events_per_sec() / par_single.events_per_sec().max(1e-9);
    println!(
        "\npar soak: {speedup:.2}x parallel speedup over single-threaded \
         ({threads} hardware threads)"
    );
    report.push_tol("par_soak_speedup", "x", None, speedup, 1e18);
    report.push_tol("par_soak_threads", "threads", None, threads as f64, 1e18);
    // Machine-aware scaling floor: the determinism asserts above always
    // run; the speedup claim only binds where the cores exist to back it.
    let floor = if threads >= 4 {
        Some(2.5)
    } else if threads >= 2 {
        Some(1.2)
    } else {
        None // 1 hardware thread: parallelism can only add overhead.
    };
    if let Some(floor) = floor {
        assert!(
            speedup >= floor,
            "par soak speedup {speedup:.2}x below the {floor}x floor for {threads} threads"
        );
    }

    let disabled = kernel_microbench(sizes.micro_events, false);
    let enabled = kernel_microbench(sizes.micro_events, true);
    println!(
        "\nkernel microbench: {disabled:.0} events/s instrumentation off, \
         {enabled:.0} events/s on ({:.2}x overhead)",
        disabled / enabled.max(1e-9)
    );
    report.push_tol("disabled_events_per_sec", "events/s", None, disabled, 1e18);
    report.push_tol("enabled_events_per_sec", "events/s", None, enabled, 1e18);

    let chain_n = (sizes.micro_events / 4).max(1);
    let chain_unfused = chain_microbench(chain_n, false);
    let chain_fused = chain_microbench(chain_n, true);
    let fuse_gain = chain_fused / chain_unfused.max(1e-9);
    println!(
        "\nchain microbench: {chain_unfused:.0} events/s unfused, \
         {chain_fused:.0} events/s fused ({fuse_gain:.2}x from fusion)"
    );
    report.push_tol(
        "chain_unfused_events_per_sec",
        "events/s",
        None,
        chain_unfused,
        1e18,
    );
    report.push_tol(
        "chain_fused_events_per_sec",
        "events/s",
        None,
        chain_fused,
        1e18,
    );
    // Fusion must pay for itself on the pure chain path on any machine:
    // each unfused hop costs a heap push plus two fiber handshakes that
    // the fused hop replaces with an inline clock advance.
    assert!(
        fuse_gain >= 1.5,
        "chain fusion gain {fuse_gain:.2}x below the 1.5x floor \
         ({chain_fused:.0} vs {chain_unfused:.0} events/s)"
    );
    // Machine-aware end-to-end payoff floor: with fusion on (the
    // default), the grep workload must clear 1.5x the pre-fusion
    // 632 events/s multi-core baseline. Single/dual-core runners and
    // explicit BISCUIT_FUSE=0 runs measure but do not bind.
    let grep_rate = workloads[0].1.events_per_sec();
    if threads >= 4 && biscuit_sim::fuse::from_env() {
        assert!(
            grep_rate >= 948.0,
            "fused grep at {grep_rate:.0} events/s misses the 948 events/s \
             floor (1.5x the pre-fusion 632) on a {threads}-thread machine"
        );
    }

    report.write();

    let baseline = std::env::var("WALLCLOCK_BASELINE")
        .ok()
        .filter(|p| !p.is_empty());
    if let Some(path) = baseline {
        if let Some(update) = std::env::var("WALLCLOCK_UPDATE")
            .ok()
            .filter(|v| !v.is_empty())
        {
            if update == "1" {
                std::fs::write(&path, report.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("updated wallclock baseline {path}");
            } else {
                let n = refresh_prefix(&path, &report, &update)
                    .unwrap_or_else(|e| panic!("refreshing {path}: {e}"));
                println!("refreshed {n} '{update}*' rows in wallclock baseline {path}");
            }
            return;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        match gate_against(&text, &report) {
            Ok(failures) if failures.is_empty() => println!("wallclock gate: PASS"),
            Ok(failures) => {
                for f in &failures {
                    eprintln!("wallclock gate FAIL: {f}");
                }
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("wallclock gate: bad baseline {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
