//! Array QoS soak: the seeded workload engine driving the WFQ scheduler
//! under sustained overload (`docs/QOS.md`).
//!
//! Two reports come out of one harness:
//!
//! - `BENCH_qos.json` — a 64k-query open-loop Zipf soak over a
//!   simulated 4-drive array, run twice with the same seed; gates the
//!   admission/shed split, zero starved tenants, exact count
//!   reconciliation, throughput, tenant-0 tail waits/latencies, and
//!   byte-identity of the QoS export across the rounds.
//! - `BENCH_qos_soak1m.json` — the 1,000,000-query soak across 20,000
//!   tenants on the same 4-drive shape. Skipped under `QOS_SMOKE=1`
//!   (CI runs the 64k shape only; see the `qos-smoke` job).
//!
//! Jobs are virtual sleeps proportional to each arrival's WFQ cost —
//! the *service-time model*. The subject under test is the QoS layer
//! itself (admission, WFQ dispatch order, shedding, backpressure,
//! drain), not the grep/TPC-H datapaths, which have their own
//! harnesses; modeling service as cost-proportional sleep is what makes
//! a million-query soak tractable. One cost unit is
//! [`SERVICE_NS_PER_COST`] of drive time, so the 8-worker pool's
//! capacity is known in closed form and the arrival rate is sized to
//! ~2.3x it: the soak *must* shed, and the in-harness asserts require
//! it to.
//!
//! Baseline refresh: the `qos`/`qos_soak1m` rows in
//! `benchmarks/baseline.json` whose values could not be computed by
//! construction were seeded as placeholders (value 1, tol 1e18 — the
//! gate passes on any result). After the first full
//! `scripts/bench_check.sh --update` run they take this harness's
//! measured values with the real tolerances carried from the report
//! (exact for the integer virtual-time rows), turning them into tight
//! gates. The rows with value/tol recorded as exact (`offered`,
//! `starved_tenants`, `reconcile_err`, `determinism_divergence`) are
//! guaranteed by the asserts below and gate from day one.

use biscuit_bench::{header, row, simulate_metered, simulate_named, BenchReport, GATE_TIGHT};
use biscuit_host::workload::drive_open_loop;
use biscuit_host::{
    ArrivalProcess, DiurnalPhase, QueryScheduler, SchedulerConfig, TenantReport, WorkloadConfig,
    WorkloadEngine,
};
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::Ctx;

/// The array shape every soak runs against: 4 drives, so
/// [`SchedulerConfig::for_drives`] gives an 8-worker pool.
const DRIVES: usize = 4;

/// Service time per WFQ cost unit (2 us). Mean query cost under the
/// default mix is ~9 units, so one worker retires ~18 us of work per
/// query and the 8-worker pool's capacity is ~0.44 queries/us.
const SERVICE_NS_PER_COST: u64 = 2_000;

/// Mean open-loop interarrival (1 us = 1.0 queries/us offered): ~2.3x
/// the pool's capacity before diurnal scaling, so queues saturate and
/// the shedding path carries real traffic.
const MEAN_INTERARRIVAL_US: u64 = 1;

/// Everything one soak produces: engine-side tallies, scheduler books,
/// derived gate values, and the QoS export for byte comparison.
struct SoakOutcome {
    offered: u64,
    accepted: u64,
    shed: u64,
    starved: u64,
    reconcile_err: u64,
    /// Queries offered per simulated second (drain time included).
    qps: f64,
    /// Tenant 0 — the Zipf head, the busiest tenant by construction.
    t0: TenantReport,
    qos_json: String,
}

/// The repeating trough/steady/burst cycle: average rate multiplier
/// ~1.48, peaking at 3x during bursts.
fn diurnal_cycle() -> Vec<DiurnalPhase> {
    vec![
        DiurnalPhase {
            dur: SimDuration::from_millis(2),
            rate_mul: 0.4,
        },
        DiurnalPhase {
            dur: SimDuration::from_millis(2),
            rate_mul: 1.0,
        },
        DiurnalPhase {
            dur: SimDuration::from_millis(2),
            rate_mul: 3.0,
        },
    ]
}

fn workload(seed: u64, tenants: u32, queries: u64) -> WorkloadConfig {
    WorkloadConfig {
        seed,
        tenants,
        queries,
        zipf_theta: 1.1,
        mix: biscuit_host::QueryMix::default(),
        arrivals: ArrivalProcess::OpenLoop {
            mean_interarrival: SimDuration::from_micros(MEAN_INTERARRIVAL_US),
        },
        phases: diurnal_cycle(),
    }
}

/// Runs one open-loop soak on the calling fiber: engine feeds
/// scheduler, jobs sleep their cost-proportional service time, then the
/// scheduler closes and drains. Every acceptance-criteria invariant is
/// asserted here, in-harness, so a violation aborts the bench rather
/// than drifting a row.
fn run_soak(
    ctx: &Ctx,
    wl: WorkloadConfig,
    sched_cfg: SchedulerConfig,
    metered: bool,
) -> SoakOutcome {
    let queries = wl.queries;
    let sched = QueryScheduler::new(sched_cfg);
    if metered {
        sched.attach_metrics(ctx.metrics());
    }
    sched.start(ctx);
    let mut engine = WorkloadEngine::new(wl);
    let stats = drive_open_loop(ctx, &sched, &mut engine, |a| {
        let service = SimDuration::from_nanos(a.cost * SERVICE_NS_PER_COST);
        move |qctx: &Ctx| qctx.sleep(service)
    });
    sched.close(ctx);
    sched.wait_completed(ctx, sched.submitted());
    let elapsed = (ctx.now() - SimTime::ZERO).as_secs_f64();

    let reports = sched.tenant_reports();
    let starved = reports.iter().filter(|r| r.completed == 0).count() as u64;
    let tenant_offered: u64 = reports.iter().map(|r| r.offered).sum();
    let tenant_shed: u64 = reports.iter().map(|r| r.shed).sum();
    let tenant_completed: u64 = reports.iter().map(|r| r.completed).sum();
    let reconcile_err = stats.offered.abs_diff(queries)
        + stats.accepted.abs_diff(sched.submitted())
        + stats.shed.abs_diff(sched.shed())
        + sched.submitted().abs_diff(sched.completed())
        + tenant_offered.abs_diff(stats.offered)
        + tenant_shed.abs_diff(stats.shed)
        + tenant_completed.abs_diff(sched.completed());

    assert_eq!(stats.offered, queries, "engine must emit every arrival");
    assert_eq!(
        reconcile_err, 0,
        "shed/admission books must reconcile exactly"
    );
    assert!(
        stats.shed > 0,
        "the soak is sized to overload the array; zero shed means the \
         service-time model or arrival rate drifted"
    );
    assert_eq!(starved, 0, "every tenant must complete at least one query");

    SoakOutcome {
        offered: stats.offered,
        accepted: stats.accepted,
        shed: stats.shed,
        starved,
        reconcile_err,
        qps: stats.offered as f64 / elapsed.max(1e-12),
        t0: reports.into_iter().next().expect("tenant 0 exists"),
        qos_json: sched.qos_json(),
    }
}

/// The 64k soak: 512 tenants, the Zipf head 4-weighted so the WFQ
/// weight path sees traffic too.
fn soak_64k(metered: bool) -> (SoakOutcome, biscuit_sim::metrics::MetricsSnapshot) {
    let users = 512usize;
    let mut weights = vec![1u64; users];
    for w in weights.iter_mut().take(4) {
        *w = 4;
    }
    let sched_cfg = SchedulerConfig {
        users,
        queue_capacity: 4,
        weights,
        ..SchedulerConfig::for_drives(DRIVES)
    };
    let wl = workload(0x5EED_640A, users as u32, 65_536);
    simulate_metered("qos-64k", move |ctx| run_soak(ctx, wl, sched_cfg, metered))
}

/// Pushes one soak's gate rows: integer virtual-time rows gate exactly
/// (tol 0), throughput at the tight band.
fn push_soak_rows(report: &mut BenchReport, out: &SoakOutcome) {
    report.push_tol("offered", "queries", None, out.offered as f64, 0.0);
    report.push_tol("accepted", "queries", None, out.accepted as f64, 0.0);
    report.push_tol("shed", "queries", None, out.shed as f64, 0.0);
    report.push_tol("starved_tenants", "tenants", None, out.starved as f64, 0.0);
    report.push_tol(
        "reconcile_err",
        "queries",
        None,
        out.reconcile_err as f64,
        0.0,
    );
    report.push_tol("qps", "q/s", None, out.qps, GATE_TIGHT);
    report.push_tol(
        "t0_wait_p99_ps",
        "ps",
        None,
        out.t0.queue_wait.percentile(99.0) as f64,
        0.0,
    );
    report.push_tol(
        "t0_wait_p999_ps",
        "ps",
        None,
        out.t0.queue_wait.percentile(99.9) as f64,
        0.0,
    );
    report.push_tol(
        "t0_lat_p99_ps",
        "ps",
        None,
        out.t0.latency.percentile(99.0) as f64,
        0.0,
    );
    report.push_tol(
        "t0_lat_p999_ps",
        "ps",
        None,
        out.t0.latency.percentile(99.9) as f64,
        0.0,
    );
}

fn print_soak(name: &str, out: &SoakOutcome) {
    row(&[
        name,
        &out.offered.to_string(),
        &out.accepted.to_string(),
        &out.shed.to_string(),
        &format!("{:.0}", out.qps),
        &format!("{:.1}us", out.t0.queue_wait.percentile(99.0) as f64 / 1e6),
        &format!("{:.1}us", out.t0.latency.percentile(99.0) as f64 / 1e6),
    ]);
}

fn main() {
    let smoke = std::env::var("QOS_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);

    header(&format!(
        "Array QoS soak ({} config)",
        if smoke {
            "smoke: 64k only"
        } else {
            "full: 64k + 1M"
        }
    ));
    row(&[
        "soak", "offered", "accepted", "shed", "qps", "t0 w_p99", "t0 l_p99",
    ]);

    // 64k soak, twice with the same seed: round 1 metered (its snapshot
    // rides in the report), round 2 bare. The QoS export must be
    // byte-identical — WFQ tags, shed decisions, and drain order are
    // pure functions of the seed.
    let (round1, snap) = soak_64k(true);
    let (round2, _) = soak_64k(false);
    assert_eq!(
        round1.qos_json, round2.qos_json,
        "same-seed soaks must export byte-identical QoS state"
    );
    let divergence = u64::from(round1.qos_json != round2.qos_json);
    print_soak("qos (64k)", &round1);

    let mut report = BenchReport::new("qos");
    push_soak_rows(&mut report, &round1);
    report.push_tol(
        "determinism_divergence",
        "diffs",
        None,
        divergence as f64,
        0.0,
    );
    report.set_metrics(snap);
    report.write();

    if smoke {
        println!("\nQOS_SMOKE=1: skipping the 1M-query soak");
        return;
    }

    // The 1M soak: 20k tenants, unweighted, no registry attached (the
    // always-on per-tenant accounting carries the gates; a 20k-label
    // registry export would dominate the runtime, see
    // `QueryScheduler::attach_metrics`).
    let users = 20_000u32;
    let sched_cfg = SchedulerConfig {
        users: users as usize,
        queue_capacity: 4,
        weights: Vec::new(),
        ..SchedulerConfig::for_drives(DRIVES)
    };
    let wl = workload(0x5EED_1A1B_1C1D, users, 1_000_000);
    let big = simulate_named("qos-soak1m", move |ctx| run_soak(ctx, wl, sched_cfg, false));
    print_soak("qos_soak1m", &big);

    let mut report1m = BenchReport::new("qos_soak1m");
    push_soak_rows(&mut report1m, &big);
    report1m.write();
}
