//! Criterion micro-benchmarks of the framework's hot building blocks
//! (wall-clock performance of the library itself, not virtual-time
//! results): wire codec, Boyer–Moore, pattern matching, row parsing, FTL
//! writes, and the DES kernel's context-switch rate.

use criterion::{criterion_group, BatchSize, Criterion, Throughput};

use biscuit_db::tpch::TpchData;
use biscuit_db::value::{row_from_text, row_to_text};
use biscuit_host::search::BoyerMoore;
use biscuit_proto::wire::Wire;
use biscuit_sim::fault::FaultPlan;
use biscuit_sim::queue::SimQueue;
use biscuit_sim::time::SimDuration;
use biscuit_sim::Simulation;
use biscuit_ssd::ftl::Ftl;
use biscuit_ssd::nand::{NandArray, PageData};
use biscuit_ssd::PatternSet;

fn bench_wire_codec(c: &mut Criterion) {
    let rows: Vec<(String, u32)> = (0..256)
        .map(|i| (format!("word{i:06}"), i as u32))
        .collect();
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(rows.len() as u64));
    g.bench_function("encode_decode_256_pairs", |b| {
        b.iter(|| {
            let pkt = rows.to_packet();
            let back = Vec::<(String, u32)>::from_packet(&pkt).expect("round trip");
            assert_eq!(back.len(), rows.len());
        });
    });
    g.finish();
}

fn bench_string_search(c: &mut Criterion) {
    let gen = biscuit_apps::weblog::WeblogGen::new(7, 50);
    let corpus = gen.generate_bytes(1 << 20, 16 << 10);
    let mut g = c.benchmark_group("search");
    g.throughput(Throughput::Bytes(corpus.len() as u64));
    g.bench_function("boyer_moore_1MiB", |b| {
        let bm = BoyerMoore::new(biscuit_apps::weblog::NEEDLE.as_bytes());
        b.iter(|| bm.count(&corpus));
    });
    g.bench_function("pattern_matcher_1MiB", |b| {
        let pat = PatternSet::from_strs(&[biscuit_apps::weblog::NEEDLE]).expect("keys");
        b.iter(|| {
            corpus
                .chunks(16 << 10)
                .filter(|page| pat.matches(page))
                .count()
        });
    });
    g.finish();
}

fn bench_row_codec(c: &mut Criterion) {
    let data = TpchData::generate(0.001, 1);
    let types = biscuit_db::tpch::schema::lineitem().types();
    let texts: Vec<String> = data.lineitem.iter().take(512).map(row_to_text).collect();
    let mut g = c.benchmark_group("rows");
    g.throughput(Throughput::Elements(texts.len() as u64));
    g.bench_function("serialize_512_lineitems", |b| {
        b.iter(|| {
            data.lineitem
                .iter()
                .take(512)
                .map(row_to_text)
                .map(|t| t.len())
                .sum::<usize>()
        });
    });
    g.bench_function("parse_512_lineitems", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| {
                    row_from_text(&types, t.trim_end())
                        .expect("valid row")
                        .len()
                })
                .sum::<usize>()
        });
    });
    g.finish();
}

fn bench_ftl(c: &mut Criterion) {
    let mut g = c.benchmark_group("ftl");
    g.throughput(Throughput::Elements(512));
    g.bench_function("write_512_pages_with_gc", |b| {
        b.iter_batched(
            || {
                (
                    NandArray::new(4, 2, 16, 16, 64),
                    Ftl::new(4, 2, 16, 16, 1024),
                )
            },
            |(mut nand, mut ftl)| {
                for i in 0..512u64 {
                    let data = PageData::Bytes(biscuit_proto::Buf::from_vec(vec![i as u8; 64]));
                    ftl.write(&mut nand, i % 1024, data, &FaultPlan::none())
                        .expect("write");
                }
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("fiber_context_switches_10k", |b| {
        b.iter(|| {
            let sim = Simulation::new(0);
            sim.spawn("spinner", |ctx| {
                for _ in 0..10_000 {
                    ctx.sleep(SimDuration::from_nanos(10));
                }
            });
            sim.run().assert_quiescent();
        });
    });
    g.bench_function("queue_handoff_4k_items", |b| {
        b.iter(|| {
            let sim = Simulation::new(0);
            let q = SimQueue::new(64);
            let tx = q.clone();
            sim.spawn("p", move |ctx| {
                for i in 0..4096u32 {
                    tx.push(ctx, i).expect("open");
                }
                tx.close(ctx);
            });
            sim.spawn("c", move |ctx| {
                let mut n = 0;
                while q.pop(ctx).is_some() {
                    n += 1;
                }
                assert_eq!(n, 4096);
            });
            sim.run().assert_quiescent();
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_string_search,
    bench_row_codec,
    bench_ftl,
    bench_sim_kernel
);

/// Wall-clock timings are machine-dependent, so the gated rows are the
/// *functional* outputs of the same hot paths: search hit counts over the
/// fixed corpus and the kernel's context-switch count. Those are exact.
fn write_report() {
    use biscuit_bench::BenchReport;

    let gen = biscuit_apps::weblog::WeblogGen::new(7, 50);
    let corpus = gen.generate_bytes(1 << 20, 16 << 10);
    let bm = BoyerMoore::new(biscuit_apps::weblog::NEEDLE.as_bytes());
    let matches = bm.count(&corpus);
    let pat = PatternSet::from_strs(&[biscuit_apps::weblog::NEEDLE]).expect("keys");
    let page_hits = corpus
        .chunks(16 << 10)
        .filter(|page| pat.matches(page))
        .count();

    let sim = Simulation::new(0);
    sim.enable_metrics();
    sim.spawn("spinner", |ctx| {
        for _ in 0..10_000 {
            ctx.sleep(SimDuration::from_nanos(10));
        }
    });
    let sim_report = sim.run();
    sim_report.assert_quiescent();
    let switches = sim_report.metrics.counter_sum("sim_context_switches_total");

    let mut report = BenchReport::new("micro");
    report.push_tol("boyer_moore_matches_1mib", "", None, matches as f64, 0.0);
    report.push_tol("pm_page_hits_1mib", "", None, page_hits as f64, 0.0);
    report.push_tol(
        "sim_context_switches_10k_sleeps",
        "",
        None,
        switches as f64,
        0.0,
    );
    report.set_metrics(sim_report.metrics);
    report.write();
}

// Expanded `criterion_main!` so the report lands after the timing runs.
fn main() {
    benches();
    criterion::Criterion::default()
        .configure_from_args()
        .final_summary();
    write_report();
}
