//! Table V — simple string search under background load.
//!
//! Paper (7.8 GiB web log):
//!
//! | threads | 0    | 6    | 12   | 18   | 24   |
//! |---------|------|------|------|------|------|
//! | Conv    | 12.2 | 14.8 | 16.3 | 18.8 | 19.9 |
//! | Biscuit | 2.3  | 2.3  | 2.3  | 2.3  | 2.4  |
//!
//! We scan a smaller synthetic log (both paths are bandwidth-bound, so the
//! time per byte is scale-invariant) and report both raw and extrapolated
//! numbers at the paper's 7.8 GiB.

use biscuit_apps::search::{biscuit_grep, conv_grep, load_grep_module};
use biscuit_apps::weblog::NEEDLE;
use biscuit_bench::{header, platform, row, simulate_metered, weblog_file, BenchReport};
use biscuit_host::HostLoad;

const CORPUS_PAGES: u64 = 16 << 10; // 256 MiB of 16 KiB pages

fn main() {
    let plat = platform(1 << 30);
    let (file, _gen) = weblog_file(&plat, CORPUS_PAGES, 5000);
    let corpus_bytes = CORPUS_PAGES * 16 * 1024;
    let paper_bytes = 7.8 * (1u64 << 30) as f64;

    let loads = [0u32, 6, 12, 18, 24];
    let (results, metrics) = simulate_metered("table5", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let module = load_grep_module(ctx, &plat.ssd).expect("load");
        let mut out = Vec::new();
        for threads in loads {
            let load = HostLoad::new(threads);
            let t0 = ctx.now();
            let c = conv_grep(ctx, &plat.conv, &file, NEEDLE.as_bytes(), load).expect("conv");
            let conv_t = (ctx.now() - t0).as_secs_f64();
            let t1 = ctx.now();
            let b =
                biscuit_grep(ctx, &plat.ssd, module, &file, NEEDLE.as_bytes()).expect("biscuit");
            let bis_t = (ctx.now() - t1).as_secs_f64();
            assert_eq!(c, b, "both paths count the same needles");
            out.push((threads, conv_t, bis_t));
        }
        out
    });

    header("Table V: string search execution time");
    row(&[
        "threads",
        "Conv (paper s)",
        "Conv (extrap s)",
        "Biscuit (paper s)",
        "Biscuit (extrap s)",
        "speedup",
    ]);
    let paper_conv = [12.2, 14.8, 16.3, 18.8, 19.9];
    let paper_bis = [2.3, 2.3, 2.3, 2.3, 2.4];
    let scale = paper_bytes / corpus_bytes as f64;
    for (i, (threads, conv_t, bis_t)) in results.iter().enumerate() {
        row(&[
            &threads.to_string(),
            &format!("{:.1}", paper_conv[i]),
            &format!("{:.1}", conv_t * scale),
            &format!("{:.1}", paper_bis[i]),
            &format!("{:.1}", bis_t * scale),
            &format!("{:.1}x", conv_t / bis_t),
        ]);
    }
    println!("\npaper: 5.3x idle growing to 8.3x at 24 threads; Biscuit flat.");

    // The synthetic web log is fully deterministic (no `rand`), so the
    // extrapolated times gate tightly.
    let mut report = BenchReport::new("table5_string_search");
    for (i, (threads, conv_t, bis_t)) in results.iter().enumerate() {
        report.push(
            &format!("conv_load{threads}_s"),
            "s",
            Some(paper_conv[i]),
            conv_t * scale,
        );
        report.push(
            &format!("biscuit_load{threads}_s"),
            "s",
            Some(paper_bis[i]),
            bis_t * scale,
        );
    }
    report.set_metrics(metrics);
    report.write();
}
