//! Table III — 4 KiB read latency: Conv (host pread) vs Biscuit (internal
//! read from an SSDlet). Paper: 90.0 µs vs 75.9 µs, an 18% gain.

use biscuit_bench::{header, platform, row, simulate_metered, BenchReport};
use biscuit_fs::Mode;
use biscuit_host::HostLoad;

fn main() {
    let plat = platform(64 << 20);
    plat.ssd.fs().create("blk").expect("create");
    plat.ssd
        .fs()
        .append_untimed("blk", &vec![7u8; 64 << 10])
        .expect("load");
    let file = plat.ssd.fs().open("blk", Mode::ReadOnly).expect("open");

    let ssd = plat.ssd.clone();
    let ((conv_us, biscuit_us), metrics) = simulate_metered("table3", move |ctx| {
        ssd.attach_metrics(ctx.metrics());
        // Average over several reads at distinct offsets.
        let mut conv_total = 0.0;
        let mut int_total = 0.0;
        let n = 8;
        for i in 0..n {
            let off = (i % 4) * 4096;
            let t0 = ctx.now();
            plat.conv
                .read(ctx, &file, off, 4096, HostLoad::IDLE)
                .expect("conv read");
            conv_total += (ctx.now() - t0).as_micros_f64();
            let t1 = ctx.now();
            file.read_at(ctx, off, 4096).expect("internal read");
            int_total += (ctx.now() - t1).as_micros_f64();
        }
        (conv_total / n as f64, int_total / n as f64)
    });

    header("Table III: 4 KiB read latency");
    row(&["path", "paper (us)", "measured (us)"]);
    row(&["Conv (host pread)", "90.0", &format!("{conv_us:.1}")]);
    row(&["Biscuit (internal)", "75.9", &format!("{biscuit_us:.1}")]);
    println!(
        "\ngain: paper 18%, measured {:.0}%",
        (1.0 - biscuit_us / conv_us) * 100.0
    );

    let mut report = BenchReport::new("table3_read_latency");
    report.push("conv_us", "us", Some(90.0), conv_us);
    report.push("biscuit_us", "us", Some(75.9), biscuit_us);
    report.push(
        "gain_pct",
        "%",
        Some(18.0),
        (1.0 - biscuit_us / conv_us) * 100.0,
    );
    report.set_metrics(metrics);
    report.write();
}
