//! Table I — SSD specification: prints the simulated device's configuration
//! next to the paper's target hardware.

use biscuit_bench::{header, row, BenchReport};
use biscuit_proto::LinkConfig;
use biscuit_ssd::SsdConfig;

fn main() {
    let cfg = SsdConfig::paper_default();
    let link = LinkConfig::pcie_gen3_x4();
    header("Table I: SSD specification (paper target vs simulated device)");
    row(&["item", "paper", "simulated"]);
    row(&[
        "host interface",
        "PCIe Gen.3 x4 3.2GB/s",
        &format!("{:.1}GB/s shaper", link.bandwidth_bytes_per_sec / 1e9),
    ]);
    row(&["protocol", "NVMe 1.1", "NVMe-like command model"]);
    row(&[
        "device density",
        "1 TB",
        &format!("{} GiB logical (configurable)", cfg.logical_capacity >> 30),
    ]);
    row(&[
        "architecture",
        "multi channel/way",
        &format!("{} channels x {} ways", cfg.channels, cfg.ways),
    ]);
    row(&[
        "medium",
        "multi-bit NAND",
        &format!(
            "tR={}us pages={}KiB",
            cfg.t_read.as_micros(),
            cfg.page_size >> 10
        ),
    ]);
    row(&[
        "compute",
        "2x Cortex-R7 @750MHz",
        &format!(
            "{} cores, {}MB/s sw scan",
            cfg.cores,
            (cfg.cpu_scan_rate / 1e6) as u64
        ),
    ]);
    row(&[
        "hardware IP",
        "per-channel matcher",
        &format!(
            "{} keys x {}B @ {}MB/s/channel",
            cfg.pm_max_keys,
            cfg.pm_max_key_len,
            (cfg.pm_rate / 1e6) as u64
        ),
    ]);
    println!(
        "\ninternal bandwidth {:.1} GB/s vs host cap {:.1} GB/s (paper: internal >30% higher)",
        cfg.internal_bandwidth() / 1e9,
        link.bandwidth_bytes_per_sec / 1e9
    );

    // Pure configuration constants: gate them exactly so an accidental
    // calibration change (e.g. editing `paper_default`) is caught.
    let mut report = BenchReport::new("table1_spec");
    report.push_tol(
        "host_bandwidth_gbps",
        "GB/s",
        Some(3.2),
        link.bandwidth_bytes_per_sec / 1e9,
        0.0,
    );
    report.push_tol("channels", "", None, cfg.channels as f64, 0.0);
    report.push_tol("ways", "", None, cfg.ways as f64, 0.0);
    report.push_tol("cores", "", Some(2.0), cfg.cores as f64, 0.0);
    report.push_tol("pm_max_keys", "", None, cfg.pm_max_keys as f64, 0.0);
    report.push_tol(
        "internal_bandwidth_gbps",
        "GB/s",
        None,
        cfg.internal_bandwidth() / 1e9,
        0.0,
    );
    report.write();
}
