//! Table II — measured one-way latency of the four Biscuit port types.
//!
//! Paper: H2D 301.6 µs, D2H 130.1 µs, inter-SSDlet 31.0 µs,
//! inter-app 10.7 µs.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use biscuit_bench::{header, platform, row, simulate_metered, BenchReport, Platform};
use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{connect_apps, Application};
use biscuit_sim::metrics::MetricsSnapshot;
use biscuit_sim::time::SimDuration;

struct SendOnce;
impl Ssdlet for SendOnce {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        ctx.sim().sleep(SimDuration::from_micros(5000));
        ctx.send(0, ctx.now().as_nanos()).expect("port open");
    }
}

struct RecvOnce(Arc<AtomicU64>);
impl Ssdlet for RecvOnce {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let sent_at = ctx.recv::<u64>(0).expect("typed").expect("one message");
        self.0
            .store(ctx.now().as_nanos() - sent_at, Ordering::SeqCst);
        while ctx.recv::<u64>(0).expect("typed").is_some() {}
    }
}

fn module() -> biscuit_core::SsdletModule {
    ModuleBuilder::new("lat")
        .register("idSend", SsdletSpec::new().output::<u64>(), |_| {
            Ok(Box::new(SendOnce))
        })
        .register("idRecv", SsdletSpec::new().input::<u64>(), |args| {
            Ok(Box::new(RecvOnce(args_as::<Arc<AtomicU64>>(args)?)))
        })
        .build()
}

fn h2d(plat: Platform) -> (f64, MetricsSnapshot) {
    let cell = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&cell);
    simulate_metered("table2/h2d", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let mid = plat.ssd.load_module(ctx, module()).expect("load");
        let app = Application::new(&plat.ssd, "h2d");
        let r = app
            .ssdlet_with(mid, "idRecv", Arc::clone(&c))
            .expect("proxy");
        let tx = app.connect_from::<u64>(r.input(0)).expect("port");
        app.start(ctx).expect("start");
        ctx.sleep(SimDuration::from_micros(500));
        tx.put(ctx, ctx.now().as_nanos()).expect("put");
        tx.close(ctx);
        app.join(ctx);
        c.load(Ordering::SeqCst) as f64 / 1000.0
    })
}

fn d2h(plat: Platform) -> (f64, MetricsSnapshot) {
    simulate_metered("table2/d2h", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let mid = plat.ssd.load_module(ctx, module()).expect("load");
        let app = Application::new(&plat.ssd, "d2h");
        let t = app.ssdlet(mid, "idSend").expect("proxy");
        let rx = app.connect_to::<u64>(t.out(0)).expect("port");
        app.start(ctx).expect("start");
        let sent_at = rx.get(ctx).expect("one message");
        let lat = (ctx.now().as_nanos() - sent_at) as f64 / 1000.0;
        app.join(ctx);
        lat
    })
}

fn inter_ssdlet(plat: Platform) -> (f64, MetricsSnapshot) {
    let cell = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&cell);
    simulate_metered("table2/inter_ssdlet", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let mid = plat.ssd.load_module(ctx, module()).expect("load");
        let app = Application::new(&plat.ssd, "inter");
        let t = app.ssdlet(mid, "idSend").expect("proxy");
        let r = app
            .ssdlet_with(mid, "idRecv", Arc::clone(&c))
            .expect("proxy");
        app.connect::<u64>(t.out(0), r.input(0)).expect("connect");
        app.start(ctx).expect("start");
        app.join(ctx);
        c.load(Ordering::SeqCst) as f64 / 1000.0
    })
}

fn inter_app(plat: Platform) -> (f64, MetricsSnapshot) {
    let cell = Arc::new(AtomicU64::new(0));
    let c = Arc::clone(&cell);
    simulate_metered("table2/inter_app", move |ctx| {
        plat.ssd.attach_metrics(ctx.metrics());
        let mid = plat.ssd.load_module(ctx, module()).expect("load");
        let app_a = Application::new(&plat.ssd, "A");
        let app_b = Application::new(&plat.ssd, "B");
        let t = app_a.ssdlet(mid, "idSend").expect("proxy");
        let r = app_b
            .ssdlet_with(mid, "idRecv", Arc::clone(&c))
            .expect("proxy");
        connect_apps::<u64>((&app_a, t.out(0)), (&app_b, r.input(0))).expect("connect");
        app_a.start(ctx).expect("start");
        app_b.start(ctx).expect("start");
        app_a.join(ctx);
        app_b.join(ctx);
        c.load(Ordering::SeqCst) as f64 / 1000.0
    })
}

fn main() {
    header("Table II: I/O port one-way latency");
    row(&["port type", "paper (us)", "measured (us)"]);
    let (h2d_us, h2d_metrics) = h2d(platform(64 << 20));
    let (d2h_us, _) = d2h(platform(64 << 20));
    let (inter_ssdlet_us, _) = inter_ssdlet(platform(64 << 20));
    let (inter_app_us, _) = inter_app(platform(64 << 20));
    let results = [
        ("host-to-device (H2D)", "h2d_us", 301.6, h2d_us),
        ("device-to-host (D2H)", "d2h_us", 130.1, d2h_us),
        ("inter-SSDlet", "inter_ssdlet_us", 31.0, inter_ssdlet_us),
        ("inter-application", "inter_app_us", 10.7, inter_app_us),
    ];
    let mut report = BenchReport::new("table2_port_latency");
    for (name, key, paper, measured) in results {
        row(&[name, &format!("{paper:.1}"), &format!("{measured:.1}")]);
        report.push(key, "us", Some(paper), measured);
    }
    report.set_metrics(h2d_metrics);
    report.write();
}
