//! The bench regression gate.
//!
//! Compares the `BENCH_<id>.json` reports produced by
//! `cargo bench --workspace` against the committed
//! `benchmarks/baseline.json` and exits nonzero when any gated row drifts
//! beyond its tolerance. Run via `scripts/bench_check.sh`, or directly:
//!
//! ```text
//! cargo run --release -p biscuit-bench --bin bench_check
//! cargo run --release -p biscuit-bench --bin bench_check -- --update
//! cargo run --release -p biscuit-bench --bin bench_check -- --only qos
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use biscuit_bench::report::{bench_output_dir, check_reports_only, update_baseline};

const USAGE: &str =
    "usage: bench_check [--update] [--only <id>]... [--baseline <path>] [--dir <path>]

  --update          rewrite the baseline from the current BENCH_*.json files
  --only <id>       gate only this baseline bench (repeatable); lets a smoke
                    job check one regenerated report without running the rest
  --baseline <path> baseline file (default: <dir>/benchmarks/baseline.json)
  --dir <path>      directory holding BENCH_*.json (default: workspace root,
                    or $BISCUIT_BENCH_DIR)";

fn main() -> ExitCode {
    let mut update = false;
    let mut only: Vec<String> = Vec::new();
    let mut baseline: Option<PathBuf> = None;
    let mut dir: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--update" => update = true,
            "--only" => match argv.next() {
                Some(id) => only.push(id),
                None => return usage_error("--only needs a bench id"),
            },
            "--baseline" => match argv.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => return usage_error("--baseline needs a path"),
            },
            "--dir" => match argv.next() {
                Some(p) => dir = Some(PathBuf::from(p)),
                None => return usage_error("--dir needs a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument '{other}'")),
        }
    }
    let dir = dir.unwrap_or_else(bench_output_dir);
    let baseline = baseline.unwrap_or_else(|| dir.join("benchmarks").join("baseline.json"));

    if update {
        if !only.is_empty() {
            // --update rebuilds the whole baseline from every report on
            // disk; a partial rewrite would silently drop the benches
            // that weren't rerun.
            return usage_error("--update cannot be combined with --only");
        }
        return match update_baseline(&baseline, &dir) {
            Ok(n) => {
                println!(
                    "baseline {} updated from {n} bench reports",
                    baseline.display()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("bench_check: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match check_reports_only(&baseline, &dir, &only) {
        Ok(outcome) => {
            for line in &outcome.lines {
                println!("{line}");
            }
            let gated = outcome
                .lines
                .iter()
                .filter(|l| !l.starts_with("new"))
                .count();
            if outcome.passed {
                println!("\nbench_check: PASS ({gated} gated rows within tolerance)");
                ExitCode::SUCCESS
            } else {
                let failed = outcome
                    .lines
                    .iter()
                    .filter(|l| l.starts_with("FAIL"))
                    .count();
                println!("\nbench_check: FAIL ({failed} of {gated} gated rows out of tolerance)");
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("bench_check: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("bench_check: {msg}\n{USAGE}");
    ExitCode::FAILURE
}
