//! Pretty-prints a query-profile JSON as a per-stage latency table.
//!
//! Reads the byte-deterministic export produced by
//! `QueryProfiles::write_json` (`BISCUIT_QPROF=prof.json` on any example)
//! or a fleet's shard-ordered `{"shards":[...]}` wrapper, and renders each
//! query's end-to-end latency, per-stage self/busy breakdown, and
//! critical-path summary:
//!
//! ```text
//! BISCUIT_QPROF=q14.json cargo run --release --example tpch_offload
//! cargo run --release -p biscuit-bench --bin qprof -- q14.json
//! ```
//!
//! See `docs/QUERYPROF.md` for what each column means.

use std::process::ExitCode;

use biscuit_bench::report::{parse_json, Json};

const STAGES: [&str; 8] = [
    "queue_wait",
    "nand_read",
    "bus_transfer",
    "match",
    "ssdlet_compute",
    "link",
    "host_merge",
    "host_compute",
];

const USAGE: &str = "usage: qprof <profile.json> [profile.json ...]

  Pretty-prints query-profile exports (BISCUIT_QPROF=<path>, or a fleet's
  {\"shards\":[...]} document) as per-stage latency tables.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }
    let mut ok = true;
    for path in &args {
        if args.len() > 1 {
            println!("== {path} ==");
        }
        match render_file(path) {
            Ok(text) => print!("{text}"),
            Err(e) => {
                eprintln!("qprof: {path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn render_file(path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = parse_json(&text)?;
    let mut out = String::new();
    if let Some(shards) = doc.get("shards").and_then(Json::as_arr) {
        for (i, shard) in shards.iter().enumerate() {
            out.push_str(&format!("shard {i}:\n"));
            render_profiles(shard, &mut out)?;
        }
    } else {
        render_profiles(&doc, &mut out)?;
    }
    Ok(out)
}

fn render_profiles(doc: &Json, out: &mut String) -> Result<(), String> {
    let queries = doc
        .get("queries")
        .and_then(Json::as_arr)
        .ok_or("missing 'queries' array — not a query-profile export")?;
    if queries.is_empty() {
        out.push_str("  (no completed queries)\n");
    }
    for q in queries {
        render_query(q, out)?;
    }
    let open = num(doc, "open").unwrap_or(0.0);
    if open > 0.0 {
        out.push_str(&format!("WARNING: {open} queries never closed\n"));
    }
    Ok(())
}

fn render_query(q: &Json, out: &mut String) -> Result<(), String> {
    let id = num(q, "query").ok_or("query without 'query' id")?;
    let tenant = num(q, "tenant").unwrap_or(0.0);
    let e2e = num(q, "end_to_end_ps").ok_or("query without 'end_to_end_ps'")?;
    let spans = num(q, "spans").unwrap_or(0.0);
    let orphans = num(q, "orphans").unwrap_or(0.0);
    out.push_str(&format!(
        "query {id} (tenant {tenant}): end-to-end {:.3} us, {spans} spans, {orphans} orphans\n",
        e2e / 1e6
    ));
    let breakdown = q.get("breakdown_ps");
    let busy = q.get("busy_ps");
    let bytes = q.get("bytes");
    out.push_str(&format!(
        "  {:<16}{:>14}{:>9}{:>14}{:>14}\n",
        "stage", "self (us)", "self %", "busy (us)", "bytes"
    ));
    let mut accounted = 0.0;
    for stage in STAGES {
        let self_ps = breakdown.and_then(|b| num(b, stage)).unwrap_or(0.0);
        let busy_ps = busy.and_then(|b| num(b, stage)).unwrap_or(0.0);
        let byt = bytes.and_then(|b| num(b, stage)).unwrap_or(0.0);
        accounted += self_ps;
        if self_ps == 0.0 && busy_ps == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {:<16}{:>14.3}{:>8.1}%{:>14.3}{:>14}\n",
            stage,
            self_ps / 1e6,
            self_ps * 100.0 / e2e.max(1.0),
            busy_ps / 1e6,
            byt
        ));
    }
    if accounted != e2e {
        out.push_str(&format!(
            "  WARNING: breakdown sums to {accounted} ps but end-to-end is {e2e} ps\n"
        ));
    }
    let crit = q
        .get("critical_path")
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    out.push_str(&format!("  critical path: {crit} segments\n"));
    Ok(())
}

fn num(v: &Json, key: &str) -> Option<f64> {
    v.get(key).and_then(Json::as_f64)
}
