//! Machine-readable bench reports and the regression gate.
//!
//! Every bench harness assembles a [`BenchReport`]: named scalar results
//! (with the paper's expected value where one exists) plus the metrics
//! snapshot of a representative simulated run. [`BenchReport::write`] emits
//! `BENCH_<id>.json` at the workspace root — same seed, byte-identical
//! output — and `bench_check` (the companion binary, also exposed here as
//! [`check_reports`] / [`update_baseline`]) diffs a set of such files
//! against `benchmarks/baseline.json`, failing when any gated row drifts
//! beyond its tolerance.
//!
//! Tolerances are per row and chosen by the bench author: virtual-time
//! results that depend only on the simulator are gated tightly
//! ([`GATE_TIGHT`]); results that depend on randomly generated workload
//! data (TPC-H tables, the social graph) are gated loosely
//! ([`GATE_LOOSE`]) so that a different `rand` implementation shifts them
//! without tripping the gate while order-of-magnitude regressions still do.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use biscuit_sim::metrics::MetricsSnapshot;

/// Default tolerance for rows that are deterministic functions of the
/// simulator (pure virtual-time results): ±2 %.
pub const GATE_TIGHT: f64 = 0.02;

/// Tolerance for rows derived from randomly generated workload data: ±50 %.
/// Wide enough to absorb a different random sequence, narrow enough to
/// catch an offload decision flipping or a 10x speedup collapsing.
pub const GATE_LOOSE: f64 = 0.5;

/// One named result of a bench harness.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Stable machine-readable key, e.g. `h2d_us`.
    pub name: String,
    /// Unit suffix for human readers, e.g. `us`, `GB/s`, `x`.
    pub unit: String,
    /// The paper's expected value, when the paper states one.
    pub paper: Option<f64>,
    /// The simulated result.
    pub measured: f64,
    /// Relative tolerance for the regression gate.
    pub tol: f64,
}

impl BenchRow {
    /// Relative error against the paper value (`None` without one, or when
    /// the paper value is zero).
    pub fn rel_err(&self) -> Option<f64> {
        match self.paper {
            Some(p) if p != 0.0 => Some((self.measured - p) / p),
            _ => None,
        }
    }
}

/// A structured record of one bench harness run.
#[derive(Debug)]
pub struct BenchReport {
    id: String,
    rows: Vec<BenchRow>,
    metrics: Option<MetricsSnapshot>,
}

impl BenchReport {
    /// Starts an empty report for the bench target `id` (the `[[bench]]`
    /// name, e.g. `table2_port_latency`).
    pub fn new(id: &str) -> BenchReport {
        BenchReport {
            id: id.to_owned(),
            rows: Vec::new(),
            metrics: None,
        }
    }

    /// The bench id this report records.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Rows pushed so far, in push order.
    pub fn rows(&self) -> &[BenchRow] {
        &self.rows
    }

    /// Records one result gated at [`GATE_TIGHT`].
    pub fn push(&mut self, name: &str, unit: &str, paper: Option<f64>, measured: f64) {
        self.push_tol(name, unit, paper, measured, GATE_TIGHT);
    }

    /// Records one result with an explicit gate tolerance (use
    /// [`GATE_LOOSE`] for rows derived from randomly generated data).
    pub fn push_tol(
        &mut self,
        name: &str,
        unit: &str,
        paper: Option<f64>,
        measured: f64,
        tol: f64,
    ) {
        debug_assert!(
            !self.rows.iter().any(|r| r.name == name),
            "duplicate bench row '{name}'"
        );
        self.rows.push(BenchRow {
            name: name.to_owned(),
            unit: unit.to_owned(),
            paper,
            measured,
            tol,
        });
    }

    /// Attaches the metrics snapshot of a representative simulated run
    /// (empty snapshots are ignored; the last non-empty one wins).
    pub fn set_metrics(&mut self, snapshot: MetricsSnapshot) {
        if !snapshot.is_empty() {
            self.metrics = Some(snapshot);
        }
    }

    /// Renders the report as deterministic JSON (row order preserved,
    /// metrics keyed and sorted by the registry).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"id\":\"");
        escape_json_into(&mut out, &self.id);
        out.push_str("\",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, &row.name);
            out.push_str("\",\"unit\":\"");
            escape_json_into(&mut out, &row.unit);
            out.push_str("\",\"paper\":");
            match row.paper {
                Some(p) => push_f64(&mut out, p),
                None => out.push_str("null"),
            }
            out.push_str(",\"measured\":");
            push_f64(&mut out, row.measured);
            out.push_str(",\"rel_err\":");
            match row.rel_err() {
                Some(e) => push_f64(&mut out, e),
                None => out.push_str("null"),
            }
            out.push_str(",\"tol\":");
            push_f64(&mut out, row.tol);
            out.push('}');
        }
        out.push_str("],\"metrics\":");
        match &self.metrics {
            Some(snap) => out.push_str(&snap.to_json()),
            None => out.push_str("null"),
        }
        // Silent trace truncation must be visible in the artifact: when the
        // representative run's ring buffer overflowed, the report says so.
        let dropped = self
            .metrics
            .as_ref()
            .map_or(0, |s| s.counter_sum("trace_dropped_total"));
        if dropped > 0 {
            let _ = write!(out, ",\"dropped\":{dropped}");
        }
        out.push_str("}\n");
        out
    }

    /// The file this report writes to: `BENCH_<id>.json` in
    /// [`bench_output_dir`].
    pub fn path(&self) -> PathBuf {
        bench_output_dir().join(format!("BENCH_{}.json", self.id))
    }

    /// Writes `BENCH_<id>.json` and returns its path.
    ///
    /// # Panics
    ///
    /// Panics if the file cannot be written.
    pub fn write(&self) -> PathBuf {
        let path = self.path();
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(&path, self.to_json())
            .unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("\nwrote {}", path.display());
        path
    }
}

/// Where bench reports land: `$BISCUIT_BENCH_DIR` when set, else the
/// workspace root (resolved from the crate's manifest location under
/// cargo, or by walking up from the current directory looking for a
/// `benchmarks/` folder next to a `Cargo.toml`).
pub fn bench_output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("BISCUIT_BENCH_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    if let Some(manifest) = option_env!("CARGO_MANIFEST_DIR") {
        if let Some(ws) = Path::new(manifest).parent().and_then(Path::parent) {
            return ws.to_path_buf();
        }
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for dir in cwd.ancestors() {
        if dir.join("benchmarks").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir.to_path_buf();
        }
    }
    cwd
}

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Shortest-roundtrip formatting: deterministic and re-parseable.
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON reader (the workspace deliberately has no serde_json; bench
// reports and baselines are small and the grammar subset below covers them).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also produced for non-finite numbers on the write side).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs never appear in our own output.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar (multi-byte sequences arrive intact).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        members.push((key, parse_value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// The regression gate.
// ---------------------------------------------------------------------------

/// Result of comparing a directory of `BENCH_*.json` files against a
/// committed baseline.
#[derive(Debug)]
pub struct CheckOutcome {
    /// True when every gated row of every baseline bench is within
    /// tolerance.
    pub passed: bool,
    /// Human-readable per-row verdicts (print them).
    pub lines: Vec<String>,
}

#[derive(Debug)]
struct BaselineRow {
    value: f64,
    tol: f64,
}

type Baseline = BTreeMap<String, BTreeMap<String, BaselineRow>>;

fn load_baseline(path: &Path) -> Result<Baseline, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let benches = doc
        .get("benches")
        .ok_or_else(|| format!("{}: missing 'benches'", path.display()))?;
    let Json::Obj(members) = benches else {
        return Err(format!("{}: 'benches' is not an object", path.display()));
    };
    let mut out = Baseline::new();
    for (id, rows) in members {
        let Json::Obj(row_members) = rows else {
            return Err(format!("{}: bench '{id}' is not an object", path.display()));
        };
        let mut bench = BTreeMap::new();
        for (name, entry) in row_members {
            let value = entry
                .get("value")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{}: {id}/{name}: missing 'value'", path.display()))?;
            let tol = entry
                .get("tol")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{}: {id}/{name}: missing 'tol'", path.display()))?;
            bench.insert(name.clone(), BaselineRow { value, tol });
        }
        out.insert(id.clone(), bench);
    }
    Ok(out)
}

/// Parses one `BENCH_<id>.json` into `(row name -> (measured, tol))`.
fn load_report_rows(path: &Path) -> Result<BTreeMap<String, (f64, f64)>, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let doc = parse_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    let rows = doc
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{}: missing 'rows'", path.display()))?;
    let mut out = BTreeMap::new();
    for row in rows {
        let name = row
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{}: row without 'name'", path.display()))?;
        let measured = row
            .get("measured")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("{}: row '{name}' without 'measured'", path.display()))?;
        let tol = row.get("tol").and_then(Json::as_f64).unwrap_or(GATE_TIGHT);
        out.insert(name.to_owned(), (measured, tol));
    }
    Ok(out)
}

/// Compares every bench recorded in `baseline_path` against the matching
/// `BENCH_<id>.json` under `reports_dir`. A baseline bench without a report
/// file, a baseline row missing from its report, or a row outside
/// `|measured - value| <= tol * max(|value|, 1e-9)` fails the gate. Rows
/// present in a report but absent from the baseline are listed as new and
/// do not fail (commit an updated baseline to start gating them).
///
/// # Errors
///
/// Returns an error for unreadable or malformed files.
pub fn check_reports(baseline_path: &Path, reports_dir: &Path) -> Result<CheckOutcome, String> {
    check_reports_only(baseline_path, reports_dir, &[])
}

/// Like [`check_reports`], but gates only the baseline benches named in
/// `only` (all of them when `only` is empty). Lets a smoke job that ran
/// a single harness gate just that harness's rows without regenerating
/// every other report:
///
/// ```text
/// cargo bench -p biscuit-bench --bench qos
/// cargo run -p biscuit-bench --bin bench_check -- --only qos
/// ```
///
/// # Errors
///
/// Returns an error for unreadable or malformed files, or when a name
/// in `only` has no bench in the baseline (catching typos rather than
/// silently gating nothing).
pub fn check_reports_only(
    baseline_path: &Path,
    reports_dir: &Path,
    only: &[String],
) -> Result<CheckOutcome, String> {
    let mut baseline = load_baseline(baseline_path)?;
    for id in only {
        if !baseline.contains_key(id) {
            return Err(format!(
                "--only {id}: no such bench in {} (known: {})",
                baseline_path.display(),
                baseline.keys().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    if !only.is_empty() {
        baseline.retain(|id, _| only.iter().any(|o| o == id));
    }
    let mut lines = Vec::new();
    let mut passed = true;
    for (id, rows) in &baseline {
        let report_path = reports_dir.join(format!("BENCH_{id}.json"));
        if !report_path.is_file() {
            lines.push(format!(
                "FAIL {id}: report {} not found (run `cargo bench --workspace` first)",
                report_path.display()
            ));
            passed = false;
            continue;
        }
        let measured = load_report_rows(&report_path)?;
        for (name, base) in rows {
            match measured.get(name) {
                None => {
                    lines.push(format!("FAIL {id}/{name}: row missing from report"));
                    passed = false;
                }
                Some(&(value, _)) => {
                    let bound = base.tol * base.value.abs().max(1e-9);
                    let delta = value - base.value;
                    if delta.abs() <= bound {
                        lines.push(format!(
                            "ok   {id}/{name}: {value} (baseline {}, tol ±{:.1}%)",
                            base.value,
                            base.tol * 100.0
                        ));
                    } else {
                        lines.push(format!(
                            "FAIL {id}/{name}: {value} drifted from baseline {} by {:+.1}% (tol ±{:.1}%)",
                            base.value,
                            delta / base.value.abs().max(1e-9) * 100.0,
                            base.tol * 100.0
                        ));
                        passed = false;
                    }
                }
            }
        }
        for name in measured.keys() {
            if !rows.contains_key(name) {
                lines.push(format!("new  {id}/{name}: not in baseline (unchecked)"));
            }
        }
    }
    Ok(CheckOutcome { passed, lines })
}

/// Rebuilds `baseline_path` from every `BENCH_*.json` under `reports_dir`,
/// carrying each row's tolerance from its report. Returns the number of
/// benches recorded.
///
/// # Errors
///
/// Returns an error for unreadable or malformed report files, or when no
/// reports exist.
pub fn update_baseline(baseline_path: &Path, reports_dir: &Path) -> Result<usize, String> {
    let mut ids = Vec::new();
    let entries = std::fs::read_dir(reports_dir)
        .map_err(|e| format!("reading {}: {e}", reports_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if let Some(id) = name
            .strip_prefix("BENCH_")
            .and_then(|rest| rest.strip_suffix(".json"))
        {
            ids.push(id.to_owned());
        }
    }
    if ids.is_empty() {
        return Err(format!(
            "no BENCH_*.json files under {} (run `cargo bench --workspace` first)",
            reports_dir.display()
        ));
    }
    ids.sort();
    let mut out = String::from("{\"benches\":{");
    for (i, id) in ids.iter().enumerate() {
        let rows = load_report_rows(&reports_dir.join(format!("BENCH_{id}.json")))?;
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(&mut out, id);
        out.push_str("\":{");
        for (j, (name, (value, tol))) in rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json_into(&mut out, name);
            out.push_str("\":{\"value\":");
            push_f64(&mut out, *value);
            out.push_str(",\"tol\":");
            push_f64(&mut out, *tol);
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("}}\n");
    if let Some(parent) = baseline_path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| format!("creating {}: {e}", parent.display()))?;
    }
    std::fs::write(baseline_path, out)
        .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
    Ok(ids.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_json_shape_and_rel_err() {
        let mut r = BenchReport::new("demo");
        r.push("lat_us", "us", Some(100.0), 98.0);
        r.push_tol("speedup", "x", None, 5.0, GATE_LOOSE);
        let json = r.to_json();
        let doc = parse_json(&json).expect("valid JSON");
        assert_eq!(doc.get("id").and_then(Json::as_str), Some("demo"));
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        assert_eq!(rows.len(), 2);
        let e = rows[0].get("rel_err").and_then(Json::as_f64).expect("err");
        assert!((e + 0.02).abs() < 1e-12);
        assert_eq!(rows[1].get("paper"), Some(&Json::Null));
        assert_eq!(doc.get("metrics"), Some(&Json::Null));
    }

    #[test]
    fn report_json_is_deterministic() {
        let build = || {
            let mut r = BenchReport::new("det");
            r.push("a", "us", Some(1.5), 1.25);
            r.push("b", "s", None, 0.125);
            r.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn parser_round_trips_scalars() {
        let doc = parse_json(r#"{"a":[1,2.5,-3e2],"b":"x\"y","c":null,"d":true}"#).unwrap();
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2],
            Json::Num(-300.0)
        );
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x\"y"));
        assert_eq!(doc.get("c"), Some(&Json::Null));
        assert_eq!(doc.get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("1 2").is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let dir = std::env::temp_dir().join(format!("biscuit-gate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut r = BenchReport::new("gatecase");
        r.push("lat_us", "us", Some(100.0), 100.0);
        std::fs::write(dir.join("BENCH_gatecase.json"), r.to_json()).unwrap();
        let baseline = dir.join("baseline.json");
        assert_eq!(update_baseline(&baseline, &dir).unwrap(), 1);

        // In tolerance: 1% drift under a 2% gate.
        let mut r2 = BenchReport::new("gatecase");
        r2.push("lat_us", "us", Some(100.0), 101.0);
        std::fs::write(dir.join("BENCH_gatecase.json"), r2.to_json()).unwrap();
        assert!(check_reports(&baseline, &dir).unwrap().passed);

        // Out of tolerance: 10% drift.
        let mut r3 = BenchReport::new("gatecase");
        r3.push("lat_us", "us", Some(100.0), 110.0);
        std::fs::write(dir.join("BENCH_gatecase.json"), r3.to_json()).unwrap();
        let out = check_reports(&baseline, &dir).unwrap();
        assert!(!out.passed);
        assert!(out.lines.iter().any(|l| l.starts_with("FAIL")));

        // Missing report file fails.
        std::fs::remove_file(dir.join("BENCH_gatecase.json")).unwrap();
        assert!(!check_reports(&baseline, &dir).unwrap().passed);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gate_only_filters_baseline_benches() {
        let dir = std::env::temp_dir().join(format!("biscuit-gate-only-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = BenchReport::new("alpha");
        a.push("x", "us", None, 1.0);
        std::fs::write(dir.join("BENCH_alpha.json"), a.to_json()).unwrap();
        let mut b = BenchReport::new("beta");
        b.push("y", "us", None, 2.0);
        std::fs::write(dir.join("BENCH_beta.json"), b.to_json()).unwrap();
        let baseline = dir.join("baseline.json");
        assert_eq!(update_baseline(&baseline, &dir).unwrap(), 2);

        // Without beta's report the full gate fails...
        std::fs::remove_file(dir.join("BENCH_beta.json")).unwrap();
        assert!(!check_reports(&baseline, &dir).unwrap().passed);
        // ...but gating only alpha passes, and an unknown id errors.
        let only = vec!["alpha".to_owned()];
        let outcome = check_reports_only(&baseline, &dir, &only).unwrap();
        assert!(outcome.passed);
        assert!(outcome.lines.iter().all(|l| !l.contains("beta")));
        assert!(check_reports_only(&baseline, &dir, &["nope".to_owned()]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
