//! # biscuit-bench — experiment harnesses for every table and figure
//!
//! Each `[[bench]]` target regenerates one of the paper's results and
//! prints a paper-vs-measured table. Run them all with
//! `cargo bench --workspace`, or one at a time:
//!
//! ```text
//! cargo bench -p biscuit-bench --bench table2_port_latency
//! cargo bench -p biscuit-bench --bench fig10_tpch
//! ```
//!
//! This library holds the shared plumbing: a one-fiber simulation runner,
//! platform builders, table printing, and the machine-readable
//! [`report::BenchReport`] / regression-gate machinery behind
//! `BENCH_<id>.json` and `scripts/bench_check.sh`.

pub mod report;

use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_apps::weblog::WeblogGen;
use biscuit_core::{CoreConfig, Ssd};
use biscuit_db::tpch::TpchData;
use biscuit_db::{Db, DbConfig};
use biscuit_fs::{File, Fs, Mode};
use biscuit_host::{ConvIo, HostConfig};
use biscuit_sim::metrics::MetricsSnapshot;
use biscuit_sim::{Ctx, Simulation};
use biscuit_ssd::{SsdConfig, SsdDevice};

pub use report::{BenchReport, GATE_LOOSE, GATE_TIGHT};

/// Runs `f` as the sole host fiber of a fresh simulation and returns its
/// result.
///
/// # Panics
///
/// Panics if the simulation ends with blocked fibers, or re-raises (with
/// bench context) a panic from inside the fiber.
pub fn simulate<R, F>(f: F) -> R
where
    R: Send + 'static,
    F: FnOnce(&Ctx) -> R + Send + 'static,
{
    simulate_named("bench", f)
}

/// [`simulate`], but panics carry `name` so a failing harness identifies
/// itself instead of dying with a bare fiber panic.
///
/// # Panics
///
/// See [`simulate`].
pub fn simulate_named<R, F>(name: &str, f: F) -> R
where
    R: Send + 'static,
    F: FnOnce(&Ctx) -> R + Send + 'static,
{
    run_sim(name, false, f).0
}

/// Like [`simulate_named`], but with metrics enabled: returns the fiber's
/// result plus the simulation's final [`MetricsSnapshot`]. The closure can
/// wire a platform into the registry via
/// `plat.ssd.attach_metrics(ctx.metrics())`.
///
/// # Panics
///
/// See [`simulate`].
pub fn simulate_metered<R, F>(name: &str, f: F) -> (R, MetricsSnapshot)
where
    R: Send + 'static,
    F: FnOnce(&Ctx) -> R + Send + 'static,
{
    let (r, snap, _events) = run_sim(name, true, f);
    (r, snap)
}

/// Like [`simulate_metered`], but additionally returns the number of DES
/// events the kernel processed — the numerator of the wall-clock bench's
/// sim-events/sec figure. Set `metered: false` to measure the
/// instrumentation-disabled hot path.
pub fn simulate_profiled<R, F>(name: &str, metered: bool, f: F) -> (R, MetricsSnapshot, u64)
where
    R: Send + 'static,
    F: FnOnce(&Ctx) -> R + Send + 'static,
{
    run_sim(name, metered, f)
}

fn run_sim<R, F>(name: &str, metered: bool, f: F) -> (R, MetricsSnapshot, u64)
where
    R: Send + 'static,
    F: FnOnce(&Ctx) -> R + Send + 'static,
{
    let sim = Simulation::new(0);
    if metered {
        sim.enable_metrics();
    }
    let out: Arc<Mutex<Option<R>>> = Arc::new(Mutex::new(None));
    let o = Arc::clone(&out);
    sim.spawn("bench-host", move |ctx| {
        *o.lock() = Some(f(ctx));
    });
    // The kernel re-raises the first fiber panic from `run()`; catch it so
    // the abort names the bench that died instead of an anonymous fiber.
    let sim_report = match panic::catch_unwind(AssertUnwindSafe(|| sim.run())) {
        Ok(rep) => rep,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&'static str>()
                .copied()
                .map(str::to_owned)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            panic!("bench '{name}': simulation fiber panicked: {msg}");
        }
    };
    sim_report.assert_quiescent();
    let result = out
        .lock()
        .take()
        .unwrap_or_else(|| panic!("bench '{name}': fiber exited without producing a result"));
    let events = sim_report.events_processed;
    (result, sim_report.metrics, events)
}

/// A host + Biscuit SSD pair sharing one PCIe link.
#[derive(Debug, Clone)]
pub struct Platform {
    /// Biscuit host handle.
    pub ssd: Ssd,
    /// Conventional I/O path over the same link.
    pub conv: ConvIo,
}

/// Builds a platform with paper-default configs and the given capacity.
pub fn platform(logical_capacity: u64) -> Platform {
    platform_with(SsdConfig {
        logical_capacity,
        ..SsdConfig::paper_default()
    })
}

/// Builds a platform from an explicit SSD config (for ablations).
pub fn platform_with(cfg: SsdConfig) -> Platform {
    let dev = Arc::new(SsdDevice::new(cfg));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let conv = ConvIo::new(
        Arc::clone(ssd.device()),
        Arc::clone(ssd.link()),
        HostConfig::paper_default(),
    );
    Platform { ssd, conv }
}

/// Builds a TPC-H database at `sf` on a fresh platform.
pub fn tpch_db(sf: f64) -> (Platform, Arc<Db>) {
    tpch_db_with(sf, DbConfig::paper_default())
}

/// Builds a TPC-H database with a custom engine config (for ablations).
pub fn tpch_db_with(sf: f64, cfg: DbConfig) -> (Platform, Arc<Db>) {
    let plat = platform(4 << 30);
    let mut db = Db::new(plat.ssd.clone(), HostConfig::paper_default(), cfg);
    TpchData::generate(sf, 42)
        .load_into(&mut db)
        .expect("TPC-H load");
    (plat, Arc::new(db))
}

/// Creates a synthetic web-log file of `pages` pages and returns its handle.
pub fn weblog_file(plat: &Platform, pages: u64, needle_every: u64) -> (File, WeblogGen) {
    let gen = WeblogGen::new(11, needle_every);
    let page = plat.ssd.device().config().page_size as u64;
    plat.ssd
        .fs()
        .create_synthetic("weblog", pages * page, Arc::new(gen.clone()))
        .expect("synthetic weblog");
    let file = plat
        .ssd
        .fs()
        .open("weblog", Mode::ReadOnly)
        .expect("weblog exists");
    (file, gen)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints one aligned row of a results table.
pub fn row(cols: &[&str]) {
    let widths = [28, 22, 18, 14, 14, 14];
    let mut line = String::new();
    for (i, col) in cols.iter().enumerate() {
        let w = widths.get(i).copied().unwrap_or(14);
        line.push_str(&format!("{col:<w$}"));
    }
    println!("{}", line.trim_end());
}

/// Formats seconds with sensible precision.
pub fn secs(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Formats a ratio as `N.Nx`.
pub fn ratio(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}x")
    } else {
        format!("{x:.1}x")
    }
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulate_returns_value() {
        let v = simulate(|ctx| {
            ctx.sleep(biscuit_sim::time::SimDuration::from_micros(5));
            ctx.now().as_micros()
        });
        assert_eq!(v, 5);
    }

    #[test]
    fn simulate_named_propagates_fiber_panic_with_bench_name() {
        let err = std::panic::catch_unwind(|| {
            simulate_named("table9_explodes", |_ctx| -> u64 {
                panic!("boom in fiber");
            })
        })
        .expect_err("fiber panic must propagate");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic payload");
        assert!(msg.contains("table9_explodes"), "got: {msg}");
        assert!(msg.contains("boom in fiber"), "got: {msg}");
    }

    #[test]
    fn simulate_metered_returns_snapshot() {
        let (v, snap) = simulate_metered("meter-check", |ctx| {
            ctx.sleep(biscuit_sim::time::SimDuration::from_micros(1));
            7u64
        });
        assert_eq!(v, 7);
        // The kernel's own scheduling counters are always registered when
        // metrics are on, so the snapshot is never empty.
        assert!(!snap.is_empty());
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn platform_builds() {
        let p = platform(64 << 20);
        assert_eq!(p.ssd.device().config().logical_capacity, 64 << 20);
        let (f, _gen) = weblog_file(&p, 4, 100);
        assert_eq!(f.len().unwrap(), 4 * 16 * 1024);
    }
}
