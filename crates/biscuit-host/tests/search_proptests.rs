//! Property tests: Boyer–Moore agrees with the naive reference scanner on
//! arbitrary inputs.

use proptest::prelude::*;

use biscuit_host::search::{naive_count, naive_find, BoyerMoore};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn bm_find_matches_naive(
        text in proptest::collection::vec(any::<u8>(), 0..2000),
        pattern in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let bm = BoyerMoore::new(&pattern);
        prop_assert_eq!(bm.find(&text), naive_find(&text, &pattern));
    }

    #[test]
    fn bm_count_matches_naive(
        text in proptest::collection::vec(any::<u8>(), 0..2000),
        pattern in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let bm = BoyerMoore::new(&pattern);
        prop_assert_eq!(bm.count(&text), naive_count(&text, &pattern));
    }

    /// Low-entropy alphabets stress the good-suffix rule.
    #[test]
    fn bm_on_binary_alphabet(
        text in proptest::collection::vec(0u8..2, 0..2000),
        pattern in proptest::collection::vec(0u8..2, 1..10),
    ) {
        let bm = BoyerMoore::new(&pattern);
        prop_assert_eq!(bm.find(&text), naive_find(&text, &pattern));
        prop_assert_eq!(bm.count(&text), naive_count(&text, &pattern));
    }

    /// A planted occurrence is always found.
    #[test]
    fn planted_pattern_found(
        prefix in proptest::collection::vec(any::<u8>(), 0..500),
        pattern in proptest::collection::vec(any::<u8>(), 1..16),
        suffix in proptest::collection::vec(any::<u8>(), 0..500),
    ) {
        let mut text = prefix.clone();
        text.extend_from_slice(&pattern);
        text.extend_from_slice(&suffix);
        let bm = BoyerMoore::new(&pattern);
        let hit = bm.find(&text).expect("planted pattern must be found");
        prop_assert!(hit <= prefix.len());
        prop_assert_eq!(&text[hit..hit + pattern.len()], &pattern[..]);
    }
}
