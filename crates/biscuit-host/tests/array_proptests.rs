//! Property tests for the scale-out merge port and shard coordinator:
//! for arbitrary shard counts, per-shard record counts, and producer
//! interleavings, the gathered stream preserves per-shard FIFO order and
//! its global order is a pure function of (shard id, sequence) — never of
//! timing.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use biscuit_core::{CoreConfig, Ssd};
use biscuit_fs::Fs;
use biscuit_host::array::{merge_channel, ArrayConfig, ArrayShard, ShardFailure, SsdArray};
use biscuit_host::HostConfig;
use biscuit_sim::kernel::Ctx;
use biscuit_sim::{SimDuration, Simulation};
use biscuit_ssd::{SsdConfig, SsdDevice};

/// The canonical merge order implied by per-shard item counts alone:
/// sequence-major, shard-id-minor, a lane participating in round `k` iff
/// it still has a `k`-th item.
fn canonical_order(counts: &[usize]) -> Vec<(usize, u64)> {
    let rounds = counts.iter().copied().max().unwrap_or(0);
    let mut out = Vec::new();
    for k in 0..rounds {
        for (s, &c) in counts.iter().enumerate() {
            if c > k {
                out.push((s, k as u64));
            }
        }
    }
    out
}

/// Runs producers with the given per-item delays against one merge
/// consumer and returns the gathered `(shard, seq)` stream.
fn run_merge(seed: u64, capacity: usize, delays: Vec<Vec<u64>>) -> Vec<(usize, u64)> {
    let gathered: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&gathered);
    let sim = Simulation::new(seed);
    sim.spawn("merge-host", move |ctx| {
        let (txs, mut rx) = merge_channel::<usize>(delays.len(), capacity);
        for (s, lane_delays) in delays.into_iter().enumerate() {
            let tx = txs[s].clone();
            ctx.spawn(format!("producer-{s}"), move |pctx| {
                for (i, d) in lane_delays.into_iter().enumerate() {
                    pctx.sleep(SimDuration::from_micros(d));
                    tx.send(pctx, i).expect("lane open");
                }
                tx.close(pctx);
            });
        }
        while let Some((s, seq, item)) = rx.next(ctx) {
            assert_eq!(seq as usize, item, "payload rides with its sequence");
            out.lock().unwrap().push((s, seq));
        }
    });
    sim.run().assert_quiescent();
    Arc::try_unwrap(gathered).unwrap().into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings: every lane's items arrive in FIFO order
    /// and the global order equals the canonical order computed from the
    /// counts alone.
    #[test]
    fn merge_order_is_pure_function_of_counts(
        seed in any::<u64>(),
        capacity in 1usize..8,
        delays in proptest::collection::vec(
            proptest::collection::vec(0u64..50, 0..12),
            1..6,
        ),
    ) {
        let counts: Vec<usize> = delays.iter().map(Vec::len).collect();
        let gathered = run_merge(seed, capacity, delays);

        // Per-shard FIFO.
        for (s, &c) in counts.iter().enumerate() {
            let lane: Vec<u64> = gathered
                .iter()
                .filter(|(sh, _)| *sh == s)
                .map(|&(_, seq)| seq)
                .collect();
            prop_assert_eq!(lane, (0..c as u64).collect::<Vec<_>>());
        }
        // Global order is timing-independent.
        prop_assert_eq!(gathered, canonical_order(&counts));
    }

    /// Two runs with the same counts but different delays and kernel
    /// seeds gather the exact same stream.
    #[test]
    fn merge_order_ignores_timing(
        counts in proptest::collection::vec(0usize..10, 1..5),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        jitter in 0u64..40,
    ) {
        let fast: Vec<Vec<u64>> = counts.iter().map(|&c| vec![0; c]).collect();
        let slow: Vec<Vec<u64>> = counts
            .iter()
            .enumerate()
            .map(|(s, &c)| (0..c as u64).map(|i| (s as u64 + 1) * jitter + i).collect())
            .collect();
        prop_assert_eq!(run_merge(seed_a, 4, fast), run_merge(seed_b, 2, slow));
    }
}

fn mk_array(n: usize) -> SsdArray {
    let drives = (0..n)
        .map(|_| {
            let dev = Arc::new(SsdDevice::new(SsdConfig {
                logical_capacity: 16 << 20,
                ..SsdConfig::paper_default()
            }));
            Ssd::new(Fs::format(dev), CoreConfig::paper_default())
        })
        .collect();
    SsdArray::new(
        drives,
        HostConfig::paper_default(),
        ArrayConfig { merge_capacity: 2 },
    )
}

proptest! {
    // Each case formats `n` simulated drives, so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// A fault-free scatter returns every shard's items, in order, with
    /// no recovery — identical to running the shards one by one.
    #[test]
    fn scatter_gathers_every_shard_in_order(
        counts in proptest::collection::vec(0usize..16, 1..5),
        seed in any::<u64>(),
    ) {
        let n = counts.len();
        let array = mk_array(n);
        let job_counts = counts.clone();
        let results: Arc<Mutex<Vec<(usize, Vec<(usize, usize)>, bool)>>> =
            Arc::new(Mutex::new(Vec::new()));
        let out = Arc::clone(&results);
        let sim = Simulation::new(seed);
        sim.spawn("host", move |ctx| {
            let got = array
                .scatter::<(usize, usize), ShardFailure, _, _>(
                    ctx,
                    "prop",
                    move |fctx, shard, tx| {
                        for i in 0..job_counts[shard.id] {
                            // Shard- and item-dependent pacing: different
                            // interleaving every case, same merge order.
                            fctx.sleep(SimDuration::from_micros(
                                (shard.id as u64 * 13 + i as u64 * 7) % 23,
                            ));
                            tx.send(fctx, (shard.id, i))
                                .map_err(|_| ShardFailure::new("lane closed"))?;
                        }
                        Ok(())
                    },
                    |_ctx: &Ctx, _shard: &ArrayShard| unreachable!("no faults planned"),
                )
                .expect("fault-free scatter");
            *out.lock().unwrap() = got
                .into_iter()
                .map(|r| (r.shard, r.items, r.recovered))
                .collect();
        });
        sim.run().assert_quiescent();
        let got = Arc::try_unwrap(results).unwrap().into_inner().unwrap();
        prop_assert_eq!(got.len(), n);
        for (s, (shard, items, recovered)) in got.into_iter().enumerate() {
            prop_assert_eq!(shard, s);
            prop_assert!(!recovered);
            let want: Vec<(usize, usize)> = (0..counts[s]).map(|i| (s, i)).collect();
            prop_assert_eq!(items, want);
        }
    }
}
