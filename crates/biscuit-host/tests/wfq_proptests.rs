//! Property tests for the scheduler's weighted-fair-queueing contract
//! (`docs/QOS.md`): work conservation, weight-proportional service, and
//! starvation-freedom under an adversarial flooding tenant.
//!
//! The tests exploit two structural facts to make the invariants exact
//! rather than statistical:
//!
//! - WFQ tags are assigned at acceptance and are a pure function of the
//!   submission history. Submitting an entire backlog *before* the
//!   worker pool starts pins every tag (virtual time stays 0), so the
//!   dispatch order is the sorted tag order and the start-time
//!   fair-queueing prefix bound can be checked exactly.
//! - With a single worker, completions are sequential, so the recorded
//!   completion order *is* the dispatch order, and the last completion
//!   time of an always-backlogged scheduler is exactly the sum of the
//!   service times (work conservation with no idle gaps).

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use biscuit_host::{QueryScheduler, SchedulerConfig};
use biscuit_sim::queue::SimQueue;
use biscuit_sim::{SimDuration, SimTime, Simulation};

/// Submits `per_tenant` unit-cost queries for each of `weights.len()`
/// tenants (round-robin, all before the workers start), then runs one
/// worker to drain them. Returns the completion order (tenant ids).
fn run_backlogged(weights: Vec<u64>, per_tenant: usize, service_us: u64) -> Vec<u32> {
    let users = weights.len();
    let order: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let out = Arc::clone(&order);
    let sim = Simulation::new(0xFA1);
    sim.spawn("host", move |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users,
            max_inflight: 1,
            queue_capacity: per_tenant.max(1),
            weights,
        });
        // Entire backlog first: no worker is running, so virtual time
        // stays 0 and tenant i's k-th query gets the exact tag
        // k * WFQ_SCALE / w_i regardless of submission interleaving.
        for _round in 0..per_tenant {
            for u in 0..users {
                let out = Arc::clone(&out);
                sched.submit(ctx, u, move |qctx: &biscuit_sim::Ctx| {
                    qctx.sleep(SimDuration::from_micros(service_us));
                    out.lock().unwrap().push(u as u32);
                });
            }
        }
        sched.start(ctx);
        sched.close(ctx);
        sched.wait_completed(ctx, (users * per_tenant) as u64);
    });
    sim.run().assert_quiescent();
    Arc::try_unwrap(order).unwrap().into_inner().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Work conservation: one worker, the whole backlog available from
    /// t = 0, so the last completion lands at exactly the sum of the
    /// service times — any idle gap while work is queued would push it
    /// later, any skipped query earlier.
    #[test]
    fn single_worker_makespan_is_exact_service_sum(
        durations in proptest::collection::vec(1u64..40, 1..24),
    ) {
        let n = durations.len() as u64;
        let sum_us: u64 = durations.iter().sum();
        let end: Arc<Mutex<SimTime>> = Arc::new(Mutex::new(SimTime::ZERO));
        let out = Arc::clone(&end);
        let sim = Simulation::new(0xC0);
        sim.spawn("host", move |ctx| {
            let sched = QueryScheduler::new(SchedulerConfig {
                users: 1,
                max_inflight: 1,
                queue_capacity: durations.len(),
                weights: Vec::new(),
            });
            for d in durations {
                sched.submit(ctx, 0, move |qctx: &biscuit_sim::Ctx| {
                    qctx.sleep(SimDuration::from_micros(d));
                });
            }
            sched.start(ctx);
            sched.close(ctx);
            sched.wait_completed(ctx, n);
            *out.lock().unwrap() = ctx.now();
        });
        sim.run().assert_quiescent();
        let got = *end.lock().unwrap();
        prop_assert_eq!(
            got,
            SimTime::ZERO + SimDuration::from_micros(sum_us),
            "makespan must equal the exact service sum (no idle, no loss)"
        );
    }

    /// Weight-proportional service: power-of-two weights divide
    /// `WFQ_SCALE` exactly, so tenant i's k-th query has tag exactly
    /// k/w_i and start-time fair queueing guarantees, for every prefix
    /// of the dispatch order in which tenant j is still backlogged:
    /// served_i / w_i <= (served_j + 1) / w_j. Cross-multiplied, that is
    /// checked exactly at every completion.
    #[test]
    fn service_is_weight_proportional_within_one_query(
        weights in proptest::collection::vec(
            proptest::sample::select(vec![1u64, 2, 4, 8, 16]),
            2..5,
        ),
        per_tenant in 4usize..12,
    ) {
        let users = weights.len();
        let order = run_backlogged(weights.clone(), per_tenant, 2);
        prop_assert_eq!(order.len(), users * per_tenant);

        let mut served = vec![0u64; users];
        for &t in &order {
            served[t as usize] += 1;
            for i in 0..users {
                for j in 0..users {
                    // The SFQ prefix bound applies while j still has
                    // unserved queries in the backlog.
                    if i == j || served[j] >= per_tenant as u64 {
                        continue;
                    }
                    prop_assert!(
                        u128::from(served[i]) * u128::from(weights[j])
                            <= (u128::from(served[j]) + 1) * u128::from(weights[i]),
                        "prefix unfairness: served={:?} weights={:?}",
                        served,
                        &weights
                    );
                }
            }
        }
        // Full drain: everyone got everything.
        for (u, &s) in served.iter().enumerate() {
            prop_assert_eq!(s, per_tenant as u64, "tenant {} lost queries", u);
        }
    }

    /// Starvation-freedom, randomized: one tenant floods far beyond the
    /// array's capacity through the shedding path while the others trickle
    /// through the blocking path. However hard the flood pushes, every
    /// polite query is accepted and completed, and the books reconcile
    /// exactly.
    #[test]
    fn flood_never_starves_polite_tenants(
        flood_n in 200u64..600,
        polite_n in 5u64..15,
        cap in 2usize..8,
        workers in 1usize..4,
    ) {
        let stats = run_flood(flood_n, polite_n, cap, workers, 2);
        for r in &stats.reports[1..] {
            prop_assert_eq!(r.shed, 0, "polite tenant {} shed", r.user);
            prop_assert_eq!(r.offered, polite_n, "polite tenant {} offered", r.user);
            prop_assert_eq!(
                r.completed, polite_n,
                "polite tenant {} starved under flood", r.user
            );
        }
        let flood = &stats.reports[0];
        prop_assert_eq!(flood.offered, flood_n);
        prop_assert_eq!(flood.offered, flood.accepted + flood.shed);
        prop_assert_eq!(flood.completed, flood.accepted, "accepted flood work completes");
        prop_assert_eq!(
            stats.submitted, stats.completed,
            "drain leaves nothing in flight"
        );
        prop_assert_eq!(
            stats.shed + stats.submitted,
            flood_n + 3 * polite_n,
            "offered == accepted + shed, globally"
        );
    }
}

/// Outcome of one flood scenario: the global counters plus per-tenant
/// reports (tenant 0 is the flooder; tenants 1..=3 are polite).
struct FloodOutcome {
    submitted: u64,
    completed: u64,
    shed: u64,
    reports: Vec<biscuit_host::TenantReport>,
}

/// Tenant 0 open-loop floods `flood_n` queries at a 100x higher rate
/// than the three polite closed-style tenants, which submit `polite_n`
/// queries each through the blocking path. Jobs sleep `service_us`.
fn run_flood(
    flood_n: u64,
    polite_n: u64,
    cap: usize,
    workers: usize,
    service_us: u64,
) -> FloodOutcome {
    let outcome: Arc<Mutex<Option<FloodOutcome>>> = Arc::new(Mutex::new(None));
    let out = Arc::clone(&outcome);
    let sim = Simulation::new(0xF100D);
    sim.spawn("host", move |ctx| {
        let sched = QueryScheduler::new(SchedulerConfig {
            users: 4,
            max_inflight: workers,
            queue_capacity: cap,
            weights: Vec::new(),
        });
        sched.start(ctx);
        let done: SimQueue<()> = SimQueue::new(4);

        // Polite tenants: one blocking submission every 5 us.
        for u in 1..4usize {
            let sched = sched.clone();
            let done = done.clone();
            ctx.spawn(format!("polite{u}"), move |pctx| {
                for _ in 0..polite_n {
                    sched.submit(pctx, u, move |qctx: &biscuit_sim::Ctx| {
                        qctx.sleep(SimDuration::from_micros(service_us));
                    });
                    pctx.sleep(SimDuration::from_micros(5));
                }
                let _ = done.push(pctx, ());
            });
        }
        // The flooder: 100x the polite rate (every 50 ns), shedding what
        // the bounded queue cannot hold.
        {
            let sched = sched.clone();
            let done = done.clone();
            ctx.spawn("flooder", move |fctx| {
                for _ in 0..flood_n {
                    let _ = sched.try_submit(fctx, 0, move |qctx: &biscuit_sim::Ctx| {
                        qctx.sleep(SimDuration::from_micros(service_us));
                    });
                    fctx.sleep(SimDuration::from_nanos(50));
                }
                let _ = done.push(fctx, ());
            });
        }
        for _ in 0..4 {
            done.pop(ctx).expect("submitter finished");
        }
        sched.close(ctx);
        sched.wait_completed(ctx, sched.submitted());
        *out.lock().unwrap() = Some(FloodOutcome {
            submitted: sched.submitted(),
            completed: sched.completed(),
            shed: sched.shed(),
            reports: sched.tenant_reports(),
        });
    });
    sim.run().assert_quiescent();
    Arc::try_unwrap(outcome)
        .map_err(|_| ())
        .unwrap()
        .into_inner()
        .unwrap()
        .expect("host fiber ran")
}

/// The adversarial 100x flood at fixed, heavy contention: beyond the
/// liveness facts checked property-style above, the *fairness* signal —
/// a polite tenant's worst queue wait stays at or below the flooder's,
/// because SFQ tags keep a sparse tenant near the head of the heap while
/// the flooder's backlog runs ahead of virtual time.
#[test]
fn flood_100x_polite_waits_bounded_by_flooder() {
    let stats = run_flood(2000, 20, 8, 2, 2);
    let flood = &stats.reports[0];
    assert!(flood.shed > 0, "a 100x flood against cap 8 must shed");
    assert!(flood.accepted > 0, "the flooder still gets its fair share");
    let flood_worst = flood.queue_wait.max;
    assert!(flood_worst > 0, "contention produced no queueing at all");
    for r in &stats.reports[1..] {
        assert_eq!(r.completed, 20, "polite tenant {} starved", r.user);
        assert!(
            r.queue_wait.max <= flood_worst,
            "polite tenant {} waited {}ps, beyond the flooder's {}ps",
            r.user,
            r.queue_wait.max,
            flood_worst
        );
    }
}
