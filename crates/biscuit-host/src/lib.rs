//! # biscuit-host — the conventional host system model
//!
//! The "Conv" side of every comparison in the paper: a Xeon-class host
//! whose software scans data after pulling it over the PCIe link, under
//! configurable memory-bandwidth contention from background load
//! (StreamBench threads in the paper's methodology).
//!
//! - [`config`] — host rates and the contention model (Tables IV/V fits).
//! - [`io::ConvIo`] — the NVMe `pread`/async read path (Table III, Fig. 7).
//! - [`search::BoyerMoore`] — the `grep` algorithm used as the Conv string
//!   search baseline (Table V).
//! - [`array`] — multi-SSD scale-out: the shard coordinator, ordered
//!   merge port, and concurrent query scheduler (Fig. 1(b), `docs/SCALE.md`).
//! - [`fleet`] — the parallel-DES face of the coordinator: one shard
//!   kernel per drive, each on its own OS thread (`docs/PARALLEL.md`).
//! - [`workload`] — seeded open/closed-loop traffic generation (Zipf
//!   tenants, diurnal bursts, mixed query kinds) feeding the
//!   scheduler's WFQ/shedding QoS layer (`docs/QOS.md`).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod array;
pub mod config;
pub mod fleet;
pub mod io;
pub mod search;
pub mod workload;

pub use array::{
    ArrayConfig, QueryScheduler, QueryShed, SchedulerConfig, ShedReason, SsdArray, TenantReport,
};
pub use config::{HostConfig, HostLoad};
pub use fleet::{FleetConfig, FleetReport};
pub use io::ConvIo;
pub use search::BoyerMoore;
pub use workload::{
    Arrival, ArrivalProcess, DiurnalPhase, DriveStats, QueryKind, QueryMix, WorkloadConfig,
    WorkloadEngine, WorkloadRng,
};
