//! Host-side string search: the Boyer–Moore algorithm Linux `grep` uses
//! (paper §V-C, Table V's Conv baseline).
//!
//! The implementation is a complete Boyer–Moore with both the bad-character
//! and good-suffix rules, plus a naive reference scanner used by the
//! property tests to validate it.

/// A preprocessed Boyer–Moore pattern.
///
/// # Examples
///
/// ```
/// use biscuit_host::search::BoyerMoore;
///
/// let bm = BoyerMoore::new(b"GET /index");
/// let log = b"POST /api\nGET /index HTTP/1.1\n";
/// assert_eq!(bm.find(log), Some(10));
/// assert_eq!(bm.count(log), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BoyerMoore {
    pattern: Vec<u8>,
    bad_char: [usize; 256],
    good_suffix: Vec<usize>,
}

impl BoyerMoore {
    /// Preprocesses `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is empty.
    pub fn new(pattern: &[u8]) -> Self {
        assert!(!pattern.is_empty(), "Boyer-Moore pattern must be non-empty");
        let m = pattern.len();
        // Bad character rule: distance from the last occurrence of each
        // byte to the pattern end.
        let mut bad_char = [m; 256];
        for (i, &b) in pattern.iter().enumerate().take(m - 1) {
            bad_char[b as usize] = m - 1 - i;
        }
        // Good suffix rule (standard two-case preprocessing).
        let good_suffix = build_good_suffix(pattern);
        BoyerMoore {
            pattern: pattern.to_vec(),
            bad_char,
            good_suffix,
        }
    }

    /// The pattern being searched.
    pub fn pattern(&self) -> &[u8] {
        &self.pattern
    }

    /// Offset of the first occurrence in `text`, if any.
    pub fn find(&self, text: &[u8]) -> Option<usize> {
        self.find_from(text, 0)
    }

    /// Offset of the first occurrence at or after `from`.
    pub fn find_from(&self, text: &[u8], from: usize) -> Option<usize> {
        let m = self.pattern.len();
        let n = text.len();
        if m > n || from > n - m {
            return None;
        }
        let mut s = from;
        while s <= n - m {
            let mut j = m;
            while j > 0 && self.pattern[j - 1] == text[s + j - 1] {
                j -= 1;
            }
            if j == 0 {
                return Some(s);
            }
            let bc = self.bad_char[text[s + j - 1] as usize];
            let bc_shift = bc.saturating_sub(m - j).max(1);
            let gs_shift = self.good_suffix[j];
            s += bc_shift.max(gs_shift);
        }
        None
    }

    /// Number of (possibly overlapping) occurrences in `text`.
    pub fn count(&self, text: &[u8]) -> usize {
        let mut n = 0;
        let mut from = 0;
        while let Some(pos) = self.find_from(text, from) {
            n += 1;
            from = pos + 1;
            if from + self.pattern.len() > text.len() {
                break;
            }
        }
        n
    }
}

fn build_good_suffix(pattern: &[u8]) -> Vec<usize> {
    let m = pattern.len();
    let mut shift = vec![0usize; m + 1];
    let mut border = vec![0usize; m + 1];
    // Case 1: matching suffix occurs elsewhere in the pattern.
    let mut i = m;
    let mut j = m + 1;
    border[i] = j;
    while i > 0 {
        while j <= m && pattern[i - 1] != pattern[j - 1] {
            if shift[j] == 0 {
                shift[j] = j - i;
            }
            j = border[j];
        }
        i -= 1;
        j -= 1;
        border[i] = j;
    }
    // Case 2: only a prefix of the pattern matches a suffix of the match.
    let mut j = border[0];
    #[allow(clippy::needless_range_loop)] // i indexes shift and compares to j
    for i in 0..=m {
        if shift[i] == 0 {
            shift[i] = j;
        }
        if i == j {
            j = border[j];
        }
    }
    shift
}

/// Straightforward reference scanner (used to cross-check Boyer–Moore).
pub fn naive_find(text: &[u8], pattern: &[u8]) -> Option<usize> {
    if pattern.is_empty() || pattern.len() > text.len() {
        return None;
    }
    (0..=text.len() - pattern.len()).find(|&i| &text[i..i + pattern.len()] == pattern)
}

/// Reference count of (overlapping) occurrences.
pub fn naive_count(text: &[u8], pattern: &[u8]) -> usize {
    if pattern.is_empty() || pattern.len() > text.len() {
        return 0;
    }
    (0..=text.len() - pattern.len())
        .filter(|&i| &text[i..i + pattern.len()] == pattern)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_simple_occurrences() {
        let bm = BoyerMoore::new(b"needle");
        assert_eq!(bm.find(b"needle"), Some(0));
        assert_eq!(bm.find(b"a needle in a haystack"), Some(2));
        assert_eq!(bm.find(b"no match here"), None);
        assert_eq!(bm.find(b""), None);
    }

    #[test]
    fn finds_at_end() {
        let bm = BoyerMoore::new(b"end");
        assert_eq!(bm.find(b"at the very end"), Some(12));
    }

    #[test]
    fn counts_overlapping() {
        let bm = BoyerMoore::new(b"aa");
        assert_eq!(bm.count(b"aaaa"), 3);
        assert_eq!(naive_count(b"aaaa", b"aa"), 3);
    }

    #[test]
    fn repetitive_patterns() {
        let bm = BoyerMoore::new(b"abab");
        let text = b"abababab";
        assert_eq!(bm.count(text), naive_count(text, b"abab"));
        assert_eq!(bm.find(text), naive_find(text, b"abab"));
    }

    #[test]
    fn single_byte_pattern() {
        let bm = BoyerMoore::new(b"x");
        assert_eq!(bm.count(b"axbxcx"), 3);
    }

    #[test]
    fn pattern_longer_than_text() {
        let bm = BoyerMoore::new(b"longpattern");
        assert_eq!(bm.find(b"short"), None);
        assert_eq!(bm.count(b"short"), 0);
    }

    #[test]
    fn matches_std_contains_on_ascii() {
        let bm = BoyerMoore::new(b"1995-01-17");
        let hay = b"row|1995-01-16|1\nrow|1995-01-17|2\n";
        assert_eq!(
            bm.find(hay).is_some(),
            String::from_utf8_lossy(hay).contains("1995-01-17")
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_pattern_panics() {
        let _ = BoyerMoore::new(b"");
    }
}
