//! Host system model parameters, calibrated to the paper's testbed.
//!
//! The evaluation machine is a Dell PowerEdge R720 (2x Xeon E5-2640,
//! 64 GiB) running Ubuntu 15.04 (paper §V-A). Two of its measured behaviours
//! matter for the experiments:
//!
//! - the host-software scan rate: Linux `grep` (Boyer–Moore) covers the
//!   7.8 GiB web log in 12.2 s unloaded — about 686 MB/s (Table V);
//! - contention from StreamBench background threads degrades host work:
//!   scan throughput falls ~63 % at 24 threads (Table V, 12.2 → 19.9 s),
//!   while the latency-bound pointer-chasing path degrades ~12 % and
//!   saturates around 18 threads (Table IV, 138.6 → 155.0 s).

/// Tuning constants for the simulated host.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// Host software scan rate (Boyer–Moore over cached pages), bytes/s.
    pub scan_rate: f64,
    /// Linear throughput degradation per background StreamBench thread.
    pub contention_per_thread_bw: f64,
    /// Total latency-path degradation at saturation.
    pub contention_latency_max: f64,
    /// Background threads at which the latency path saturates.
    pub contention_latency_sat: u32,
}

impl HostConfig {
    /// Constants fitted to Tables IV and V of the paper.
    ///
    /// The latency contention factor applies only to *host-side* per-I/O
    /// work (driver submission, completion, buffer handling — ~10 µs of a
    /// 90 µs Conv read). Slowing that portion by up to 110 % reproduces the
    /// paper's +11.8 % pointer-chasing degradation at ≥18 background
    /// threads while leaving the device path untouched.
    pub fn paper_default() -> Self {
        HostConfig {
            scan_rate: 686.0e6,
            contention_per_thread_bw: 0.0263,
            contention_latency_max: 1.1,
            contention_latency_sat: 18,
        }
    }
}

impl Default for HostConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// A level of background memory-bandwidth load (the paper runs N threads of
/// StreamBench while measuring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HostLoad {
    /// Number of StreamBench-like background threads.
    pub threads: u32,
}

impl HostLoad {
    /// No background load.
    pub const IDLE: HostLoad = HostLoad { threads: 0 };

    /// Creates a load level of `threads` background threads.
    pub fn new(threads: u32) -> Self {
        HostLoad { threads }
    }

    /// Multiplier on host *throughput-bound* work (scanning, filtering).
    pub fn bandwidth_slowdown(&self, cfg: &HostConfig) -> f64 {
        1.0 + cfg.contention_per_thread_bw * f64::from(self.threads)
    }

    /// Multiplier on host *latency-bound* work (per-I/O CPU overhead);
    /// saturates once the memory system is fully contended.
    pub fn latency_slowdown(&self, cfg: &HostConfig) -> f64 {
        let t = self.threads.min(cfg.contention_latency_sat);
        1.0 + cfg.contention_latency_max * f64::from(t) / f64::from(cfg.contention_latency_sat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_load_has_no_slowdown() {
        let cfg = HostConfig::paper_default();
        assert_eq!(HostLoad::IDLE.bandwidth_slowdown(&cfg), 1.0);
        assert_eq!(HostLoad::IDLE.latency_slowdown(&cfg), 1.0);
    }

    #[test]
    fn table5_endpoints_fit() {
        // 12.2s * slowdown(24) should land near the paper's 19.9s.
        let cfg = HostConfig::paper_default();
        let t24 = 12.2 * HostLoad::new(24).bandwidth_slowdown(&cfg);
        assert!((19.5..20.3).contains(&t24), "24-thread scan time {t24}s");
    }

    #[test]
    fn table4_latency_saturates() {
        let cfg = HostConfig::paper_default();
        let s18 = HostLoad::new(18).latency_slowdown(&cfg);
        let s24 = HostLoad::new(24).latency_slowdown(&cfg);
        assert_eq!(s18, s24, "latency contention saturates at 18 threads");
        // A 90us Conv read with ~10us of host-side work: loaded reads slow
        // by ~12%, matching Table IV's 138.6s -> 155.0s.
        let hop_idle = 80.0 + 10.0;
        let hop_loaded = 80.0 + 10.0 * s24;
        let ratio = hop_loaded / hop_idle;
        assert!(
            (1.10..1.14).contains(&ratio),
            "loaded/idle hop ratio {ratio}, paper: ~1.118"
        );
    }

    #[test]
    fn scan_rate_matches_grep_measurement() {
        let cfg = HostConfig::paper_default();
        let secs = 7.8 * (1u64 << 30) as f64 / cfg.scan_rate;
        assert!((12.0..12.4).contains(&secs), "7.8GiB at base rate: {secs}s");
    }
}
