//! Multi-SSD scale-out: shard coordinator, ordered merge port, and a
//! concurrent query scheduler with admission control.
//!
//! The paper's Fig. 1(b) scale-up argument is that every Biscuit drive
//! filters its own shard locally, so aggregate throughput grows with the
//! drive count while a conventional host stays pinned at one CPU. This
//! module turns that argument into an API: an [`SsdArray`] owns N
//! simulated drives, [`SsdArray::scatter`] fans a per-shard job out to
//! all of them as concurrent DES fibers, and the results come back
//! through an ordered, backpressured merge port.
//!
//! ## Ordering and determinism
//!
//! Each shard writes into its own bounded merge lane, tagging items with
//! a per-lane sequence number. [`MergeRx`] consumes lanes round-robin in
//! shard-id order, emitting lane item `r` of every still-open shard
//! before any lane's item `r + 1`. The global merge order is therefore a
//! pure function of the per-shard item counts — `(shard id, sequence)`
//! fully determines it — independent of how the per-drive fibers
//! interleave. Per-shard FIFO order is asserted structurally on every
//! pop. Bounded lanes give backpressure: a fast shard runs at most
//! `merge_capacity` items ahead of the merge cursor.
//!
//! ## Drive-loss recovery
//!
//! When the array's [`FaultPlan`] arms `drive_losses`, a scatter may lose
//! one whole drive mid-flight ([`DriveLossPhase::MidScatter`]: before the
//! shard job runs; [`DriveLossPhase::MidGather`]: after a few items). The
//! lost drive goes *silent* — it never closes its lane — so the gather
//! loop detects it via the plan's `host_timeout` deadline, abandons the
//! lane, and re-scatters that shard to the caller's host-side fallback
//! (a Conv scan). Results stay byte-identical to the fault-free run
//! because the fallback replaces the lost shard's entire item stream.
//!
//! ## Concurrent queries and QoS
//!
//! [`QueryScheduler`] multiplexes many independent queries from many
//! tenants ("users") over one array. Dispatch order is **virtual-time
//! weighted fair queueing** (start-time fair queueing): each accepted
//! query gets a start tag `S = max(V, F_u)` and a finish tag
//! `F = S + cost / w_u`, a fixed pool of worker fibers (admission
//! control) always runs the globally smallest finish tag next, and the
//! scheduler's virtual clock `V` advances to the start tag of whatever
//! it dispatches. Per-tenant queues are bounded: the blocking
//! [`QueryScheduler::submit`] exerts backpressure on the host loop,
//! while [`QueryScheduler::try_submit`] sheds instead — returning a
//! typed [`QueryShed`] metered as `sched_shed_total{user}`. Every
//! tenant's offered/completed/shed counts plus queue-wait and latency
//! histograms are tracked unconditionally (and cheaply) inside the
//! scheduler, so 1M-query soaks over tens of thousands of tenants can
//! audit fairness without registering 20k instruments; see
//! `docs/QOS.md` for the model and its proofs.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use biscuit_core::Ssd;
use biscuit_sim::fault::{DriveLossPhase, FaultPlan, FaultSite};
use biscuit_sim::metrics::{Counter, Gauge, HistogramData};
use biscuit_sim::qprof::{QueryProfiler, SpanContext, Stage};
use biscuit_sim::queue::{SimQueue, WaitQueue};
use biscuit_sim::trace::TraceEvent;
use biscuit_sim::{Ctx, MetricsRegistry, SimTime, Tracer};

use crate::config::HostConfig;
use crate::io::ConvIo;

// ---------------------------------------------------------------------------
// Ordered merge port
// ---------------------------------------------------------------------------

/// Creates an ordered, backpressured merge channel with `lanes` per-shard
/// lanes of `capacity` items each. Returns one [`MergeTx`] per lane (give
/// lane `i` to shard `i`'s producer fiber) and the single [`MergeRx`]
/// consumer.
///
/// # Panics
///
/// Panics if `lanes` is zero or `capacity` is zero.
pub fn merge_channel<T: Send + 'static>(
    lanes: usize,
    capacity: usize,
) -> (Vec<MergeTx<T>>, MergeRx<T>) {
    assert!(lanes > 0, "merge channel needs at least one lane");
    let queues: Vec<SimQueue<(u64, T)>> = (0..lanes).map(|_| SimQueue::new(capacity)).collect();
    let txs = queues
        .iter()
        .map(|q| MergeTx {
            inner: Arc::new(TxInner {
                lane: q.clone(),
                seq: AtomicU64::new(0),
                cut: AtomicU64::new(u64::MAX),
            }),
        })
        .collect();
    let rx = MergeRx {
        lanes: queues,
        popped: vec![0; lanes],
        done: vec![false; lanes],
        cursor: 0,
        open: lanes,
    };
    (txs, rx)
}

struct TxInner<T> {
    lane: SimQueue<(u64, T)>,
    seq: AtomicU64,
    /// Silent-failure rig for drive-loss injection: sends at or beyond
    /// this sequence number are dropped and `close` is suppressed, so the
    /// lane looks like a drive that died without a word. `u64::MAX` means
    /// healthy.
    cut: AtomicU64,
}

/// Producer handle for one merge lane (cheaply cloneable; clones share
/// the lane and its sequence counter).
pub struct MergeTx<T> {
    inner: Arc<TxInner<T>>,
}

impl<T> Clone for MergeTx<T> {
    fn clone(&self) -> Self {
        MergeTx {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for MergeTx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeTx")
            .field("sent", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send + 'static> MergeTx<T> {
    /// Appends `item` to this lane, blocking in virtual time while the
    /// lane is full (backpressure). Returns `Err` with the item when the
    /// consumer abandoned the lane.
    pub fn send(&self, ctx: &Ctx, item: T) -> Result<(), T> {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        if seq >= self.inner.cut.load(Ordering::Relaxed) {
            return Ok(()); // silently lost: the drive is dead
        }
        self.inner.lane.push(ctx, (seq, item)).map_err(|e| (e.0).1)
    }

    /// Items sent so far (including any silently dropped ones).
    pub fn sent(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Marks the lane complete. Suppressed on a silenced lane — a dead
    /// drive never says goodbye.
    pub fn close(&self, ctx: &Ctx) {
        if self.inner.cut.load(Ordering::Relaxed) == u64::MAX {
            self.inner.lane.close(ctx);
        }
    }

    /// Rigs the lane for silent drive loss: sends at or beyond sequence
    /// `after` vanish and [`MergeTx::close`] becomes a no-op.
    pub fn silence_after(&self, after: u64) {
        self.inner.cut.store(after, Ordering::Relaxed);
    }
}

/// The merge consumer abandoned no lane yet, but the lane under the
/// cursor stayed silent past the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeLag {
    /// The lane the merge cursor was waiting on when the deadline passed.
    pub shard: usize,
}

/// Consumer side of [`merge_channel`]: emits `(shard, sequence, item)`
/// triples in the canonical order (sequence-major, shard-id-minor over
/// still-open lanes).
pub struct MergeRx<T> {
    lanes: Vec<SimQueue<(u64, T)>>,
    popped: Vec<u64>,
    done: Vec<bool>,
    cursor: usize,
    open: usize,
}

impl<T> std::fmt::Debug for MergeRx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeRx")
            .field("lanes", &self.lanes.len())
            .field("open", &self.open)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl<T: Send + 'static> MergeRx<T> {
    /// The next item in canonical merge order, or `None` once every lane
    /// closed and drained. Blocks in virtual time on the lane under the
    /// cursor.
    ///
    /// # Panics
    ///
    /// Panics if a lane violates per-shard FIFO sequencing (a bug in the
    /// producer, not a recoverable fault).
    pub fn next(&mut self, ctx: &Ctx) -> Option<(usize, u64, T)> {
        loop {
            if self.open == 0 {
                return None;
            }
            let s = self.cursor;
            if self.done[s] {
                self.advance();
                continue;
            }
            match self.lanes[s].pop(ctx) {
                Some((seq, item)) => return Some(self.emit(s, seq, item)),
                None => self.retire(s),
            }
        }
    }

    /// Like [`MergeRx::next`], but gives up after `timeout` of silence on
    /// the lane under the cursor, returning which shard lagged. The
    /// cursor does not advance; the caller typically
    /// [abandons](MergeRx::abandon) the shard and keeps merging.
    ///
    /// # Errors
    ///
    /// Returns [`MergeLag`] naming the silent shard.
    pub fn next_deadline(
        &mut self,
        ctx: &Ctx,
        timeout: biscuit_sim::SimDuration,
    ) -> Result<Option<(usize, u64, T)>, MergeLag> {
        loop {
            if self.open == 0 {
                return Ok(None);
            }
            let s = self.cursor;
            if self.done[s] {
                self.advance();
                continue;
            }
            match self.lanes[s].pop_deadline(ctx, ctx.now() + timeout) {
                Ok(Some((seq, item))) => return Ok(Some(self.emit(s, seq, item))),
                Ok(None) => self.retire(s),
                Err(_) => return Err(MergeLag { shard: s }),
            }
        }
    }

    /// Drops `shard` from the merge (after a [`MergeLag`]): its lane is
    /// closed — releasing any producer blocked on backpressure — and its
    /// remaining items are discarded.
    pub fn abandon(&mut self, ctx: &Ctx, shard: usize) {
        if !self.done[shard] {
            self.lanes[shard].close(ctx);
            self.retire(shard);
        }
    }

    /// Lanes that have not yet closed or been abandoned.
    pub fn open_lanes(&self) -> usize {
        self.open
    }

    fn emit(&mut self, s: usize, seq: u64, item: T) -> (usize, u64, T) {
        assert_eq!(
            seq, self.popped[s],
            "merge lane {s} violated per-shard FIFO order"
        );
        self.popped[s] += 1;
        self.advance();
        (s, seq, item)
    }

    fn retire(&mut self, s: usize) {
        self.done[s] = true;
        self.open -= 1;
        self.advance();
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.lanes.len();
    }
}

// ---------------------------------------------------------------------------
// Shard coordinator
// ---------------------------------------------------------------------------

/// A shard job could not complete on the device path; the coordinator
/// discards the shard's partial output and re-scatters it to the
/// host-side fallback.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Human-readable cause (timeout, SSDlet panic, closed lane, ...).
    pub reason: String,
}

impl ShardFailure {
    /// Wraps a cause.
    pub fn new(reason: impl Into<String>) -> Self {
        ShardFailure {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard job failed: {}", self.reason)
    }
}

impl std::error::Error for ShardFailure {}

/// One drive of an [`SsdArray`]: the Biscuit host handle plus a Conv I/O
/// path sharing the same device and link (for fallbacks and baselines).
#[derive(Debug, Clone)]
pub struct ArrayShard {
    /// Shard index (0-based, stable).
    pub id: usize,
    /// Biscuit host handle for this drive.
    pub ssd: Ssd,
    /// Conventional read path over the same device and link.
    pub conv: ConvIo,
}

/// Knobs for the shard coordinator.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Per-shard merge-lane capacity: how many items a shard may run
    /// ahead of the merge cursor before backpressure parks it.
    pub merge_capacity: usize,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig { merge_capacity: 16 }
    }
}

/// Per-shard outcome of one [`SsdArray::scatter`].
#[derive(Debug, Clone)]
pub struct ShardResult<T> {
    /// Which shard produced (or recovered) these items.
    pub shard: usize,
    /// The shard's items in FIFO order.
    pub items: Vec<T>,
    /// True when the device path was lost and the items came from the
    /// host-side fallback instead.
    pub recovered: bool,
}

struct ArrayInner {
    shards: Vec<ArrayShard>,
    cfg: ArrayConfig,
    trace: OnceLock<Tracer>,
    metrics: OnceLock<MetricsRegistry>,
    fault: OnceLock<FaultPlan>,
}

/// Host-side coordinator owning N simulated drives (cheaply cloneable).
///
/// # Examples
///
/// ```
/// use biscuit_host::array::{ArrayConfig, SsdArray};
/// use biscuit_host::HostConfig;
/// use biscuit_core::{CoreConfig, Ssd};
/// use biscuit_fs::Fs;
/// use biscuit_ssd::{SsdConfig, SsdDevice};
/// use std::sync::Arc;
///
/// let drives: Vec<Ssd> = (0..4)
///     .map(|_| {
///         let dev = Arc::new(SsdDevice::new(SsdConfig {
///             logical_capacity: 16 << 20,
///             ..SsdConfig::paper_default()
///         }));
///         Ssd::new(Fs::format(dev), CoreConfig::paper_default())
///     })
///     .collect();
/// let array = SsdArray::new(drives, HostConfig::default(), ArrayConfig::default());
/// assert_eq!(array.len(), 4);
/// ```
#[derive(Clone)]
pub struct SsdArray {
    inner: Arc<ArrayInner>,
}

impl std::fmt::Debug for SsdArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdArray")
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl SsdArray {
    /// Builds an array over `drives`, deriving each shard's Conv I/O path
    /// from the drive's own device and link.
    ///
    /// # Panics
    ///
    /// Panics if `drives` is empty.
    pub fn new(drives: Vec<Ssd>, host_cfg: HostConfig, cfg: ArrayConfig) -> SsdArray {
        assert!(!drives.is_empty(), "an SsdArray needs at least one drive");
        let shards = drives
            .into_iter()
            .enumerate()
            .map(|(id, ssd)| {
                let conv = ConvIo::new(
                    Arc::clone(ssd.device()),
                    Arc::clone(ssd.link()),
                    host_cfg.clone(),
                );
                ArrayShard { id, ssd, conv }
            })
            .collect();
        SsdArray {
            inner: Arc::new(ArrayInner {
                shards,
                cfg,
                trace: OnceLock::new(),
                metrics: OnceLock::new(),
                fault: OnceLock::new(),
            }),
        }
    }

    /// Number of drives in the array.
    pub fn len(&self) -> usize {
        self.inner.shards.len()
    }

    /// True for a zero-drive array (never constructible; kept for the
    /// conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.inner.shards.is_empty()
    }

    /// The shards in id order.
    pub fn shards(&self) -> &[ArrayShard] {
        &self.inner.shards
    }

    /// One shard by id.
    pub fn shard(&self, id: usize) -> &ArrayShard {
        &self.inner.shards[id]
    }

    /// Routes every drive's trace events (and the coordinator's own
    /// `Mark` events) into `tracer`. The first call wins.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        for shard in &self.inner.shards {
            shard.ssd.attach_tracer(tracer);
        }
        let _ = self.inner.trace.set(tracer.clone());
    }

    /// Registers every drive plus the coordinator's own counters in
    /// `registry`. The first call wins.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        for shard in &self.inner.shards {
            shard.ssd.attach_metrics(registry);
        }
        let _ = self.inner.metrics.set(registry.clone());
    }

    /// Attaches the query profiler to every drive's datapath, so NAND,
    /// bus, pattern-matcher, and core occupancy on any shard records
    /// against the querying fiber's span context. Pass `sim.qprof()`
    /// after `sim.enable_qprof()`. The first call per drive wins.
    pub fn attach_qprof(&self, prof: &QueryProfiler) {
        for shard in &self.inner.shards {
            shard.ssd.attach_qprof(prof);
        }
    }

    /// Arms every drive with one shared fault plan: all per-drive sites
    /// plus the coordinator's whole-drive-loss site draw from `plan`.
    /// The first call wins.
    pub fn attach_fault_plan(&self, plan: &FaultPlan) {
        for shard in &self.inner.shards {
            shard.ssd.attach_fault_plan(plan);
        }
        let _ = self.inner.fault.set(plan.clone());
    }

    /// The armed fault plan, or [`FaultPlan::none`].
    pub fn fault_plan(&self) -> FaultPlan {
        self.inner
            .fault
            .get()
            .cloned()
            .unwrap_or_else(FaultPlan::none)
    }

    /// Scatters `job` across every shard as concurrent fibers and gathers
    /// the per-shard item streams through an ordered merge port.
    ///
    /// `job` runs once per shard on its own fiber, streaming items into
    /// its [`MergeTx`] lane; on success it must NOT close the lane (the
    /// coordinator does). A job error, an SSDlet failure surfaced as a
    /// job error, or a whole-drive loss (armed via
    /// [`FaultConfig::drive_losses`]) discards the shard's partial output
    /// and re-scatters that shard to `fallback` on the calling fiber —
    /// so the returned per-shard item lists are byte-identical to a
    /// fault-free run.
    ///
    /// Silent losses are detected with the plan's `host_timeout`; arming
    /// `drive_losses` without a `host_timeout` panics (the loss would
    /// otherwise hang the gather forever).
    ///
    /// [`FaultConfig::drive_losses`]: biscuit_sim::fault::FaultConfig::drive_losses
    ///
    /// # Errors
    ///
    /// Propagates the first `fallback` error, after the merge completed.
    ///
    /// # Panics
    ///
    /// Panics when a drive loss fires while the plan has no
    /// `host_timeout`.
    pub fn scatter<T, E, J, F>(
        &self,
        ctx: &Ctx,
        name: &str,
        job: J,
        mut fallback: F,
    ) -> Result<Vec<ShardResult<T>>, E>
    where
        T: Send + 'static,
        J: Fn(&Ctx, &ArrayShard, &MergeTx<T>) -> Result<(), ShardFailure> + Send + Sync + 'static,
        F: FnMut(&Ctx, &ArrayShard) -> Result<Vec<T>, E>,
    {
        let n = self.len();
        let plan = self.fault_plan();
        let loss = plan.drive_loss(n);
        let timeout = plan.host_timeout();
        assert!(
            loss.is_none() || timeout.is_some(),
            "drive_losses armed without host_timeout: the gather could hang forever"
        );
        self.count("array_scatters_total");
        self.mark(ctx, "array_scatter", format!("{name} over {n} shards"));
        let (txs, mut rx) = merge_channel::<T>(n, self.inner.cfg.merge_capacity);
        let job = Arc::new(job);
        let failed: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        for shard in self.shards() {
            let i = shard.id;
            let tx = txs[i].clone();
            let job = Arc::clone(&job);
            let shard = shard.clone();
            let failed = Arc::clone(&failed);
            let plan = plan.clone();
            let loss_here = loss.filter(|l| l.shard == i);
            ctx.spawn(format!("{name}-shard{i}"), move |fctx| {
                if let Some(l) = loss_here {
                    match l.phase {
                        DriveLossPhase::MidScatter => {
                            // The drive dies before touching the job: no
                            // items, and — crucially — no close.
                            plan.record_injected(fctx.now(), FaultSite::Drive, "mid-scatter");
                            return;
                        }
                        DriveLossPhase::MidGather => {
                            plan.record_injected(fctx.now(), FaultSite::Drive, "mid-gather");
                            tx.silence_after(l.items);
                        }
                    }
                }
                match job(fctx, &shard, &tx) {
                    Ok(()) => tx.close(fctx),
                    Err(_) => {
                        failed[i].store(true, Ordering::Relaxed);
                        tx.close(fctx);
                    }
                }
            });
        }
        drop(txs);
        // Gather: merge in canonical order; a lane silent past the
        // deadline is a lost drive. The whole gather window is one
        // HostMerge span of the caller's query (if any); the profile
        // sweep yields the overlap to the device spans that actually
        // ran inside it, leaving only true merge time attributed here.
        let qp = ctx.qprof().clone();
        let gather_start = ctx.now();
        let mut out: Vec<ShardResult<T>> = (0..n)
            .map(|shard| ShardResult {
                shard,
                items: Vec::new(),
                recovered: false,
            })
            .collect();
        let mut lost = vec![false; n];
        loop {
            let next = match timeout {
                Some(t) => match rx.next_deadline(ctx, t) {
                    Ok(next) => next,
                    Err(MergeLag { shard }) => {
                        plan.record_failed(ctx.now(), FaultSite::Drive, "gather_timeout");
                        self.mark(ctx, "array_shard_lost", format!("{name} shard {shard}"));
                        lost[shard] = true;
                        rx.abandon(ctx, shard);
                        continue;
                    }
                },
                None => rx.next(ctx),
            };
            match next {
                Some((shard, _seq, item)) => out[shard].items.push(item),
                None => break,
            }
        }
        qp.record(Stage::HostMerge, gather_start, ctx.now(), 0, 0);
        for (i, f) in failed.iter().enumerate() {
            if f.load(Ordering::Relaxed) {
                lost[i] = true;
            }
        }
        // Re-scatter every lost shard to the host-side fallback, in shard
        // order, discarding partial device output. Each fallback runs as a
        // "host_fallback" phase of the caller's query, so its spans stay
        // causally inside the query even though the device path was lost.
        for (i, was_lost) in lost.iter().enumerate() {
            if !*was_lost {
                continue;
            }
            self.count("array_rescatters_total");
            let parent = qp.current();
            let phase = parent.map(|sc| qp.child(sc, "host_fallback"));
            if phase.is_some() {
                qp.adopt(ctx, phase);
            }
            let fb_start = ctx.now();
            let recovered = fallback(ctx, &self.inner.shards[i]);
            if let Some(p) = phase {
                qp.record_for(p, Stage::HostCompute, fb_start, ctx.now(), 0, 0);
                qp.adopt(ctx, parent);
            }
            out[i].items = recovered?;
            out[i].recovered = true;
            plan.record_recovered(ctx.now(), FaultSite::Drive, "conv_rescatter");
            self.mark(ctx, "array_shard_recovered", format!("{name} shard {i}"));
        }
        Ok(out)
    }

    /// Scatters a write batch across every shard as concurrent fibers —
    /// the write-path dual of [`SsdArray::scatter`]. Shard `i` applies
    /// `batches[i]` (positional `(offset, bytes)` writes, in order) to
    /// `path` on its own drive's filesystem, creating the file when
    /// absent, then [`File::sync`](biscuit_fs::File::sync)s so the whole
    /// batch — data, metadata, and the drive's L2P journal checkpoint —
    /// is crash-durable before this call returns. `write_at` is
    /// idempotent, so a caller that loses a drive mid-scatter can
    /// recover it and re-issue the same batch verbatim.
    ///
    /// # Errors
    ///
    /// Returns the first failing shard's error in shard-id order; the
    /// other shards still run to completion first.
    ///
    /// # Panics
    ///
    /// Panics if `batches.len()` differs from the drive count.
    pub fn scatter_writes(
        &self,
        ctx: &Ctx,
        name: &str,
        path: &str,
        batches: Vec<Vec<(u64, Vec<u8>)>>,
    ) -> Result<(), ShardFailure> {
        assert_eq!(batches.len(), self.len(), "one write batch per shard");
        self.count("array_write_scatters_total");
        self.mark(
            ctx,
            "array_write_scatter",
            format!("{name} over {} shards", self.len()),
        );
        let (txs, mut rx) = merge_channel::<Result<(), String>>(self.len(), 1);
        for (shard, batch) in self.shards().iter().zip(batches) {
            let i = shard.id;
            let tx = txs[i].clone();
            let fs = shard.ssd.fs().clone();
            let path = path.to_owned();
            ctx.spawn(format!("{name}-write{i}"), move |fctx| {
                let run = || -> Result<(), String> {
                    let mut f = match fs.open(&path, biscuit_fs::Mode::ReadWrite) {
                        Ok(f) => f,
                        Err(biscuit_fs::FsError::NotFound(_)) => {
                            fs.create(&path).map_err(|e| e.to_string())?
                        }
                        Err(e) => return Err(e.to_string()),
                    };
                    for (offset, data) in &batch {
                        f.write_at(fctx, *offset, data).map_err(|e| e.to_string())?;
                    }
                    f.sync(fctx).map_err(|e| e.to_string())
                };
                let _ = tx.send(fctx, run());
                tx.close(fctx);
            });
        }
        drop(txs);
        let mut results: Vec<Option<Result<(), String>>> =
            (0..self.len()).map(|_| None).collect();
        while let Some((shard, _seq, r)) = rx.next(ctx) {
            results[shard] = Some(r);
        }
        for (i, r) in results.into_iter().enumerate() {
            match r {
                Some(Ok(())) => {}
                Some(Err(e)) => return Err(ShardFailure::new(format!("shard {i}: {e}"))),
                None => {
                    return Err(ShardFailure::new(format!(
                        "shard {i}: write fiber closed its lane without reporting"
                    )))
                }
            }
        }
        Ok(())
    }

    fn count(&self, name: &'static str) {
        if let Some(reg) = self.inner.metrics.get() {
            if reg.is_enabled() {
                reg.counter(name, &[]).inc();
            }
        }
    }

    fn mark(&self, ctx: &Ctx, name: &'static str, detail: String) {
        if let Some(tracer) = self.inner.trace.get() {
            tracer.emit(|| TraceEvent::Mark {
                at: ctx.now(),
                name: Arc::from(name),
                detail: Arc::from(detail.as_str()),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent query scheduler
// ---------------------------------------------------------------------------

/// Fixed-point scale for WFQ virtual time: one cost unit at weight 1
/// advances a tenant's finish tag by this much. Room for weights up to
/// 2^20 without rounding a unit-cost query to zero.
const WFQ_SCALE: u128 = 1 << 20;

/// Knobs for [`QueryScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Independent tenant ("user") queues under weighted fair queueing.
    pub users: usize,
    /// Maximum queries running concurrently over the array — the size of
    /// the worker-fiber pool (admission control).
    ///
    /// Derive it from the array size with
    /// [`SchedulerConfig::for_drives`]: two in-flight queries per drive
    /// keeps every drive busy while its predecessor's results merge on
    /// the host. Override by setting the field when a workload needs
    /// more overlap (e.g. host-compute-heavy queries).
    pub max_inflight: usize,
    /// Per-user submit-queue capacity. A full queue blocks
    /// [`QueryScheduler::submit`] (backpressure) and sheds
    /// [`QueryScheduler::try_submit`] (load shedding).
    pub queue_capacity: usize,
    /// Per-user WFQ weights: user `i` receives service proportional to
    /// `weights[i]` under contention. Empty means every user weighs 1;
    /// otherwise the length must equal `users` and every weight must be
    /// positive.
    pub weights: Vec<u64>,
}

impl SchedulerConfig {
    /// A config sized for an array of `drives` drives: `max_inflight` is
    /// `2 * drives` (min 2) so each drive can overlap one running query
    /// with one merging its results back on the host.
    pub fn for_drives(drives: usize) -> Self {
        SchedulerConfig {
            users: 1,
            max_inflight: (2 * drives).max(2),
            queue_capacity: 8,
            weights: Vec::new(),
        }
    }
}

impl Default for SchedulerConfig {
    /// Sized for a two-drive array ([`SchedulerConfig::for_drives`]`(2)`,
    /// so `max_inflight = 4`) — set `users`/`weights` and call
    /// `for_drives` with the real array size for anything bigger.
    fn default() -> Self {
        SchedulerConfig::for_drives(2)
    }
}

/// Why [`QueryScheduler::try_submit`] refused a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's bounded queue was at capacity.
    QueueFull,
    /// The scheduler was already closed.
    Closed,
}

/// A query rejected by [`QueryScheduler::try_submit`] (load shedding).
/// Metered as `sched_shed_total{user=N}` when a registry is attached,
/// and always in the tenant's [`TenantReport::shed`] count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryShed {
    /// The tenant whose query was shed.
    pub user: usize,
    /// Why it was shed.
    pub reason: ShedReason,
}

impl std::fmt::Display for QueryShed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.reason {
            ShedReason::QueueFull => write!(f, "query shed: user {} queue full", self.user),
            ShedReason::Closed => write!(f, "query shed: scheduler closed (user {})", self.user),
        }
    }
}

impl std::error::Error for QueryShed {}

/// One tenant's QoS accounting, tracked unconditionally inside the
/// scheduler (no registry required): exact counts plus log-bucketed
/// queue-wait and end-to-end latency histograms. The reconciliation
/// invariant `offered == accepted + shed` and (after a drain)
/// `accepted == completed` always holds.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant index.
    pub user: usize,
    /// WFQ weight.
    pub weight: u64,
    /// Submission attempts: accepted + shed.
    pub offered: u64,
    /// Queries accepted into the queue.
    pub accepted: u64,
    /// Queries completed.
    pub completed: u64,
    /// Queries shed by `try_submit`.
    pub shed: u64,
    /// Virtual-time wait from submission to dispatch, in picoseconds.
    pub queue_wait: HistogramData,
    /// Virtual-time latency from submission to completion, in
    /// picoseconds.
    pub latency: HistogramData,
}

type Job = Box<dyn FnOnce(&Ctx) + Send + 'static>;

/// A query accepted into the WFQ: the job plus the observability
/// identity minted at submission time.
struct Submitted {
    job: Job,
    user: usize,
    at: SimTime,
    span: Option<SpanContext>,
}

/// Heap entry ordering: smallest finish tag first; ties break by user
/// then admission sequence, so the order is a pure function of the
/// submission history.
struct QueuedEntry {
    finish: u128,
    start: u128,
    seq: u64,
    sub: Submitted,
}

impl PartialEq for QueuedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedEntry {}
impl PartialOrd for QueuedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.finish, self.sub.user, self.seq).cmp(&(other.finish, other.sub.user, other.seq))
    }
}

/// Always-on per-tenant state under the WFQ lock.
struct TenantState {
    weight: u64,
    /// Queries currently buffered (accepted, not yet dispatched).
    depth: u32,
    /// Finish tag of the tenant's most recently accepted query.
    fin: u128,
    offered: u64,
    completed: u64,
    shed: u64,
    queue_wait: HistogramData,
    latency: HistogramData,
}

/// The WFQ core, guarded by one uncontended mutex (the DES kernel runs
/// one fiber at a time; the lock is never held across a yield point).
struct WfqState {
    tenants: Vec<TenantState>,
    heap: BinaryHeap<Reverse<QueuedEntry>>,
    /// Virtual clock: the start tag of the last dispatched query.
    vtime: u128,
    next_seq: u64,
    closed: bool,
}

/// Registry instruments for one tenant queue, mirroring
/// `SimQueue::set_metrics` naming so dashboards keep working.
struct QueueInstr {
    pushes: Counter,
    pops: Counter,
    depth: Gauge,
}

struct SchedInner {
    capacity: usize,
    max_inflight: usize,
    state: Mutex<WfqState>,
    /// Per-tenant wakeups for submitters blocked on a full queue.
    not_full: Vec<WaitQueue>,
    /// Wakeup for idle worker fibers.
    work: WaitQueue,
    /// Wakeup for `wait_completed`.
    done: WaitQueue,
    submitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    metrics: OnceLock<MetricsRegistry>,
    queue_instr: OnceLock<Vec<QueueInstr>>,
}

impl SchedInner {
    fn count(&self, name: &'static str) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.counter(name, &[]).inc();
            }
        }
    }

    fn count_user(&self, name: &'static str, user: usize) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.counter(name, &[("user", &user.to_string())]).inc();
            }
        }
    }

    fn inflight_add(&self, delta: i64) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.gauge("array_sched_inflight", &[]).add(delta);
            }
        }
    }

    fn instr(&self, user: usize) -> Option<&QueueInstr> {
        self.queue_instr.get().map(|v| &v[user])
    }

    /// Feeds one query's end-to-end latency (submit to completion) into
    /// the per-tenant SLO histogram `array_query_latency_ps{user=N}` —
    /// p50/p99/p99.9 come out of the registry's summary export.
    fn observe_latency(&self, user: usize, latency_ps: u64) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.histogram("array_query_latency_ps", &[("user", &user.to_string())])
                    .record(latency_ps);
            }
        }
    }

    /// Same, for the dispatch wait: `array_queue_wait_ps{user=N}`.
    fn observe_queue_wait(&self, user: usize, wait_ps: u64) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.histogram("array_queue_wait_ps", &[("user", &user.to_string())])
                    .record(wait_ps);
            }
        }
    }
}

/// Weighted-fair, admission-controlled scheduler for concurrent queries
/// over an [`SsdArray`] (cheaply cloneable).
///
/// Submitted jobs are arbitrary closures — typically a
/// [`SsdArray::scatter`] plus result handling — so the scheduler is
/// oblivious to query shape. Dispatch order is deterministic: the WFQ
/// tags are a pure function of the submission history, ties break on
/// `(user, sequence)`, and the worker pool is driven entirely by the
/// DES kernel's event order.
///
/// See the [module docs](self) and `docs/QOS.md` for the WFQ model,
/// shedding policy, and backpressure contract.
pub struct QueryScheduler {
    inner: Arc<SchedInner>,
}

impl Clone for QueryScheduler {
    fn clone(&self) -> Self {
        QueryScheduler {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for QueryScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryScheduler")
            .field("users", &self.inner.not_full.len())
            .field("submitted", &self.inner.submitted.load(Ordering::Relaxed))
            .field("completed", &self.inner.completed.load(Ordering::Relaxed))
            .field("shed", &self.inner.shed.load(Ordering::Relaxed))
            .finish()
    }
}

impl QueryScheduler {
    /// Builds a scheduler (not yet dispatching; call
    /// [`QueryScheduler::start`] from a fiber).
    ///
    /// # Panics
    ///
    /// Panics if `users`, `max_inflight`, or `queue_capacity` is zero,
    /// or if `weights` is non-empty with a length other than `users` or
    /// a zero weight.
    pub fn new(cfg: SchedulerConfig) -> QueryScheduler {
        assert!(cfg.users > 0, "scheduler needs at least one user queue");
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        assert!(cfg.queue_capacity > 0, "queue_capacity must be positive");
        assert!(
            cfg.weights.is_empty() || cfg.weights.len() == cfg.users,
            "weights must be empty or one per user"
        );
        assert!(
            cfg.weights.iter().all(|&w| w > 0),
            "WFQ weights must be positive"
        );
        let tenants = (0..cfg.users)
            .map(|i| TenantState {
                weight: cfg.weights.get(i).copied().unwrap_or(1),
                depth: 0,
                fin: 0,
                offered: 0,
                completed: 0,
                shed: 0,
                queue_wait: HistogramData::new(),
                latency: HistogramData::new(),
            })
            .collect();
        QueryScheduler {
            inner: Arc::new(SchedInner {
                capacity: cfg.queue_capacity,
                max_inflight: cfg.max_inflight,
                state: Mutex::new(WfqState {
                    tenants,
                    heap: BinaryHeap::new(),
                    vtime: 0,
                    next_seq: 0,
                    closed: false,
                }),
                not_full: (0..cfg.users).map(|_| WaitQueue::new()).collect(),
                work: WaitQueue::new(),
                done: WaitQueue::new(),
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                shed: AtomicU64::new(0),
                metrics: OnceLock::new(),
                queue_instr: OnceLock::new(),
            }),
        }
    }

    /// Registers the scheduler's counters, the in-flight gauge, and every
    /// user queue's push/pop/depth instruments (`queue=sched.user<i>`) in
    /// `registry`. The first call wins.
    ///
    /// Skip this for very large tenant counts (tens of thousands): the
    /// per-tenant accounting in [`QueryScheduler::tenant_reports`] is
    /// always on and does not inflate the registry export.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let instr = (0..self.inner.not_full.len())
            .map(|i| {
                let label = format!("sched.user{i}");
                let labels = [("queue", label.as_str())];
                QueueInstr {
                    pushes: registry.counter("queue_pushes_total", &labels),
                    pops: registry.counter("queue_pops_total", &labels),
                    depth: registry.gauge("queue_depth", &labels),
                }
            })
            .collect();
        let _ = self.inner.queue_instr.set(instr);
        let _ = self.inner.metrics.set(registry.clone());
    }

    /// Spawns the worker-fiber pool (`max_inflight` fibers named
    /// `sched-worker<i>`). Call once. Workers exit when the scheduler is
    /// closed and drained — there is no per-query fiber spawn, so the
    /// scheduler sustains million-query soaks.
    pub fn start(&self, ctx: &Ctx) {
        for w in 0..self.inner.max_inflight {
            let inner = Arc::clone(&self.inner);
            ctx.spawn(format!("sched-worker{w}"), move |wctx| {
                worker_loop(&inner, wctx)
            });
        }
    }

    /// Enqueues a unit-cost `job` for `user`, blocking in virtual time
    /// while the user's queue is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics when called after [`QueryScheduler::close`] — including
    /// when the scheduler closes while this call is blocked.
    pub fn submit(&self, ctx: &Ctx, user: usize, job: impl FnOnCtx) {
        self.submit_cost(ctx, user, 1, job)
    }

    /// [`QueryScheduler::submit`] with an explicit WFQ `cost` (service
    /// demand in abstract units; `0` counts as `1`). A tenant's finish
    /// tags advance by `cost / weight`, so cheap queries are charged
    /// less of the tenant's share.
    ///
    /// # Panics
    ///
    /// Panics when called after [`QueryScheduler::close`].
    pub fn submit_cost(&self, ctx: &Ctx, user: usize, cost: u64, job: impl FnOnCtx) {
        let mut job: Option<Job> = Some(Box::new(job));
        let mut blocked = false;
        loop {
            {
                let mut st = self.inner.state.lock();
                assert!(!st.closed, "submit on a closed scheduler");
                if (st.tenants[user].depth as usize) < self.inner.capacity {
                    self.enqueue_locked(ctx, &mut st, user, cost, job.take().unwrap());
                    drop(st);
                    self.inner.work.notify_one(ctx);
                    return;
                }
            }
            if !blocked {
                blocked = true;
                self.inner.count("array_sched_backpressure_total");
            }
            self.inner.not_full[user].wait(ctx);
        }
    }

    /// Non-blocking submit of a unit-cost `job`: sheds instead of
    /// waiting when `user`'s queue is full or the scheduler is closed.
    /// This is the open-loop path — arrivals the array cannot absorb
    /// are dropped and metered rather than queued without bound.
    ///
    /// # Errors
    ///
    /// Returns [`QueryShed`] when the query was rejected; the shed is
    /// counted in `sched_shed_total{user}` and the tenant's report.
    pub fn try_submit(&self, ctx: &Ctx, user: usize, job: impl FnOnCtx) -> Result<(), QueryShed> {
        self.try_submit_cost(ctx, user, 1, job)
    }

    /// [`QueryScheduler::try_submit`] with an explicit WFQ `cost`.
    ///
    /// # Errors
    ///
    /// Returns [`QueryShed`] when the query was rejected.
    pub fn try_submit_cost(
        &self,
        ctx: &Ctx,
        user: usize,
        cost: u64,
        job: impl FnOnCtx,
    ) -> Result<(), QueryShed> {
        let reason = {
            let mut st = self.inner.state.lock();
            if st.closed {
                st.tenants[user].offered += 1;
                st.tenants[user].shed += 1;
                ShedReason::Closed
            } else if (st.tenants[user].depth as usize) >= self.inner.capacity {
                st.tenants[user].offered += 1;
                st.tenants[user].shed += 1;
                ShedReason::QueueFull
            } else {
                self.enqueue_locked(ctx, &mut st, user, cost, Box::new(job));
                drop(st);
                self.inner.work.notify_one(ctx);
                return Ok(());
            }
        };
        self.inner.shed.fetch_add(1, Ordering::Relaxed);
        self.inner.count_user("sched_shed_total", user);
        Err(QueryShed { user, reason })
    }

    /// Tags and buffers one accepted query. Caller holds the lock and
    /// has verified capacity; never yields (qprof minting is pure
    /// bookkeeping).
    fn enqueue_locked(&self, ctx: &Ctx, st: &mut WfqState, user: usize, cost: u64, job: Job) {
        // Mint the query's causal identity at acceptance: queue wait,
        // admission, and execution all happen under this context. The
        // submitting fiber itself does none of the query's work, so its
        // own context is cleared right away.
        let qp = ctx.qprof();
        let span = qp.begin_query(ctx, user as u32);
        if span.is_some() {
            qp.adopt(ctx, None);
        }
        let vtime = st.vtime;
        let t = &mut st.tenants[user];
        t.offered += 1;
        let start = vtime.max(t.fin);
        let finish = start + u128::from(cost.max(1)) * WFQ_SCALE / u128::from(t.weight);
        t.fin = finish;
        t.depth += 1;
        let depth = t.depth;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.heap.push(Reverse(QueuedEntry {
            finish,
            start,
            seq,
            sub: Submitted {
                job,
                user,
                at: ctx.now(),
                span,
            },
        }));
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.count("array_sched_submitted_total");
        if let Some(qi) = self.inner.instr(user) {
            qi.pushes.inc();
            qi.depth.set(i64::from(depth));
        }
    }

    /// Closes the scheduler: no further submissions are accepted
    /// (`submit` panics, `try_submit` sheds with
    /// [`ShedReason::Closed`]), the workers drain what is buffered and
    /// then exit. Submitters blocked on backpressure are woken and
    /// panic per the submit contract.
    pub fn close(&self, ctx: &Ctx) {
        self.inner.state.lock().closed = true;
        self.inner.work.notify_all(ctx);
        for nf in &self.inner.not_full {
            nf.notify_all(ctx);
        }
    }

    /// Blocks in virtual time until at least `n` jobs completed.
    pub fn wait_completed(&self, ctx: &Ctx, n: u64) {
        while self.inner.completed.load(Ordering::Relaxed) < n {
            self.inner.done.wait(ctx);
        }
    }

    /// Jobs accepted so far (excludes sheds).
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }

    /// Jobs shed so far by `try_submit`.
    pub fn shed(&self) -> u64 {
        self.inner.shed.load(Ordering::Relaxed)
    }

    /// A snapshot of every tenant's QoS accounting, in user order.
    pub fn tenant_reports(&self) -> Vec<TenantReport> {
        let st = self.inner.state.lock();
        st.tenants
            .iter()
            .enumerate()
            .map(|(user, t)| TenantReport {
                user,
                weight: t.weight,
                offered: t.offered,
                accepted: t.offered - t.shed,
                completed: t.completed,
                shed: t.shed,
                queue_wait: t.queue_wait.clone(),
                latency: t.latency.clone(),
            })
            .collect()
    }

    /// A deterministic, integer-only JSON export of the per-tenant QoS
    /// state (counts plus p50/p99/p99.9/max of queue wait and latency).
    /// Same-seed soaks compare this byte-for-byte; all values derive
    /// from virtual time and exact counters, so the export is identical
    /// across thread policies and repeat runs.
    pub fn qos_json(&self) -> String {
        let reports = self.tenant_reports();
        let mut out = String::with_capacity(reports.len() * 160 + 64);
        out.push_str("{\n  \"tenants\": [\n");
        for (i, r) in reports.iter().enumerate() {
            let sep = if i + 1 == reports.len() { "" } else { "," };
            out.push_str(&format!(
                concat!(
                    "    {{\"user\": {}, \"weight\": {}, \"offered\": {}, ",
                    "\"accepted\": {}, \"completed\": {}, \"shed\": {}, ",
                    "\"wait_p50_ps\": {}, \"wait_p99_ps\": {}, \"wait_p999_ps\": {}, ",
                    "\"wait_max_ps\": {}, \"lat_p50_ps\": {}, \"lat_p99_ps\": {}, ",
                    "\"lat_p999_ps\": {}, \"lat_max_ps\": {}}}{}\n"
                ),
                r.user,
                r.weight,
                r.offered,
                r.accepted,
                r.completed,
                r.shed,
                r.queue_wait.percentile(50.0),
                r.queue_wait.percentile(99.0),
                r.queue_wait.percentile(99.9),
                r.queue_wait.max,
                r.latency.percentile(50.0),
                r.latency.percentile(99.0),
                r.latency.percentile(99.9),
                r.latency.max,
                sep,
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Bound alias for scheduler jobs (a closure run once on a worker
/// fiber's DES context).
pub trait FnOnCtx: FnOnce(&Ctx) + Send + 'static {}
impl<F: FnOnce(&Ctx) + Send + 'static> FnOnCtx for F {}

/// One worker fiber: repeatedly dispatch the globally smallest finish
/// tag and run it to completion. The pool size (`max_inflight`) is the
/// admission limit; WFQ order decides who gets a freed slot.
fn worker_loop(inner: &Arc<SchedInner>, ctx: &Ctx) {
    let qp = ctx.qprof().clone();
    loop {
        // Dispatch: pop under the lock, advance virtual time, meter the
        // queue wait. The lock is released before any yield point; the
        // check-then-wait below is race-free because the DES kernel runs
        // one fiber at a time and the lock is never held across a yield.
        let sub = loop {
            {
                let mut st = inner.state.lock();
                if let Some(Reverse(e)) = st.heap.pop() {
                    st.vtime = st.vtime.max(e.start);
                    let user = e.sub.user;
                    let wait_ps = (ctx.now() - e.sub.at).as_ps();
                    let t = &mut st.tenants[user];
                    t.depth -= 1;
                    t.queue_wait.record(wait_ps);
                    let depth = t.depth;
                    drop(st);
                    if let Some(qi) = inner.instr(user) {
                        qi.pops.inc();
                        qi.depth.set(i64::from(depth));
                    }
                    inner.observe_queue_wait(user, wait_ps);
                    break Some(e.sub);
                }
                if st.closed {
                    break None;
                }
            }
            inner.work.wait(ctx);
        };
        let Some(sub) = sub else { return };
        // A slot freed in the tenant's queue: wake one blocked submitter.
        inner.not_full[sub.user].notify_one(ctx);
        inner.count("array_sched_admitted_total");
        inner.inflight_add(1);
        if let Some(sc) = sub.span {
            // This worker does the query's work: adopt the context minted
            // at submit and close the loop on how long the query sat
            // queued and awaiting admission.
            qp.adopt(ctx, Some(sc));
            qp.record(Stage::QueueWait, sub.at, ctx.now(), 0, 0);
        }
        (sub.job)(ctx);
        let latency_ps = (ctx.now() - sub.at).as_ps();
        inner.observe_latency(sub.user, latency_ps);
        {
            let mut st = inner.state.lock();
            let t = &mut st.tenants[sub.user];
            t.completed += 1;
            t.latency.record(latency_ps);
        }
        if let Some(sc) = sub.span {
            qp.end_query(ctx, sc);
            qp.adopt(ctx, None);
        }
        inner.inflight_add(-1);
        inner.completed.fetch_add(1, Ordering::Relaxed);
        inner.count("array_sched_completed_total");
        inner.done.notify_all(ctx);
    }
}
