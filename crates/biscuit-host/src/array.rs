//! Multi-SSD scale-out: shard coordinator, ordered merge port, and a
//! concurrent query scheduler with admission control.
//!
//! The paper's Fig. 1(b) scale-up argument is that every Biscuit drive
//! filters its own shard locally, so aggregate throughput grows with the
//! drive count while a conventional host stays pinned at one CPU. This
//! module turns that argument into an API: an [`SsdArray`] owns N
//! simulated drives, [`SsdArray::scatter`] fans a per-shard job out to
//! all of them as concurrent DES fibers, and the results come back
//! through an ordered, backpressured merge port.
//!
//! ## Ordering and determinism
//!
//! Each shard writes into its own bounded merge lane, tagging items with
//! a per-lane sequence number. [`MergeRx`] consumes lanes round-robin in
//! shard-id order, emitting lane item `r` of every still-open shard
//! before any lane's item `r + 1`. The global merge order is therefore a
//! pure function of the per-shard item counts — `(shard id, sequence)`
//! fully determines it — independent of how the per-drive fibers
//! interleave. Per-shard FIFO order is asserted structurally on every
//! pop. Bounded lanes give backpressure: a fast shard runs at most
//! `merge_capacity` items ahead of the merge cursor.
//!
//! ## Drive-loss recovery
//!
//! When the array's [`FaultPlan`] arms `drive_losses`, a scatter may lose
//! one whole drive mid-flight ([`DriveLossPhase::MidScatter`]: before the
//! shard job runs; [`DriveLossPhase::MidGather`]: after a few items). The
//! lost drive goes *silent* — it never closes its lane — so the gather
//! loop detects it via the plan's `host_timeout` deadline, abandons the
//! lane, and re-scatters that shard to the caller's host-side fallback
//! (a Conv scan). Results stay byte-identical to the fault-free run
//! because the fallback replaces the lost shard's entire item stream.
//!
//! ## Concurrent queries
//!
//! [`QueryScheduler`] multiplexes many independent queries from many
//! "users" over one array: per-user bounded submit queues (backpressure),
//! fair round-robin dispatch, and a semaphore capping in-flight queries
//! (admission control). All scheduler state is observable through the
//! aggregate metrics registry and drains to zero when the work does.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use biscuit_core::Ssd;
use biscuit_sim::fault::{DriveLossPhase, FaultPlan, FaultSite};
use biscuit_sim::qprof::{QueryProfiler, SpanContext, Stage};
use biscuit_sim::queue::{Semaphore, SimQueue, WaitQueue};
use biscuit_sim::trace::TraceEvent;
use biscuit_sim::{Ctx, MetricsRegistry, SimTime, Tracer};

use crate::config::HostConfig;
use crate::io::ConvIo;

// ---------------------------------------------------------------------------
// Ordered merge port
// ---------------------------------------------------------------------------

/// Creates an ordered, backpressured merge channel with `lanes` per-shard
/// lanes of `capacity` items each. Returns one [`MergeTx`] per lane (give
/// lane `i` to shard `i`'s producer fiber) and the single [`MergeRx`]
/// consumer.
///
/// # Panics
///
/// Panics if `lanes` is zero or `capacity` is zero.
pub fn merge_channel<T: Send + 'static>(
    lanes: usize,
    capacity: usize,
) -> (Vec<MergeTx<T>>, MergeRx<T>) {
    assert!(lanes > 0, "merge channel needs at least one lane");
    let queues: Vec<SimQueue<(u64, T)>> = (0..lanes).map(|_| SimQueue::new(capacity)).collect();
    let txs = queues
        .iter()
        .map(|q| MergeTx {
            inner: Arc::new(TxInner {
                lane: q.clone(),
                seq: AtomicU64::new(0),
                cut: AtomicU64::new(u64::MAX),
            }),
        })
        .collect();
    let rx = MergeRx {
        lanes: queues,
        popped: vec![0; lanes],
        done: vec![false; lanes],
        cursor: 0,
        open: lanes,
    };
    (txs, rx)
}

struct TxInner<T> {
    lane: SimQueue<(u64, T)>,
    seq: AtomicU64,
    /// Silent-failure rig for drive-loss injection: sends at or beyond
    /// this sequence number are dropped and `close` is suppressed, so the
    /// lane looks like a drive that died without a word. `u64::MAX` means
    /// healthy.
    cut: AtomicU64,
}

/// Producer handle for one merge lane (cheaply cloneable; clones share
/// the lane and its sequence counter).
pub struct MergeTx<T> {
    inner: Arc<TxInner<T>>,
}

impl<T> Clone for MergeTx<T> {
    fn clone(&self) -> Self {
        MergeTx {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> std::fmt::Debug for MergeTx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeTx")
            .field("sent", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl<T: Send + 'static> MergeTx<T> {
    /// Appends `item` to this lane, blocking in virtual time while the
    /// lane is full (backpressure). Returns `Err` with the item when the
    /// consumer abandoned the lane.
    pub fn send(&self, ctx: &Ctx, item: T) -> Result<(), T> {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        if seq >= self.inner.cut.load(Ordering::Relaxed) {
            return Ok(()); // silently lost: the drive is dead
        }
        self.inner.lane.push(ctx, (seq, item)).map_err(|e| (e.0).1)
    }

    /// Items sent so far (including any silently dropped ones).
    pub fn sent(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Marks the lane complete. Suppressed on a silenced lane — a dead
    /// drive never says goodbye.
    pub fn close(&self, ctx: &Ctx) {
        if self.inner.cut.load(Ordering::Relaxed) == u64::MAX {
            self.inner.lane.close(ctx);
        }
    }

    /// Rigs the lane for silent drive loss: sends at or beyond sequence
    /// `after` vanish and [`MergeTx::close`] becomes a no-op.
    pub fn silence_after(&self, after: u64) {
        self.inner.cut.store(after, Ordering::Relaxed);
    }
}

/// The merge consumer abandoned no lane yet, but the lane under the
/// cursor stayed silent past the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeLag {
    /// The lane the merge cursor was waiting on when the deadline passed.
    pub shard: usize,
}

/// Consumer side of [`merge_channel`]: emits `(shard, sequence, item)`
/// triples in the canonical order (sequence-major, shard-id-minor over
/// still-open lanes).
pub struct MergeRx<T> {
    lanes: Vec<SimQueue<(u64, T)>>,
    popped: Vec<u64>,
    done: Vec<bool>,
    cursor: usize,
    open: usize,
}

impl<T> std::fmt::Debug for MergeRx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MergeRx")
            .field("lanes", &self.lanes.len())
            .field("open", &self.open)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl<T: Send + 'static> MergeRx<T> {
    /// The next item in canonical merge order, or `None` once every lane
    /// closed and drained. Blocks in virtual time on the lane under the
    /// cursor.
    ///
    /// # Panics
    ///
    /// Panics if a lane violates per-shard FIFO sequencing (a bug in the
    /// producer, not a recoverable fault).
    pub fn next(&mut self, ctx: &Ctx) -> Option<(usize, u64, T)> {
        loop {
            if self.open == 0 {
                return None;
            }
            let s = self.cursor;
            if self.done[s] {
                self.advance();
                continue;
            }
            match self.lanes[s].pop(ctx) {
                Some((seq, item)) => return Some(self.emit(s, seq, item)),
                None => self.retire(s),
            }
        }
    }

    /// Like [`MergeRx::next`], but gives up after `timeout` of silence on
    /// the lane under the cursor, returning which shard lagged. The
    /// cursor does not advance; the caller typically
    /// [abandons](MergeRx::abandon) the shard and keeps merging.
    ///
    /// # Errors
    ///
    /// Returns [`MergeLag`] naming the silent shard.
    pub fn next_deadline(
        &mut self,
        ctx: &Ctx,
        timeout: biscuit_sim::SimDuration,
    ) -> Result<Option<(usize, u64, T)>, MergeLag> {
        loop {
            if self.open == 0 {
                return Ok(None);
            }
            let s = self.cursor;
            if self.done[s] {
                self.advance();
                continue;
            }
            match self.lanes[s].pop_deadline(ctx, ctx.now() + timeout) {
                Ok(Some((seq, item))) => return Ok(Some(self.emit(s, seq, item))),
                Ok(None) => self.retire(s),
                Err(_) => return Err(MergeLag { shard: s }),
            }
        }
    }

    /// Drops `shard` from the merge (after a [`MergeLag`]): its lane is
    /// closed — releasing any producer blocked on backpressure — and its
    /// remaining items are discarded.
    pub fn abandon(&mut self, ctx: &Ctx, shard: usize) {
        if !self.done[shard] {
            self.lanes[shard].close(ctx);
            self.retire(shard);
        }
    }

    /// Lanes that have not yet closed or been abandoned.
    pub fn open_lanes(&self) -> usize {
        self.open
    }

    fn emit(&mut self, s: usize, seq: u64, item: T) -> (usize, u64, T) {
        assert_eq!(
            seq, self.popped[s],
            "merge lane {s} violated per-shard FIFO order"
        );
        self.popped[s] += 1;
        self.advance();
        (s, seq, item)
    }

    fn retire(&mut self, s: usize) {
        self.done[s] = true;
        self.open -= 1;
        self.advance();
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.lanes.len();
    }
}

// ---------------------------------------------------------------------------
// Shard coordinator
// ---------------------------------------------------------------------------

/// A shard job could not complete on the device path; the coordinator
/// discards the shard's partial output and re-scatters it to the
/// host-side fallback.
#[derive(Debug, Clone)]
pub struct ShardFailure {
    /// Human-readable cause (timeout, SSDlet panic, closed lane, ...).
    pub reason: String,
}

impl ShardFailure {
    /// Wraps a cause.
    pub fn new(reason: impl Into<String>) -> Self {
        ShardFailure {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ShardFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard job failed: {}", self.reason)
    }
}

impl std::error::Error for ShardFailure {}

/// One drive of an [`SsdArray`]: the Biscuit host handle plus a Conv I/O
/// path sharing the same device and link (for fallbacks and baselines).
#[derive(Debug, Clone)]
pub struct ArrayShard {
    /// Shard index (0-based, stable).
    pub id: usize,
    /// Biscuit host handle for this drive.
    pub ssd: Ssd,
    /// Conventional read path over the same device and link.
    pub conv: ConvIo,
}

/// Knobs for the shard coordinator.
#[derive(Debug, Clone)]
pub struct ArrayConfig {
    /// Per-shard merge-lane capacity: how many items a shard may run
    /// ahead of the merge cursor before backpressure parks it.
    pub merge_capacity: usize,
}

impl Default for ArrayConfig {
    fn default() -> Self {
        ArrayConfig { merge_capacity: 16 }
    }
}

/// Per-shard outcome of one [`SsdArray::scatter`].
#[derive(Debug, Clone)]
pub struct ShardResult<T> {
    /// Which shard produced (or recovered) these items.
    pub shard: usize,
    /// The shard's items in FIFO order.
    pub items: Vec<T>,
    /// True when the device path was lost and the items came from the
    /// host-side fallback instead.
    pub recovered: bool,
}

struct ArrayInner {
    shards: Vec<ArrayShard>,
    cfg: ArrayConfig,
    trace: OnceLock<Tracer>,
    metrics: OnceLock<MetricsRegistry>,
    fault: OnceLock<FaultPlan>,
}

/// Host-side coordinator owning N simulated drives (cheaply cloneable).
///
/// # Examples
///
/// ```
/// use biscuit_host::array::{ArrayConfig, SsdArray};
/// use biscuit_host::HostConfig;
/// use biscuit_core::{CoreConfig, Ssd};
/// use biscuit_fs::Fs;
/// use biscuit_ssd::{SsdConfig, SsdDevice};
/// use std::sync::Arc;
///
/// let drives: Vec<Ssd> = (0..4)
///     .map(|_| {
///         let dev = Arc::new(SsdDevice::new(SsdConfig {
///             logical_capacity: 16 << 20,
///             ..SsdConfig::paper_default()
///         }));
///         Ssd::new(Fs::format(dev), CoreConfig::paper_default())
///     })
///     .collect();
/// let array = SsdArray::new(drives, HostConfig::default(), ArrayConfig::default());
/// assert_eq!(array.len(), 4);
/// ```
#[derive(Clone)]
pub struct SsdArray {
    inner: Arc<ArrayInner>,
}

impl std::fmt::Debug for SsdArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdArray")
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl SsdArray {
    /// Builds an array over `drives`, deriving each shard's Conv I/O path
    /// from the drive's own device and link.
    ///
    /// # Panics
    ///
    /// Panics if `drives` is empty.
    pub fn new(drives: Vec<Ssd>, host_cfg: HostConfig, cfg: ArrayConfig) -> SsdArray {
        assert!(!drives.is_empty(), "an SsdArray needs at least one drive");
        let shards = drives
            .into_iter()
            .enumerate()
            .map(|(id, ssd)| {
                let conv = ConvIo::new(
                    Arc::clone(ssd.device()),
                    Arc::clone(ssd.link()),
                    host_cfg.clone(),
                );
                ArrayShard { id, ssd, conv }
            })
            .collect();
        SsdArray {
            inner: Arc::new(ArrayInner {
                shards,
                cfg,
                trace: OnceLock::new(),
                metrics: OnceLock::new(),
                fault: OnceLock::new(),
            }),
        }
    }

    /// Number of drives in the array.
    pub fn len(&self) -> usize {
        self.inner.shards.len()
    }

    /// True for a zero-drive array (never constructible; kept for the
    /// conventional `len`/`is_empty` pairing).
    pub fn is_empty(&self) -> bool {
        self.inner.shards.is_empty()
    }

    /// The shards in id order.
    pub fn shards(&self) -> &[ArrayShard] {
        &self.inner.shards
    }

    /// One shard by id.
    pub fn shard(&self, id: usize) -> &ArrayShard {
        &self.inner.shards[id]
    }

    /// Routes every drive's trace events (and the coordinator's own
    /// `Mark` events) into `tracer`. The first call wins.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        for shard in &self.inner.shards {
            shard.ssd.attach_tracer(tracer);
        }
        let _ = self.inner.trace.set(tracer.clone());
    }

    /// Registers every drive plus the coordinator's own counters in
    /// `registry`. The first call wins.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        for shard in &self.inner.shards {
            shard.ssd.attach_metrics(registry);
        }
        let _ = self.inner.metrics.set(registry.clone());
    }

    /// Attaches the query profiler to every drive's datapath, so NAND,
    /// bus, pattern-matcher, and core occupancy on any shard records
    /// against the querying fiber's span context. Pass `sim.qprof()`
    /// after `sim.enable_qprof()`. The first call per drive wins.
    pub fn attach_qprof(&self, prof: &QueryProfiler) {
        for shard in &self.inner.shards {
            shard.ssd.attach_qprof(prof);
        }
    }

    /// Arms every drive with one shared fault plan: all per-drive sites
    /// plus the coordinator's whole-drive-loss site draw from `plan`.
    /// The first call wins.
    pub fn attach_fault_plan(&self, plan: &FaultPlan) {
        for shard in &self.inner.shards {
            shard.ssd.attach_fault_plan(plan);
        }
        let _ = self.inner.fault.set(plan.clone());
    }

    /// The armed fault plan, or [`FaultPlan::none`].
    pub fn fault_plan(&self) -> FaultPlan {
        self.inner
            .fault
            .get()
            .cloned()
            .unwrap_or_else(FaultPlan::none)
    }

    /// Scatters `job` across every shard as concurrent fibers and gathers
    /// the per-shard item streams through an ordered merge port.
    ///
    /// `job` runs once per shard on its own fiber, streaming items into
    /// its [`MergeTx`] lane; on success it must NOT close the lane (the
    /// coordinator does). A job error, an SSDlet failure surfaced as a
    /// job error, or a whole-drive loss (armed via
    /// [`FaultConfig::drive_losses`]) discards the shard's partial output
    /// and re-scatters that shard to `fallback` on the calling fiber —
    /// so the returned per-shard item lists are byte-identical to a
    /// fault-free run.
    ///
    /// Silent losses are detected with the plan's `host_timeout`; arming
    /// `drive_losses` without a `host_timeout` panics (the loss would
    /// otherwise hang the gather forever).
    ///
    /// [`FaultConfig::drive_losses`]: biscuit_sim::fault::FaultConfig::drive_losses
    ///
    /// # Errors
    ///
    /// Propagates the first `fallback` error, after the merge completed.
    ///
    /// # Panics
    ///
    /// Panics when a drive loss fires while the plan has no
    /// `host_timeout`.
    pub fn scatter<T, E, J, F>(
        &self,
        ctx: &Ctx,
        name: &str,
        job: J,
        mut fallback: F,
    ) -> Result<Vec<ShardResult<T>>, E>
    where
        T: Send + 'static,
        J: Fn(&Ctx, &ArrayShard, &MergeTx<T>) -> Result<(), ShardFailure> + Send + Sync + 'static,
        F: FnMut(&Ctx, &ArrayShard) -> Result<Vec<T>, E>,
    {
        let n = self.len();
        let plan = self.fault_plan();
        let loss = plan.drive_loss(n);
        let timeout = plan.host_timeout();
        assert!(
            loss.is_none() || timeout.is_some(),
            "drive_losses armed without host_timeout: the gather could hang forever"
        );
        self.count("array_scatters_total");
        self.mark(ctx, "array_scatter", format!("{name} over {n} shards"));
        let (txs, mut rx) = merge_channel::<T>(n, self.inner.cfg.merge_capacity);
        let job = Arc::new(job);
        let failed: Arc<Vec<AtomicBool>> =
            Arc::new((0..n).map(|_| AtomicBool::new(false)).collect());
        for shard in self.shards() {
            let i = shard.id;
            let tx = txs[i].clone();
            let job = Arc::clone(&job);
            let shard = shard.clone();
            let failed = Arc::clone(&failed);
            let plan = plan.clone();
            let loss_here = loss.filter(|l| l.shard == i);
            ctx.spawn(format!("{name}-shard{i}"), move |fctx| {
                if let Some(l) = loss_here {
                    match l.phase {
                        DriveLossPhase::MidScatter => {
                            // The drive dies before touching the job: no
                            // items, and — crucially — no close.
                            plan.record_injected(fctx.now(), FaultSite::Drive, "mid-scatter");
                            return;
                        }
                        DriveLossPhase::MidGather => {
                            plan.record_injected(fctx.now(), FaultSite::Drive, "mid-gather");
                            tx.silence_after(l.items);
                        }
                    }
                }
                match job(fctx, &shard, &tx) {
                    Ok(()) => tx.close(fctx),
                    Err(_) => {
                        failed[i].store(true, Ordering::Relaxed);
                        tx.close(fctx);
                    }
                }
            });
        }
        drop(txs);
        // Gather: merge in canonical order; a lane silent past the
        // deadline is a lost drive. The whole gather window is one
        // HostMerge span of the caller's query (if any); the profile
        // sweep yields the overlap to the device spans that actually
        // ran inside it, leaving only true merge time attributed here.
        let qp = ctx.qprof().clone();
        let gather_start = ctx.now();
        let mut out: Vec<ShardResult<T>> = (0..n)
            .map(|shard| ShardResult {
                shard,
                items: Vec::new(),
                recovered: false,
            })
            .collect();
        let mut lost = vec![false; n];
        loop {
            let next = match timeout {
                Some(t) => match rx.next_deadline(ctx, t) {
                    Ok(next) => next,
                    Err(MergeLag { shard }) => {
                        plan.record_failed(ctx.now(), FaultSite::Drive, "gather_timeout");
                        self.mark(ctx, "array_shard_lost", format!("{name} shard {shard}"));
                        lost[shard] = true;
                        rx.abandon(ctx, shard);
                        continue;
                    }
                },
                None => rx.next(ctx),
            };
            match next {
                Some((shard, _seq, item)) => out[shard].items.push(item),
                None => break,
            }
        }
        qp.record(Stage::HostMerge, gather_start, ctx.now(), 0, 0);
        for (i, f) in failed.iter().enumerate() {
            if f.load(Ordering::Relaxed) {
                lost[i] = true;
            }
        }
        // Re-scatter every lost shard to the host-side fallback, in shard
        // order, discarding partial device output. Each fallback runs as a
        // "host_fallback" phase of the caller's query, so its spans stay
        // causally inside the query even though the device path was lost.
        for (i, was_lost) in lost.iter().enumerate() {
            if !*was_lost {
                continue;
            }
            self.count("array_rescatters_total");
            let parent = qp.current();
            let phase = parent.map(|sc| qp.child(sc, "host_fallback"));
            if phase.is_some() {
                qp.adopt(ctx, phase);
            }
            let fb_start = ctx.now();
            let recovered = fallback(ctx, &self.inner.shards[i]);
            if let Some(p) = phase {
                qp.record_for(p, Stage::HostCompute, fb_start, ctx.now(), 0, 0);
                qp.adopt(ctx, parent);
            }
            out[i].items = recovered?;
            out[i].recovered = true;
            plan.record_recovered(ctx.now(), FaultSite::Drive, "conv_rescatter");
            self.mark(ctx, "array_shard_recovered", format!("{name} shard {i}"));
        }
        Ok(out)
    }

    fn count(&self, name: &'static str) {
        if let Some(reg) = self.inner.metrics.get() {
            if reg.is_enabled() {
                reg.counter(name, &[]).inc();
            }
        }
    }

    fn mark(&self, ctx: &Ctx, name: &'static str, detail: String) {
        if let Some(tracer) = self.inner.trace.get() {
            tracer.emit(|| TraceEvent::Mark {
                at: ctx.now(),
                name: Arc::from(name),
                detail: Arc::from(detail.as_str()),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrent query scheduler
// ---------------------------------------------------------------------------

/// Knobs for [`QueryScheduler`].
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Independent submit queues ("users") served round-robin.
    pub users: usize,
    /// Maximum queries running concurrently over the array (admission
    /// control).
    pub max_inflight: usize,
    /// Per-user submit-queue capacity; a user submitting faster than the
    /// array drains blocks here (backpressure).
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            users: 1,
            max_inflight: 4,
            queue_capacity: 8,
        }
    }
}

type Job = Box<dyn FnOnce(&Ctx) + Send + 'static>;

/// A submitted query waiting in its user's queue: the job plus the
/// observability identity minted at submission time.
struct Submitted {
    job: Job,
    user: usize,
    at: SimTime,
    span: Option<SpanContext>,
}

struct SchedInner {
    queues: Vec<SimQueue<Submitted>>,
    admit: Semaphore,
    work: WaitQueue,
    done: WaitQueue,
    submitted: AtomicU64,
    completed: AtomicU64,
    closed: AtomicBool,
    next_query: AtomicU64,
    metrics: OnceLock<MetricsRegistry>,
}

impl SchedInner {
    fn count(&self, name: &'static str) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.counter(name, &[]).inc();
            }
        }
    }

    fn inflight_add(&self, delta: i64) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.gauge("array_sched_inflight", &[]).add(delta);
            }
        }
    }

    /// Feeds one query's end-to-end latency (submit to completion) into
    /// the per-tenant SLO histogram `array_query_latency_ps{user=N}` —
    /// p50/p99/p99.9 come out of the registry's summary export.
    fn observe_latency(&self, user: usize, latency_ps: u64) {
        if let Some(reg) = self.metrics.get() {
            if reg.is_enabled() {
                reg.histogram("array_query_latency_ps", &[("user", &user.to_string())])
                    .record(latency_ps);
            }
        }
    }
}

/// Fair, admission-controlled scheduler for concurrent queries over an
/// [`SsdArray`] (cheaply cloneable).
///
/// Submitted jobs are arbitrary closures — typically a
/// [`SsdArray::scatter`] plus result handling — so the scheduler is
/// oblivious to query shape. Dispatch order is deterministic: the
/// round-robin cursor over user queues plus the admission semaphore are
/// driven entirely by the DES kernel's event order.
pub struct QueryScheduler {
    inner: Arc<SchedInner>,
}

impl Clone for QueryScheduler {
    fn clone(&self) -> Self {
        QueryScheduler {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl std::fmt::Debug for QueryScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryScheduler")
            .field("users", &self.inner.queues.len())
            .field("submitted", &self.inner.submitted.load(Ordering::Relaxed))
            .field("completed", &self.inner.completed.load(Ordering::Relaxed))
            .finish()
    }
}

impl QueryScheduler {
    /// Builds a scheduler (not yet dispatching; call
    /// [`QueryScheduler::start`] from a fiber).
    ///
    /// # Panics
    ///
    /// Panics if `users`, `max_inflight`, or `queue_capacity` is zero.
    pub fn new(cfg: SchedulerConfig) -> QueryScheduler {
        assert!(cfg.users > 0, "scheduler needs at least one user queue");
        assert!(cfg.max_inflight > 0, "max_inflight must be positive");
        QueryScheduler {
            inner: Arc::new(SchedInner {
                queues: (0..cfg.users)
                    .map(|_| SimQueue::new(cfg.queue_capacity))
                    .collect(),
                admit: Semaphore::new(cfg.max_inflight),
                work: WaitQueue::new(),
                done: WaitQueue::new(),
                submitted: AtomicU64::new(0),
                completed: AtomicU64::new(0),
                closed: AtomicBool::new(false),
                next_query: AtomicU64::new(0),
                metrics: OnceLock::new(),
            }),
        }
    }

    /// Registers the scheduler's counters, the in-flight gauge, and every
    /// user queue's depth gauge (`queue=sched.user<i>`) in `registry`.
    /// The first call wins.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        for (i, q) in self.inner.queues.iter().enumerate() {
            q.set_metrics(registry, &format!("sched.user{i}"));
        }
        let _ = self.inner.metrics.set(registry.clone());
    }

    /// Spawns the dispatcher fiber. Call once.
    pub fn start(&self, ctx: &Ctx) {
        let inner = Arc::clone(&self.inner);
        ctx.spawn("sched-dispatch", move |dctx| dispatch_loop(&inner, dctx));
    }

    /// Enqueues `job` on `user`'s submit queue, blocking in virtual time
    /// while the queue is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics when called after [`QueryScheduler::close`].
    pub fn submit(&self, ctx: &Ctx, user: usize, job: impl FnOnce(&Ctx) + Send + 'static) {
        self.inner.submitted.fetch_add(1, Ordering::Relaxed);
        self.inner.count("array_sched_submitted_total");
        // Mint the query's causal identity at submission: queue wait,
        // admission, and execution all happen under this context. The
        // submitting fiber itself does none of the query's work, so its
        // own context is cleared right away.
        let qp = ctx.qprof();
        let span = qp.begin_query(ctx, user as u32);
        if span.is_some() {
            qp.adopt(ctx, None);
        }
        let sub = Submitted {
            job: Box::new(job),
            user,
            at: ctx.now(),
            span,
        };
        if self.inner.queues[user].push(ctx, sub).is_err() {
            panic!("submit on a closed scheduler");
        }
        self.inner.work.notify_all(ctx);
    }

    /// Closes all submit queues; the dispatcher drains what is buffered
    /// and then exits.
    pub fn close(&self, ctx: &Ctx) {
        self.inner.closed.store(true, Ordering::Relaxed);
        for q in &self.inner.queues {
            q.close(ctx);
        }
        self.inner.work.notify_all(ctx);
    }

    /// Blocks in virtual time until at least `n` jobs completed.
    pub fn wait_completed(&self, ctx: &Ctx, n: u64) {
        while self.inner.completed.load(Ordering::Relaxed) < n {
            self.inner.done.wait(ctx);
        }
    }

    /// Jobs submitted so far.
    pub fn submitted(&self) -> u64 {
        self.inner.submitted.load(Ordering::Relaxed)
    }

    /// Jobs completed so far.
    pub fn completed(&self) -> u64 {
        self.inner.completed.load(Ordering::Relaxed)
    }
}

fn dispatch_loop(inner: &Arc<SchedInner>, ctx: &Ctx) {
    let users = inner.queues.len();
    let mut cursor = 0usize;
    loop {
        // One fair round-robin sweep over the user queues. try_pop never
        // yields, so the sweep plus the wait below is atomic with respect
        // to other fibers — no lost wakeups.
        let mut job = None;
        let mut all_drained = true;
        for k in 0..users {
            let u = (cursor + k) % users;
            match inner.queues[u].try_pop(ctx) {
                Ok(Some(j)) => {
                    cursor = (u + 1) % users;
                    job = Some(j);
                    break;
                }
                Ok(None) => {}
                Err(_) => all_drained = false,
            }
        }
        match job {
            Some(Submitted {
                job,
                user,
                at,
                span,
            }) => {
                inner.admit.acquire(ctx);
                inner.count("array_sched_admitted_total");
                inner.inflight_add(1);
                let qid = inner.next_query.fetch_add(1, Ordering::Relaxed);
                let inner = Arc::clone(inner);
                ctx.spawn(format!("query-{qid}"), move |qctx| {
                    let qp = qctx.qprof().clone();
                    if let Some(sc) = span {
                        // The query fiber does the work: adopt the context
                        // minted at submit and close the loop on how long
                        // the query sat queued and awaiting admission.
                        qp.adopt(qctx, Some(sc));
                        qp.record(Stage::QueueWait, at, qctx.now(), 0, 0);
                    }
                    job(qctx);
                    inner.observe_latency(user, (qctx.now() - at).as_ps());
                    if let Some(sc) = span {
                        qp.end_query(qctx, sc);
                    }
                    inner.inflight_add(-1);
                    inner.admit.release(qctx);
                    inner.completed.fetch_add(1, Ordering::Relaxed);
                    inner.count("array_sched_completed_total");
                    inner.done.notify_all(qctx);
                });
            }
            None if inner.closed.load(Ordering::Relaxed) && all_drained => break,
            None => inner.work.wait(ctx),
        }
    }
}
