//! The conventional ("Conv") host I/O path: NVMe reads over the PCIe link.
//!
//! This is the baseline every Biscuit experiment compares against. A read
//! pays, in order: host submission (driver + doorbell, inflated by memory
//! contention), device command handling, the internal flash read, the DMA
//! over the 3.2 GB/s link (per page, pipelined with the flash reads), and
//! host completion processing. Synchronous reads issue one request at a
//! time; asynchronous reads keep a queue-depth window in flight — the two
//! curves of Fig. 7.
//!
//! The Conv path shares its fault surface with the offload path: a
//! [`biscuit_sim::fault::FaultPlan`] armed on the device and link (via
//! `Ssd::attach_fault_plan` or directly) injects NAND read-retries,
//! bad-block retirement, core stalls, and link replays into these reads
//! too. All of those recoveries are data-transparent — only latency
//! changes — which the tests below pin down.

use std::sync::Arc;

use biscuit_fs::{File, FsError, FsResult};
use biscuit_proto::HostLink;
use biscuit_sim::fuse::{ChainDesc, StageKind};
use biscuit_sim::qprof::Stage;
use biscuit_sim::time::SimTime;
use biscuit_sim::Ctx;
use biscuit_ssd::SsdDevice;

use crate::config::{HostConfig, HostLoad};

/// The Conv read path, bound to a device and its link.
#[derive(Debug, Clone)]
pub struct ConvIo {
    device: Arc<SsdDevice>,
    link: Arc<HostLink>,
    cfg: HostConfig,
}

impl ConvIo {
    /// Creates a Conv I/O path over the given device and link.
    pub fn new(device: Arc<SsdDevice>, link: Arc<HostLink>, cfg: HostConfig) -> Self {
        ConvIo { device, link, cfg }
    }

    /// The host configuration in use.
    pub fn config(&self) -> &HostConfig {
        &self.cfg
    }

    /// The link this path rides.
    pub fn link(&self) -> &Arc<HostLink> {
        &self.link
    }

    /// The device behind the link.
    pub fn device(&self) -> &Arc<SsdDevice> {
        &self.device
    }

    fn charge_host(&self, ctx: &Ctx, base: biscuit_sim::time::SimDuration, load: HostLoad) {
        let scaled = biscuit_sim::time::SimDuration::from_secs_f64(
            base.as_secs_f64() * load.latency_slowdown(&self.cfg),
        );
        let t0 = ctx.now();
        ctx.advance(scaled);
        ctx.qprof().record(Stage::HostCompute, t0, ctx.now(), 0, 0);
    }

    /// Issues one read request for `(lpn, bytes)` page spans and returns
    /// `(completion, data)` without waiting: internal page reads pipeline
    /// into per-page DMAs over the shared link. The NAND/bus/DMA stages are
    /// recorded into `chain` (de-fused if an ECC retry was drawn) so the
    /// caller completes the request with [`Ctx::run_chain`].
    fn issue_request(
        &self,
        ctx: &Ctx,
        spans: &[(u64, usize)],
        chain: &mut ChainDesc,
    ) -> FsResult<(SimTime, Vec<biscuit_ssd::PageBuf>)> {
        let dev_start = self.device.charge_request_overhead(ctx.now());
        let epoch = self.device.fault_epoch();
        let mut end = dev_start;
        let mut pages = Vec::with_capacity(spans.len());
        for &(lpn, bytes) in spans {
            let (internal_done, buf) = self
                .device
                .enqueue_read_chained(dev_start, lpn, bytes, Some(&mut *chain))
                .map_err(FsError::Device)?;
            let dma_done = self.link.enqueue_dma_to_host(internal_done, bytes as u64);
            ctx.qprof()
                .record(Stage::Link, internal_done, dma_done, bytes as u64, 0);
            chain.push(StageKind::LinkDma, internal_done, dma_done);
            end = end.max(dma_done);
            pages.push(buf);
        }
        if self.device.fault_epoch() != epoch {
            chain.defuse();
        }
        chain.set_completion(end);
        Ok((end, pages))
    }

    /// Splits a byte range into per-page `(lpn, bytes_touched)` spans.
    fn spans_for(&self, file: &File, offset: u64, len: u64) -> FsResult<Vec<(u64, usize)>> {
        let page_size = self.device.config().page_size as u64;
        let lpns = file.lpns_for_range(offset, len)?;
        let mut spans = Vec::with_capacity(lpns.len());
        let mut pos = offset;
        let end = offset + len;
        for lpn in lpns {
            let page_end = (pos / page_size + 1) * page_size;
            let take = page_end.min(end) - pos;
            spans.push((lpn, take as usize));
            pos += take;
        }
        Ok(spans)
    }

    /// Synchronous `pread`: one request covering the byte range, blocking
    /// until the data is in host memory (paper Table III's Conv path).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for out-of-range or device failures.
    pub fn read(
        &self,
        ctx: &Ctx,
        file: &File,
        offset: u64,
        len: u64,
        load: HostLoad,
    ) -> FsResult<Vec<u8>> {
        let link_cfg = self.link.config().clone();
        let spans = self.spans_for(file, offset, len)?;
        let slot = self.link.acquire_slot(ctx);
        self.charge_host(ctx, link_cfg.host_submit, load);
        ctx.advance(link_cfg.device_command);
        let mut chain = ChainDesc::new();
        let (_, pages) = self.issue_request(ctx, &spans, &mut chain)?;
        ctx.run_chain(chain);
        self.charge_host(ctx, link_cfg.host_complete, load);
        self.link.release_slot(ctx, slot);
        self.device
            .count_copy(biscuit_ssd::CopySite::HostAssemble, len);
        Ok(slice_pages(
            &pages,
            offset,
            len,
            self.device.config().page_size as u64,
        ))
    }

    /// Asynchronous read: requests of `request_bytes` with up to
    /// `queue_depth` outstanding (Fig. 7's right panel, Conv series).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for out-of-range or device failures.
    ///
    /// # Panics
    ///
    /// Panics if `request_bytes` or `queue_depth` is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the flat pread-style API
    pub fn read_async(
        &self,
        ctx: &Ctx,
        file: &File,
        offset: u64,
        len: u64,
        request_bytes: u64,
        queue_depth: usize,
        load: HostLoad,
    ) -> FsResult<Vec<u8>> {
        assert!(request_bytes > 0 && queue_depth > 0);
        let link_cfg = self.link.config().clone();
        let page_size = self.device.config().page_size as u64;
        let spans = self.spans_for(file, offset, len)?;
        let pages_per_request = (request_bytes / page_size).max(1) as usize;
        let mut inflight: std::collections::VecDeque<ChainDesc> = Default::default();
        let mut all_pages = Vec::with_capacity(spans.len());
        for chunk in spans.chunks(pages_per_request) {
            if inflight.len() >= queue_depth {
                let earliest = inflight.pop_front().expect("nonempty");
                ctx.run_chain(earliest);
                self.charge_host(ctx, link_cfg.host_complete, load);
            }
            self.charge_host(ctx, link_cfg.host_submit, load);
            ctx.advance(link_cfg.device_command);
            let mut chain = ChainDesc::new();
            let (_, pages) = self.issue_request(ctx, chunk, &mut chain)?;
            inflight.push_back(chain);
            all_pages.extend(pages);
        }
        while let Some(chain) = inflight.pop_front() {
            ctx.run_chain(chain);
            self.charge_host(ctx, link_cfg.host_complete, load);
        }
        self.device
            .count_copy(biscuit_ssd::CopySite::HostAssemble, len);
        Ok(slice_pages(&all_pages, offset, len, page_size))
    }
}

impl ConvIo {
    /// Asynchronous whole-page read of `page_count` file pages starting at
    /// file page `page_start`, returning the raw page buffers without
    /// copying them into one contiguous allocation (table-scan fast path).
    ///
    /// # Errors
    ///
    /// Returns [`FsError`] for out-of-range or device failures.
    ///
    /// # Panics
    ///
    /// Panics if `request_pages` or `queue_depth` is zero.
    #[allow(clippy::too_many_arguments)] // mirrors the flat pread-style API
    pub fn read_file_pages_async(
        &self,
        ctx: &Ctx,
        file: &File,
        page_start: u64,
        page_count: u64,
        request_pages: usize,
        queue_depth: usize,
        load: HostLoad,
    ) -> FsResult<Vec<biscuit_ssd::PageBuf>> {
        assert!(request_pages > 0 && queue_depth > 0);
        let link_cfg = self.link.config().clone();
        let page_size = self.device.config().page_size;
        let byte_len = page_count * page_size as u64;
        let lpns = file.lpns_for_range(page_start * page_size as u64, byte_len)?;
        let spans: Vec<(u64, usize)> = lpns.into_iter().map(|l| (l, page_size)).collect();
        let mut inflight: std::collections::VecDeque<ChainDesc> = Default::default();
        let mut all_pages = Vec::with_capacity(spans.len());
        for chunk in spans.chunks(request_pages) {
            if inflight.len() >= queue_depth {
                let earliest = inflight.pop_front().expect("nonempty");
                ctx.run_chain(earliest);
                self.charge_host(ctx, link_cfg.host_complete, load);
            }
            self.charge_host(ctx, link_cfg.host_submit, load);
            ctx.advance(link_cfg.device_command);
            let mut chain = ChainDesc::new();
            let (_, pages) = self.issue_request(ctx, chunk, &mut chain)?;
            inflight.push_back(chain);
            all_pages.extend(pages);
        }
        while let Some(chain) = inflight.pop_front() {
            ctx.run_chain(chain);
            self.charge_host(ctx, link_cfg.host_complete, load);
        }
        Ok(all_pages)
    }
}

fn slice_pages(pages: &[biscuit_ssd::PageBuf], offset: u64, len: u64, page_size: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len as usize);
    let head = offset % page_size;
    let mut remaining = len;
    for (i, page) in pages.iter().enumerate() {
        let start = if i == 0 { head as usize } else { 0 };
        let take = ((page_size as usize - start) as u64).min(remaining) as usize;
        out.extend_from_slice(&page[start..start + take]);
        remaining -= take as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_fs::{Fs, Mode};
    use biscuit_proto::LinkConfig;
    use biscuit_sim::Simulation;
    use biscuit_ssd::SsdConfig;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn setup() -> (Fs, ConvIo) {
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 256 << 20,
            ..SsdConfig::paper_default()
        }));
        let fs = Fs::format(Arc::clone(&dev));
        let link = Arc::new(HostLink::new(LinkConfig::pcie_gen3_x4()));
        let io = ConvIo::new(dev, link, HostConfig::paper_default());
        (fs, io)
    }

    #[test]
    fn conv_4k_read_latency_matches_table3() {
        let (fs, io) = setup();
        fs.create("f").unwrap();
        fs.append_untimed("f", &vec![7u8; 16 << 10]).unwrap();
        let f = fs.open("f", Mode::ReadOnly).unwrap();
        let sim = Simulation::new(0);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("r", move |ctx| {
            let start = ctx.now();
            let data = io.read(ctx, &f, 0, 4096, HostLoad::IDLE).unwrap();
            assert_eq!(data.len(), 4096);
            t2.store((ctx.now() - start).as_nanos(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let us = t.load(Ordering::SeqCst) as f64 / 1000.0;
        assert!(
            (88.0..92.5).contains(&us),
            "Conv 4KiB read took {us}us, paper: 90.0us"
        );
    }

    #[test]
    fn conv_bandwidth_capped_by_link() {
        let (fs, io) = setup();
        fs.create("big").unwrap();
        let total: u64 = 128 << 20;
        // Load via device bulk API to keep setup fast.
        fs.append_untimed("big", &vec![1u8; total as usize])
            .unwrap();
        let f = fs.open("big", Mode::ReadOnly).unwrap();
        let sim = Simulation::new(0);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("r", move |ctx| {
            let start = ctx.now();
            io.read_async(ctx, &f, 0, total, 1 << 20, 32, HostLoad::IDLE)
                .unwrap();
            t2.store((ctx.now() - start).as_nanos(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let secs = t.load(Ordering::SeqCst) as f64 / 1e9;
        let gbps = total as f64 / secs / 1e9;
        assert!(
            (2.9..3.25).contains(&gbps),
            "Conv async bandwidth {gbps} GB/s should approach but not exceed 3.2"
        );
    }

    #[test]
    fn load_inflates_per_request_costs() {
        let (fs, io) = setup();
        fs.create("f").unwrap();
        fs.append_untimed("f", &vec![0u8; 16 << 10]).unwrap();
        let f = fs.open("f", Mode::ReadOnly).unwrap();
        let sim = Simulation::new(0);
        let times = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let times2 = Arc::clone(&times);
        sim.spawn("r", move |ctx| {
            for threads in [0u32, 24] {
                let start = ctx.now();
                io.read(ctx, &f, 0, 4096, HostLoad::new(threads)).unwrap();
                times2.lock().push((ctx.now() - start).as_nanos());
            }
        });
        sim.run().assert_quiescent();
        let times = times.lock();
        assert!(
            times[1] > times[0],
            "loaded read {} should exceed idle read {}",
            times[1],
            times[0]
        );
    }

    #[test]
    fn read_returns_exact_bytes() {
        let (fs, io) = setup();
        fs.create("f").unwrap();
        let data: Vec<u8> = (0..100_000u32).map(|i| (i % 239) as u8).collect();
        fs.append_untimed("f", &data).unwrap();
        let f = fs.open("f", Mode::ReadOnly).unwrap();
        let sim = Simulation::new(0);
        sim.spawn("r", move |ctx| {
            let got = io.read(ctx, &f, 777, 50_000, HostLoad::IDLE).unwrap();
            assert_eq!(&got[..], &data[777..777 + 50_000]);
            let got2 = io
                .read_async(ctx, &f, 777, 50_000, 32 << 10, 8, HostLoad::IDLE)
                .unwrap();
            assert_eq!(got, got2);
        });
        sim.run().assert_quiescent();
    }

    /// Injected NAND and link faults slow a Conv read down but never change
    /// the bytes it returns.
    #[test]
    fn faulted_conv_read_is_slower_but_data_identical() {
        use biscuit_sim::fault::{FaultConfig, FaultPlan};

        let run = |plan: Option<FaultPlan>| -> (Vec<u8>, u64) {
            let (fs, io) = setup();
            if let Some(p) = &plan {
                io.device().set_fault_plan(p);
                io.link().set_fault_plan(p);
            }
            fs.create("f").unwrap();
            let data: Vec<u8> = (0..100_000u32).map(|i| (i % 241) as u8).collect();
            fs.append_untimed("f", &data).unwrap();
            let f = fs.open("f", Mode::ReadOnly).unwrap();
            let sim = Simulation::new(0);
            let out = Arc::new(parking_lot::Mutex::new((Vec::new(), 0u64)));
            let o = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                let start = ctx.now();
                let got = io.read(ctx, &f, 0, 100_000, HostLoad::IDLE).unwrap();
                *o.lock() = (got, (ctx.now() - start).as_nanos());
            });
            sim.run().assert_quiescent();
            let r = out.lock().clone();
            r
        };

        let (clean, clean_ns) = run(None);
        let plan = FaultPlan::seeded(
            11,
            FaultConfig {
                nand_read_error_rate: 1.0,
                link_corrupt_rate: 1.0,
                core_stall_rate: 1.0,
                ..FaultConfig::default()
            },
        );
        let (faulty, faulty_ns) = run(Some(plan.clone()));
        assert_eq!(clean, faulty, "recoveries must be data-transparent");
        assert!(
            faulty_ns > clean_ns,
            "retries/replays/stalls must cost time: {faulty_ns} vs {clean_ns}"
        );
        assert!(plan.injected_total() >= 1);
        assert_eq!(plan.recovered_total(), plan.injected_total());
    }
}
