//! Parallel shard fleet: the PDES face of the [`SsdArray`] coordinator.
//!
//! [`crate::array`] runs all N drives inside *one* simulation — N fibers,
//! one kernel, one thread. This module runs each drive inside its *own*
//! simulation ("shard kernel") advanced on its own OS thread via
//! [`biscuit_sim::par::run_fleet`], with the cross-thread
//! [`merge_port`](biscuit_sim::par::merge_port) as the only cross-shard
//! synchronization point. The two regimes answer different questions:
//!
//! - the in-sim array models *virtual-time* behavior (latency, QoS,
//!   drive-loss recovery) of one host coordinating N drives;
//! - the fleet maximizes *wall-clock* simulation throughput for
//!   multi-drive workloads — each drive's event loop gets a real core.
//!
//! ## Determinism contract
//!
//! Each shard kernel is seeded [`shard_seed(seed, i)`] and is the
//! ordinary single-threaded DES kernel, so its trace and metrics exports
//! are pure functions of the seed and workload. The fleet consumes
//! results in canonical merge order and concatenates per-shard exports
//! in shard order, so [`ParMode::Single`] (`BISCUIT_PAR=0`) and every
//! parallel mode produce byte-identical [`FleetReport`] artifacts.
//! `tests/parallel.rs` asserts exactly this, repeatedly, over a 4-drive
//! grep soak; `docs/PARALLEL.md` documents the contract and how to debug
//! a divergence.
//!
//! [`shard_seed(seed, i)`]: biscuit_sim::par::shard_seed
//! [`ParMode::Single`]: biscuit_sim::par::ParMode::Single

use std::sync::Arc;

use biscuit_sim::par::{self, ParConfig, PortTx};
use biscuit_sim::trace::TraceConfig;
use biscuit_sim::{Ctx, SimReport, SimTime, Simulation};

use crate::array::{ArrayShard, SsdArray};

/// Knobs for [`SsdArray::scatter_parallel`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of drives, each in its own shard kernel.
    pub drives: usize,
    /// Fleet seed; shard `i` runs under
    /// [`shard_seed(seed, i)`](biscuit_sim::par::shard_seed).
    pub seed: u64,
    /// Enable per-shard metrics registries (exported in shard order by
    /// [`FleetReport::metrics_json`]).
    pub metrics: bool,
    /// Enable per-shard tracing with this config (exported in shard
    /// order by [`FleetReport::trace_json`]).
    pub trace: Option<TraceConfig>,
    /// Enable per-shard query profiling (exported in shard order by
    /// [`FleetReport::profiles_json`]).
    pub qprof: bool,
    /// Thread policy and lookahead window for the fleet runner.
    pub par: ParConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            drives: 4,
            seed: 0,
            metrics: false,
            trace: None,
            qprof: false,
            par: ParConfig::default(),
        }
    }
}

/// Everything one fleet run produced.
pub struct FleetReport<T> {
    /// `(shard, item)` pairs in canonical merge order — identical for
    /// every thread policy.
    pub items: Vec<(usize, T)>,
    /// Per-shard kernel reports in shard order (trace and metrics
    /// snapshots included when enabled).
    pub reports: Vec<SimReport>,
}

impl<T> std::fmt::Debug for FleetReport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetReport")
            .field("shards", &self.reports.len())
            .field("items", &self.items.len())
            .finish()
    }
}

impl<T> FleetReport<T> {
    /// Total DES wake events processed across all shard kernels.
    pub fn events_processed(&self) -> u64 {
        self.reports.iter().map(|r| r.events_processed).sum()
    }

    /// Latest virtual end time over the shards (they share a time base:
    /// all start at zero).
    pub fn end_time(&self) -> SimTime {
        self.reports
            .iter()
            .map(|r| r.end_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// This shard's items, in its FIFO production order.
    pub fn shard_items(&self, shard: usize) -> impl Iterator<Item = &T> {
        self.items
            .iter()
            .filter(move |(s, _)| *s == shard)
            .map(|(_, item)| item)
    }

    /// Asserts every shard kernel drained with no blocked fibers.
    ///
    /// # Panics
    ///
    /// Panics if any shard ended with blocked fibers.
    pub fn assert_quiescent(&self) {
        for r in &self.reports {
            r.assert_quiescent();
        }
    }

    /// One JSON document holding every shard's Chrome trace in shard
    /// order: `{"shards":[<chrome>,<chrome>,...]}`. Byte-identical for
    /// the same seed across all thread policies — diff two of these to
    /// debug a suspected divergence (see `docs/PARALLEL.md`).
    pub fn trace_json(&self) -> String {
        let mut s = String::from("{\"shards\":[");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.trace.to_chrome_json());
        }
        s.push_str("]}");
        s
    }

    /// One JSON document holding every shard's metrics snapshot in shard
    /// order: `{"shards":[<metrics>,<metrics>,...]}`. Byte-identical for
    /// the same seed across all thread policies and both `BISCUIT_FUSE`
    /// settings: engine-variant meters (dispatch-path counters that
    /// legitimately change with fusion and lookahead windows, see
    /// [`biscuit_sim::fuse::VARIANT_METRICS`]) are excluded here; read
    /// them from the per-shard reports when you want the raw engine view.
    pub fn metrics_json(&self) -> String {
        let mut s = String::from("{\"shards\":[");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(
                &r.metrics
                    .without(biscuit_sim::fuse::VARIANT_METRICS)
                    .to_json(),
            );
        }
        s.push_str("]}");
        s
    }

    /// One JSON document holding every shard's query profiles in shard
    /// order: `{"shards":[<profiles>,<profiles>,...]}`. Each shard kernel
    /// owns its own profiler and assigns query/span ids deterministically,
    /// so this export is byte-identical for the same seed across all
    /// thread policies (`tests/qprof.rs` asserts exactly this).
    pub fn profiles_json(&self) -> String {
        let mut s = String::from("{\"shards\":[");
        for (i, r) in self.reports.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&r.profiles.to_json());
        }
        s.push_str("]}");
        s
    }
}

impl SsdArray {
    /// Scatters `job` across a fleet of shard kernels, one drive per
    /// kernel, each advanced on its own OS thread per `cfg.par` — the
    /// parallel sibling of [`SsdArray::scatter`].
    ///
    /// Because every drive needs to be *born into* its shard kernel (so
    /// its tracer and metrics attach to that kernel's registries, which
    /// are first-call-wins), this is an associated function taking a
    /// `build` closure rather than a method on an existing array:
    /// `build(i, &sim)` must construct a **fresh** [`ArrayShard`] — a
    /// drive not attached to any other simulation — and is called on the
    /// calling thread in shard order. `job(ctx, &shard, &tx)` then runs
    /// as the shard kernel's root fiber; items sent through `tx` come
    /// back in canonical merge order. The lane closes when `job`
    /// returns.
    ///
    /// Fault-plan drive-loss recovery is an in-sim coordinator feature
    /// ([`SsdArray::scatter`]); the fleet path targets fault-free
    /// throughput scaling and performs no recovery.
    ///
    /// # Examples
    ///
    /// ```
    /// use biscuit_core::{CoreConfig, Ssd};
    /// use biscuit_fs::Fs;
    /// use biscuit_host::array::ArrayShard;
    /// use biscuit_host::fleet::FleetConfig;
    /// use biscuit_host::{ConvIo, HostConfig, SsdArray};
    /// use biscuit_ssd::{SsdConfig, SsdDevice};
    /// use std::sync::Arc;
    ///
    /// let cfg = FleetConfig { drives: 2, ..FleetConfig::default() };
    /// let report = SsdArray::scatter_parallel::<u64, _, _>(
    ///     &cfg,
    ///     |i, _sim| {
    ///         let dev = Arc::new(SsdDevice::new(SsdConfig {
    ///             logical_capacity: 16 << 20,
    ///             ..SsdConfig::paper_default()
    ///         }));
    ///         let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    ///         let conv = ConvIo::new(
    ///             Arc::clone(ssd.device()),
    ///             Arc::clone(ssd.link()),
    ///             HostConfig::paper_default(),
    ///         );
    ///         ArrayShard { id: i, ssd, conv }
    ///     },
    ///     |_ctx, shard, tx| tx.send(shard.id as u64),
    /// );
    /// report.assert_quiescent();
    /// assert_eq!(report.items, vec![(0, 0), (1, 1)]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `cfg.drives` is zero, and re-raises the first shard
    /// fiber panic (by shard index, deterministically).
    pub fn scatter_parallel<T, B, J>(cfg: &FleetConfig, mut build: B, job: J) -> FleetReport<T>
    where
        T: Send + 'static,
        B: FnMut(usize, &Simulation) -> ArrayShard,
        J: Fn(&Ctx, &ArrayShard, &PortTx<T>) + Send + Sync + 'static,
    {
        assert!(cfg.drives > 0, "a fleet needs at least one drive");
        let (txs, mut rx) = par::merge_port::<T>(cfg.drives);
        let job = Arc::new(job);
        let mut sims = Vec::with_capacity(cfg.drives);
        for (i, tx) in txs.into_iter().enumerate() {
            let sim = Simulation::new(par::shard_seed(cfg.seed, i));
            if let Some(tc) = &cfg.trace {
                sim.enable_trace(tc.clone());
            }
            if cfg.metrics {
                sim.enable_metrics();
            }
            if cfg.qprof {
                sim.enable_qprof();
            }
            let shard = build(i, &sim);
            // First-call-wins attach: the drive must be fresh, so these
            // bind it to ITS kernel's registries, not a stale one's.
            if cfg.trace.is_some() {
                shard.ssd.attach_tracer(sim.tracer());
            }
            if cfg.metrics {
                shard.ssd.attach_metrics(sim.metrics());
            }
            if cfg.qprof {
                shard.ssd.attach_qprof(sim.qprof());
            }
            let job = Arc::clone(&job);
            sim.spawn(format!("fleet-shard{i}"), move |ctx| {
                job(ctx, &shard, &tx);
                tx.close();
            });
            sims.push(sim);
        }
        let (reports, items) = par::run_fleet(sims, &cfg.par, move || {
            let mut items = Vec::new();
            while let Some(pair) = rx.recv() {
                items.push(pair);
            }
            items
        });
        FleetReport { items, reports }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_core::{CoreConfig, Ssd};
    use biscuit_fs::Fs;
    use biscuit_sim::par::ParMode;
    use biscuit_sim::time::SimDuration;
    use biscuit_ssd::{SsdConfig, SsdDevice};

    use crate::config::HostConfig;
    use crate::io::ConvIo;

    fn build_shard(i: usize, _sim: &Simulation) -> ArrayShard {
        let dev = Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 16 << 20,
            ..SsdConfig::paper_default()
        }));
        let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
        let conv = ConvIo::new(
            Arc::clone(ssd.device()),
            Arc::clone(ssd.link()),
            HostConfig::paper_default(),
        );
        ArrayShard { id: i, ssd, conv }
    }

    fn soak(mode: ParMode) -> (Vec<(usize, u64)>, String, u64) {
        let cfg = FleetConfig {
            drives: 3,
            seed: 11,
            metrics: true,
            par: ParConfig {
                mode,
                lookahead: Some(SimDuration::from_micros(50)),
            },
            ..FleetConfig::default()
        };
        let report =
            SsdArray::scatter_parallel::<u64, _, _>(&cfg, build_shard, |ctx, shard, tx| {
                for k in 0..4u64 {
                    ctx.sleep(SimDuration::from_micros(10 + shard.id as u64));
                    tx.send(shard.id as u64 * 100 + k);
                }
            });
        report.assert_quiescent();
        (
            report.items.clone(),
            report.metrics_json(),
            report.events_processed(),
        )
    }

    #[test]
    fn parallel_matches_single_threaded_exports() {
        let single = soak(ParMode::Single);
        for mode in [ParMode::PerShard, ParMode::Threads(2)] {
            let par = soak(mode);
            assert_eq!(par.0, single.0, "{mode:?} merged items");
            assert_eq!(par.1, single.1, "{mode:?} metrics export");
            assert_eq!(par.2, single.2, "{mode:?} event count");
        }
    }

    #[test]
    fn shard_items_filters_by_lane() {
        let (items, _, _) = soak(ParMode::Single);
        let report = FleetReport {
            items,
            reports: Vec::new(),
        };
        let lane1: Vec<u64> = report.shard_items(1).copied().collect();
        assert_eq!(lane1, vec![100, 101, 102, 103]);
    }
}
