//! Seeded, deterministic traffic generation for millions-of-users soaks.
//!
//! The paper measures single-stream TPC-H offload; a deployed array
//! instead sees *mixed* analytics traffic from a heavy-tailed user
//! population with pronounced diurnal load swings ("Identifying the
//! potential of Near Data Computing for Apache Spark", PAPERS.md). This
//! module generates that traffic shape reproducibly:
//!
//! - **Arrival processes.** [`ArrivalProcess::OpenLoop`] draws
//!   exponential interarrival gaps around a mean — arrivals do not slow
//!   down when the array backs up, so overload must be *shed*.
//!   [`ArrivalProcess::ClosedLoop`] gives every tenant a think-time loop
//!   — at most one outstanding query per tenant, so overload turns into
//!   *backpressure* instead.
//! - **Tenant popularity.** Queries are attributed to tenants by a
//!   Zipf(θ) draw over the tenant population (tenant 0 hottest). The
//!   first `tenants` arrivals sweep the population round-robin so every
//!   tenant — however cold — offers at least one query; this is what
//!   makes "zero starved tenants" a meaningful soak assertion.
//! - **Diurnal phases.** A repeating cycle of [`DiurnalPhase`]s scales
//!   the arrival rate (e.g. trough → daytime → burst), compressing a
//!   day's load curve into simulated milliseconds.
//! - **Query mix.** Each arrival is a [`QueryKind`] drawn from a
//!   weighted [`QueryMix`] with a per-kind WFQ cost (plus seeded
//!   jitter), so schedulers see heterogeneous service demands.
//!
//! Everything derives from one [SplitMix64](WorkloadRng) stream seeded
//! by [`WorkloadConfig::seed`]: the same seed yields byte-identical
//! arrival sequences, and — because the DES kernel is deterministic —
//! byte-identical scheduler exports, across repeat runs and
//! `BISCUIT_PAR` thread policies. See `docs/QOS.md` for a walkthrough.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use biscuit_sim::queue::SimQueue;
use biscuit_sim::{Ctx, SimDuration, SimTime};

use crate::array::QueryScheduler;

/// SplitMix64: the workload generator's seeded PRNG. Small, fast, and
/// stable across platforms — the arrival stream is part of the repo's
/// determinism contract, so the generator is pinned here rather than
/// borrowed from a crate that may change algorithms.
#[derive(Debug, Clone)]
pub struct WorkloadRng {
    state: u64,
}

impl WorkloadRng {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        WorkloadRng { state: seed }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// An exponential draw with the given mean, in picoseconds
    /// (inverse-CDF; the uniform draw is floored away from zero so the
    /// log never overflows).
    pub fn exp_ps(&mut self, mean_ps: f64) -> SimDuration {
        let u = self.next_f64().max(1e-12);
        SimDuration::from_ps((-mean_ps * u.ln()) as u64)
    }
}

/// One kind of query in the mix, mirroring the workloads the repo
/// already reproduces from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Sharded pattern scan (the paper's string-search macrobenchmark).
    Grep,
    /// TPC-H Q1-shaped scan + aggregate.
    TpchQ1,
    /// TPC-H Q6-shaped filtered aggregate.
    TpchQ6,
    /// Latency-bound pointer chase (graph traversal).
    PointerChase,
}

impl QueryKind {
    /// Baseline WFQ cost units for this kind — roughly proportional to
    /// the pages a query of this shape touches relative to the others.
    pub fn base_cost(self) -> u64 {
        match self {
            QueryKind::Grep => 8,
            QueryKind::TpchQ1 => 12,
            QueryKind::TpchQ6 => 10,
            QueryKind::PointerChase => 3,
        }
    }
}

/// Relative draw weights for the query mix.
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    /// Weight of [`QueryKind::Grep`].
    pub grep: u32,
    /// Weight of [`QueryKind::TpchQ1`].
    pub tpch_q1: u32,
    /// Weight of [`QueryKind::TpchQ6`].
    pub tpch_q6: u32,
    /// Weight of [`QueryKind::PointerChase`].
    pub pointer_chase: u32,
}

impl Default for QueryMix {
    /// Scan-heavy analytics: 8 grep : 4 Q1 : 4 Q6 : 2 pointer-chase.
    fn default() -> Self {
        QueryMix {
            grep: 8,
            tpch_q1: 4,
            tpch_q6: 4,
            pointer_chase: 2,
        }
    }
}

impl QueryMix {
    fn total(&self) -> u64 {
        u64::from(self.grep)
            + u64::from(self.tpch_q1)
            + u64::from(self.tpch_q6)
            + u64::from(self.pointer_chase)
    }

    fn sample(&self, rng: &mut WorkloadRng) -> QueryKind {
        let mut r = rng.next_u64() % self.total();
        for (kind, w) in [
            (QueryKind::Grep, self.grep),
            (QueryKind::TpchQ1, self.tpch_q1),
            (QueryKind::TpchQ6, self.tpch_q6),
            (QueryKind::PointerChase, self.pointer_chase),
        ] {
            if r < u64::from(w) {
                return kind;
            }
            r -= u64::from(w);
        }
        QueryKind::Grep
    }
}

/// One segment of the repeating diurnal load cycle.
#[derive(Debug, Clone, Copy)]
pub struct DiurnalPhase {
    /// How long this phase lasts (virtual time).
    pub dur: SimDuration,
    /// Arrival-rate multiplier while the phase is active (1.0 = the
    /// configured mean rate; >1 is a burst, <1 a trough).
    pub rate_mul: f64,
}

/// How arrivals are paced.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Poisson-like open loop: exponential gaps around
    /// `mean_interarrival`, independent of array state. Drive with
    /// [`drive_open_loop`] (sheds on overload).
    OpenLoop {
        /// Mean gap between consecutive arrivals (before diurnal
        /// scaling).
        mean_interarrival: SimDuration,
    },
    /// Closed loop: each tenant keeps one query outstanding and thinks
    /// for an exponential `mean_think` between completions. Drive with
    /// [`drive_closed_loop`] (backpressures on overload).
    ClosedLoop {
        /// Mean per-tenant think time between a completion and the next
        /// submission.
        mean_think: SimDuration,
    },
}

/// Knobs for [`WorkloadEngine`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// PRNG seed; same seed ⇒ byte-identical arrival stream.
    pub seed: u64,
    /// Tenant population size.
    pub tenants: u32,
    /// Total arrivals to generate.
    pub queries: u64,
    /// Zipf exponent for tenant popularity (0 = uniform; ~1 is the
    /// classic heavy tail).
    pub zipf_theta: f64,
    /// Query-kind mix.
    pub mix: QueryMix,
    /// Arrival pacing.
    pub arrivals: ArrivalProcess,
    /// Repeating diurnal cycle; empty means a flat rate.
    pub phases: Vec<DiurnalPhase>,
}

impl Default for WorkloadConfig {
    /// A small open-loop smoke shape: 64 tenants, 1024 queries,
    /// Zipf(1.1), 50 µs mean interarrival, trough/day/burst cycle.
    fn default() -> Self {
        WorkloadConfig {
            seed: 0x5EED_0008,
            tenants: 64,
            queries: 1024,
            zipf_theta: 1.1,
            mix: QueryMix::default(),
            arrivals: ArrivalProcess::OpenLoop {
                mean_interarrival: SimDuration::from_micros(50),
            },
            phases: vec![
                DiurnalPhase {
                    dur: SimDuration::from_millis(5),
                    rate_mul: 0.4,
                },
                DiurnalPhase {
                    dur: SimDuration::from_millis(10),
                    rate_mul: 1.0,
                },
                DiurnalPhase {
                    dur: SimDuration::from_millis(5),
                    rate_mul: 2.5,
                },
            ],
        }
    }
}

/// One generated arrival.
#[derive(Debug, Clone, Copy)]
pub struct Arrival {
    /// Global arrival index (0-based, in arrival order).
    pub seq: u64,
    /// When the query arrives (virtual time).
    pub at: SimTime,
    /// Which tenant offers it.
    pub tenant: u32,
    /// What shape of query it is.
    pub kind: QueryKind,
    /// WFQ cost units ([`QueryKind::base_cost`] plus seeded jitter).
    pub cost: u64,
}

/// The seeded traffic engine: an iterator-style source of [`Arrival`]s.
#[derive(Debug, Clone)]
pub struct WorkloadEngine {
    cfg: WorkloadConfig,
    rng: WorkloadRng,
    /// Zipf CDF over tenants (normalized, monotone).
    cdf: Vec<f64>,
    cycle_ps: u64,
    emitted: u64,
    clock: SimTime,
}

impl WorkloadEngine {
    /// Builds the engine, precomputing the Zipf CDF.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is zero or the query mix has zero total
    /// weight.
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(cfg.tenants > 0, "workload needs at least one tenant");
        assert!(cfg.mix.total() > 0, "query mix must have positive weight");
        let mut cdf = Vec::with_capacity(cfg.tenants as usize);
        let mut acc = 0.0f64;
        for r in 0..cfg.tenants {
            acc += 1.0 / f64::from(r + 1).powf(cfg.zipf_theta);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        let cycle_ps = cfg.phases.iter().map(|p| p.dur.as_ps()).sum();
        let rng = WorkloadRng::new(cfg.seed);
        WorkloadEngine {
            cfg,
            rng,
            cdf,
            cycle_ps,
            emitted: 0,
            clock: SimTime::ZERO,
        }
    }

    /// The configuration this engine runs.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// Arrivals generated so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Arrivals still to come.
    pub fn remaining(&self) -> u64 {
        self.cfg.queries - self.emitted
    }

    /// The diurnal rate multiplier in effect at `at`.
    pub fn rate_mul(&self, at: SimTime) -> f64 {
        if self.cycle_ps == 0 {
            return 1.0;
        }
        let mut pos = at.as_ps() % self.cycle_ps;
        for ph in &self.cfg.phases {
            if pos < ph.dur.as_ps() {
                return ph.rate_mul;
            }
            pos -= ph.dur.as_ps();
        }
        1.0
    }

    /// Samples the next tenant: a round-robin coverage sweep for the
    /// first `tenants` arrivals (so every tenant offers at least one
    /// query even in a short run), Zipf thereafter.
    fn sample_tenant(&mut self) -> u32 {
        if self.emitted < u64::from(self.cfg.tenants)
            && u64::from(self.cfg.tenants) <= self.cfg.queries
        {
            return self.emitted as u32;
        }
        let u = self.rng.next_f64();
        let idx = self.cdf.partition_point(|&c| c < u);
        idx.min(self.cdf.len() - 1) as u32
    }

    fn make(&mut self, at: SimTime, tenant: u32) -> Arrival {
        let kind = self.cfg.mix.sample(&mut self.rng);
        let base = kind.base_cost();
        let cost = base + self.rng.next_u64() % (base / 2 + 1);
        let seq = self.emitted;
        self.emitted += 1;
        Arrival {
            seq,
            at,
            tenant,
            kind,
            cost,
        }
    }

    /// The next open-loop arrival, or `None` when the configured query
    /// count is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the engine was configured closed-loop — use
    /// [`WorkloadEngine::initial`] / [`WorkloadEngine::resubmit`] (or
    /// just [`drive_closed_loop`]) there.
    pub fn next_arrival(&mut self) -> Option<Arrival> {
        let ArrivalProcess::OpenLoop { mean_interarrival } = self.cfg.arrivals else {
            panic!("WorkloadEngine::next_arrival is for open-loop configs");
        };
        if self.emitted >= self.cfg.queries {
            return None;
        }
        let mul = self.rate_mul(self.clock);
        let gap = self.rng.exp_ps(mean_interarrival.as_ps() as f64 / mul);
        self.clock = self.clock + gap;
        let at = self.clock;
        let tenant = self.sample_tenant();
        Some(self.make(at, tenant))
    }

    /// The closed-loop warm-up set: one arrival per tenant (capped at
    /// the query budget), staggered across one mean think time.
    ///
    /// # Panics
    ///
    /// Panics if the engine was configured open-loop.
    pub fn initial(&mut self) -> Vec<Arrival> {
        let ArrivalProcess::ClosedLoop { mean_think } = self.cfg.arrivals else {
            panic!("WorkloadEngine::initial is for closed-loop configs");
        };
        let n = u64::from(self.cfg.tenants).min(self.cfg.queries);
        let gap = mean_think.as_ps() / u64::from(self.cfg.tenants);
        (0..n)
            .map(|i| {
                let at = SimTime::from_ps(i * gap);
                self.make(at, i as u32)
            })
            .collect()
    }

    /// The tenant's next closed-loop arrival after a completion at
    /// `now` (think time applied), or `None` when the query budget is
    /// exhausted and the tenant retires.
    ///
    /// # Panics
    ///
    /// Panics if the engine was configured open-loop.
    pub fn resubmit(&mut self, tenant: u32, now: SimTime) -> Option<Arrival> {
        let ArrivalProcess::ClosedLoop { mean_think } = self.cfg.arrivals else {
            panic!("WorkloadEngine::resubmit is for closed-loop configs");
        };
        if self.emitted >= self.cfg.queries {
            return None;
        }
        let mul = self.rate_mul(now);
        let gap = self.rng.exp_ps(mean_think.as_ps() as f64 / mul);
        Some(self.make(now + gap, tenant))
    }
}

/// What a driver did with the engine's arrivals. The open-loop
/// reconciliation invariant is `offered == accepted + shed`; closed
/// loop never sheds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DriveStats {
    /// Arrivals offered to the scheduler.
    pub offered: u64,
    /// Arrivals the scheduler accepted.
    pub accepted: u64,
    /// Arrivals shed (open loop only).
    pub shed: u64,
}

/// Runs an open-loop engine against `sched` on the calling fiber:
/// sleeps to each arrival's time, then [`QueryScheduler::try_submit_cost`]s
/// the job built by `make_job`. Arrivals the scheduler cannot absorb
/// are shed, not queued — that is the open-loop contract. Returns once
/// the engine is exhausted (queries may still be in flight; drain with
/// [`QueryScheduler::wait_completed`]).
pub fn drive_open_loop<J, F>(
    ctx: &Ctx,
    sched: &QueryScheduler,
    engine: &mut WorkloadEngine,
    mut make_job: F,
) -> DriveStats
where
    F: FnMut(&Arrival) -> J,
    J: FnOnce(&Ctx) + Send + 'static,
{
    let mut stats = DriveStats::default();
    while let Some(a) = engine.next_arrival() {
        if a.at > ctx.now() {
            ctx.sleep_until(a.at);
        }
        stats.offered += 1;
        match sched.try_submit_cost(ctx, a.tenant as usize, a.cost, make_job(&a)) {
            Ok(()) => stats.accepted += 1,
            Err(_) => stats.shed += 1,
        }
    }
    stats
}

/// Heap key for pending closed-loop submissions: earliest due time
/// first; ties break by tenant (at most one outstanding per tenant, so
/// the pair is unique).
struct Pending(Arrival);

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        (self.0.at, self.0.tenant) == (other.0.at, other.0.tenant)
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.0.at, self.0.tenant).cmp(&(other.0.at, other.0.tenant))
    }
}

/// Runs a closed-loop engine against `sched` on the calling fiber:
/// every tenant keeps at most one query outstanding, thinks between
/// completions, and blocks (backpressure) rather than shedding when
/// its queue is full. Returns once every tenant has retired and all
/// outstanding completions were observed; the scheduler itself may
/// still be running queries submitted by others.
pub fn drive_closed_loop<J, F>(
    ctx: &Ctx,
    sched: &QueryScheduler,
    engine: &mut WorkloadEngine,
    mut make_job: F,
) -> DriveStats
where
    F: FnMut(&Arrival) -> J,
    J: FnOnce(&Ctx) + Send + 'static,
{
    let mut stats = DriveStats::default();
    // Completion notices flow back over a bounded queue sized so a
    // worker can never block on it: at most one outstanding query (and
    // hence one pending notice) per tenant.
    let completions: SimQueue<u32> = SimQueue::new(engine.config().tenants.max(1) as usize);
    let mut due: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
    let mut outstanding = 0u64;
    for a in engine.initial() {
        due.push(Reverse(Pending(a)));
    }
    loop {
        // Drain completion notices first: each one retires or re-arms a
        // tenant.
        while let Ok(Some(tenant)) = completions.try_pop(ctx) {
            outstanding -= 1;
            if let Some(a) = engine.resubmit(tenant, ctx.now()) {
                due.push(Reverse(Pending(a)));
            }
        }
        if let Some(head_at) = due.peek().map(|Reverse(Pending(a))| a.at) {
            if head_at <= ctx.now() {
                let Some(Reverse(Pending(a))) = due.pop() else {
                    unreachable!()
                };
                let job = make_job(&a);
                let cq = completions.clone();
                let tenant = a.tenant;
                stats.offered += 1;
                sched.submit_cost(ctx, tenant as usize, a.cost, move |qctx: &Ctx| {
                    job(qctx);
                    let _ = cq.push(qctx, tenant);
                });
                stats.accepted += 1;
                outstanding += 1;
                continue;
            }
            // Wait for the head to come due or a completion to land,
            // whichever is first.
            if let Ok(Some(tenant)) = completions.pop_deadline(ctx, head_at) {
                outstanding -= 1;
                if let Some(a) = engine.resubmit(tenant, ctx.now()) {
                    due.push(Reverse(Pending(a)));
                }
            }
            continue;
        }
        if outstanding == 0 {
            break;
        }
        match completions.pop(ctx) {
            Some(tenant) => {
                outstanding -= 1;
                if let Some(a) = engine.resubmit(tenant, ctx.now()) {
                    due.push(Reverse(Pending(a)));
                }
            }
            None => break,
        }
    }
    stats
}
