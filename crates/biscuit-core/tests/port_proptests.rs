//! Property tests for `biscuit_core::port`: FIFO ordering and typed-port
//! contracts must hold under arbitrary host/SSDlet interleavings, with and
//! without link faults.
//!
//! The framework's central port invariants, explored over a much wider
//! schedule space than the fixed integration tests:
//!
//! 1. A chain of identity SSDlets delivers every value exactly once, in
//!    order, no matter how sends, receives, and device fibers interleave.
//! 2. Link-level corruption (CRC detect + replay + backoff) is transparent:
//!    the same values arrive in the same order, and every injected fault is
//!    recovered.
//! 3. An armed-but-zero-rate fault plan is byte-identical to no plan at
//!    all, down to virtual completion time.
//! 4. Typed ports accept exactly their declared type (paper §III-C).

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{Ssdlet, TaskCtx};
use biscuit_core::{Application, BiscuitError, CoreConfig, Ssd, SsdletModule};
use biscuit_fs::Fs;
use biscuit_sim::fault::FaultConfig;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::{FaultPlan, Simulation};
use biscuit_ssd::{SsdConfig, SsdDevice};

fn make_ssd() -> Ssd {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    Ssd::new(Fs::format(dev), CoreConfig::paper_default())
}

/// Forwards u64 values, unchanged.
struct Identity;
impl Ssdlet for Identity {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(v) = ctx.recv::<u64>(0).unwrap() {
            ctx.send(0, v).unwrap();
        }
    }
}

/// Forwards strings, unchanged.
struct IdentityStr;
impl Ssdlet for IdentityStr {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(v) = ctx.recv::<String>(0).unwrap() {
            ctx.send(0, v).unwrap();
        }
    }
}

fn identity_module() -> SsdletModule {
    ModuleBuilder::new("prop")
        .register(
            "idU64",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            |_| Ok(Box::new(Identity)),
        )
        .register(
            "idStr",
            SsdletSpec::new().input::<String>().output::<String>(),
            |_| Ok(Box::new(IdentityStr)),
        )
        .build()
}

/// Drives `values` through a chain of `stages` identity SSDlets. The sender
/// sleeps `gaps[i]` ns before each put and the receiver sleeps `reader_gap`
/// ns between gets, so each case explores a different interleaving of host
/// fibers, device fibers, and link DMA events. Returns the received values
/// and the virtual completion time.
fn run_chain(
    values: &[u64],
    gaps: &[u16],
    stages: usize,
    reader_gap: u16,
    plan: Option<&FaultPlan>,
) -> (Vec<u64>, SimTime) {
    let ssd = make_ssd();
    if let Some(p) = plan {
        ssd.attach_fault_plan(p);
    }
    let sim = Simulation::new(0);
    let out: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let done: Arc<Mutex<SimTime>> = Arc::new(Mutex::new(SimTime::ZERO));
    let (o, d, s) = (Arc::clone(&out), Arc::clone(&done), ssd.clone());
    let values = values.to_vec();
    let gaps = gaps.to_vec();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "prop");
        let ids: Vec<_> = (0..stages)
            .map(|_| app.ssdlet(mid, "idU64").unwrap())
            .collect();
        for pair in ids.windows(2) {
            app.connect::<u64>(pair[0].out(0), pair[1].input(0))
                .unwrap();
        }
        let tx = app.connect_from::<u64>(ids[0].input(0)).unwrap();
        let rx = app.connect_to::<u64>(ids[stages - 1].out(0)).unwrap();
        app.start(ctx).unwrap();
        let oo = Arc::clone(&o);
        ctx.spawn("drain", move |ctx| {
            while let Some(v) = rx.get(ctx) {
                oo.lock().push(v);
                if reader_gap > 0 {
                    ctx.sleep(SimDuration::from_nanos(reader_gap as u64));
                }
            }
        });
        for (i, v) in values.iter().enumerate() {
            let gap = gaps.get(i).copied().unwrap_or(0);
            if gap > 0 {
                ctx.sleep(SimDuration::from_nanos(gap as u64));
            }
            tx.put(ctx, *v).unwrap();
        }
        tx.close(ctx);
        app.join(ctx);
        *d.lock() = ctx.now();
    });
    sim.run().assert_quiescent();
    let got = out.lock().clone();
    let at = *done.lock();
    (got, at)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// FIFO + exactly-once across arbitrary interleavings, fault-free.
    #[test]
    fn fifo_order_survives_arbitrary_interleavings(
        values in proptest::collection::vec(any::<u64>(), 1..40),
        gaps in proptest::collection::vec(0u16..2_000, 40),
        stages in 1usize..4,
        reader_gap in 0u16..2_000,
    ) {
        let (got, _) = run_chain(&values, &gaps, stages, reader_gap, None);
        prop_assert_eq!(got, values);
    }

    /// Link corruption with CRC replay never loses, duplicates, or reorders
    /// values, and every injected link fault is recovered.
    #[test]
    fn fifo_order_survives_link_faults(
        values in proptest::collection::vec(any::<u64>(), 1..40),
        gaps in proptest::collection::vec(0u16..2_000, 40),
        stages in 1usize..4,
        reader_gap in 0u16..2_000,
        seed in any::<u64>(),
        rate in 0.05f64..1.0,
    ) {
        let plan = FaultPlan::seeded(seed, FaultConfig {
            link_corrupt_rate: rate,
            ..FaultConfig::default()
        });
        let (got, _) = run_chain(&values, &gaps, stages, reader_gap, Some(&plan));
        prop_assert_eq!(got, values);
        prop_assert_eq!(plan.recovered_total(), plan.injected_total());
    }

    /// An armed plan whose every rate is zero is byte-identical to running
    /// with no plan at all — same values, same virtual completion time.
    #[test]
    fn zero_rate_plan_is_transparent(
        values in proptest::collection::vec(any::<u64>(), 1..20),
        gaps in proptest::collection::vec(0u16..2_000, 20),
        stages in 1usize..4,
        seed in any::<u64>(),
    ) {
        let (clean, clean_at) = run_chain(&values, &gaps, stages, 0, None);
        let plan = FaultPlan::seeded(seed, FaultConfig::default());
        let (armed, armed_at) = run_chain(&values, &gaps, stages, 0, Some(&plan));
        prop_assert_eq!(clean, armed);
        prop_assert_eq!(clean_at, armed_at);
        prop_assert_eq!(plan.injected_total(), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A boundary port accepts exactly its declared element type: u64 ports
    /// reject String connections and vice versa, in every direction.
    #[test]
    fn typed_ports_accept_exactly_declared_type(
        declared_u64 in any::<bool>(),
        connect_u64 in any::<bool>(),
        payload in any::<u64>(),
        text in "[a-z]{0,12}",
    ) {
        let ssd = make_ssd();
        let sim = Simulation::new(0);
        let s = ssd.clone();
        sim.spawn("host", move |ctx| {
            let mid = s.load_module(ctx, identity_module()).unwrap();
            let app = Application::new(&s, "typed");
            let id = app
                .ssdlet(mid, if declared_u64 { "idU64" } else { "idStr" })
                .unwrap();
            if declared_u64 == connect_u64 {
                // Matching types: wiring succeeds and one value round-trips
                // intact.
                if connect_u64 {
                    let tx = app.connect_from::<u64>(id.input(0)).unwrap();
                    let rx = app.connect_to::<u64>(id.out(0)).unwrap();
                    app.start(ctx).unwrap();
                    tx.put(ctx, payload).unwrap();
                    tx.close(ctx);
                    assert_eq!(rx.get(ctx), Some(payload));
                    assert_eq!(rx.get(ctx), None);
                } else {
                    let tx = app.connect_from::<String>(id.input(0)).unwrap();
                    let rx = app.connect_to::<String>(id.out(0)).unwrap();
                    app.start(ctx).unwrap();
                    tx.put(ctx, text.clone()).unwrap();
                    tx.close(ctx);
                    assert_eq!(rx.get(ctx), Some(text));
                    assert_eq!(rx.get(ctx), None);
                }
                app.join(ctx);
            } else {
                // Mismatched types: both directions are rejected at connect
                // time with a typed error (no panic, no implicit coercion).
                let (tx_err, rx_err) = if connect_u64 {
                    (
                        app.connect_from::<u64>(id.input(0)).err(),
                        app.connect_to::<u64>(id.out(0)).err(),
                    )
                } else {
                    (
                        app.connect_from::<String>(id.input(0)).err(),
                        app.connect_to::<String>(id.out(0)).err(),
                    )
                };
                assert!(matches!(tx_err, Some(BiscuitError::TypeMismatch { .. })));
                assert!(matches!(rx_err, Some(BiscuitError::TypeMismatch { .. })));
            }
        });
        sim.run().assert_quiescent();
    }
}
