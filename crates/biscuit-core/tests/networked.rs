//! Networked organization (paper Fig. 1(c), §VIII): the framework is
//! link-agnostic — swapping the PCIe model for a 10 GbE link leaves every
//! application working, with boundary latencies growing accordingly and
//! the *relative* value of in-storage filtering growing with them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{Application, CoreConfig, Ssd};
use biscuit_fs::Fs;
use biscuit_proto::{HostLink, LinkConfig};
use biscuit_sim::time::SimDuration;
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

fn make_ssd(link: LinkConfig) -> Ssd {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    Ssd::with_link(
        Fs::format(dev),
        CoreConfig::paper_default(),
        Arc::new(HostLink::new(link)),
    )
}

struct SendOnce;
impl Ssdlet for SendOnce {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        ctx.sim().sleep(SimDuration::from_micros(1000));
        ctx.send(0, ctx.now().as_nanos()).expect("open");
    }
}

struct BigSend;
impl Ssdlet for BigSend {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let payload = vec![0u8; 1 << 20];
        ctx.send(0, payload).expect("open");
    }
}

fn module() -> biscuit_core::SsdletModule {
    ModuleBuilder::new("net")
        .register("idSend", SsdletSpec::new().output::<u64>(), |_| {
            Ok(Box::new(SendOnce))
        })
        .register("idBig", SsdletSpec::new().output::<Vec<u8>>(), |args| {
            let _: () = args_as::<()>(args).unwrap_or(());
            Ok(Box::new(BigSend))
        })
        .build()
}

fn d2h_latency_us(ssd: Ssd) -> f64 {
    let sim = Simulation::new(0);
    let out = Arc::new(AtomicU64::new(0));
    let o = Arc::clone(&out);
    sim.spawn("host", move |ctx| {
        let mid = ssd.load_module(ctx, module()).expect("load");
        let app = Application::new(&ssd, "lat");
        let t = app.ssdlet(mid, "idSend").expect("proxy");
        let rx = app.connect_to::<u64>(t.out(0)).expect("port");
        app.start(ctx).expect("start");
        let sent = rx.get(ctx).expect("one message");
        o.store(ctx.now().as_nanos() - sent, Ordering::SeqCst);
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    out.load(Ordering::SeqCst) as f64 / 1e3
}

#[test]
fn framework_runs_unchanged_over_ethernet() {
    let pcie = d2h_latency_us(make_ssd(LinkConfig::pcie_gen3_x4()));
    let ethernet = d2h_latency_us(make_ssd(LinkConfig::ethernet_10g()));
    assert!((129.0..132.0).contains(&pcie), "PCIe D2H {pcie}us");
    // Same framework, higher-latency transport.
    assert!(
        ethernet > pcie,
        "networked D2H ({ethernet}us) must exceed direct-attach ({pcie}us)"
    );
}

#[test]
fn bulk_transfer_is_bandwidth_bound_on_the_slower_link() {
    fn transfer_secs(link: LinkConfig) -> f64 {
        let ssd = make_ssd(link);
        let sim = Simulation::new(0);
        let out = Arc::new(AtomicU64::new(0));
        let o = Arc::clone(&out);
        sim.spawn("host", move |ctx| {
            let mid = ssd.load_module(ctx, module()).expect("load");
            let app = Application::new(&ssd, "bulk");
            let t = app.ssdlet(mid, "idBig").expect("proxy");
            let rx = app.connect_to::<Vec<u8>>(t.out(0)).expect("port");
            let t0 = ctx.now();
            app.start(ctx).expect("start");
            let payload = rx.get(ctx).expect("payload");
            assert_eq!(payload.len(), 1 << 20);
            o.store((ctx.now() - t0).as_nanos(), Ordering::SeqCst);
            app.join(ctx);
        });
        sim.run().assert_quiescent();
        out.load(Ordering::SeqCst) as f64 / 1e9
    }
    let pcie = transfer_secs(LinkConfig::pcie_gen3_x4());
    let ethernet = transfer_secs(LinkConfig::ethernet_10g());
    // 1 MiB at 3.2 GB/s vs 1.25 GB/s: the ratio shows the DMA time being
    // modeled, not just fixed costs.
    assert!(
        ethernet / pcie > 1.5,
        "1 MiB over 10GbE ({ethernet}s) vs PCIe ({pcie}s)"
    );
}
