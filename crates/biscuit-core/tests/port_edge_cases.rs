//! Port edge cases: runtime type guards, unconnected ports, closed-port
//! sends, and deep pipelines.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{Application, BiscuitError, CoreConfig, Ssd};
use biscuit_fs::Fs;
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

fn make_ssd() -> Ssd {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    Ssd::new(Fs::format(dev), CoreConfig::paper_default())
}

#[test]
fn recv_with_wrong_type_is_rejected_at_runtime() {
    struct WrongRecv(Arc<Mutex<Option<String>>>);
    impl Ssdlet for WrongRecv {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            // Port declared u64; asking for a String must error, matching
            // the paper's "aggressive type checking at ... run time".
            let err = ctx.recv::<String>(0).unwrap_err();
            *self.0.lock() = Some(err.to_string());
            // Drain properly so the app terminates.
            while ctx.recv::<u64>(0).unwrap().is_some() {}
        }
    }
    let witness: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
    let w = Arc::clone(&witness);
    let module = ModuleBuilder::new("t")
        .register("idWrong", SsdletSpec::new().input::<u64>(), move |args| {
            Ok(Box::new(WrongRecv(args_as(args)?)))
        })
        .build();
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "t");
        let t = app.ssdlet_with(mid, "idWrong", Arc::clone(&w)).unwrap();
        let tx = app.connect_from::<u64>(t.input(0)).unwrap();
        app.start(ctx).unwrap();
        tx.close(ctx);
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    let msg = witness.lock().clone().expect("error captured");
    assert!(msg.contains("type mismatch"), "{msg}");
}

#[test]
fn unconnected_port_access_errors() {
    struct Lonely(Arc<Mutex<Vec<String>>>);
    impl Ssdlet for Lonely {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            let mut log = self.0.lock();
            log.push(ctx.recv::<u64>(0).unwrap_err().to_string());
            log.push(ctx.send(0, 1u64).unwrap_err().to_string());
            log.push(ctx.recv::<u64>(9).unwrap_err().to_string());
        }
    }
    let witness: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let w = Arc::clone(&witness);
    let module = ModuleBuilder::new("t")
        .register(
            "idLonely",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            move |args| Ok(Box::new(Lonely(args_as(args)?))),
        )
        .build();
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "t");
        app.ssdlet_with(mid, "idLonely", Arc::clone(&w)).unwrap();
        app.start(ctx).unwrap();
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    let log = witness.lock().clone();
    assert!(log[0].contains("not connected"), "{log:?}");
    assert!(log[1].contains("not connected"), "{log:?}");
    assert!(log[2].contains("out of range"), "{log:?}");
}

#[test]
fn host_put_after_close_errors() {
    struct Sink;
    impl Ssdlet for Sink {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            while ctx.recv::<u64>(0).unwrap().is_some() {}
        }
    }
    let module = ModuleBuilder::new("t")
        .register("idSink", SsdletSpec::new().input::<u64>(), |_| {
            Ok(Box::new(Sink))
        })
        .build();
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "t");
        let t = app.ssdlet(mid, "idSink").unwrap();
        let tx = app.connect_from::<u64>(t.input(0)).unwrap();
        app.start(ctx).unwrap();
        tx.put(ctx, 1).unwrap();
        tx.close(ctx);
        assert!(matches!(
            tx.put(ctx, 2),
            Err(BiscuitError::PortClosed { .. })
        ));
        tx.close(ctx); // idempotent
        app.join(ctx);
    });
    sim.run().assert_quiescent();
}

#[test]
fn deep_pipeline_preserves_order() {
    struct PlusOne;
    impl Ssdlet for PlusOne {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            while let Some(v) = ctx.recv::<u64>(0).unwrap() {
                ctx.send(0, v + 1).unwrap();
            }
        }
    }
    let module = ModuleBuilder::new("t")
        .register(
            "idPlusOne",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            |_| Ok(Box::new(PlusOne)),
        )
        .build();
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "pipe");
        const STAGES: usize = 8;
        let stages: Vec<_> = (0..STAGES)
            .map(|_| app.ssdlet(mid, "idPlusOne").unwrap())
            .collect();
        for pair in stages.windows(2) {
            app.connect::<u64>(pair[0].out(0), pair[1].input(0))
                .unwrap();
        }
        let tx = app.connect_from::<u64>(stages[0].input(0)).unwrap();
        let rx = app.connect_to::<u64>(stages[STAGES - 1].out(0)).unwrap();
        app.start(ctx).unwrap();
        for i in 0..100u64 {
            tx.put(ctx, i).unwrap();
        }
        tx.close(ctx);
        let got: Vec<u64> = std::iter::from_fn(|| rx.get(ctx)).collect();
        let expect: Vec<u64> = (0..100).map(|i| i + STAGES as u64).collect();
        assert_eq!(got, expect, "data-ordered delivery through {STAGES} stages");
        app.join(ctx);
    });
    sim.run().assert_quiescent();
}

#[test]
fn deadlocked_ssdlets_are_reported_not_hung() {
    // Two SSDlets each waiting for the other's first message: the classic
    // dataflow deadlock. The simulation must terminate and name the blocked
    // fibers instead of hanging.
    struct WaitFirst;
    impl Ssdlet for WaitFirst {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            // Wait for a peer message before ever sending one.
            if let Some(v) = ctx.recv::<u64>(0).unwrap() {
                ctx.send(0, v).unwrap();
            }
        }
    }
    let module = ModuleBuilder::new("dl")
        .register(
            "idWaitFirst",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            |_| Ok(Box::new(WaitFirst)),
        )
        .build();
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "dl");
        let a = app.ssdlet(mid, "idWaitFirst").unwrap();
        let b = app.ssdlet(mid, "idWaitFirst").unwrap();
        // a.out -> b.in and b.out -> a.in: a cycle with no initial token.
        app.connect::<u64>(a.out(0), b.input(0)).unwrap();
        app.connect::<u64>(b.out(0), a.input(0)).unwrap();
        app.start(ctx).unwrap();
        // Host does not join (that would deadlock the host too).
    });
    let report = sim.run();
    assert_eq!(report.blocked.len(), 2, "both SSDlets blocked: {report:?}");
    assert!(report.blocked.iter().all(|n| n.contains("idWaitFirst")));
}
