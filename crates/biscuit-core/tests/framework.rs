//! Integration tests for the Biscuit framework: lifecycle, wiring rules,
//! Table II latency structure, and resource accounting.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::{connect_apps, Application, BiscuitError, CoreConfig, Ssd};
use biscuit_fs::Fs;
use biscuit_sim::time::SimDuration;
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

fn make_ssd() -> Ssd {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    Ssd::new(Fs::format(dev), CoreConfig::paper_default())
}

/// Forwards u64 values, unchanged.
struct Identity;
impl Ssdlet for Identity {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(v) = ctx.recv::<u64>(0).unwrap() {
            ctx.send(0, v).unwrap();
        }
    }
}

fn identity_module() -> biscuit_core::SsdletModule {
    ModuleBuilder::new("test")
        .register(
            "idIdentity",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            |_| Ok(Box::new(Identity)),
        )
        .build()
}

#[test]
fn module_load_unload_lifecycle() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        assert_eq!(s.runtime().loaded_modules(), 1);
        // Unknown SSDlet id is rejected early.
        let app = Application::new(&s, "x");
        assert!(matches!(
            app.ssdlet(mid, "idNope"),
            Err(BiscuitError::SsdletNotRegistered { .. })
        ));
        s.unload_module(ctx, mid).unwrap();
        assert_eq!(s.runtime().loaded_modules(), 0);
        // Double unload fails.
        assert!(matches!(
            s.unload_module(ctx, mid),
            Err(BiscuitError::ModuleNotFound(_))
        ));
    });
    sim.run().assert_quiescent();
}

#[test]
fn unload_while_running_is_rejected() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "busy");
        let id = app.ssdlet(mid, "idIdentity").unwrap();
        let tx = app.connect_from::<u64>(id.input(0)).unwrap();
        let rx = app.connect_to::<u64>(id.out(0)).unwrap();
        app.start(ctx).unwrap();
        // SSDlet is blocked on input: module must refuse to unload.
        assert!(matches!(
            s.unload_module(ctx, mid),
            Err(BiscuitError::ModuleBusy(_))
        ));
        tx.close(ctx);
        assert_eq!(rx.get(ctx), None);
        app.join(ctx);
        s.unload_module(ctx, mid).unwrap();
    });
    sim.run().assert_quiescent();
}

#[test]
fn type_mismatch_rejected_at_connect() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "t");
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let b = app.ssdlet(mid, "idIdentity").unwrap();
        // Port declares u64; connecting as String must fail (paper §III-C:
        // "they cannot connect a string output to a numeric input").
        assert!(matches!(
            app.connect::<String>(a.out(0), b.input(0)),
            Err(BiscuitError::TypeMismatch { .. })
        ));
        assert!(matches!(
            app.connect_to::<String>(a.out(0)),
            Err(BiscuitError::TypeMismatch { .. })
        ));
        // Out-of-range port index.
        assert!(matches!(
            app.connect::<u64>(a.out(3), b.input(0)),
            Err(BiscuitError::PortOutOfRange { .. })
        ));
        // Correct connect succeeds; close everything down cleanly.
        app.connect::<u64>(a.out(0), b.input(0)).unwrap();
        let tx = app.connect_from::<u64>(a.input(0)).unwrap();
        let rx = app.connect_to::<u64>(b.out(0)).unwrap();
        app.start(ctx).unwrap();
        tx.put(ctx, 7).unwrap();
        tx.close(ctx);
        assert_eq!(rx.get(ctx), Some(7));
        assert_eq!(rx.get(ctx), None);
        app.join(ctx);
    });
    sim.run().assert_quiescent();
}

#[test]
fn boundary_ports_are_spsc_only() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "s");
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let _rx = app.connect_to::<u64>(a.out(0)).unwrap();
        // Second consumer on the same boundary output: rejected.
        assert!(matches!(
            app.connect_to::<u64>(a.out(0)),
            Err(BiscuitError::ConnectionNotAllowed(_))
        ));
        let _tx = app.connect_from::<u64>(a.input(0)).unwrap();
        assert!(matches!(
            app.connect_from::<u64>(a.input(0)),
            Err(BiscuitError::ConnectionNotAllowed(_))
        ));
    });
    sim.run().assert_quiescent();
}

#[test]
fn spmc_and_mpsc_inter_ssdlet_topologies() {
    // producer -> (identity x2, SPMC) -> collector (MPSC)
    struct Producer(u64);
    impl Ssdlet for Producer {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            for i in 0..self.0 {
                ctx.send(0, i).unwrap();
            }
        }
    }
    struct Collector(Arc<Mutex<Vec<u64>>>);
    impl Ssdlet for Collector {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            while let Some(v) = ctx.recv::<u64>(0).unwrap() {
                self.0.lock().push(v);
            }
        }
    }
    let results: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let results2 = Arc::clone(&results);
    let module = ModuleBuilder::new("topo")
        .register("idProducer", SsdletSpec::new().output::<u64>(), |args| {
            Ok(Box::new(Producer(args_as::<u64>(args)?)))
        })
        .register(
            "idIdentity",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            |_| Ok(Box::new(Identity)),
        )
        .register(
            "idCollector",
            SsdletSpec::new().input::<u64>(),
            move |args| {
                let sink = args_as::<Arc<Mutex<Vec<u64>>>>(args)?;
                Ok(Box::new(Collector(sink)))
            },
        )
        .build();

    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "topo");
        let prod = app.ssdlet_with(mid, "idProducer", 40u64).unwrap();
        let w1 = app.ssdlet(mid, "idIdentity").unwrap();
        let w2 = app.ssdlet(mid, "idIdentity").unwrap();
        let coll = app
            .ssdlet_with(mid, "idCollector", Arc::clone(&results2))
            .unwrap();
        // SPMC: one producer output queue shared by two identity workers.
        app.connect::<u64>(prod.out(0), w1.input(0)).unwrap();
        app.connect::<u64>(prod.out(0), w2.input(0)).unwrap();
        // MPSC: both workers feed the collector's single input queue.
        app.connect::<u64>(w1.out(0), coll.input(0)).unwrap();
        app.connect::<u64>(w2.out(0), coll.input(0)).unwrap();
        app.start(ctx).unwrap();
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    let mut got = results.lock().clone();
    got.sort_unstable();
    assert_eq!(got, (0..40u64).collect::<Vec<_>>());
}

#[test]
fn table2_h2d_latency() {
    // One-way host -> device latency for a small packet: ~301.6us.
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    let measured = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&measured);

    struct RecvOnce(Arc<AtomicU64>);
    impl Ssdlet for RecvOnce {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            let sent_at = ctx.recv::<u64>(0).unwrap().unwrap();
            self.0
                .store(ctx.now().as_nanos() - sent_at, Ordering::SeqCst);
            while ctx.recv::<u64>(0).unwrap().is_some() {}
        }
    }
    let module = ModuleBuilder::new("lat")
        .register("idRecv", SsdletSpec::new().input::<u64>(), move |args| {
            Ok(Box::new(RecvOnce(args_as::<Arc<AtomicU64>>(args)?)))
        })
        .build();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "lat");
        let r = app.ssdlet_with(mid, "idRecv", m).unwrap();
        let tx = app.connect_from::<u64>(r.input(0)).unwrap();
        app.start(ctx).unwrap();
        ctx.sleep(SimDuration::from_micros(500)); // let the SSDlet block first
        tx.put(ctx, ctx.now().as_nanos()).unwrap();
        tx.close(ctx);
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    let us = measured.load(Ordering::SeqCst) as f64 / 1000.0;
    assert!(
        (300.0..304.0).contains(&us),
        "H2D one-way latency {us}us, paper: 301.6us"
    );
}

#[test]
fn table2_d2h_latency() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();

    struct SendOnce;
    impl Ssdlet for SendOnce {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            // Give the host time to block on get() first.
            ctx.sim().sleep(SimDuration::from_micros(500));
            ctx.send(0, ctx.now().as_nanos()).unwrap();
        }
    }
    let module = ModuleBuilder::new("lat")
        .register("idSend", SsdletSpec::new().output::<u64>(), |_| {
            Ok(Box::new(SendOnce))
        })
        .build();
    let measured = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&measured);
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "lat");
        let t = app.ssdlet(mid, "idSend").unwrap();
        let rx = app.connect_to::<u64>(t.out(0)).unwrap();
        app.start(ctx).unwrap();
        let sent_at = rx.get(ctx).unwrap();
        m.store(ctx.now().as_nanos() - sent_at, Ordering::SeqCst);
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    let us = measured.load(Ordering::SeqCst) as f64 / 1000.0;
    assert!(
        (129.0..132.0).contains(&us),
        "D2H one-way latency {us}us, paper: 130.1us"
    );
}

#[test]
fn table2_inter_ssdlet_latency() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    let measured = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&measured);

    struct Sender;
    impl Ssdlet for Sender {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            ctx.sim().sleep(SimDuration::from_micros(100));
            ctx.send(0, ctx.now().as_nanos()).unwrap();
        }
    }
    struct Receiver(Arc<AtomicU64>);
    impl Ssdlet for Receiver {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            let sent_at = ctx.recv::<u64>(0).unwrap().unwrap();
            self.0
                .store(ctx.now().as_nanos() - sent_at, Ordering::SeqCst);
        }
    }
    let module = ModuleBuilder::new("lat")
        .register("idSender", SsdletSpec::new().output::<u64>(), |_| {
            Ok(Box::new(Sender))
        })
        .register(
            "idReceiver",
            SsdletSpec::new().input::<u64>(),
            move |args| Ok(Box::new(Receiver(args_as::<Arc<AtomicU64>>(args)?))),
        )
        .build();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "lat");
        let tx = app.ssdlet(mid, "idSender").unwrap();
        let rx = app.ssdlet_with(mid, "idReceiver", m).unwrap();
        app.connect::<u64>(tx.out(0), rx.input(0)).unwrap();
        app.start(ctx).unwrap();
        app.join(ctx);
    });
    sim.run().assert_quiescent();
    let us = measured.load(Ordering::SeqCst) as f64 / 1000.0;
    assert!(
        (30.5..31.5).contains(&us),
        "inter-SSDlet latency {us}us, paper: 31.0us"
    );
}

#[test]
fn table2_inter_app_latency() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    let measured = Arc::new(AtomicU64::new(0));
    let m = Arc::clone(&measured);

    struct Sender;
    impl Ssdlet for Sender {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            ctx.sim().sleep(SimDuration::from_micros(5000));
            ctx.send(0, ctx.now().as_nanos()).unwrap();
        }
    }
    struct Receiver(Arc<AtomicU64>);
    impl Ssdlet for Receiver {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            let sent_at = ctx.recv::<u64>(0).unwrap().unwrap();
            self.0
                .store(ctx.now().as_nanos() - sent_at, Ordering::SeqCst);
        }
    }
    let module = ModuleBuilder::new("lat")
        .register("idSender", SsdletSpec::new().output::<u64>(), |_| {
            Ok(Box::new(Sender))
        })
        .register(
            "idReceiver",
            SsdletSpec::new().input::<u64>(),
            move |args| Ok(Box::new(Receiver(args_as::<Arc<AtomicU64>>(args)?))),
        )
        .build();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app_a = Application::new(&s, "A");
        let app_b = Application::new(&s, "B");
        let tx = app_a.ssdlet(mid, "idSender").unwrap();
        let rx = app_b.ssdlet_with(mid, "idReceiver", m).unwrap();
        connect_apps::<u64>((&app_a, tx.out(0)), (&app_b, rx.input(0))).unwrap();
        app_a.start(ctx).unwrap();
        app_b.start(ctx).unwrap();
        app_a.join(ctx);
        app_b.join(ctx);
    });
    sim.run().assert_quiescent();
    let us = measured.load(Ordering::SeqCst) as f64 / 1000.0;
    assert!(
        (10.2..11.2).contains(&us),
        "inter-app latency {us}us, paper: 10.7us"
    );
}

#[test]
fn memory_exhaustion_fails_start_and_rolls_back() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    let huge = ssd.device().config().dram_bytes + 1;
    let module = ModuleBuilder::new("mem")
        .register("idHog", SsdletSpec::new().memory(huge), |_| {
            Ok(Box::new(Identity))
        })
        .build();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "hog");
        app.ssdlet(mid, "idHog").unwrap();
        assert!(matches!(app.start(ctx), Err(BiscuitError::OutOfMemory(_))));
        // Rollback: nothing left allocated in the user arena.
        assert_eq!(
            s.device().memory().used(biscuit_ssd::memory::Arena::User),
            0
        );
    });
    sim.run().assert_quiescent();
}

#[test]
fn memory_freed_after_app_completes() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "m");
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let tx = app.connect_from::<u64>(a.input(0)).unwrap();
        let _rx = app.connect_to::<u64>(a.out(0)).unwrap();
        app.start(ctx).unwrap();
        assert!(s.device().memory().used(biscuit_ssd::memory::Arena::User) > 0);
        tx.close(ctx);
        app.join(ctx);
        assert_eq!(
            s.device().memory().used(biscuit_ssd::memory::Arena::User),
            0
        );
        assert_eq!(s.runtime().open_channels(), 0);
    });
    sim.run().assert_quiescent();
}

#[test]
fn channel_pool_exhaustion() {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(
        Fs::format(dev),
        CoreConfig {
            max_data_channels: 2,
            ..CoreConfig::paper_default()
        },
    );
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "c");
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let b = app.ssdlet(mid, "idIdentity").unwrap();
        let _p1 = app.connect_from::<u64>(a.input(0)).unwrap();
        let _p2 = app.connect_to::<u64>(a.out(0)).unwrap();
        assert!(matches!(
            app.connect_from::<u64>(b.input(0)),
            Err(BiscuitError::NoChannel { .. })
        ));
    });
    sim.run().assert_quiescent();
}

#[test]
fn connections_rejected_after_start() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let app = Application::new(&s, "late");
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let tx = app.connect_from::<u64>(a.input(0)).unwrap();
        let _rx = app.connect_to::<u64>(a.out(0)).unwrap();
        app.start(ctx).unwrap();
        assert!(matches!(
            app.ssdlet(mid, "idIdentity"),
            Err(BiscuitError::InvalidState(_))
        ));
        assert!(matches!(app.start(ctx), Err(BiscuitError::InvalidState(_))));
        tx.close(ctx);
        app.join(ctx);
    });
    sim.run().assert_quiescent();
}

#[test]
fn backpressure_bounds_queue_occupancy() {
    // A fast producer into a slow consumer must block at the queue bound.
    struct Burst(u64);
    impl Ssdlet for Burst {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            for i in 0..self.0 {
                ctx.send(0, i).unwrap();
            }
        }
    }
    struct Slow;
    impl Ssdlet for Slow {
        fn run(&mut self, ctx: &mut TaskCtx<'_>) {
            while ctx.recv::<u64>(0).unwrap().is_some() {
                ctx.sim().sleep(SimDuration::from_micros(100));
            }
        }
    }
    let module = ModuleBuilder::new("bp")
        .register("idBurst", SsdletSpec::new().output::<u64>(), |args| {
            Ok(Box::new(Burst(args_as::<u64>(args)?)))
        })
        .register("idSlow", SsdletSpec::new().input::<u64>(), |_| {
            Ok(Box::new(Slow))
        })
        .build();
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(
        Fs::format(dev),
        CoreConfig {
            port_capacity: 4,
            ..CoreConfig::paper_default()
        },
    );
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module).unwrap();
        let app = Application::new(&s, "bp");
        let b = app.ssdlet_with(mid, "idBurst", 64u64).unwrap();
        let c = app.ssdlet(mid, "idSlow").unwrap();
        app.connect::<u64>(b.out(0), c.input(0)).unwrap();
        app.start(ctx).unwrap();
        app.join(ctx);
    });
    let report = sim.run();
    report.assert_quiescent();
    // 64 items at >=100us each of consumer pacing: producer blocked most of
    // the run, so total time is dominated by the consumer.
    assert!(report.end_time.as_micros() >= 6_000);
}

#[test]
fn many_concurrent_applications_stress() {
    // 12 applications x 4-stage pipelines = 48 SSDlets live at once, all
    // pinned round-robin onto the two device cores, plus 24 host channels.
    // Everything must terminate, produce exact results, and release every
    // resource.
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(
        Fs::format(dev),
        CoreConfig {
            max_data_channels: 64,
            ..CoreConfig::paper_default()
        },
    );
    let sim = Simulation::new(0);
    let s = ssd.clone();
    let results: Arc<Mutex<Vec<(usize, Vec<u64>)>>> = Arc::new(Mutex::new(Vec::new()));
    let r = Arc::clone(&results);
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, identity_module()).unwrap();
        let mut apps = Vec::new();
        for app_idx in 0..12usize {
            let app = Application::new(&s, format!("stress-{app_idx}"));
            let stages: Vec<_> = (0..4)
                .map(|_| app.ssdlet(mid, "idIdentity").unwrap())
                .collect();
            for pair in stages.windows(2) {
                app.connect::<u64>(pair[0].out(0), pair[1].input(0))
                    .unwrap();
            }
            let tx = app.connect_from::<u64>(stages[0].input(0)).unwrap();
            let rx = app.connect_to::<u64>(stages[3].out(0)).unwrap();
            app.start(ctx).unwrap();
            apps.push((app_idx, app, tx, rx));
        }
        // Interleave traffic across all applications.
        for i in 0..20u64 {
            for (app_idx, _, tx, _) in &apps {
                tx.put(ctx, i * 100 + *app_idx as u64).unwrap();
            }
        }
        for (_, _, tx, _) in &apps {
            tx.close(ctx);
        }
        for (app_idx, app, _, rx) in &apps {
            let got: Vec<u64> = std::iter::from_fn(|| rx.get(ctx)).collect();
            r.lock().push((*app_idx, got));
            app.join(ctx);
        }
        // Every resource returned.
        assert_eq!(s.runtime().open_channels(), 0);
        assert_eq!(
            s.device().memory().used(biscuit_ssd::memory::Arena::User),
            0
        );
        s.unload_module(ctx, mid).unwrap();
    });
    let report = sim.run();
    report.assert_quiescent();
    let results = results.lock();
    assert_eq!(results.len(), 12);
    for (app_idx, got) in results.iter() {
        let expect: Vec<u64> = (0..20).map(|i| i * 100 + *app_idx as u64).collect();
        assert_eq!(got, &expect, "app {app_idx} lost or reordered data");
    }
    // 1 host + 48 SSDlets.
    assert_eq!(report.fibers_spawned, 49);
}
