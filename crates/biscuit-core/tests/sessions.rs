//! Multi-user session tests: per-session channel and memory quotas isolate
//! tenants sharing one SSD (paper §VIII's ensuing effort; §II-B's safety
//! requirement).

use std::sync::Arc;

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{Ssdlet, TaskCtx};
use biscuit_core::{Application, BiscuitError, CoreConfig, Session, SessionQuota, Ssd};
use biscuit_fs::Fs;
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

struct Identity;
impl Ssdlet for Identity {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        while let Some(v) = ctx.recv::<u64>(0).unwrap() {
            ctx.send(0, v).unwrap();
        }
    }
}

fn make_ssd() -> Ssd {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 64 << 20,
        ..SsdConfig::paper_default()
    }));
    Ssd::new(Fs::format(dev), CoreConfig::paper_default())
}

fn module() -> biscuit_core::SsdletModule {
    ModuleBuilder::new("m")
        .register(
            "idIdentity",
            SsdletSpec::new().input::<u64>().output::<u64>(),
            |_| Ok(Box::new(Identity)),
        )
        .build()
}

#[test]
fn session_channel_quota_limits_one_tenant_only() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module()).unwrap();
        let alice = Session::new(
            "alice",
            SessionQuota {
                max_channels: 2,
                max_memory: 4 << 20,
            },
        );
        let bob = Session::new(
            "bob",
            SessionQuota {
                max_channels: 2,
                max_memory: 4 << 20,
            },
        );

        // Alice uses both her channels.
        let app_a = Application::new_in_session(&s, "alice-app", &alice);
        let a = app_a.ssdlet(mid, "idIdentity").unwrap();
        let tx_a = app_a.connect_from::<u64>(a.input(0)).unwrap();
        let _rx_a = app_a.connect_to::<u64>(a.out(0)).unwrap();
        assert_eq!(alice.channels_in_use(), 2);

        // A third channel for Alice is rejected even though the device-wide
        // pool still has room.
        let app_a2 = Application::new_in_session(&s, "alice-app2", &alice);
        let a2 = app_a2.ssdlet(mid, "idIdentity").unwrap();
        assert!(matches!(
            app_a2.connect_to::<u64>(a2.out(0)),
            Err(BiscuitError::NoChannel { open: 2, limit: 2 })
        ));

        // Bob is unaffected.
        let app_b = Application::new_in_session(&s, "bob-app", &bob);
        let b = app_b.ssdlet(mid, "idIdentity").unwrap();
        let tx_b = app_b.connect_from::<u64>(b.input(0)).unwrap();
        let rx_b = app_b.connect_to::<u64>(b.out(0)).unwrap();

        app_a.start(ctx).unwrap();
        app_b.start(ctx).unwrap();
        tx_b.put(ctx, 9).unwrap();
        tx_b.close(ctx);
        assert_eq!(rx_b.get(ctx), Some(9));
        tx_a.close(ctx);
        app_a.join(ctx);
        app_b.join(ctx);

        // Teardown returned everything to both envelopes.
        assert_eq!(alice.channels_in_use(), 0);
        assert_eq!(bob.channels_in_use(), 0);
        assert_eq!(s.runtime().open_channels(), 0);
    });
    sim.run().assert_quiescent();
}

#[test]
fn session_memory_quota_fails_start_with_rollback() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module()).unwrap();
        let tiny = Session::new(
            "tiny",
            SessionQuota {
                max_channels: 8,
                max_memory: 100, // far below the default per-SSDlet footprint
            },
        );
        let app = Application::new_in_session(&s, "t", &tiny);
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let tx = app.connect_from::<u64>(a.input(0)).unwrap();
        let _rx = app.connect_to::<u64>(a.out(0)).unwrap();
        let err = app.start(ctx).unwrap_err();
        assert!(matches!(err, BiscuitError::InvalidState(_)), "{err}");
        // Rollback: device arena and session ledger are clean.
        assert_eq!(
            s.device().memory().used(biscuit_ssd::memory::Arena::User),
            0
        );
        assert_eq!(tiny.memory_in_use(), 0);
        let _ = tx;
    });
    sim.run().assert_quiescent();
}

#[test]
fn session_memory_returned_after_completion() {
    let ssd = make_ssd();
    let sim = Simulation::new(0);
    let s = ssd.clone();
    sim.spawn("host", move |ctx| {
        let mid = s.load_module(ctx, module()).unwrap();
        let session = Session::new(
            "u",
            SessionQuota {
                max_channels: 4,
                max_memory: 8 << 20,
            },
        );
        let app = Application::new_in_session(&s, "u-app", &session);
        let a = app.ssdlet(mid, "idIdentity").unwrap();
        let tx = app.connect_from::<u64>(a.input(0)).unwrap();
        let _rx = app.connect_to::<u64>(a.out(0)).unwrap();
        app.start(ctx).unwrap();
        assert!(session.memory_in_use() > 0);
        tx.close(ctx);
        app.join(ctx);
        assert_eq!(session.memory_in_use(), 0);
        assert!(session.peak_memory() > 0);
    });
    sim.run().assert_quiescent();
}
