//! Port plumbing: typed, data-ordered connections backed by bounded queues.
//!
//! Biscuit realizes all data transmission (except file I/O) as bounded
//! queues (paper §IV-B). Three port kinds exist (§III-C):
//!
//! - **inter-SSDlet** — native typed values between SSDlets of one
//!   application; SPSC/SPMC/MPSC all allowed (same core, no locks needed);
//! - **host-to-device / device-to-host** — [`Packet`]-only, SPSC, through
//!   the channel managers and the PCIe link;
//! - **inter-application** — [`Packet`]-only, SPSC, between SSDlets of
//!   different applications.
//!
//! Latency is charged per Table II: receive-side scheduling (all kinds),
//! type (de)abstraction (inter-SSDlet), and channel-manager + link costs
//! (boundary kinds). Boundary payloads ride the [`HostLink`] DMA shaper, so
//! result *volume* — the thing NDP reduces — costs real link time.

use std::any::{Any, TypeId};
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_proto::wire::Wire;
use biscuit_proto::{HostLink, Packet, SpanHeader};
use biscuit_sim::metrics::{self, MetricsRegistry};
use biscuit_sim::qprof::{SpanContext, Stage};
use biscuit_sim::queue::SimQueue;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::trace::{TraceEvent, Tracer};
use biscuit_sim::Ctx;

use crate::config::CoreConfig;
use crate::error::{BiscuitError, BiscuitResult};

/// Which boundary a connection crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// Between SSDlets of the same application (typed values).
    InterSsdlet,
    /// Between SSDlets of different applications (packets).
    InterApp,
    /// Host program → SSDlet (packets over PCIe).
    HostToDevice,
    /// SSDlet → host program (packets over PCIe).
    DeviceToHost,
}

/// A message in flight: the value plus the time its bits have physically
/// arrived at the receiving side (DMA completion for boundary ports).
pub(crate) struct Envelope {
    pub ready_at: SimTime,
    pub value: Box<dyn Any + Send>,
    /// Causal identity of the sending query, adopted by the receiver. The
    /// runtime carries the [`SpanHeader`] out of band: it models fields in
    /// the reserved bytes of the command envelope, already covered by the
    /// per-command overhead, so profiling never changes wire timing.
    pub span: Option<SpanHeader>,
}

/// The sending fiber's current query context as a wire header, if any.
#[inline]
fn current_span(ctx: &Ctx) -> Option<SpanHeader> {
    ctx.qprof().current().map(|sc| SpanHeader {
        query: sc.query,
        tenant: sc.tenant,
        span: sc.span,
    })
}

/// Installs a received header as the receiving fiber's query context.
#[inline]
fn adopt_span(ctx: &Ctx, span: Option<SpanHeader>) {
    if let Some(h) = span {
        ctx.qprof().adopt(
            ctx,
            Some(SpanContext {
                query: h.query,
                tenant: h.tenant,
                span: h.span,
            }),
        );
    }
}

impl std::fmt::Debug for Envelope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Envelope")
            .field("ready_at", &self.ready_at)
            .finish()
    }
}

fn kind_str(kind: PortKind) -> &'static str {
    match kind {
        PortKind::InterSsdlet => "inter-ssdlet",
        PortKind::InterApp => "inter-app",
        PortKind::HostToDevice => "h2d",
        PortKind::DeviceToHost => "d2h",
    }
}

type EncodeFn = dyn Fn(Box<dyn Any + Send>) -> Packet + Send + Sync;
type DecodeFn = dyn Fn(&Packet) -> Box<dyn Any + Send> + Send + Sync;

/// Type-erased encode/decode pair for boundary ports ([`Wire`] codec).
pub(crate) struct Codec {
    pub encode: Box<EncodeFn>,
    pub decode: Box<DecodeFn>,
    /// Whether encode shares payload bytes rather than copying them
    /// (`T::ZERO_COPY_ENCODE`); encode-side copy accounting is skipped
    /// when set.
    pub zero_copy_encode: bool,
    /// Same, for the decode side (`T::ZERO_COPY_DECODE`).
    pub zero_copy_decode: bool,
}

impl Codec {
    pub(crate) fn of<T: Wire + Any + Send>() -> Codec {
        Codec {
            zero_copy_encode: T::ZERO_COPY_ENCODE,
            zero_copy_decode: T::ZERO_COPY_DECODE,
            encode: Box::new(|v| {
                let v = v
                    .downcast::<T>()
                    .expect("codec fed a value of the wrong type");
                v.to_packet()
            }),
            decode: Box::new(|p| {
                let v = T::from_packet(p).expect("boundary packet failed to decode");
                Box::new(v)
            }),
        }
    }
}

/// Per-port counters registered as `port_sends_total` / `port_recvs_total`
/// / `port_bytes_total`, all labeled `{port=<label>, kind=<kind>}`.
pub(crate) struct PortInstruments {
    sends: metrics::Counter,
    recvs: metrics::Counter,
    bytes: metrics::Counter,
    /// `sim_bytes_copied_total{site=port_encode}` — payload bytes copied
    /// while serializing values into packets at this boundary.
    copy_encode: metrics::Counter,
    /// `sim_bytes_copied_total{site=port_decode}` — payload bytes copied
    /// while deserializing packets back into values.
    copy_decode: metrics::Counter,
}

/// One edge of the dataflow graph.
pub(crate) struct Connection {
    pub kind: PortKind,
    pub type_id: TypeId,
    pub type_name: &'static str,
    pub queue: SimQueue<Envelope>,
    pub codec: Option<Codec>,
    /// Stable display name for traces, e.g. `grep:filter->counter`.
    label: Arc<str>,
    /// Tracer captured at connect time (ports outlive `Ssd::attach_tracer`
    /// ordering concerns because applications connect after attachment).
    trace: Option<Tracer>,
    /// Metrics handles captured at connect time, like `trace`.
    metrics: Option<PortInstruments>,
    /// Producer endpoints that have not yet finished; the queue closes when
    /// this reaches zero.
    producers: Mutex<usize>,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("kind", &self.kind)
            .field("type", &self.type_name)
            .finish()
    }
}

impl Connection {
    pub(crate) fn new(
        kind: PortKind,
        type_id: TypeId,
        type_name: &'static str,
        capacity: usize,
        codec: Option<Codec>,
        label: impl Into<Arc<str>>,
        trace: Option<Tracer>,
        registry: Option<MetricsRegistry>,
    ) -> Arc<Connection> {
        let label: Arc<str> = label.into();
        let queue = SimQueue::new(capacity);
        if let Some(tracer) = &trace {
            queue.set_trace(tracer.clone(), Arc::clone(&label));
        }
        let metrics = registry.map(|reg| {
            queue.set_metrics(&reg, &label);
            let kind = kind_str(kind);
            let labels: &[(&str, &str)] = &[("port", &label), ("kind", kind)];
            PortInstruments {
                sends: reg.counter("port_sends_total", labels),
                recvs: reg.counter("port_recvs_total", labels),
                bytes: reg.counter("port_bytes_total", labels),
                copy_encode: reg.counter("sim_bytes_copied_total", &[("site", "port_encode")]),
                copy_decode: reg.counter("sim_bytes_copied_total", &[("site", "port_decode")]),
            }
        });
        Arc::new(Connection {
            kind,
            type_id,
            type_name,
            queue,
            codec,
            label,
            trace,
            metrics,
            producers: Mutex::new(0),
        })
    }

    fn kind_str(&self) -> &'static str {
        kind_str(self.kind)
    }

    /// Records one send (`send == true`) or receive at the current fiber
    /// time. `bytes` is the wire size for boundary kinds, 0 for typed
    /// in-device traffic.
    #[inline]
    pub(crate) fn trace_port(&self, ctx: &Ctx, send: bool, bytes: u64) {
        if let Some(m) = &self.metrics {
            if send {
                m.sends.inc();
                m.bytes.add(bytes);
            } else {
                m.recvs.inc();
            }
        }
        if let Some(tracer) = &self.trace {
            tracer.emit(|| {
                let at = ctx.now();
                let port = Arc::clone(&self.label);
                let kind = self.kind_str();
                if send {
                    TraceEvent::PortSend {
                        at,
                        port,
                        kind,
                        bytes,
                    }
                } else {
                    TraceEvent::PortRecv {
                        at,
                        port,
                        kind,
                        bytes,
                    }
                }
            });
        }
    }

    /// Counts payload bytes copied while encoding at this boundary
    /// (skipped for zero-copy codecs).
    #[inline]
    pub(crate) fn count_encode_copy(&self, zero_copy: bool, bytes: u64) {
        if !zero_copy {
            if let Some(m) = &self.metrics {
                m.copy_encode.add(bytes);
            }
        }
    }

    /// Counts payload bytes copied while decoding at this boundary
    /// (skipped for zero-copy codecs).
    #[inline]
    pub(crate) fn count_decode_copy(&self, zero_copy: bool, bytes: u64) {
        if !zero_copy {
            if let Some(m) = &self.metrics {
                m.copy_decode.add(bytes);
            }
        }
    }

    pub(crate) fn add_producer(&self) {
        *self.producers.lock() += 1;
    }

    /// Marks one producer endpoint finished; closes the queue on the last.
    pub(crate) fn producer_done(&self, ctx: &Ctx) {
        let mut n = self.producers.lock();
        debug_assert!(*n > 0, "producer_done without matching add_producer");
        *n -= 1;
        if *n == 0 {
            drop(n);
            self.queue.close(ctx);
        }
    }

    /// Device-side send (used by `TaskCtx`). Charges send-side costs and
    /// link time for boundary kinds; blocks while the queue is full.
    pub(crate) fn send_from_device(
        &self,
        ctx: &Ctx,
        cfg: &CoreConfig,
        link: &HostLink,
        value: Box<dyn Any + Send>,
    ) -> BiscuitResult<()> {
        let span = current_span(ctx);
        let (ready_at, value, bytes): (SimTime, Box<dyn Any + Send>, u64) = match self.kind {
            PortKind::InterSsdlet => (ctx.now(), value, 0),
            PortKind::InterApp => {
                // Serialization is explicit for inter-app traffic; cost is
                // folded into the receiver's scheduling charge (Table II
                // shows inter-app *below* inter-SSDlet: no type machinery).
                let codec = self.codec.as_ref().expect("inter-app has codec");
                let pkt = (codec.encode)(value);
                let bytes = pkt.len() as u64;
                self.count_encode_copy(codec.zero_copy_encode, bytes);
                (ctx.now(), Box::new(pkt), bytes)
            }
            PortKind::DeviceToHost => {
                let send_start = ctx.now();
                ctx.sleep(cfg.cm_send_device);
                let codec = self.codec.as_ref().expect("boundary has codec");
                let pkt = (codec.encode)(value);
                let bytes = pkt.len() as u64;
                self.count_encode_copy(codec.zero_copy_encode, bytes);
                let dma_end = link.enqueue_dma_to_host(ctx.now(), bytes);
                let ready_at = dma_end + cfg.link_fixed;
                // Channel-manager send charge, then the full DMA window
                // (including link queueing) until the bits land host-side.
                ctx.qprof()
                    .record(Stage::SsdletCompute, send_start, ctx.now(), 0, 0);
                ctx.qprof().record(Stage::Link, ctx.now(), ready_at, bytes, 0);
                (ready_at, Box::new(pkt), bytes)
            }
            PortKind::HostToDevice => {
                return Err(BiscuitError::InvalidState(
                    "SSDlets cannot send on a host-to-device port".into(),
                ))
            }
        };
        self.queue
            .push(
                ctx,
                Envelope {
                    ready_at,
                    value,
                    span,
                },
            )
            .map_err(|_| BiscuitError::PortClosed {
                port: self.label.to_string(),
            })?;
        self.trace_port(ctx, true, bytes);
        Ok(())
    }

    /// Device-side receive. Charges Table II receive-side latency.
    pub(crate) fn recv_on_device(
        &self,
        ctx: &Ctx,
        cfg: &CoreConfig,
    ) -> Option<Box<dyn Any + Send>> {
        let env = self.queue.pop(ctx)?;
        ctx.sleep_until(env.ready_at);
        // The receiving fiber takes on the sender's query identity before
        // charging receive-side latency, so that work is attributed too.
        adopt_span(ctx, env.span);
        let recv_start = ctx.now();
        match self.kind {
            PortKind::InterSsdlet => {
                ctx.sleep(cfg.inter_ssdlet_latency());
                ctx.qprof()
                    .record(Stage::SsdletCompute, recv_start, ctx.now(), 0, 0);
                self.trace_port(ctx, false, 0);
                Some(env.value)
            }
            PortKind::InterApp => {
                ctx.sleep(cfg.inter_app_latency());
                let pkt = env
                    .value
                    .downcast::<Packet>()
                    .expect("inter-app envelope holds a packet");
                ctx.qprof().record(
                    Stage::SsdletCompute,
                    recv_start,
                    ctx.now(),
                    pkt.len() as u64,
                    0,
                );
                self.trace_port(ctx, false, pkt.len() as u64);
                let codec = self.codec.as_ref().expect("inter-app has codec");
                self.count_decode_copy(codec.zero_copy_decode, pkt.len() as u64);
                Some((codec.decode)(&pkt))
            }
            PortKind::HostToDevice => {
                ctx.sleep(cfg.cm_recv_device);
                let pkt = env
                    .value
                    .downcast::<Packet>()
                    .expect("boundary envelope holds a packet");
                ctx.qprof().record(
                    Stage::SsdletCompute,
                    recv_start,
                    ctx.now(),
                    pkt.len() as u64,
                    0,
                );
                self.trace_port(ctx, false, pkt.len() as u64);
                let codec = self.codec.as_ref().expect("boundary has codec");
                self.count_decode_copy(codec.zero_copy_decode, pkt.len() as u64);
                Some((codec.decode)(&pkt))
            }
            PortKind::DeviceToHost => None, // devices never read their own output channel
        }
    }
}

/// Host-side receiving end of a device→host connection
/// (`Application::connect_to` — paper Code 3's `port1.get(value)`).
pub struct HostInPort<T> {
    pub(crate) conn: Arc<Connection>,
    pub(crate) cfg: Arc<CoreConfig>,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T> std::fmt::Debug for HostInPort<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostInPort")
            .field("type", &self.conn.type_name)
            .finish()
    }
}

impl<T: Wire + Any + Send> HostInPort<T> {
    /// Receives the next value, blocking in virtual time. Returns `None`
    /// when every producing SSDlet has finished and the queue drained.
    pub fn get(&self, ctx: &Ctx) -> Option<T> {
        let env = self.conn.queue.pop(ctx)?;
        ctx.sleep_until(env.ready_at);
        adopt_span(ctx, env.span);
        let recv_start = ctx.now();
        ctx.sleep(self.cfg.cm_recv_host);
        ctx.qprof()
            .record(Stage::HostMerge, recv_start, ctx.now(), 0, 0);
        let pkt = env
            .value
            .downcast::<Packet>()
            .expect("boundary envelope holds a packet");
        self.conn.trace_port(ctx, false, pkt.len() as u64);
        self.conn
            .count_decode_copy(T::ZERO_COPY_DECODE, pkt.len() as u64);
        let v = (self.conn.codec.as_ref().expect("boundary has codec").decode)(&pkt);
        Some(*v.downcast::<T>().expect("codec produced declared type"))
    }

    /// Like [`HostInPort::get`], but gives up after `timeout` of virtual
    /// time with no arrival. `Ok(None)` still means end-of-stream; a
    /// [`BiscuitError::RequestTimeout`] means the producer is stalled (or
    /// dead) and the caller should trigger its recovery policy — e.g. the
    /// DB layer falls back to a host-side scan.
    ///
    /// # Errors
    ///
    /// Returns [`BiscuitError::RequestTimeout`] when the deadline passes.
    pub fn get_deadline(&self, ctx: &Ctx, timeout: SimDuration) -> BiscuitResult<Option<T>> {
        let deadline = ctx.now() + timeout;
        match self.conn.queue.pop_deadline(ctx, deadline) {
            Ok(Some(env)) => {
                ctx.sleep_until(env.ready_at);
                adopt_span(ctx, env.span);
                let recv_start = ctx.now();
                ctx.sleep(self.cfg.cm_recv_host);
                ctx.qprof()
                    .record(Stage::HostMerge, recv_start, ctx.now(), 0, 0);
                let pkt = env
                    .value
                    .downcast::<Packet>()
                    .expect("boundary envelope holds a packet");
                self.conn.trace_port(ctx, false, pkt.len() as u64);
                self.conn
                    .count_decode_copy(T::ZERO_COPY_DECODE, pkt.len() as u64);
                let v = (self.conn.codec.as_ref().expect("boundary has codec").decode)(&pkt);
                Ok(Some(
                    *v.downcast::<T>().expect("codec produced declared type"),
                ))
            }
            Ok(None) => Ok(None),
            Err(_) => Err(BiscuitError::RequestTimeout {
                port: self.conn.label.to_string(),
                timeout,
            }),
        }
    }
}

/// Host-side sending end of a host→device connection
/// (`Application::connect_from`).
pub struct HostOutPort<T> {
    pub(crate) conn: Arc<Connection>,
    pub(crate) cfg: Arc<CoreConfig>,
    pub(crate) link: Arc<HostLink>,
    pub(crate) closed: Mutex<bool>,
    pub(crate) _marker: PhantomData<fn(T)>,
}

impl<T> std::fmt::Debug for HostOutPort<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostOutPort")
            .field("type", &self.conn.type_name)
            .finish()
    }
}

impl<T: Wire + Any + Send> HostOutPort<T> {
    /// Sends a value toward the device, blocking while the channel is full.
    ///
    /// # Errors
    ///
    /// Returns an error if the port was closed.
    pub fn put(&self, ctx: &Ctx, value: T) -> BiscuitResult<()> {
        if *self.closed.lock() {
            return Err(BiscuitError::PortClosed {
                port: self.conn.label.to_string(),
            });
        }
        let send_start = ctx.now();
        ctx.sleep(self.cfg.cm_send_host);
        let pkt = value.to_packet();
        let bytes = pkt.len() as u64;
        self.conn.count_encode_copy(T::ZERO_COPY_ENCODE, bytes);
        let dma_end = self.link.enqueue_dma_to_device(ctx.now(), bytes);
        let ready_at = dma_end + self.cfg.link_fixed;
        ctx.qprof()
            .record(Stage::HostCompute, send_start, ctx.now(), 0, 0);
        ctx.qprof().record(Stage::Link, ctx.now(), ready_at, bytes, 1);
        self.conn
            .queue
            .push(
                ctx,
                Envelope {
                    ready_at,
                    value: Box::new(pkt),
                    span: current_span(ctx),
                },
            )
            .map_err(|_| BiscuitError::PortClosed {
                port: self.conn.label.to_string(),
            })?;
        self.conn.trace_port(ctx, true, bytes);
        Ok(())
    }

    /// Signals end-of-stream to the consuming SSDlet. Idempotent.
    pub fn close(&self, ctx: &Ctx) {
        let mut closed = self.closed.lock();
        if !*closed {
            *closed = true;
            drop(closed);
            self.conn.producer_done(ctx);
        }
    }
}
