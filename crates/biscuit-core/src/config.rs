//! Biscuit runtime configuration: port latency components and channel
//! manager parameters, calibrated to Table II of the paper.
//!
//! The measured one-way port latencies are:
//!
//! | port type      | latency   |
//! |----------------|-----------|
//! | host→device    | 301.6 µs  |
//! | device→host    | 130.1 µs  |
//! | inter-SSDlet   | 31.0 µs   |
//! | inter-app      | 10.7 µs   |
//!
//! Per the paper, every latency includes the fiber scheduling cost
//! (dominant for inter-app), inter-SSDlet adds type (de)abstraction, and
//! host↔device ports add channel-manager work on both ends plus the
//! PCIe/driver path — with the receiving side doing about twice the work,
//! which on the slow device CPU makes H2D much dearer than D2H.

use biscuit_sim::time::SimDuration;

/// Runtime timing and sizing parameters.
#[derive(Debug, Clone)]
pub struct CoreConfig {
    /// Fiber scheduling latency charged on every port receive.
    pub sched_latency: SimDuration,
    /// Type abstraction + de-abstraction cost of typed inter-SSDlet ports.
    pub type_abstraction: SimDuration,
    /// Channel-manager send-side work, host CPU.
    pub cm_send_host: SimDuration,
    /// Channel-manager send-side work, device CPU.
    pub cm_send_device: SimDuration,
    /// Channel-manager receive-side work, host CPU (~2x send work).
    pub cm_recv_host: SimDuration,
    /// Channel-manager receive-side work, device CPU (~2x send work on a
    /// much slower core).
    pub cm_recv_device: SimDuration,
    /// Fixed PCIe + driver cost per boundary message, on top of DMA time.
    pub link_fixed: SimDuration,
    /// Bounded queue capacity backing each port connection.
    pub port_capacity: usize,
    /// Maximum simultaneously open host↔device data channels (channel pool).
    pub max_data_channels: usize,
    /// Fixed cost of loading a module (symbol relocation, table setup).
    pub module_link_cost: SimDuration,
    /// Device-side processing rate for module images during load, bytes/s.
    pub module_load_rate: f64,
    /// Default per-SSDlet-instance memory charged to the user arena.
    pub default_ssdlet_memory: u64,
}

impl CoreConfig {
    /// Constants calibrated to reproduce Table II exactly:
    ///
    /// - inter-app get: `sched_latency` = 10.7 µs
    /// - inter-SSDlet get: `sched_latency + type_abstraction` = 31.0 µs
    /// - D2H: `cm_send_device + link_fixed + cm_recv_host` = 130.1 µs
    /// - H2D: `cm_send_host + link_fixed + cm_recv_device` = 301.6 µs
    pub fn paper_default() -> Self {
        CoreConfig {
            sched_latency: SimDuration::from_micros_f64(10.7),
            type_abstraction: SimDuration::from_micros_f64(20.3),
            cm_send_host: SimDuration::from_micros_f64(40.0),
            cm_send_device: SimDuration::from_micros_f64(40.0),
            cm_recv_host: SimDuration::from_micros_f64(78.1),
            cm_recv_device: SimDuration::from_micros_f64(249.6),
            link_fixed: SimDuration::from_micros_f64(12.0),
            port_capacity: 64,
            max_data_channels: 16,
            module_link_cost: SimDuration::from_micros_f64(500.0),
            module_load_rate: 40.0e6,
            default_ssdlet_memory: 256 << 10,
        }
    }

    /// One-way latency of an inter-application port message.
    pub fn inter_app_latency(&self) -> SimDuration {
        self.sched_latency
    }

    /// One-way latency of an inter-SSDlet port message.
    pub fn inter_ssdlet_latency(&self) -> SimDuration {
        self.sched_latency + self.type_abstraction
    }

    /// One-way latency of a device→host message (excluding DMA payload time).
    pub fn d2h_latency(&self) -> SimDuration {
        self.cm_send_device + self.link_fixed + self.cm_recv_host
    }

    /// One-way latency of a host→device message (excluding DMA payload time).
    pub fn h2d_latency(&self) -> SimDuration {
        self.cm_send_host + self.link_fixed + self.cm_recv_device
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table2() {
        let cfg = CoreConfig::paper_default();
        assert!((cfg.inter_app_latency().as_micros_f64() - 10.7).abs() < 0.01);
        assert!((cfg.inter_ssdlet_latency().as_micros_f64() - 31.0).abs() < 0.01);
        assert!((cfg.d2h_latency().as_micros_f64() - 130.1).abs() < 0.01);
        assert!((cfg.h2d_latency().as_micros_f64() - 301.6).abs() < 0.01);
    }

    #[test]
    fn h2d_receiver_does_more_work_on_slower_cpu() {
        let cfg = CoreConfig::paper_default();
        assert!(cfg.cm_recv_device > cfg.cm_recv_host * 2);
        assert!(cfg.cm_recv_host > cfg.cm_send_host);
    }
}
