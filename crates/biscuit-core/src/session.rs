//! Multi-user sessions — the paper's stated follow-on work (§VIII: "we are
//! extending Biscuit to incorporate support for multiple user sessions").
//!
//! A session is a named tenant with its own resource envelope: a cap on
//! simultaneously open host↔device data channels and a byte budget inside
//! the device's user memory arena. Applications started under a session
//! draw from that envelope instead of the device-wide pool, so one
//! ill-behaved user cannot starve another — the safety goal §II-B calls
//! out, enforced by accounting since the hardware has no MMU.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{BiscuitError, BiscuitResult};

/// Resource envelope granted to one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionQuota {
    /// Maximum simultaneously open data channels.
    pub max_channels: usize,
    /// Maximum bytes of device user memory across the session's running
    /// SSDlets.
    pub max_memory: u64,
}

impl Default for SessionQuota {
    fn default() -> Self {
        SessionQuota {
            max_channels: 4,
            max_memory: 16 << 20,
        }
    }
}

#[derive(Debug, Default)]
struct SessionUsage {
    channels: usize,
    memory: u64,
    peak_memory: u64,
}

/// A tenant of the Biscuit runtime (cheaply cloneable handle).
///
/// # Examples
///
/// ```
/// use biscuit_core::{Session, SessionQuota};
///
/// let alice = Session::new("alice", SessionQuota {
///     max_channels: 2,
///     max_memory: 4 << 20,
/// });
/// assert_eq!(alice.name(), "alice");
/// assert_eq!(alice.channels_in_use(), 0);
/// // Applications created with `Application::new_in_session(&ssd, name,
/// // &alice)` draw channels and device memory from this envelope.
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

#[derive(Debug)]
struct SessionInner {
    name: String,
    quota: SessionQuota,
    usage: Mutex<SessionUsage>,
}

impl Session {
    /// Creates a session with the given quota.
    pub fn new(name: impl Into<String>, quota: SessionQuota) -> Session {
        Session {
            inner: Arc::new(SessionInner {
                name: name.into(),
                quota,
                usage: Mutex::new(SessionUsage::default()),
            }),
        }
    }

    /// The session's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The session's quota.
    pub fn quota(&self) -> SessionQuota {
        self.inner.quota
    }

    /// Channels currently held by this session.
    pub fn channels_in_use(&self) -> usize {
        self.inner.usage.lock().channels
    }

    /// Device user memory currently charged to this session.
    pub fn memory_in_use(&self) -> u64 {
        self.inner.usage.lock().memory
    }

    /// Peak device user memory this session ever held.
    pub fn peak_memory(&self) -> u64 {
        self.inner.usage.lock().peak_memory
    }

    /// Reserves one data channel from the session envelope.
    ///
    /// # Errors
    ///
    /// Returns [`BiscuitError::NoChannel`] when the session cap is reached.
    pub(crate) fn take_channel(&self) -> BiscuitResult<()> {
        let mut usage = self.inner.usage.lock();
        if usage.channels >= self.inner.quota.max_channels {
            return Err(BiscuitError::NoChannel {
                open: usage.channels,
                limit: self.inner.quota.max_channels,
            });
        }
        usage.channels += 1;
        Ok(())
    }

    /// Returns `n` channels to the envelope.
    pub(crate) fn give_channels(&self, n: usize) {
        let mut usage = self.inner.usage.lock();
        debug_assert!(usage.channels >= n, "session channel underflow");
        usage.channels -= n;
    }

    /// Charges `bytes` of device user memory to the session.
    ///
    /// # Errors
    ///
    /// Returns [`BiscuitError::InvalidState`] describing the quota breach.
    pub(crate) fn take_memory(&self, bytes: u64) -> BiscuitResult<()> {
        let mut usage = self.inner.usage.lock();
        if usage.memory + bytes > self.inner.quota.max_memory {
            return Err(BiscuitError::InvalidState(format!(
                "session '{}' memory quota exceeded: {} + {} > {}",
                self.inner.name, usage.memory, bytes, self.inner.quota.max_memory
            )));
        }
        usage.memory += bytes;
        usage.peak_memory = usage.peak_memory.max(usage.memory);
        Ok(())
    }

    /// Returns `bytes` of device user memory to the session envelope.
    pub(crate) fn give_memory(&self, bytes: u64) {
        let mut usage = self.inner.usage.lock();
        debug_assert!(usage.memory >= bytes, "session memory underflow");
        usage.memory -= bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_quota_enforced() {
        let s = Session::new(
            "alice",
            SessionQuota {
                max_channels: 2,
                max_memory: 1 << 20,
            },
        );
        s.take_channel().unwrap();
        s.take_channel().unwrap();
        assert!(matches!(
            s.take_channel(),
            Err(BiscuitError::NoChannel { open: 2, limit: 2 })
        ));
        s.give_channels(1);
        s.take_channel().unwrap();
        assert_eq!(s.channels_in_use(), 2);
    }

    #[test]
    fn memory_quota_enforced_and_peak_tracked() {
        let s = Session::new(
            "bob",
            SessionQuota {
                max_channels: 1,
                max_memory: 100,
            },
        );
        s.take_memory(60).unwrap();
        assert!(s.take_memory(50).is_err());
        s.take_memory(40).unwrap();
        s.give_memory(100);
        assert_eq!(s.memory_in_use(), 0);
        assert_eq!(s.peak_memory(), 100);
    }

    #[test]
    fn sessions_are_independent() {
        let a = Session::new(
            "a",
            SessionQuota {
                max_channels: 1,
                max_memory: 10,
            },
        );
        let b = Session::new(
            "b",
            SessionQuota {
                max_channels: 1,
                max_memory: 10,
            },
        );
        a.take_channel().unwrap();
        a.take_memory(10).unwrap();
        // b unaffected by a's exhaustion.
        b.take_channel().unwrap();
        b.take_memory(10).unwrap();
    }
}
