//! Framework error types.

use biscuit_fs::FsError;
use biscuit_ssd::memory::OutOfDeviceMemory;
use biscuit_ssd::DeviceError;

/// Errors surfaced by the Biscuit runtime and host library.
#[derive(Debug)]
pub enum BiscuitError {
    /// No module loaded under this id.
    ModuleNotFound(u64),
    /// The module does not register an SSDlet under this identifier.
    SsdletNotRegistered {
        /// Module name.
        module: String,
        /// Requested SSDlet identifier.
        id: String,
    },
    /// A port connection's data types disagree (Biscuit forbids implicit
    /// conversion — §III-C).
    TypeMismatch {
        /// What the port declares.
        expected: String,
        /// What the connection supplied.
        found: String,
    },
    /// A port index beyond the SSDlet's declared ports.
    PortOutOfRange {
        /// SSDlet identifier.
        ssdlet: String,
        /// Requested port index.
        port: usize,
        /// Declared port count.
        declared: usize,
    },
    /// The port already has a connection that the requested topology
    /// (SPSC-only for boundary ports) does not allow.
    ConnectionNotAllowed(String),
    /// An operation was issued in the wrong application lifecycle state.
    InvalidState(String),
    /// A module is still in use (running SSDlets) and cannot be unloaded.
    ModuleBusy(u64),
    /// The device user memory arena could not satisfy instantiation.
    OutOfMemory(OutOfDeviceMemory),
    /// The channel pool is exhausted (too many open data channels).
    NoChannel {
        /// Open channels.
        open: usize,
        /// Pool limit.
        limit: usize,
    },
    /// An SSDlet argument had an unexpected type.
    BadArgument(String),
    /// A send or receive hit a port whose peer already closed.
    PortClosed {
        /// Connection label (e.g. `app:filter.out0->host`).
        port: String,
    },
    /// A host-side receive exceeded its deadline (fault-recovery path:
    /// the caller typically falls back to a host-side plan).
    RequestTimeout {
        /// Connection label the host was receiving on.
        port: String,
        /// The configured timeout that elapsed.
        timeout: biscuit_sim::time::SimDuration,
    },
    /// An SSDlet panicked and exhausted its restart budget; the owning
    /// application is marked failed.
    SsdletPanicked {
        /// Fiber name of the failing SSDlet instance.
        ssdlet: String,
        /// Restarts attempted before giving up.
        restarts: u32,
    },
    /// Filesystem failure.
    Fs(FsError),
    /// Device failure.
    Device(DeviceError),
}

impl std::fmt::Display for BiscuitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BiscuitError::ModuleNotFound(id) => write!(f, "module {id} not loaded"),
            BiscuitError::SsdletNotRegistered { module, id } => {
                write!(f, "module '{module}' has no SSDlet registered as '{id}'")
            }
            BiscuitError::TypeMismatch { expected, found } => {
                write!(f, "port type mismatch: expected {expected}, found {found}")
            }
            BiscuitError::PortOutOfRange {
                ssdlet,
                port,
                declared,
            } => write!(
                f,
                "port {port} out of range for '{ssdlet}' ({declared} declared)"
            ),
            BiscuitError::ConnectionNotAllowed(msg) => write!(f, "connection not allowed: {msg}"),
            BiscuitError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            BiscuitError::ModuleBusy(id) => write!(f, "module {id} has running SSDlets"),
            BiscuitError::OutOfMemory(e) => write!(f, "device memory: {e}"),
            BiscuitError::NoChannel { open, limit } => {
                write!(f, "channel pool exhausted ({open}/{limit} open)")
            }
            BiscuitError::BadArgument(msg) => write!(f, "bad SSDlet argument: {msg}"),
            BiscuitError::PortClosed { port } => write!(f, "port '{port}' closed"),
            BiscuitError::RequestTimeout { port, timeout } => write!(
                f,
                "receive on port '{port}' timed out after {}us",
                timeout.as_micros()
            ),
            BiscuitError::SsdletPanicked { ssdlet, restarts } => {
                write!(f, "SSDlet '{ssdlet}' panicked after {restarts} restart(s)")
            }
            BiscuitError::Fs(e) => write!(f, "filesystem: {e}"),
            BiscuitError::Device(e) => write!(f, "device: {e}"),
        }
    }
}

impl std::error::Error for BiscuitError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BiscuitError::Fs(e) => Some(e),
            BiscuitError::Device(e) => Some(e),
            BiscuitError::OutOfMemory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for BiscuitError {
    fn from(e: FsError) -> Self {
        BiscuitError::Fs(e)
    }
}

impl From<DeviceError> for BiscuitError {
    fn from(e: DeviceError) -> Self {
        BiscuitError::Device(e)
    }
}

impl From<OutOfDeviceMemory> for BiscuitError {
    fn from(e: OutOfDeviceMemory) -> Self {
        BiscuitError::OutOfMemory(e)
    }
}

/// Result alias for framework operations.
pub type BiscuitResult<T> = Result<T, BiscuitError>;
