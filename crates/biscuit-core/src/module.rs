//! SSDlet modules: registration, specs, and dynamic loading units.
//!
//! An SSDlet module is the deployable unit Biscuit loads onto the SSD at run
//! time (paper §III-B, §IV-B "Dynamic Module Loading"). A module carries one
//! or more registered SSDlet classes (`RegisterSSDLet` in Code 2); the host
//! instantiates them by identifier. Because user application development is
//! decoupled from firmware, loading a module never requires recompiling the
//! device runtime — here, a module is a bundle of factory closures plus
//! declared port types, and "loading" charges the transfer + symbol
//! relocation time of the module image.

use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{BiscuitError, BiscuitResult};
use crate::task::{Ssdlet, TaskArgs};

/// Declared type of one port.
#[derive(Debug, Clone, Copy)]
pub struct PortDecl {
    pub(crate) type_id: TypeId,
    pub(crate) type_name: &'static str,
}

/// Declares a port of type `T`.
pub fn port_of<T: Any>() -> PortDecl {
    PortDecl {
        type_id: TypeId::of::<T>(),
        type_name: std::any::type_name::<T>(),
    }
}

/// An SSDlet class's interface: its typed ports and memory footprint.
///
/// Mirrors the paper's `SSDLet<IN_TYPE, OUT_TYPE, ARG_TYPE>` template
/// parameters, generalized to arbitrary port counts.
#[derive(Debug, Clone, Default)]
pub struct SsdletSpec {
    /// Input port types, in index order.
    pub inputs: Vec<PortDecl>,
    /// Output port types, in index order.
    pub outputs: Vec<PortDecl>,
    /// Memory charged to the device's user arena per instance (0 = use the
    /// runtime default).
    pub memory_bytes: u64,
}

impl SsdletSpec {
    /// Creates an empty spec (no ports).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an input port of type `T`.
    #[must_use]
    pub fn input<T: Any>(mut self) -> Self {
        self.inputs.push(port_of::<T>());
        self
    }

    /// Appends an output port of type `T`.
    #[must_use]
    pub fn output<T: Any>(mut self) -> Self {
        self.outputs.push(port_of::<T>());
        self
    }

    /// Sets the per-instance memory footprint.
    #[must_use]
    pub fn memory(mut self, bytes: u64) -> Self {
        self.memory_bytes = bytes;
        self
    }
}

type Factory = Box<dyn Fn(TaskArgs) -> BiscuitResult<Box<dyn Ssdlet>> + Send + Sync>;

pub(crate) struct SsdletEntry {
    pub spec: SsdletSpec,
    pub factory: Factory,
}

/// A compiled SSDlet module, ready to be loaded onto a device.
///
/// # Examples
///
/// ```
/// use biscuit_core::module::{ModuleBuilder, SsdletSpec};
/// use biscuit_core::task::{Ssdlet, TaskCtx};
///
/// struct Doubler;
/// impl Ssdlet for Doubler {
///     fn run(&mut self, ctx: &mut TaskCtx<'_>) {
///         while let Some(v) = ctx.recv::<u64>(0).unwrap() {
///             ctx.send(0, v * 2).unwrap();
///         }
///     }
/// }
///
/// let module = ModuleBuilder::new("math")
///     .register(
///         "idDoubler",
///         SsdletSpec::new().input::<u64>().output::<u64>(),
///         |_args| Ok(Box::new(Doubler)),
///     )
///     .build();
/// assert_eq!(module.name(), "math");
/// ```
#[derive(Clone)]
pub struct SsdletModule {
    inner: Arc<ModuleInner>,
}

pub(crate) struct ModuleInner {
    pub name: String,
    pub binary_size: u64,
    pub entries: HashMap<String, SsdletEntry>,
}

impl std::fmt::Debug for SsdletModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsdletModule")
            .field("name", &self.inner.name)
            .field("ssdlets", &self.inner.entries.len())
            .finish()
    }
}

impl SsdletModule {
    /// The module's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Nominal binary image size (drives load-time charges). The paper's
    /// SSDlet modules are a few hundred KiB.
    pub fn binary_size(&self) -> u64 {
        self.inner.binary_size
    }

    /// Registered SSDlet identifiers.
    pub fn ssdlet_ids(&self) -> Vec<&str> {
        let mut ids: Vec<&str> = self.inner.entries.keys().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }

    pub(crate) fn entry(&self, id: &str) -> BiscuitResult<&SsdletEntry> {
        self.inner
            .entries
            .get(id)
            .ok_or_else(|| BiscuitError::SsdletNotRegistered {
                module: self.inner.name.clone(),
                id: id.to_owned(),
            })
    }
}

/// Builder for [`SsdletModule`] — the Rust analogue of `RegisterSSDLet`.
pub struct ModuleBuilder {
    name: String,
    binary_size: u64,
    entries: HashMap<String, SsdletEntry>,
}

impl std::fmt::Debug for ModuleBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModuleBuilder")
            .field("name", &self.name)
            .finish()
    }
}

impl ModuleBuilder {
    /// Starts a module with a default 128 KiB image size.
    pub fn new(name: impl Into<String>) -> Self {
        ModuleBuilder {
            name: name.into(),
            binary_size: 128 << 10,
            entries: HashMap::new(),
        }
    }

    /// Overrides the nominal binary image size.
    #[must_use]
    pub fn binary_size(mut self, bytes: u64) -> Self {
        self.binary_size = bytes;
        self
    }

    /// Registers an SSDlet class under `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is already registered in this module.
    #[must_use]
    pub fn register<F>(mut self, id: impl Into<String>, spec: SsdletSpec, factory: F) -> Self
    where
        F: Fn(TaskArgs) -> BiscuitResult<Box<dyn Ssdlet>> + Send + Sync + 'static,
    {
        let id = id.into();
        let prev = self.entries.insert(
            id.clone(),
            SsdletEntry {
                spec,
                factory: Box::new(factory),
            },
        );
        assert!(prev.is_none(), "SSDlet id '{id}' registered twice");
        self
    }

    /// Finalizes the module.
    pub fn build(self) -> SsdletModule {
        SsdletModule {
            inner: Arc::new(ModuleInner {
                name: self.name,
                binary_size: self.binary_size,
                entries: self.entries,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskCtx;

    struct Nop;
    impl Ssdlet for Nop {
        fn run(&mut self, _ctx: &mut TaskCtx<'_>) {}
    }

    #[test]
    fn builder_registers_ids() {
        let m = ModuleBuilder::new("m")
            .register("a", SsdletSpec::new(), |_| Ok(Box::new(Nop)))
            .register("b", SsdletSpec::new(), |_| Ok(Box::new(Nop)))
            .build();
        assert_eq!(m.ssdlet_ids(), vec!["a", "b"]);
        assert!(m.entry("a").is_ok());
        assert!(matches!(
            m.entry("zzz"),
            Err(BiscuitError::SsdletNotRegistered { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_id_panics() {
        let _ = ModuleBuilder::new("m")
            .register("a", SsdletSpec::new(), |_| Ok(Box::new(Nop)))
            .register("a", SsdletSpec::new(), |_| Ok(Box::new(Nop)));
    }

    #[test]
    fn spec_collects_ports() {
        let s = SsdletSpec::new()
            .input::<String>()
            .input::<u64>()
            .output::<(String, u32)>()
            .memory(1024);
        assert_eq!(s.inputs.len(), 2);
        assert_eq!(s.outputs.len(), 1);
        assert_eq!(s.memory_bytes, 1024);
        assert_eq!(s.inputs[1].type_id, TypeId::of::<u64>());
    }
}
