//! The SSDlet abstraction and its execution context.
//!
//! An SSDlet is "a simple C++ program written with Biscuit APIs ... a unit
//! of execution independently scheduled" (paper §III-B). Here it is a trait
//! whose `run` executes on a device fiber. The [`TaskCtx`] hands the SSDlet
//! its typed ports, its startup arguments, its file handles, and the means
//! to charge device-CPU compute time — everything `libslet` provides on the
//! real hardware.

use std::any::Any;
use std::sync::Arc;

use biscuit_proto::HostLink;
use biscuit_sim::qprof::Stage;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::Ctx;
use biscuit_ssd::SsdDevice;

use crate::config::CoreConfig;
use crate::error::{BiscuitError, BiscuitResult};
use crate::port::Connection;

/// Startup arguments handed to an SSDlet factory (the `ARG_TYPE` of the
/// paper's `SSDLet` template).
pub type TaskArgs = Option<Box<dyn Any + Send>>;

/// Extracts a typed argument from [`TaskArgs`].
///
/// # Errors
///
/// Returns [`BiscuitError::BadArgument`] when the argument is missing or of
/// a different type.
pub fn args_as<T: Any>(args: TaskArgs) -> BiscuitResult<T> {
    match args {
        None => Err(BiscuitError::BadArgument(format!(
            "expected {} argument, got none",
            std::any::type_name::<T>()
        ))),
        Some(b) => b.downcast::<T>().map(|b| *b).map_err(|_| {
            BiscuitError::BadArgument(format!("argument is not a {}", std::any::type_name::<T>()))
        }),
    }
}

/// A device-resident task (paper Code 1's `SSDLet::run`).
pub trait Ssdlet: Send {
    /// The SSDlet body. Called once on a device fiber after all
    /// communication channels are set up (`Application::start`).
    fn run(&mut self, ctx: &mut TaskCtx<'_>);
}

/// Everything an SSDlet can reach at run time.
pub struct TaskCtx<'a> {
    pub(crate) sim: &'a Ctx,
    pub(crate) name: String,
    pub(crate) inputs: Vec<Option<Arc<Connection>>>,
    pub(crate) outputs: Vec<Option<Arc<Connection>>>,
    pub(crate) cfg: Arc<CoreConfig>,
    pub(crate) link: Arc<HostLink>,
    pub(crate) device: Arc<SsdDevice>,
    pub(crate) core: usize,
}

impl std::fmt::Debug for TaskCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskCtx")
            .field("name", &self.name)
            .field("core", &self.core)
            .finish()
    }
}

impl<'a> TaskCtx<'a> {
    /// The instance's name (application + SSDlet identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The underlying simulation context, for APIs that take [`Ctx`]
    /// directly (file reads, sleeps).
    pub fn sim(&self) -> &'a Ctx {
        self.sim
    }

    /// The device this SSDlet runs inside.
    pub fn device(&self) -> &Arc<SsdDevice> {
        &self.device
    }

    /// Number of connected input ports (declared, whether wired or not).
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of declared output ports.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    fn input(&self, idx: usize) -> BiscuitResult<&Arc<Connection>> {
        self.inputs
            .get(idx)
            .ok_or_else(|| BiscuitError::PortOutOfRange {
                ssdlet: self.name.clone(),
                port: idx,
                declared: self.inputs.len(),
            })?
            .as_ref()
            .ok_or_else(|| {
                BiscuitError::InvalidState(format!(
                    "input port {idx} of '{}' is not connected",
                    self.name
                ))
            })
    }

    fn output(&self, idx: usize) -> BiscuitResult<&Arc<Connection>> {
        self.outputs
            .get(idx)
            .ok_or_else(|| BiscuitError::PortOutOfRange {
                ssdlet: self.name.clone(),
                port: idx,
                declared: self.outputs.len(),
            })?
            .as_ref()
            .ok_or_else(|| {
                BiscuitError::InvalidState(format!(
                    "output port {idx} of '{}' is not connected",
                    self.name
                ))
            })
    }

    /// Receives the next value on input port `idx`, blocking in virtual
    /// time. Returns `Ok(None)` at end-of-stream (all producers finished).
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown/unconnected port or a type mismatch.
    pub fn recv<T: Any + Send>(&self, idx: usize) -> BiscuitResult<Option<T>> {
        let conn = self.input(idx)?;
        if conn.type_id != std::any::TypeId::of::<T>() {
            return Err(BiscuitError::TypeMismatch {
                expected: conn.type_name.to_owned(),
                found: std::any::type_name::<T>().to_owned(),
            });
        }
        match conn.recv_on_device(self.sim, &self.cfg) {
            None => Ok(None),
            Some(v) => Ok(Some(
                *v.downcast::<T>()
                    .expect("connection type checked at connect"),
            )),
        }
    }

    /// Sends a value on output port `idx`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns an error for an unknown/unconnected port, a type mismatch, or
    /// a closed connection.
    pub fn send<T: Any + Send>(&self, idx: usize, value: T) -> BiscuitResult<()> {
        let conn = self.output(idx)?;
        if conn.type_id != std::any::TypeId::of::<T>() {
            return Err(BiscuitError::TypeMismatch {
                expected: conn.type_name.to_owned(),
                found: std::any::type_name::<T>().to_owned(),
            });
        }
        conn.send_from_device(self.sim, &self.cfg, &self.link, Box::new(value))
    }

    /// Charges `d` of compute time on this application's device core.
    /// Concurrent SSDlets of other applications pinned to the same core
    /// queue behind it — the paper's per-application multi-core scheduling.
    pub fn compute(&self, d: SimDuration) {
        self.compute_charged(d, 0);
    }

    /// Charges compute for software-processing `bytes` at the device CPU
    /// scan rate (what an SSDlet pays to grovel data *without* the
    /// pattern-matcher IP).
    pub fn compute_bytes(&self, bytes: u64) {
        let rate = self.device.config().cpu_scan_rate;
        self.compute_charged(SimDuration::for_bytes(bytes, rate), bytes);
    }

    /// The charge itself plus its query-profile span. The recorded window
    /// includes queueing behind other applications on the same core; the
    /// profiler's sweep attributes overlap to the innermost span, so the
    /// queued portion surfaces as blocked time, not double-counted compute.
    fn compute_charged(&self, d: SimDuration, bytes: u64) {
        let t0 = self.sim.now();
        self.device.cores().serve(self.sim, self.core, d);
        self.sim
            .qprof()
            .record(Stage::SsdletCompute, t0, self.sim.now(), bytes, self.core as u32);
    }

    /// Cooperative yield (the paper's explicit `yield` call).
    pub fn yield_now(&self) {
        self.sim.yield_now();
    }
}
