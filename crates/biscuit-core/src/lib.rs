//! # biscuit-core — the Biscuit near-data-processing framework
//!
//! A faithful Rust reproduction of the programming model of *Biscuit: A
//! Framework for Near-Data Processing of Big Data Workloads* (ISCA 2016):
//! flow-based applications whose tasks ("SSDlets") run inside the SSD,
//! connected by typed, data-ordered ports.
//!
//! ## Crate layout
//!
//! - [`task::Ssdlet`] + [`task::TaskCtx`] — the device-side task API
//!   (`libslet`).
//! - [`module`] — SSDlet registration and dynamically loadable modules.
//! - [`app::Application`] — the host-side coordination API (`libsisc`):
//!   instantiate proxies, `connect` / `connect_to` / `connect_from`,
//!   `start`, `join`.
//! - [`ssd::Ssd`] — the host handle: `load_module` / `unload_module`.
//! - [`port`] — the three port kinds with Table II latency structure.
//! - [`runtime`] — the in-device cooperative runtime that schedules loaded
//!   SSDlets onto the device CPU cores.
//! - [`session`] — multi-user sessions with channel/memory quotas (a paper
//!   §VII follow-on).
//! - [`config`] / [`error`] — [`CoreConfig`], [`BiscuitError`] /
//!   [`BiscuitResult`].
//!
//! The whole stack is observable: [`ssd::Ssd::attach_tracer`] wires a
//! [`biscuit_sim::Tracer`] through the device datapath, the host link, and
//! every port connection created afterwards, so port traffic shows up as
//! labelled send/recv events and queue-depth counters (see
//! `docs/TRACING.md` at the repo root).
//!
//! ## Example: square numbers on the "SSD"
//!
//! ```
//! use biscuit_core::module::{ModuleBuilder, SsdletSpec};
//! use biscuit_core::task::{Ssdlet, TaskCtx};
//! use biscuit_core::{Application, CoreConfig, Ssd};
//! use biscuit_fs::Fs;
//! use biscuit_sim::Simulation;
//! use biscuit_ssd::{SsdConfig, SsdDevice};
//! use std::sync::Arc;
//!
//! struct Square;
//! impl Ssdlet for Square {
//!     fn run(&mut self, ctx: &mut TaskCtx<'_>) {
//!         while let Some(v) = ctx.recv::<u64>(0).unwrap() {
//!             ctx.send(0, v * v).unwrap();
//!         }
//!     }
//! }
//!
//! let dev = Arc::new(SsdDevice::new(SsdConfig {
//!     logical_capacity: 16 << 20,
//!     ..SsdConfig::paper_default()
//! }));
//! let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
//! let sim = Simulation::new(0);
//! let ssd2 = ssd.clone();
//! sim.spawn("host", move |ctx| {
//!     let module = ModuleBuilder::new("math")
//!         .register("idSquare", SsdletSpec::new().input::<u64>().output::<u64>(),
//!                   |_| Ok(Box::new(Square)))
//!         .build();
//!     let mid = ssd2.load_module(ctx, module).unwrap();
//!     let app = Application::new(&ssd2, "squares");
//!     let sq = app.ssdlet(mid, "idSquare").unwrap();
//!     let tx = app.connect_from::<u64>(sq.input(0)).unwrap();
//!     let rx = app.connect_to::<u64>(sq.out(0)).unwrap();
//!     app.start(ctx).unwrap();
//!     for i in 1..=3 {
//!         tx.put(ctx, i).unwrap();
//!     }
//!     tx.close(ctx);
//!     let got: Vec<u64> = std::iter::from_fn(|| rx.get(ctx)).collect();
//!     assert_eq!(got, vec![1, 4, 9]);
//!     app.join(ctx);
//!     ssd2.unload_module(ctx, mid).unwrap();
//! });
//! sim.run().assert_quiescent();
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod config;
pub mod error;
pub mod module;
pub mod port;
pub mod runtime;
pub mod session;
pub mod ssd;
pub mod task;

pub use app::{connect_apps, Application, InRef, OutRef, SsdletHandle};
pub use config::CoreConfig;
pub use error::{BiscuitError, BiscuitResult};
pub use module::{ModuleBuilder, SsdletModule, SsdletSpec};
pub use port::{HostInPort, HostOutPort, PortKind};
pub use runtime::{DeviceRuntime, ModuleId};
pub use session::{Session, SessionQuota};
pub use ssd::Ssd;
pub use task::{args_as, Ssdlet, TaskArgs, TaskCtx};
