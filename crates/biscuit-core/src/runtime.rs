//! Device-side runtime bookkeeping: loaded modules, core assignment,
//! channel pool accounting.
//!
//! The Biscuit runtime "centrally mediates access to SSD resources and has
//! complete control over all events occurring in the framework" (paper
//! §IV-B). This module is that mediator's ledger; the timed actions (load
//! charges, command round-trips) live in [`crate::ssd`].

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::error::{BiscuitError, BiscuitResult};
use crate::module::SsdletModule;

/// Identifier of a loaded module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModuleId(pub(crate) u64);

#[derive(Default)]
struct RtState {
    next_module: u64,
    modules: HashMap<u64, SsdletModule>,
    running_tasks: HashMap<u64, usize>,
    next_core: usize,
    open_channels: usize,
}

/// The runtime ledger (one per device).
#[derive(Default)]
pub struct DeviceRuntime {
    state: Mutex<RtState>,
}

impl std::fmt::Debug for DeviceRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock();
        f.debug_struct("DeviceRuntime")
            .field("modules", &st.modules.len())
            .field("open_channels", &st.open_channels)
            .finish()
    }
}

impl DeviceRuntime {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn register_module(&self, module: SsdletModule) -> ModuleId {
        let mut st = self.state.lock();
        let id = st.next_module;
        st.next_module += 1;
        st.modules.insert(id, module);
        st.running_tasks.insert(id, 0);
        ModuleId(id)
    }

    pub(crate) fn unregister_module(&self, id: ModuleId) -> BiscuitResult<()> {
        let mut st = self.state.lock();
        match st.running_tasks.get(&id.0) {
            None => return Err(BiscuitError::ModuleNotFound(id.0)),
            Some(&n) if n > 0 => return Err(BiscuitError::ModuleBusy(id.0)),
            Some(_) => {}
        }
        st.modules.remove(&id.0);
        st.running_tasks.remove(&id.0);
        Ok(())
    }

    pub(crate) fn module(&self, id: ModuleId) -> BiscuitResult<SsdletModule> {
        self.state
            .lock()
            .modules
            .get(&id.0)
            .cloned()
            .ok_or(BiscuitError::ModuleNotFound(id.0))
    }

    /// Round-robin application-to-core assignment (the paper schedules
    /// whole applications, not SSDlets, across cores).
    pub(crate) fn assign_core(&self, cores: usize) -> usize {
        let mut st = self.state.lock();
        let core = st.next_core % cores;
        st.next_core += 1;
        core
    }

    pub(crate) fn task_started(&self, id: ModuleId) {
        *self
            .state
            .lock()
            .running_tasks
            .get_mut(&id.0)
            .expect("module exists while tasks run") += 1;
    }

    pub(crate) fn task_finished(&self, id: ModuleId) {
        let mut st = self.state.lock();
        let n = st
            .running_tasks
            .get_mut(&id.0)
            .expect("module exists while tasks run");
        debug_assert!(*n > 0);
        *n -= 1;
    }

    /// Number of modules currently loaded.
    pub fn loaded_modules(&self) -> usize {
        self.state.lock().modules.len()
    }

    /// Currently open host↔device data channels.
    pub fn open_channels(&self) -> usize {
        self.state.lock().open_channels
    }

    pub(crate) fn alloc_channel(&self, limit: usize) -> BiscuitResult<()> {
        let mut st = self.state.lock();
        if st.open_channels >= limit {
            return Err(BiscuitError::NoChannel {
                open: st.open_channels,
                limit,
            });
        }
        st.open_channels += 1;
        Ok(())
    }

    pub(crate) fn free_channels(&self, n: usize) {
        let mut st = self.state.lock();
        debug_assert!(st.open_channels >= n, "channel pool underflow");
        st.open_channels -= n;
    }
}
