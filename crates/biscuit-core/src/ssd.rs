//! The host-side SSD handle — the root object of `libsisc` (paper Code 3's
//! `SSD ssd("/dev/nvme0n1")`).
//!
//! Owns the device, its filesystem, the host link, and the runtime ledger.
//! Module loading and unloading charge realistic virtual time: a control
//! command over the link, the module image DMA, and device-side symbol
//! relocation at the (slow) module-processing rate.

use std::sync::{Arc, OnceLock};

use biscuit_fs::Fs;
use biscuit_proto::{HostLink, LinkConfig};
use biscuit_sim::qprof::QueryProfiler;
use biscuit_sim::time::SimDuration;
use biscuit_sim::{Ctx, FaultPlan, MetricsRegistry, Tracer};
use biscuit_ssd::SsdDevice;

use crate::config::CoreConfig;
use crate::error::BiscuitResult;
use crate::module::SsdletModule;
use crate::runtime::{DeviceRuntime, ModuleId};

/// Host-side handle to a Biscuit-enabled SSD (cheaply cloneable).
///
/// # Examples
///
/// ```
/// use biscuit_core::{CoreConfig, Ssd};
/// use biscuit_fs::Fs;
/// use biscuit_ssd::{SsdConfig, SsdDevice};
/// use std::sync::Arc;
///
/// let dev = Arc::new(SsdDevice::new(SsdConfig {
///     logical_capacity: 16 << 20,
///     ..SsdConfig::paper_default()
/// }));
/// let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
/// assert_eq!(ssd.runtime().loaded_modules(), 0);
/// ```
#[derive(Clone)]
pub struct Ssd {
    inner: Arc<SsdShared>,
}

pub(crate) struct SsdShared {
    pub device: Arc<SsdDevice>,
    pub fs: Fs,
    pub link: Arc<HostLink>,
    pub cfg: Arc<CoreConfig>,
    pub rt: DeviceRuntime,
    pub trace: OnceLock<Tracer>,
    pub metrics: OnceLock<MetricsRegistry>,
    pub fault: OnceLock<FaultPlan>,
}

impl std::fmt::Debug for Ssd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ssd")
            .field("runtime", &self.inner.rt)
            .finish()
    }
}

impl Ssd {
    /// Wraps a formatted/mounted filesystem in a Biscuit host handle with
    /// the default PCIe Gen.3 x4 link.
    pub fn new(fs: Fs, cfg: CoreConfig) -> Ssd {
        Self::with_link(fs, cfg, Arc::new(HostLink::new(LinkConfig::pcie_gen3_x4())))
    }

    /// Wraps a filesystem with an explicit link model (shared with a Conv
    /// I/O path in experiments that exercise both).
    pub fn with_link(fs: Fs, cfg: CoreConfig, link: Arc<HostLink>) -> Ssd {
        Ssd {
            inner: Arc::new(SsdShared {
                device: Arc::clone(fs.device()),
                fs,
                link,
                cfg: Arc::new(cfg),
                rt: DeviceRuntime::new(),
                trace: OnceLock::new(),
                metrics: OnceLock::new(),
                fault: OnceLock::new(),
            }),
        }
    }

    /// Enables structured tracing for the whole platform in one call: the
    /// device datapath (NAND, buses, pattern matchers, cores), the host
    /// link's DMA directions, port traffic of applications built on this
    /// handle, and the DB planner's offload verdicts all record into
    /// `tracer`. Pass `sim.tracer()` after `sim.enable_trace(..)`. The
    /// first call wins; later calls are ignored.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        self.inner.device.attach_tracer(tracer);
        self.inner.link.attach_tracer(tracer);
        if let Some(plan) = self.inner.fault.get() {
            plan.attach_tracer(tracer);
        }
        let _ = self.inner.trace.set(tracer.clone());
    }

    /// The tracer attached via [`Ssd::attach_tracer`], if any.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.inner.trace.get()
    }

    /// Attaches the query profiler to the whole platform in one call: the
    /// device datapath (NAND senses, bus transfers, pattern-matcher streams,
    /// per-request core overhead) records spans of whichever query context
    /// the calling fiber carries; port traffic and SSDlet compute already
    /// record through the simulation context. Pass `sim.qprof()` after
    /// `sim.enable_qprof()`. The first call wins; later calls are ignored.
    pub fn attach_qprof(&self, prof: &QueryProfiler) {
        self.inner.device.attach_qprof(prof);
    }

    /// Registers the whole platform in an aggregate metrics registry in one
    /// call: per-channel NAND/bus/pattern-matcher counters, FTL lookups and
    /// core spans from the device, both host-link DMA directions, the port
    /// counters of applications built on this handle, and the DB planner's
    /// offload verdict counters. Pass `sim.metrics()` after
    /// `sim.enable_metrics()`. The first call wins; later calls are ignored.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        self.inner.device.attach_metrics(registry);
        self.inner.link.attach_metrics(registry);
        if let Some(plan) = self.inner.fault.get() {
            plan.attach_metrics(registry);
        }
        let _ = self.inner.metrics.set(registry.clone());
    }

    /// The registry attached via [`Ssd::attach_metrics`], if any.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.metrics.get()
    }

    /// Arms the whole platform with a fault plan in one call: the device's
    /// NAND/core sites, both host-link DMA directions, SSDlet panic/stall
    /// injection in applications built on this handle, and the host-side
    /// request-timeout policy all draw from `plan`. Any tracer or registry
    /// already attached (or attached later) also receives the plan's fault
    /// events. The first call wins; a [`FaultPlan::none`] plan (or no call)
    /// leaves every path byte-identical to the fault-free platform.
    pub fn attach_fault_plan(&self, plan: &FaultPlan) {
        self.inner.device.set_fault_plan(plan);
        self.inner.link.set_fault_plan(plan);
        if let Some(tracer) = self.inner.trace.get() {
            plan.attach_tracer(tracer);
        }
        if let Some(registry) = self.inner.metrics.get() {
            plan.attach_metrics(registry);
        }
        let _ = self.inner.fault.set(plan.clone());
    }

    /// The fault plan armed via [`Ssd::attach_fault_plan`], or the inert
    /// [`FaultPlan::none`] when the platform runs fault-free.
    pub fn fault_plan(&self) -> FaultPlan {
        self.inner
            .fault
            .get()
            .cloned()
            .unwrap_or_else(FaultPlan::none)
    }

    /// The simulated device.
    pub fn device(&self) -> &Arc<SsdDevice> {
        &self.inner.device
    }

    /// The on-device filesystem.
    pub fn fs(&self) -> &Fs {
        &self.inner.fs
    }

    /// The host link shared by Biscuit channels and Conv I/O.
    pub fn link(&self) -> &Arc<HostLink> {
        &self.inner.link
    }

    /// The runtime configuration.
    pub fn config(&self) -> &Arc<CoreConfig> {
        &self.inner.cfg
    }

    /// The runtime ledger.
    pub fn runtime(&self) -> &DeviceRuntime {
        &self.inner.rt
    }

    /// Loads a module onto the device (paper Code 3: `ssd.loadModule`).
    /// Charges the control command, the image transfer, and device-side
    /// relocation/linking time.
    ///
    /// # Errors
    ///
    /// Currently infallible in the ledger; the `Result` covers future
    /// device-side failures and keeps the paper's fallible signature.
    pub fn load_module(&self, ctx: &Ctx, module: SsdletModule) -> BiscuitResult<ModuleId> {
        let cfg = &self.inner.cfg;
        // Host sends the load command + module image.
        ctx.sleep(cfg.cm_send_host);
        let dma_end = self
            .inner
            .link
            .enqueue_dma_to_device(ctx.now(), module.binary_size());
        ctx.sleep_until(dma_end + cfg.link_fixed);
        // Device relocates symbols and registers the module.
        let relocation = cfg.module_link_cost
            + SimDuration::for_bytes(module.binary_size(), cfg.module_load_rate);
        let (core, _) = self.inner.device.cores().least_loaded();
        let done = self
            .inner
            .device
            .cores()
            .enqueue(ctx.now(), core, relocation);
        ctx.sleep_until(done);
        let id = self.inner.rt.register_module(module);
        // Completion response to the host.
        ctx.sleep(cfg.cm_send_device + cfg.link_fixed + cfg.cm_recv_host);
        Ok(id)
    }

    /// Unloads a module (paper Code 3: `ssd.unloadModule`).
    ///
    /// # Errors
    ///
    /// Returns [`crate::BiscuitError::ModuleBusy`] while any of its SSDlets
    /// run, or [`crate::BiscuitError::ModuleNotFound`].
    pub fn unload_module(&self, ctx: &Ctx, id: ModuleId) -> BiscuitResult<()> {
        self.control_roundtrip(ctx);
        self.inner.rt.unregister_module(id)
    }

    /// Charges one host→device command and its device→host response.
    pub(crate) fn control_roundtrip(&self, ctx: &Ctx) {
        let cfg = &self.inner.cfg;
        ctx.sleep(cfg.h2d_latency());
        ctx.sleep(cfg.d2h_latency());
    }
}
