//! Applications: groups of cooperating SSDlets and their dataflow wiring
//! (paper §III-B, Code 3).
//!
//! A host program creates an [`Application`], instantiates proxy SSDlets
//! from loaded modules, wires ports with [`Application::connect`] (typed,
//! inter-SSDlet), [`Application::connect_to`]/[`Application::connect_from`]
//! (host↔device, `Packet`-codec, SPSC only), or [`connect_apps`]
//! (inter-application, SPSC only), and calls [`Application::start`] —
//! which "makes sure that all SSDlets begin execution after their
//! communication channels are completely set up".
//!
//! Type checking is aggressive (paper §III-A): every connection validates
//! the declared port types of both endpoints against the connection's type
//! parameter, and SPSC-only topologies are enforced for boundary ports.

use std::any::{Any, TypeId};
use std::marker::PhantomData;
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_proto::wire::Wire;
use biscuit_sim::fault::{FaultSite, SsdletDisruption};
use biscuit_sim::queue::WaitQueue;
use biscuit_sim::Ctx;
use biscuit_ssd::memory::{Arena, MemoryGrant};

use crate::error::{BiscuitError, BiscuitResult};
use crate::module::{PortDecl, SsdletSpec};
use crate::port::{Codec, Connection, HostInPort, HostOutPort, PortKind};
use crate::runtime::ModuleId;
use crate::session::Session;
use crate::ssd::Ssd;
use crate::task::{TaskArgs, TaskCtx};

/// Reference to an SSDlet's output port within one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutRef {
    task: usize,
    port: usize,
}

/// Reference to an SSDlet's input port within one application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InRef {
    task: usize,
    port: usize,
}

/// Host-side proxy for an SSDlet instance (the `SSDLet` of `libsisc`).
#[derive(Debug, Clone, Copy)]
pub struct SsdletHandle {
    task: usize,
}

impl SsdletHandle {
    /// This SSDlet's output port `i`.
    pub fn out(&self, i: usize) -> OutRef {
        OutRef {
            task: self.task,
            port: i,
        }
    }

    /// This SSDlet's input port `i`.
    pub fn input(&self, i: usize) -> InRef {
        InRef {
            task: self.task,
            port: i,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Building,
    Started,
}

struct TaskSlot {
    mid: ModuleId,
    id: String,
    spec: SsdletSpec,
    args: TaskArgs,
    inputs: Vec<Option<Arc<Connection>>>,
    outputs: Vec<Option<Arc<Connection>>>,
}

struct AppState {
    phase: Phase,
    tasks: Vec<TaskSlot>,
    host_channels: usize,
}

/// Completion bookkeeping shared with the device fibers.
struct AppShared {
    remaining: Mutex<usize>,
    done: WaitQueue,
    grants: Mutex<Vec<MemoryGrant>>,
    /// Device user memory charged to the owning session, returned at
    /// application teardown.
    session_memory: Mutex<u64>,
    /// First SSDlet that died with its restart budget exhausted:
    /// `(fiber name, restarts attempted)`. The application still tears
    /// down cleanly — consumers see closed ports, not a hang — and the
    /// failure surfaces through [`Application::failure`] /
    /// [`Application::join_checked`].
    failed: Mutex<Option<(String, u32)>>,
}

/// A group of SSDlets that run cooperatively (paper §III-B).
pub struct Application {
    ssd: Ssd,
    name: String,
    session: Option<Session>,
    state: Mutex<AppState>,
    shared: Arc<AppShared>,
}

impl std::fmt::Debug for Application {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Application")
            .field("name", &self.name)
            .field("tasks", &self.state.lock().tasks.len())
            .finish()
    }
}

impl Application {
    /// Creates an empty application on the given SSD.
    pub fn new(ssd: &Ssd, name: impl Into<String>) -> Application {
        Self::build(ssd, name, None)
    }

    /// Creates an application owned by a user [`Session`]: its data
    /// channels and device memory draw from the session's quota (the
    /// multi-user support the paper names as its ensuing effort, §VIII).
    pub fn new_in_session(ssd: &Ssd, name: impl Into<String>, session: &Session) -> Application {
        Self::build(ssd, name, Some(session.clone()))
    }

    fn build(ssd: &Ssd, name: impl Into<String>, session: Option<Session>) -> Application {
        Application {
            ssd: ssd.clone(),
            name: name.into(),
            session,
            state: Mutex::new(AppState {
                phase: Phase::Building,
                tasks: Vec::new(),
                host_channels: 0,
            }),
            shared: Arc::new(AppShared {
                remaining: Mutex::new(0),
                done: WaitQueue::new(),
                grants: Mutex::new(Vec::new()),
                session_memory: Mutex::new(0),
                failed: Mutex::new(None),
            }),
        }
    }

    /// Reserves one data channel from the device pool and, when owned by a
    /// session, from the session's envelope too.
    fn alloc_data_channel(&self) -> BiscuitResult<()> {
        self.ssd
            .runtime()
            .alloc_channel(self.ssd.config().max_data_channels)?;
        if let Some(session) = &self.session {
            if let Err(e) = session.take_channel() {
                self.ssd.runtime().free_channels(1);
                return Err(e);
            }
        }
        Ok(())
    }

    /// Instantiates a proxy for SSDlet `id` of module `mid` with no
    /// arguments.
    ///
    /// # Errors
    ///
    /// Returns an error if the module or identifier is unknown, or if the
    /// application already started.
    pub fn ssdlet(&self, mid: ModuleId, id: &str) -> BiscuitResult<SsdletHandle> {
        self.ssdlet_args(mid, id, None)
    }

    /// Instantiates a proxy with a typed argument (paper Code 3's
    /// `make_tuple(File(...))`).
    ///
    /// # Errors
    ///
    /// Same as [`Application::ssdlet`].
    pub fn ssdlet_with<A: Any + Send>(
        &self,
        mid: ModuleId,
        id: &str,
        arg: A,
    ) -> BiscuitResult<SsdletHandle> {
        self.ssdlet_args(mid, id, Some(Box::new(arg)))
    }

    fn ssdlet_args(&self, mid: ModuleId, id: &str, args: TaskArgs) -> BiscuitResult<SsdletHandle> {
        let module = self.ssd.runtime().module(mid)?;
        let spec = module.entry(id)?.spec.clone();
        let mut st = self.state.lock();
        if st.phase != Phase::Building {
            return Err(BiscuitError::InvalidState(
                "cannot add SSDlets after start".into(),
            ));
        }
        let task = st.tasks.len();
        let n_in = spec.inputs.len();
        let n_out = spec.outputs.len();
        st.tasks.push(TaskSlot {
            mid,
            id: id.to_owned(),
            spec,
            args,
            inputs: vec![None; n_in],
            outputs: vec![None; n_out],
        });
        Ok(SsdletHandle { task })
    }

    fn decl_of_out(st: &AppState, r: OutRef) -> BiscuitResult<PortDecl> {
        let slot = st
            .tasks
            .get(r.task)
            .ok_or_else(|| BiscuitError::InvalidState("unknown task handle".into()))?;
        slot.spec
            .outputs
            .get(r.port)
            .copied()
            .ok_or_else(|| BiscuitError::PortOutOfRange {
                ssdlet: slot.id.clone(),
                port: r.port,
                declared: slot.spec.outputs.len(),
            })
    }

    fn decl_of_in(st: &AppState, r: InRef) -> BiscuitResult<PortDecl> {
        let slot = st
            .tasks
            .get(r.task)
            .ok_or_else(|| BiscuitError::InvalidState("unknown task handle".into()))?;
        slot.spec
            .inputs
            .get(r.port)
            .copied()
            .ok_or_else(|| BiscuitError::PortOutOfRange {
                ssdlet: slot.id.clone(),
                port: r.port,
                declared: slot.spec.inputs.len(),
            })
    }

    fn check_type<T: Any>(decl: PortDecl) -> BiscuitResult<()> {
        if decl.type_id != TypeId::of::<T>() {
            return Err(BiscuitError::TypeMismatch {
                expected: decl.type_name.to_owned(),
                found: std::any::type_name::<T>().to_owned(),
            });
        }
        Ok(())
    }

    fn building(&self) -> BiscuitResult<parking_lot::MutexGuard<'_, AppState>> {
        let st = self.state.lock();
        if st.phase != Phase::Building {
            return Err(BiscuitError::InvalidState(
                "connections must be made before start".into(),
            ));
        }
        Ok(st)
    }

    /// Connects two SSDlets of this application with a typed port
    /// (paper Code 3: `wc.connect(mapper1.out(0), shuffler.in(0))`).
    ///
    /// SPSC, SPMC (one output feeding several inputs through a shared
    /// queue), and MPSC (several outputs feeding one input) are all legal,
    /// exactly as in §III-C.
    ///
    /// # Errors
    ///
    /// Returns a type mismatch, range, or state error.
    pub fn connect<T: Any + Send>(&self, out: OutRef, input: InRef) -> BiscuitResult<()> {
        let mut st = self.building()?;
        let out_decl = Self::decl_of_out(&st, out)?;
        let in_decl = Self::decl_of_in(&st, input)?;
        Self::check_type::<T>(out_decl)?;
        Self::check_type::<T>(in_decl)?;
        let existing_out = st.tasks[out.task].outputs[out.port].clone();
        let existing_in = st.tasks[input.task].inputs[input.port].clone();
        match (existing_out, existing_in) {
            (None, None) => {
                let label = format!(
                    "{}:{}.out{}->{}.in{}",
                    self.name, st.tasks[out.task].id, out.port, st.tasks[input.task].id, input.port
                );
                let conn = Connection::new(
                    PortKind::InterSsdlet,
                    out_decl.type_id,
                    out_decl.type_name,
                    self.ssd.config().port_capacity,
                    None,
                    label,
                    self.ssd.tracer().cloned(),
                    self.ssd.metrics().cloned(),
                );
                conn.add_producer();
                st.tasks[out.task].outputs[out.port] = Some(Arc::clone(&conn));
                st.tasks[input.task].inputs[input.port] = Some(conn);
            }
            (Some(conn), None) => {
                // SPMC: another consumer joins the existing queue.
                st.tasks[input.task].inputs[input.port] = Some(conn);
            }
            (None, Some(conn)) => {
                // MPSC: another producer joins the existing queue.
                if conn.kind != PortKind::InterSsdlet {
                    return Err(BiscuitError::ConnectionNotAllowed(
                        "boundary ports are SPSC only".into(),
                    ));
                }
                conn.add_producer();
                st.tasks[out.task].outputs[out.port] = Some(conn);
            }
            (Some(a), Some(b)) => {
                if Arc::ptr_eq(&a, &b) {
                    return Err(BiscuitError::ConnectionNotAllowed(
                        "ports already connected to each other".into(),
                    ));
                }
                return Err(BiscuitError::ConnectionNotAllowed(
                    "both ports already belong to different connections".into(),
                ));
            }
        }
        Ok(())
    }

    /// Connects an SSDlet output to the host program, returning the host
    /// receiving port (paper Code 3:
    /// `wc.connectTo<pair<string,uint32_t>>(reducer.out(0))`).
    ///
    /// # Errors
    ///
    /// Returns a type/state error, or [`BiscuitError::NoChannel`] when the
    /// data-channel pool is exhausted.
    pub fn connect_to<T: Wire + Any + Send>(&self, out: OutRef) -> BiscuitResult<HostInPort<T>> {
        let mut st = self.building()?;
        let decl = Self::decl_of_out(&st, out)?;
        Self::check_type::<T>(decl)?;
        if st.tasks[out.task].outputs[out.port].is_some() {
            return Err(BiscuitError::ConnectionNotAllowed(
                "device-to-host ports are SPSC only".into(),
            ));
        }
        self.alloc_data_channel()?;
        st.host_channels += 1;
        let label = format!(
            "{}:{}.out{}->host",
            self.name, st.tasks[out.task].id, out.port
        );
        let conn = Connection::new(
            PortKind::DeviceToHost,
            decl.type_id,
            decl.type_name,
            self.ssd.config().port_capacity,
            Some(Codec::of::<T>()),
            label,
            self.ssd.tracer().cloned(),
            self.ssd.metrics().cloned(),
        );
        conn.add_producer();
        st.tasks[out.task].outputs[out.port] = Some(Arc::clone(&conn));
        Ok(HostInPort {
            conn,
            cfg: Arc::clone(self.ssd.config()),
            _marker: PhantomData,
        })
    }

    /// Connects the host program to an SSDlet input, returning the host
    /// sending port.
    ///
    /// # Errors
    ///
    /// Returns a type/state error, or [`BiscuitError::NoChannel`] when the
    /// data-channel pool is exhausted.
    pub fn connect_from<T: Wire + Any + Send>(
        &self,
        input: InRef,
    ) -> BiscuitResult<HostOutPort<T>> {
        let mut st = self.building()?;
        let decl = Self::decl_of_in(&st, input)?;
        Self::check_type::<T>(decl)?;
        if st.tasks[input.task].inputs[input.port].is_some() {
            return Err(BiscuitError::ConnectionNotAllowed(
                "host-to-device ports are SPSC only".into(),
            ));
        }
        self.alloc_data_channel()?;
        st.host_channels += 1;
        let label = format!(
            "{}:host->{}.in{}",
            self.name, st.tasks[input.task].id, input.port
        );
        let conn = Connection::new(
            PortKind::HostToDevice,
            decl.type_id,
            decl.type_name,
            self.ssd.config().port_capacity,
            Some(Codec::of::<T>()),
            label,
            self.ssd.tracer().cloned(),
            self.ssd.metrics().cloned(),
        );
        conn.add_producer(); // the host port is the producer
        st.tasks[input.task].inputs[input.port] = Some(Arc::clone(&conn));
        Ok(HostOutPort {
            conn,
            cfg: Arc::clone(self.ssd.config()),
            link: Arc::clone(self.ssd.link()),
            closed: Mutex::new(false),
            _marker: PhantomData,
        })
    }

    /// Starts every SSDlet of the application: instantiates them on the
    /// device, charges their memory to the user arena, pins the application
    /// to a device core, and spawns one fiber per SSDlet.
    ///
    /// # Errors
    ///
    /// Returns an error if already started, if a factory fails, or if the
    /// device user arena cannot hold the instances.
    pub fn start(&self, ctx: &Ctx) -> BiscuitResult<()> {
        let mut st = self.state.lock();
        if st.phase != Phase::Building {
            return Err(BiscuitError::InvalidState(
                "application already started".into(),
            ));
        }
        // Control command to set up channels and kick execution.
        self.ssd.control_roundtrip(ctx);

        let device = Arc::clone(self.ssd.device());
        let cfg = Arc::clone(self.ssd.config());
        let link = Arc::clone(self.ssd.link());
        let core = self.ssd.runtime().assign_core(device.config().cores);

        // Instantiate every SSDlet and charge its memory to the user arena.
        // On any failure, roll back the grants already taken.
        let mut instances = Vec::with_capacity(st.tasks.len());
        let mut grants: Vec<MemoryGrant> = Vec::with_capacity(st.tasks.len());
        for slot in &mut st.tasks {
            let build = (|| {
                let module = self.ssd.runtime().module(slot.mid)?;
                let inst = (module.entry(&slot.id)?.factory)(slot.args.take())?;
                let mem = if slot.spec.memory_bytes > 0 {
                    slot.spec.memory_bytes
                } else {
                    cfg.default_ssdlet_memory
                };
                let grant = device.memory().allocate(Arena::User, mem)?;
                if let Some(session) = &self.session {
                    if let Err(e) = session.take_memory(mem) {
                        device.memory().free(grant);
                        return Err(e);
                    }
                }
                Ok::<_, BiscuitError>((inst, grant))
            })();
            match build {
                Ok((inst, grant)) => {
                    *self.shared.session_memory.lock() += grant.bytes();
                    instances.push(inst);
                    grants.push(grant);
                }
                Err(e) => {
                    // Roll back everything taken so far.
                    let charged = std::mem::take(&mut *self.shared.session_memory.lock());
                    if let Some(session) = &self.session {
                        session.give_memory(charged);
                    }
                    for g in grants {
                        device.memory().free(g);
                    }
                    return Err(e);
                }
            }
        }
        st.phase = Phase::Started;
        *self.shared.remaining.lock() = st.tasks.len();
        *self.shared.grants.lock() = grants;

        // One fiber per SSDlet, all pinned to this application's core.
        let host_channels = st.host_channels;
        for (slot, mut instance) in st.tasks.iter().zip(instances) {
            let name = format!("{}-{}", self.name, slot.id);
            let inputs = slot.inputs.clone();
            let outputs = slot.outputs.clone();
            let device = Arc::clone(&device);
            let cfg = Arc::clone(&cfg);
            let link = Arc::clone(&link);
            let ssd = self.ssd.clone();
            let session = self.session.clone();
            let shared = Arc::clone(&self.shared);
            let mid = slot.mid;
            ssd.runtime().task_started(mid);
            let fiber_name = name.clone();
            let plan = self.ssd.fault_plan();
            ctx.spawn(fiber_name, move |fctx| {
                let mut tc = TaskCtx {
                    sim: fctx,
                    name,
                    inputs,
                    outputs,
                    cfg,
                    link,
                    device: Arc::clone(&device),
                    core,
                };
                if plan.is_active() {
                    // Fault-injected execution: draw a disruption before
                    // each attempt, catch panics, and restart the same
                    // instance up to the plan's budget. Injected panics
                    // strike at attempt entry — before any output — so a
                    // re-run is idempotent. A fault-free plan never enters
                    // this arm, keeping panic semantics (propagate and
                    // kill the run) identical to the unfaulted platform.
                    let max_restarts = plan.max_restarts();
                    let mut restarts = 0u32;
                    loop {
                        let disruption = plan.ssdlet_disruption();
                        if let Some(SsdletDisruption::Stall(d)) = disruption {
                            plan.record_injected(
                                fctx.now(),
                                FaultSite::Ssdlet,
                                &format!("{} stalled", tc.name),
                            );
                            fctx.sleep(d);
                            plan.record_recovered(fctx.now(), FaultSite::Ssdlet, "resume");
                        }
                        let inject_panic = matches!(disruption, Some(SsdletDisruption::Panic));
                        if inject_panic {
                            plan.record_injected(
                                fctx.now(),
                                FaultSite::Ssdlet,
                                &format!("{} panicked", tc.name),
                            );
                        }
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                if inject_panic {
                                    panic!("injected SSDlet panic");
                                }
                                instance.run(&mut tc);
                            }));
                        match outcome {
                            Ok(()) => break,
                            Err(_) if restarts < max_restarts => {
                                restarts += 1;
                                plan.record_recovered(fctx.now(), FaultSite::Ssdlet, "restart");
                            }
                            Err(_) => {
                                plan.record_failed(fctx.now(), FaultSite::Ssdlet, "restart");
                                let mut failed = shared.failed.lock();
                                if failed.is_none() {
                                    *failed = Some((tc.name.clone(), restarts));
                                }
                                break;
                            }
                        }
                    }
                } else {
                    instance.run(&mut tc);
                }
                // End of execution: this task stops producing on all of its
                // output connections.
                for conn in tc.outputs.iter().flatten() {
                    conn.producer_done(fctx);
                }
                ssd.runtime().task_finished(mid);
                let mut remaining = shared.remaining.lock();
                *remaining -= 1;
                let last = *remaining == 0;
                drop(remaining);
                if last {
                    // Application teardown: release user-arena memory and
                    // the data channels back to the device pool and, when
                    // session-owned, to the session envelope.
                    let grants = std::mem::take(&mut *shared.grants.lock());
                    for g in grants {
                        device.memory().free(g);
                    }
                    ssd.runtime().free_channels(host_channels);
                    if let Some(session) = &session {
                        session.give_channels(host_channels);
                        let charged = std::mem::take(&mut *shared.session_memory.lock());
                        session.give_memory(charged);
                    }
                    shared.done.notify_all(fctx);
                }
            });
        }
        Ok(())
    }

    /// Waits until every SSDlet of this application has finished.
    pub fn join(&self, ctx: &Ctx) {
        loop {
            if *self.shared.remaining.lock() == 0 {
                return;
            }
            self.shared.done.wait(ctx);
        }
    }

    /// Waits for every SSDlet and reports how the application ended: `Ok`
    /// on clean completion, [`BiscuitError::SsdletPanicked`] if any SSDlet
    /// died with its restart budget exhausted.
    ///
    /// # Errors
    ///
    /// Returns the first SSDlet failure recorded during execution.
    pub fn join_checked(&self, ctx: &Ctx) -> BiscuitResult<()> {
        self.join(ctx);
        match self.failure() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The first unrecovered SSDlet failure, if any (never set while the
    /// fault plan's restart policy still succeeds).
    pub fn failure(&self) -> Option<BiscuitError> {
        self.shared
            .failed
            .lock()
            .as_ref()
            .map(|(ssdlet, restarts)| BiscuitError::SsdletPanicked {
                ssdlet: ssdlet.clone(),
                restarts: *restarts,
            })
    }

    /// True once every SSDlet has finished (never true before `start`).
    pub fn is_finished(&self) -> bool {
        self.state.lock().phase == Phase::Started && *self.shared.remaining.lock() == 0
    }
}

/// Connects an output of one application to an input of another
/// (inter-application port: `Packet` codec, SPSC, both applications still
/// building).
///
/// # Errors
///
/// Returns type/state errors as for the intra-application connects.
pub fn connect_apps<T: Wire + Any + Send>(
    from: (&Application, OutRef),
    to: (&Application, InRef),
) -> BiscuitResult<()> {
    let (app_a, out) = from;
    let (app_b, input) = to;
    let mut st_a = app_a.building()?;
    let decl_out = Application::decl_of_out(&st_a, out)?;
    Application::check_type::<T>(decl_out)?;
    // Lock ordering: the two applications are distinct objects; take B after A.
    let mut st_b = app_b.building()?;
    let decl_in = Application::decl_of_in(&st_b, input)?;
    Application::check_type::<T>(decl_in)?;
    if st_a.tasks[out.task].outputs[out.port].is_some()
        || st_b.tasks[input.task].inputs[input.port].is_some()
    {
        return Err(BiscuitError::ConnectionNotAllowed(
            "inter-application ports are SPSC only".into(),
        ));
    }
    let label = format!(
        "{}:{}.out{}->{}:{}.in{}",
        app_a.name,
        st_a.tasks[out.task].id,
        out.port,
        app_b.name,
        st_b.tasks[input.task].id,
        input.port
    );
    let conn = Connection::new(
        PortKind::InterApp,
        decl_out.type_id,
        decl_out.type_name,
        app_a.ssd.config().port_capacity,
        Some(Codec::of::<T>()),
        label,
        app_a.ssd.tracer().cloned(),
        app_a.ssd.metrics().cloned(),
    );
    conn.add_producer();
    st_a.tasks[out.task].outputs[out.port] = Some(Arc::clone(&conn));
    st_b.tasks[input.task].inputs[input.port] = Some(conn);
    Ok(())
}
