//! The wire form of a query's causal identity.
//!
//! Every request the Biscuit stack forwards on behalf of a query carries a
//! [`SpanHeader`]: which query it belongs to, which tenant submitted it,
//! and which span is its causal parent. The header is the protocol-level
//! twin of `biscuit_sim::qprof::SpanContext` — `biscuit-core`'s boundary
//! ports stamp it onto each envelope at send time and the receiver adopts
//! it, so causality survives serialization boundaries, SSDlet hops, and
//! mid-query host fallback.
//!
//! The simulated *timing* of a packet does not include these 16 bytes: the
//! header models fields riding the reserved bytes of the NVMe
//! vendor-specific command envelope, which the per-command overhead
//! already charges. That keeps observability strictly non-perturbing —
//! enabling profiling can never change a simulated result (see
//! `docs/QUERYPROF.md`).

use crate::packet::{DecodeError, PacketBuilder, PacketReader};
use crate::wire::Wire;

/// Causal identity stamped on every in-flight request of a profiled query.
///
/// # Examples
///
/// ```
/// use biscuit_proto::span::SpanHeader;
/// use biscuit_proto::wire::Wire;
///
/// let h = SpanHeader { query: 7, tenant: 3, span: 12 };
/// let pkt = h.to_packet();
/// assert_eq!(SpanHeader::from_packet(&pkt).unwrap(), h);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanHeader {
    /// Query id, unique within one simulation.
    pub query: u64,
    /// Tenant (user) id the query belongs to.
    pub tenant: u32,
    /// The sending side's span id — the parent of any span the receiver
    /// records for this request.
    pub span: u32,
}

impl Wire for SpanHeader {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_u64(self.query);
        b.put_u32(self.tenant);
        b.put_u32(self.span);
    }

    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        Ok(SpanHeader {
            query: r.get_u64()?,
            tenant: r.get_u32()?,
            span: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;

    #[test]
    fn round_trips_standalone_and_optional() {
        let h = SpanHeader {
            query: u64::MAX,
            tenant: 0,
            span: u32::MAX,
        };
        let pkt = h.to_packet();
        assert_eq!(SpanHeader::from_packet(&pkt).unwrap(), h);

        // The Option form is what port envelopes conceptually carry: absent
        // while profiling is off, one tag byte plus the header when on.
        let some = Some(h).to_packet();
        assert_eq!(Option::<SpanHeader>::from_packet(&some).unwrap(), Some(h));
        let none = Option::<SpanHeader>::None.to_packet();
        assert_eq!(Option::<SpanHeader>::from_packet(&none).unwrap(), None);
    }

    #[test]
    fn wire_layout_is_fixed_16_bytes() {
        let h = SpanHeader {
            query: 0x0102_0304_0506_0708,
            tenant: 9,
            span: 10,
        };
        let pkt = h.to_packet();
        assert_eq!(pkt.len(), 16);
    }

    #[test]
    fn truncated_header_rejected() {
        let pkt = Packet::copy_from_slice(&[0u8; 8]);
        assert!(SpanHeader::from_packet(&pkt).is_err());
    }
}
