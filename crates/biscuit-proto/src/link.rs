//! Host-interface timing model: PCIe Gen.3 x4 link + NVMe command costs.
//!
//! The paper's target SSD connects over PCIe Gen.3 x4 sustaining about
//! 3.2 GB/s (Table I, Fig. 7). Conventional ("Conv") I/O pays, per command:
//! host driver submission, device-side command handling, a DMA transfer over
//! the link, and host-side completion/interrupt processing. Biscuit's
//! internal reads skip the link entirely — that asymmetry is the root of the
//! Table III latency gap and the Fig. 7 bandwidth gap.

use std::sync::{Arc, OnceLock};

use biscuit_sim::fault::{FaultPlan, FaultSite};
use biscuit_sim::queue::Semaphore;
use biscuit_sim::resource::Shaper;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::Ctx;

/// Timing parameters of the host interface.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Usable link bandwidth per direction, bytes/second.
    pub bandwidth_bytes_per_sec: f64,
    /// Host-side submission cost (driver + doorbell) per command.
    pub host_submit: SimDuration,
    /// Device-side NVMe command handling per command.
    pub device_command: SimDuration,
    /// Host-side completion cost (interrupt + CQ processing) per command.
    pub host_complete: SimDuration,
    /// Maximum outstanding commands (submission queue depth).
    pub queue_depth: usize,
}

impl LinkConfig {
    /// The paper's host interface: PCIe Gen.3 x4 at 3.2 GB/s max throughput,
    /// with per-command costs calibrated so a 4 KiB Conv read lands at
    /// ~90 µs against the device's ~76 µs internal read (Table III).
    pub fn pcie_gen3_x4() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 3.2e9,
            host_submit: SimDuration::from_micros_f64(3.8),
            device_command: SimDuration::from_micros_f64(3.0),
            host_complete: SimDuration::from_micros_f64(6.0),
            queue_depth: 256,
        }
    }
}

impl LinkConfig {
    /// A 10 GbE network link to a remote storage node (paper Fig. 1(c)
    /// "Networked"; §VIII argues Biscuit extends to this organization).
    /// Round-trip costs grow by an order of magnitude versus direct-attach
    /// PCIe — which is exactly why pushing filters to the storage side pays
    /// off even more over a network.
    pub fn ethernet_10g() -> Self {
        LinkConfig {
            bandwidth_bytes_per_sec: 1.25e9,
            host_submit: SimDuration::from_micros_f64(15.0),
            device_command: SimDuration::from_micros_f64(20.0),
            host_complete: SimDuration::from_micros_f64(25.0),
            queue_depth: 128,
        }
    }
}

impl Default for LinkConfig {
    fn default() -> Self {
        Self::pcie_gen3_x4()
    }
}

/// The shared host-device link with per-direction DMA engines and bounded
/// command slots.
///
/// # Examples
///
/// ```
/// use biscuit_proto::link::{HostLink, LinkConfig};
/// use biscuit_sim::Simulation;
/// use std::sync::Arc;
///
/// let sim = Simulation::new(0);
/// let link = Arc::new(HostLink::new(LinkConfig::pcie_gen3_x4()));
/// let l = Arc::clone(&link);
/// sim.spawn("reader", move |ctx| {
///     let _slot = l.acquire_slot(ctx);
///     l.charge_submit(ctx);
///     // ... device does its internal work ...
///     l.dma_to_host(ctx, 4096);
///     l.charge_complete(ctx);
/// });
/// sim.run().assert_quiescent();
/// assert_eq!(link.config().queue_depth, 256);
/// ```
#[derive(Debug)]
pub struct HostLink {
    cfg: LinkConfig,
    to_host: Shaper,
    to_device: Shaper,
    slots: Arc<Semaphore>,
    fault: OnceLock<FaultPlan>,
}

impl HostLink {
    /// Creates a link with the given timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero or the bandwidth is not positive.
    pub fn new(cfg: LinkConfig) -> Self {
        assert!(cfg.queue_depth > 0, "queue depth must be positive");
        HostLink {
            to_host: Shaper::new(cfg.bandwidth_bytes_per_sec, SimDuration::ZERO),
            to_device: Shaper::new(cfg.bandwidth_bytes_per_sec, SimDuration::ZERO),
            slots: Arc::new(Semaphore::new(cfg.queue_depth)),
            fault: OnceLock::new(),
            cfg,
        }
    }

    /// Arms the link's fault-injection sites with `plan`: every DMA
    /// reservation in either direction may draw packet corruption. A
    /// corrupted attempt is caught by the link CRC and replayed after
    /// exponential backoff (`link_backoff_base × 2^(k−1)` before the k-th
    /// replay), re-reserving link bandwidth each time. The first call wins;
    /// a [`FaultPlan::none`] plan leaves the timing path untouched.
    pub fn set_fault_plan(&self, plan: &FaultPlan) {
        let _ = self.fault.set(plan.clone());
    }

    #[inline]
    fn fault(&self) -> Option<&FaultPlan> {
        self.fault.get().filter(|p| p.is_active())
    }

    /// Extends a finished DMA reservation with CRC-replay attempts drawn
    /// from the armed fault plan: attempt k backs off `base × 2^(k−1)` and
    /// then re-reserves the shaper for the full payload. Returns when the
    /// first clean attempt completes (`end` unchanged when no fault fires).
    fn replay_corrupted(
        &self,
        site: FaultSite,
        shaper: &Shaper,
        bytes: u64,
        mut end: SimTime,
    ) -> SimTime {
        let Some(plan) = self.fault() else {
            return end;
        };
        let n = plan.link_corrupt_attempts(site);
        if n == 0 {
            return end;
        }
        let base = plan
            .config()
            .expect("active plan has a config")
            .link_backoff_base;
        plan.record_injected(
            end,
            site,
            &format!("{bytes} bytes corrupted, {n} replay(s)"),
        );
        for k in 0..n {
            end = shaper.enqueue(end + base * (1u64 << k), bytes);
        }
        plan.record_recovered(end, site, "link_replay");
        end
    }

    /// The link's timing parameters.
    pub fn config(&self) -> &LinkConfig {
        &self.cfg
    }

    /// Records every DMA reservation in both directions into `tracer` as
    /// `link.to_host` / `link.to_device` spans. The first call wins.
    pub fn attach_tracer(&self, tracer: &biscuit_sim::Tracer) {
        self.to_host.set_trace(tracer.clone(), "link.to_host");
        self.to_device.set_trace(tracer.clone(), "link.to_device");
    }

    /// Registers both link directions in `registry` as
    /// `resource_{ops,bytes,busy_ps}_total` / `resource_span_ps` samples
    /// labeled `resource=link.to_host` / `resource=link.to_device`, from
    /// which the exporter derives per-direction link utilization. The first
    /// call wins.
    pub fn attach_metrics(&self, registry: &biscuit_sim::MetricsRegistry) {
        self.to_host.set_metrics(registry, "link.to_host");
        self.to_device.set_metrics(registry, "link.to_device");
    }

    /// Acquires a command slot, blocking while the queue is full. The slot is
    /// released when the returned guard is handed back via
    /// [`HostLink::release_slot`] or dropped *after* the caller has finished.
    pub fn acquire_slot(&self, ctx: &Ctx) -> CommandSlot {
        self.slots.acquire(ctx);
        CommandSlot {
            slots: Arc::clone(&self.slots),
        }
    }

    /// Releases a command slot explicitly.
    pub fn release_slot(&self, ctx: &Ctx, slot: CommandSlot) {
        std::mem::forget(slot);
        self.slots.release(ctx);
    }

    /// Charges the host-side submission cost to the calling fiber.
    pub fn charge_submit(&self, ctx: &Ctx) {
        ctx.sleep(self.cfg.host_submit);
    }

    /// Charges the device-side command handling cost to the calling fiber.
    pub fn charge_device_command(&self, ctx: &Ctx) {
        ctx.sleep(self.cfg.device_command);
    }

    /// Charges the host-side completion cost to the calling fiber.
    pub fn charge_complete(&self, ctx: &Ctx) {
        ctx.sleep(self.cfg.host_complete);
    }

    /// Moves `bytes` from device to host over the link, blocking until done
    /// (including any CRC-replay attempts drawn from an armed fault plan).
    pub fn dma_to_host(&self, ctx: &Ctx, bytes: u64) -> SimTime {
        let end = self.to_host.transfer(ctx, bytes);
        let end = self.replay_corrupted(FaultSite::LinkToHost, &self.to_host, bytes, end);
        if end > ctx.now() {
            ctx.sleep_until(end);
        }
        end
    }

    /// Moves `bytes` from host to device over the link, blocking until done
    /// (including any CRC-replay attempts drawn from an armed fault plan).
    pub fn dma_to_device(&self, ctx: &Ctx, bytes: u64) -> SimTime {
        let end = self.to_device.transfer(ctx, bytes);
        let end = self.replay_corrupted(FaultSite::LinkToDevice, &self.to_device, bytes, end);
        if end > ctx.now() {
            ctx.sleep_until(end);
        }
        end
    }

    /// Reserves a device-to-host DMA without blocking; returns completion time.
    pub fn enqueue_dma_to_host(&self, now: SimTime, bytes: u64) -> SimTime {
        let end = self.to_host.enqueue(now, bytes);
        self.replay_corrupted(FaultSite::LinkToHost, &self.to_host, bytes, end)
    }

    /// Reserves a host-to-device DMA without blocking; returns completion time.
    pub fn enqueue_dma_to_device(&self, now: SimTime, bytes: u64) -> SimTime {
        let end = self.to_device.enqueue(now, bytes);
        self.replay_corrupted(FaultSite::LinkToDevice, &self.to_device, bytes, end)
    }

    /// Total bytes moved device→host so far.
    pub fn bytes_to_host(&self) -> u64 {
        self.to_host.bytes()
    }

    /// Total bytes moved host→device so far.
    pub fn bytes_to_device(&self) -> u64 {
        self.to_device.bytes()
    }

    /// Cumulative busy time of the device→host direction (for utilization).
    pub fn to_host_busy(&self) -> SimDuration {
        self.to_host.busy_total()
    }
}

/// Guard representing an occupied NVMe command slot.
///
/// Return it through [`HostLink::release_slot`]; merely dropping it leaks the
/// slot (destructors cannot block or touch virtual time).
#[derive(Debug)]
pub struct CommandSlot {
    #[allow(dead_code)] // held only to make leaks visible in review
    slots: Arc<Semaphore>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use biscuit_sim::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn conv_read_overhead_matches_calibration() {
        // submit + device command + 4KiB DMA + complete ≈ 14.1us (Table III gap)
        let sim = Simulation::new(0);
        let link = Arc::new(HostLink::new(LinkConfig::pcie_gen3_x4()));
        let l = Arc::clone(&link);
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        sim.spawn("read", move |ctx| {
            let slot = l.acquire_slot(ctx);
            l.charge_submit(ctx);
            l.charge_device_command(ctx);
            l.dma_to_host(ctx, 4096);
            l.charge_complete(ctx);
            l.release_slot(ctx, slot);
            d.store(ctx.now().as_nanos(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let us = done.load(Ordering::SeqCst) as f64 / 1000.0;
        assert!((13.0..15.5).contains(&us), "overhead was {us}us");
    }

    #[test]
    fn link_bandwidth_is_capped() {
        // 32 MiB over 3.2 GB/s takes ~10 ms regardless of command count.
        let sim = Simulation::new(0);
        let link = Arc::new(HostLink::new(LinkConfig {
            host_submit: SimDuration::ZERO,
            device_command: SimDuration::ZERO,
            host_complete: SimDuration::ZERO,
            ..LinkConfig::pcie_gen3_x4()
        }));
        let l = Arc::clone(&link);
        let done = Arc::new(AtomicU64::new(0));
        let d = Arc::clone(&done);
        sim.spawn("stream", move |ctx| {
            let mut end = ctx.now();
            for _ in 0..32 {
                end = l.enqueue_dma_to_host(ctx.now(), 1 << 20);
            }
            ctx.sleep_until(end);
            d.store(ctx.now().as_micros(), Ordering::SeqCst);
        });
        sim.run().assert_quiescent();
        let secs = done.load(Ordering::SeqCst) as f64 / 1e6;
        let gbps = (32.0 * (1 << 20) as f64) / secs / 1e9;
        assert!((3.1..3.3).contains(&gbps), "link ran at {gbps} GB/s");
    }

    #[test]
    fn directions_are_independent() {
        let sim = Simulation::new(0);
        let link = Arc::new(HostLink::new(LinkConfig::pcie_gen3_x4()));
        let l = Arc::clone(&link);
        sim.spawn("both", move |ctx| {
            let up = l.enqueue_dma_to_host(ctx.now(), 1 << 20);
            let down = l.enqueue_dma_to_device(ctx.now(), 1 << 20);
            // Full duplex: both directions complete at the same time.
            assert_eq!(up, down);
            ctx.sleep_until(up.max(down));
        });
        sim.run().assert_quiescent();
        assert_eq!(link.bytes_to_host(), 1 << 20);
        assert_eq!(link.bytes_to_device(), 1 << 20);
    }

    #[test]
    fn link_replay_backoff_matches_configured_schedule() {
        use biscuit_sim::fault::{FaultConfig, FaultPlan, FaultSite};

        fn timed_dma(plan: Option<FaultPlan>) -> u64 {
            let sim = Simulation::new(0);
            let link = Arc::new(HostLink::new(LinkConfig {
                host_submit: SimDuration::ZERO,
                device_command: SimDuration::ZERO,
                host_complete: SimDuration::ZERO,
                ..LinkConfig::pcie_gen3_x4()
            }));
            if let Some(p) = &plan {
                link.set_fault_plan(p);
            }
            let l = Arc::clone(&link);
            let done = Arc::new(AtomicU64::new(0));
            let d = Arc::clone(&done);
            sim.spawn("dma", move |ctx| {
                let end = l.enqueue_dma_to_host(ctx.now(), 1 << 20);
                ctx.sleep_until(end);
                d.store(ctx.now().as_nanos(), Ordering::SeqCst);
            });
            sim.run().assert_quiescent();
            done.load(Ordering::SeqCst)
        }

        let base = SimDuration::from_micros(10);
        let fault_cfg = FaultConfig {
            link_corrupt_rate: 1.0,
            link_max_replays: 3,
            link_backoff_base: base,
            ..FaultConfig::default()
        };
        // An identically-seeded shadow plan predicts the drawn replay count.
        let shadow = FaultPlan::seeded(99, fault_cfg.clone());
        let n = shadow.link_corrupt_attempts(FaultSite::LinkToHost);
        assert!((1..=3).contains(&n));

        let clean_ns = timed_dma(None);
        let plan = FaultPlan::seeded(99, fault_cfg);
        let faulty_ns = timed_dma(Some(plan.clone()));

        // n corrupted attempts: each replay waits base×2^(k−1) and then
        // re-transfers the full payload on the idle shaper.
        let mut expected_ns = clean_ns;
        for k in 0..n {
            expected_ns += (base * (1u64 << k)).as_nanos() + clean_ns;
        }
        assert_eq!(
            faulty_ns, expected_ns,
            "virtual-time replay schedule diverged (n={n})"
        );
        assert_eq!(plan.injected_at(FaultSite::LinkToHost), 1);
        assert_eq!(plan.recovered_at(FaultSite::LinkToHost), 1);
    }

    #[test]
    fn zero_rate_fault_plan_leaves_link_timing_untouched() {
        use biscuit_sim::fault::{FaultConfig, FaultPlan};

        fn timed_dma(plan: Option<FaultPlan>) -> u64 {
            let sim = Simulation::new(0);
            let link = Arc::new(HostLink::new(LinkConfig::pcie_gen3_x4()));
            if let Some(p) = &plan {
                link.set_fault_plan(p);
            }
            let l = Arc::clone(&link);
            let done = Arc::new(AtomicU64::new(0));
            let d = Arc::clone(&done);
            sim.spawn("dma", move |ctx| {
                l.dma_to_host(ctx, 1 << 16);
                l.dma_to_device(ctx, 1 << 16);
                d.store(ctx.now().as_nanos(), Ordering::SeqCst);
            });
            sim.run().assert_quiescent();
            done.load(Ordering::SeqCst)
        }

        let clean = timed_dma(None);
        assert_eq!(clean, timed_dma(Some(FaultPlan::none())));
        assert_eq!(
            clean,
            timed_dma(Some(FaultPlan::seeded(1, FaultConfig::default())))
        );
    }

    #[test]
    fn queue_depth_limits_outstanding_commands() {
        let sim = Simulation::new(0);
        let link = Arc::new(HostLink::new(LinkConfig {
            queue_depth: 2,
            ..LinkConfig::pcie_gen3_x4()
        }));
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        for i in 0..4 {
            let l = Arc::clone(&link);
            let order = Arc::clone(&order);
            sim.spawn(format!("cmd{i}"), move |ctx| {
                let slot = l.acquire_slot(ctx);
                order.lock().push((i, ctx.now().as_micros()));
                ctx.sleep(SimDuration::from_micros(100));
                l.release_slot(ctx, slot);
            });
        }
        sim.run().assert_quiescent();
        let o = order.lock();
        // First two start immediately; the rest wait for releases.
        assert_eq!(o[0].1, 0);
        assert_eq!(o[1].1, 0);
        assert!(o[2].1 >= 100);
        assert!(o[3].1 >= 100);
    }
}
