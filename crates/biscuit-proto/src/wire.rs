//! (De)serialization between Rust values and [`Packet`]s.
//!
//! The paper requires every value crossing a host-to-device or
//! inter-application port to be explicitly serializable (§III-C). The
//! [`Wire`] trait is that contract; `biscuit-core`'s boundary ports are
//! generic over it.

use crate::packet::{DecodeError, Packet, PacketBuilder, PacketReader};

/// Types that can cross a serialization boundary as a [`Packet`].
///
/// # Examples
///
/// ```
/// use biscuit_proto::wire::Wire;
///
/// let v = (String::from("word"), 3u32);
/// let pkt = v.to_packet();
/// let back = <(String, u32)>::from_packet(&pkt).unwrap();
/// assert_eq!(back, v);
/// ```
pub trait Wire: Sized {
    /// True when [`Wire::to_packet`] shares the value's buffer instead of
    /// copying payload bytes. Boundary ports consult this to skip
    /// `sim_bytes_copied_total` accounting on the encode side.
    const ZERO_COPY_ENCODE: bool = false;

    /// True when [`Wire::from_packet`] hands out a window into the
    /// packet's own buffer instead of copying. Skips the decode-side
    /// copy accounting.
    const ZERO_COPY_DECODE: bool = false;

    /// Appends this value's encoding to `b`.
    fn encode(&self, b: &mut PacketBuilder);

    /// Decodes a value, consuming bytes from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bytes are truncated or malformed.
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError>;

    /// Encodes this value into a standalone packet.
    fn to_packet(&self) -> Packet {
        let mut b = PacketBuilder::new();
        self.encode(&mut b);
        b.build()
    }

    /// Decodes a value from a packet, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if trailing bytes remain or the
    /// payload is malformed.
    fn from_packet(p: &Packet) -> Result<Self, DecodeError> {
        let mut r = p.reader();
        let v = Self::decode(&mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::UnexpectedEnd);
        }
        Ok(v)
    }
}

impl Wire for u8 {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_u8(*self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        r.get_u8()
    }
}

impl Wire for u32 {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_u32(*self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        r.get_u32()
    }
}

impl Wire for u64 {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_u64(*self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        r.get_u64()
    }
}

impl Wire for i64 {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_i64(*self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        r.get_i64()
    }
}

impl Wire for i32 {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_i64(i64::from(*self));
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        let v = r.get_i64()?;
        i32::try_from(v).map_err(|_| DecodeError::UnexpectedEnd)
    }
}

impl Wire for f64 {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_f64(*self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        r.get_f64()
    }
}

impl Wire for bool {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_u8(u8::from(*self));
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl Wire for String {
    fn encode(&self, b: &mut PacketBuilder) {
        b.put_str(self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        Ok(r.get_str()?.to_owned())
    }
}

impl Wire for Packet {
    // Decoding slices the carrier packet's buffer (no copy); encoding
    // still writes the payload into the builder, preserving the
    // length-prefixed wire format byte for byte.
    const ZERO_COPY_DECODE: bool = true;

    fn encode(&self, b: &mut PacketBuilder) {
        b.put_blob(self.as_slice());
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        Ok(Packet::from_buf(r.get_blob_buf()?))
    }
}

impl Wire for crate::buf::Buf {
    const ZERO_COPY_ENCODE: bool = true;
    const ZERO_COPY_DECODE: bool = true;

    fn encode(&self, b: &mut PacketBuilder) {
        b.put_blob(self);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        r.get_blob_buf()
    }

    // A standalone Buf crosses the boundary as the packet itself — the
    // same allocation end to end, no length prefix, no copy. (Nested
    // Bufs inside tuples/Vecs still use the length-prefixed `encode`
    // form above, which copies into the builder.)
    fn to_packet(&self) -> Packet {
        Packet::from_buf(self.clone())
    }
    fn from_packet(p: &Packet) -> Result<Self, DecodeError> {
        Ok(p.as_buf().clone())
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, b: &mut PacketBuilder) {
        match self {
            None => {
                b.put_u8(0);
            }
            Some(v) => {
                b.put_u8(1);
                v.encode(b);
            }
        }
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, b: &mut PacketBuilder) {
        let len = u32::try_from(self.len()).expect("vec too large for packet");
        b.put_u32(len);
        for v in self {
            v.encode(b);
        }
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        let len = r.get_u32()? as usize;
        // Guard against hostile length prefixes: never reserve more than the
        // bytes that could plausibly remain.
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, b: &mut PacketBuilder) {
        self.0.encode(b);
        self.1.encode(b);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Wire, B: Wire, C: Wire> Wire for (A, B, C) {
    fn encode(&self, b: &mut PacketBuilder) {
        self.0.encode(b);
        self.1.encode(b);
        self.2.encode(b);
    }
    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Wire for () {
    fn encode(&self, _b: &mut PacketBuilder) {}
    fn decode(_r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let p = v.to_packet();
        assert_eq!(T::from_packet(&p).unwrap(), v);
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(0u8);
        round_trip(u32::MAX);
        round_trip(u64::MAX);
        round_trip(-1i64);
        round_trip(i32::MIN);
        round_trip(3.25f64);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn compound_round_trips() {
        round_trip(String::from("κρανίον"));
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip(vec![1u64, 2, 3]);
        round_trip((String::from("k"), 9u32));
        round_trip((1i64, 2.0f64, String::from("x")));
        round_trip(Vec::<String>::new());
        round_trip(());
    }

    #[test]
    fn nested_packet_round_trips() {
        round_trip(Packet::copy_from_slice(b"inner"));
        round_trip(vec![
            Packet::copy_from_slice(b"a"),
            Packet::copy_from_slice(b""),
        ]);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut b = PacketBuilder::new();
        7u32.encode(&mut b);
        b.put_u8(0xEE); // stray byte
        let p = b.build();
        assert_eq!(u32::from_packet(&p), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let p = Packet::copy_from_slice(&[2]);
        assert_eq!(bool::from_packet(&p), Err(DecodeError::InvalidTag(2)));
    }

    #[test]
    fn hostile_vec_length_does_not_overallocate() {
        let mut b = PacketBuilder::new();
        b.put_u32(u32::MAX); // claims 4 billion elements
        let p = b.build();
        assert_eq!(Vec::<u64>::from_packet(&p), Err(DecodeError::UnexpectedEnd));
    }
}
