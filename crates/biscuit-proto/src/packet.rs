//! The `Packet` type: the sole payload allowed across host/device and
//! inter-application port boundaries (paper §III-C).
//!
//! Biscuit's host-to-device and inter-application ports carry only `Packet`s;
//! richer types must be explicitly serialized. We reproduce that rule: the
//! typed inter-SSDlet ports in `biscuit-core` move native Rust values, while
//! boundary ports insist on [`Packet`] and the [`crate::wire::Wire`] codec.
//!
//! A packet's payload is a [`Buf`] — a shared, sliceable window — so
//! cloning a packet, slicing a blob out of one ([`PacketReader::get_blob_buf`]),
//! or decoding a nested [`Packet`]/[`Buf`] shares the underlying allocation
//! instead of copying it.

use crate::buf::Buf;

/// An immutable, cheaply-cloneable byte payload.
///
/// # Examples
///
/// ```
/// use biscuit_proto::packet::{Packet, PacketBuilder};
///
/// let mut b = PacketBuilder::new();
/// b.put_u32(7);
/// b.put_str("hello");
/// let pkt = b.build();
/// let mut r = pkt.reader();
/// assert_eq!(r.get_u32().unwrap(), 7);
/// assert_eq!(r.get_str().unwrap(), "hello");
/// assert!(r.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct Packet {
    data: Buf,
}

impl Packet {
    /// Creates an empty packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing shared buffer without copying it.
    pub fn from_buf(data: Buf) -> Self {
        Packet { data }
    }

    /// Copies a byte slice into a packet.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Packet {
            data: Buf::copy_from_slice(data),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the payload.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Borrow the payload as its shared buffer.
    pub fn as_buf(&self) -> &Buf {
        &self.data
    }

    /// Extracts the underlying buffer (no copy).
    pub fn into_buf(self) -> Buf {
        self.data
    }

    /// Starts sequential reads from the front of the payload.
    pub fn reader(&self) -> PacketReader<'_> {
        PacketReader {
            buf: &self.data,
            pos: 0,
        }
    }
}

impl From<Vec<u8>> for Packet {
    fn from(v: Vec<u8>) -> Self {
        Packet {
            data: Buf::from_vec(v),
        }
    }
}

impl From<Buf> for Packet {
    fn from(data: Buf) -> Self {
        Packet { data }
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Error produced when decoding a malformed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the read required.
    UnexpectedEnd,
    /// A string field contained invalid UTF-8.
    InvalidUtf8,
    /// An enum tag byte had no corresponding variant.
    InvalidTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("unexpected end of packet"),
            DecodeError::InvalidUtf8 => f.write_str("invalid UTF-8 in packet string"),
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t} in packet"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental little-endian reader over a packet payload.
#[derive(Debug)]
pub struct PacketReader<'a> {
    buf: &'a Buf,
    pos: usize,
}

impl<'a> PacketReader<'a> {
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let head = &self.buf.as_slice()[self.pos..self.pos + n];
        self.pos += n;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if the packet is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("exactly 4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("exactly 8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("exactly 8 bytes"),
        ))
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(
            self.take(8)?.try_into().expect("exactly 8 bytes"),
        ))
    }

    /// Reads a length-prefixed byte run, borrowing it.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation.
    pub fn get_blob(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed byte run as a shared window into the
    /// packet's own buffer — no copy, the packet's allocation stays
    /// alive for as long as the returned [`Buf`] does.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation.
    pub fn get_blob_buf(&mut self) -> Result<Buf, DecodeError> {
        let len = self.get_u32()? as usize;
        if self.remaining() < len {
            return Err(DecodeError::UnexpectedEnd);
        }
        let blob = self.buf.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(blob)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation, or
    /// [`DecodeError::InvalidUtf8`] if the bytes are not valid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, DecodeError> {
        let blob = self.get_blob()?;
        std::str::from_utf8(blob).map_err(|_| DecodeError::InvalidUtf8)
    }
}

/// Growable little-endian writer that produces a [`Packet`].
#[derive(Debug, Default)]
pub struct PacketBuilder {
    buf: Vec<u8>,
}

impl PacketBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        PacketBuilder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte run.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` bytes.
    pub fn put_blob(&mut self, v: &[u8]) -> &mut Self {
        let len = u32::try_from(v.len()).expect("blob too large for packet");
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_blob(v.as_bytes())
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into an immutable [`Packet`] (moves the allocation, no
    /// copy).
    pub fn build(self) -> Packet {
        Packet {
            data: Buf::from_vec(self.buf),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = PacketBuilder::new();
        b.put_u8(1).put_u32(2).put_u64(3).put_i64(-4).put_f64(2.5);
        let p = b.build();
        let mut r = p.reader();
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u32().unwrap(), 2);
        assert_eq!(r.get_u64().unwrap(), 3);
        assert_eq!(r.get_i64().unwrap(), -4);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(r.is_empty());
    }

    #[test]
    fn blob_and_str() {
        let mut b = PacketBuilder::new();
        b.put_blob(&[9, 8, 7]).put_str("biscuit");
        let p = b.build();
        let mut r = p.reader();
        assert_eq!(r.get_blob().unwrap(), &[9, 8, 7]);
        assert_eq!(r.get_str().unwrap(), "biscuit");
    }

    #[test]
    fn blob_buf_shares_the_packet_allocation() {
        let mut b = PacketBuilder::new();
        b.put_blob(&[5, 6, 7, 8]).put_u8(0xAA);
        let p = b.build();
        let mut r = p.reader();
        let blob = r.get_blob_buf().unwrap();
        assert_eq!(&blob[..], &[5, 6, 7, 8]);
        assert_eq!(r.get_u8().unwrap(), 0xAA);
        // Window into the packet's own buffer, not a copy.
        assert_eq!(p.as_buf().ref_count(), 2);
    }

    #[test]
    fn truncated_read_errors() {
        let p = Packet::copy_from_slice(&[1, 2]);
        let mut r = p.reader();
        assert_eq!(r.get_u32(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn truncated_blob_errors() {
        let mut b = PacketBuilder::new();
        b.put_u32(100); // claims 100 bytes follow
        let p = b.build();
        assert_eq!(p.reader().get_blob(), Err(DecodeError::UnexpectedEnd));
        assert_eq!(p.reader().get_blob_buf(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut b = PacketBuilder::new();
        b.put_blob(&[0xff, 0xfe]);
        let p = b.build();
        assert_eq!(p.reader().get_str(), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn packet_clone_is_cheap_and_equal() {
        let p = Packet::copy_from_slice(b"data");
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.len(), 4);
        // Clone shares, not copies.
        assert_eq!(p.as_buf().ref_count(), 2);
    }

    #[test]
    fn empty_packet_properties() {
        let p = Packet::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.reader().is_empty());
    }
}
