//! The `Packet` type: the sole payload allowed across host/device and
//! inter-application port boundaries (paper §III-C).
//!
//! Biscuit's host-to-device and inter-application ports carry only `Packet`s;
//! richer types must be explicitly serialized. We reproduce that rule: the
//! typed inter-SSDlet ports in `biscuit-core` move native Rust values, while
//! boundary ports insist on [`Packet`] and the [`crate::wire::Wire`] codec.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// An immutable, cheaply-cloneable byte payload.
///
/// # Examples
///
/// ```
/// use biscuit_proto::packet::{Packet, PacketBuilder};
///
/// let mut b = PacketBuilder::new();
/// b.put_u32(7);
/// b.put_str("hello");
/// let pkt = b.build();
/// let mut r = pkt.reader();
/// assert_eq!(r.get_u32().unwrap(), 7);
/// assert_eq!(r.get_str().unwrap(), "hello");
/// assert!(r.is_empty());
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Hash)]
pub struct Packet {
    data: Bytes,
}

impl Packet {
    /// Creates an empty packet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing byte buffer.
    pub fn from_bytes(data: Bytes) -> Self {
        Packet { data }
    }

    /// Copies a byte slice into a packet.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Packet {
            data: Bytes::copy_from_slice(data),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the payload.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Extracts the underlying buffer.
    pub fn into_bytes(self) -> Bytes {
        self.data
    }

    /// Starts sequential reads from the front of the payload.
    pub fn reader(&self) -> PacketReader<'_> {
        PacketReader {
            rest: self.data.as_ref(),
        }
    }
}

impl From<Vec<u8>> for Packet {
    fn from(v: Vec<u8>) -> Self {
        Packet {
            data: Bytes::from(v),
        }
    }
}

impl AsRef<[u8]> for Packet {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Error produced when decoding a malformed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes remained than the read required.
    UnexpectedEnd,
    /// A string field contained invalid UTF-8.
    InvalidUtf8,
    /// An enum tag byte had no corresponding variant.
    InvalidTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => f.write_str("unexpected end of packet"),
            DecodeError::InvalidUtf8 => f.write_str("invalid UTF-8 in packet string"),
            DecodeError::InvalidTag(t) => write!(f, "invalid tag byte {t} in packet"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Incremental little-endian reader over a packet payload.
#[derive(Debug)]
pub struct PacketReader<'a> {
    rest: &'a [u8],
}

impl<'a> PacketReader<'a> {
    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// True if all bytes were consumed.
    pub fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.rest.len() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if the packet is exhausted.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 4 bytes remain.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        let mut b = self.take(4)?;
        Ok(b.get_u32_le())
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        let mut b = self.take(8)?;
        Ok(b.get_u64_le())
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        let mut b = self.take(8)?;
        Ok(b.get_i64_le())
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        let mut b = self.take(8)?;
        Ok(b.get_f64_le())
    }

    /// Reads a length-prefixed byte run.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation.
    pub fn get_blob(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_u32()? as usize;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnexpectedEnd`] on truncation, or
    /// [`DecodeError::InvalidUtf8`] if the bytes are not valid UTF-8.
    pub fn get_str(&mut self) -> Result<&'a str, DecodeError> {
        let blob = self.get_blob()?;
        std::str::from_utf8(blob).map_err(|_| DecodeError::InvalidUtf8)
    }
}

/// Growable little-endian writer that produces a [`Packet`].
#[derive(Debug, Default)]
pub struct PacketBuilder {
    buf: BytesMut,
}

impl PacketBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        PacketBuilder {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.put_u8(v);
        self
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32_le(v);
        self
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64_le(v);
        self
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64_le(v);
        self
    }

    /// Appends a little-endian `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64_le(v);
        self
    }

    /// Appends a length-prefixed byte run.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` bytes.
    pub fn put_blob(&mut self, v: &[u8]) -> &mut Self {
        let len = u32::try_from(v.len()).expect("blob too large for packet");
        self.buf.put_u32_le(len);
        self.buf.put_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_blob(v.as_bytes())
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finalizes into an immutable [`Packet`].
    pub fn build(self) -> Packet {
        Packet {
            data: self.buf.freeze(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut b = PacketBuilder::new();
        b.put_u8(1).put_u32(2).put_u64(3).put_i64(-4).put_f64(2.5);
        let p = b.build();
        let mut r = p.reader();
        assert_eq!(r.get_u8().unwrap(), 1);
        assert_eq!(r.get_u32().unwrap(), 2);
        assert_eq!(r.get_u64().unwrap(), 3);
        assert_eq!(r.get_i64().unwrap(), -4);
        assert_eq!(r.get_f64().unwrap(), 2.5);
        assert!(r.is_empty());
    }

    #[test]
    fn blob_and_str() {
        let mut b = PacketBuilder::new();
        b.put_blob(&[9, 8, 7]).put_str("biscuit");
        let p = b.build();
        let mut r = p.reader();
        assert_eq!(r.get_blob().unwrap(), &[9, 8, 7]);
        assert_eq!(r.get_str().unwrap(), "biscuit");
    }

    #[test]
    fn truncated_read_errors() {
        let p = Packet::copy_from_slice(&[1, 2]);
        let mut r = p.reader();
        assert_eq!(r.get_u32(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn truncated_blob_errors() {
        let mut b = PacketBuilder::new();
        b.put_u32(100); // claims 100 bytes follow
        let p = b.build();
        assert_eq!(p.reader().get_blob(), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn invalid_utf8_errors() {
        let mut b = PacketBuilder::new();
        b.put_blob(&[0xff, 0xfe]);
        let p = b.build();
        assert_eq!(p.reader().get_str(), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn packet_clone_is_cheap_and_equal() {
        let p = Packet::copy_from_slice(b"data");
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn empty_packet_properties() {
        let p = Packet::new();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.reader().is_empty());
    }
}
