//! `Buf`: a cheaply-cloneable, sliceable shared byte buffer, plus a
//! [`BufPool`] of reusable page frames.
//!
//! Biscuit's entire argument is that bytes should move as little as
//! possible (paper §III, §V-B). The simulator's data path honors that by
//! carrying every payload — NAND pages, device-DRAM staging, port
//! packets, host reads — as a `Buf`: an `Arc<[u8]>` plus an offset/length
//! window. Cloning bumps a refcount; [`Buf::slice`] narrows the window
//! without touching the bytes; a page materialized once at the NAND is
//! the same allocation the host finally reads.
//!
//! [`BufPool`] recycles fixed-size frames (device DRAM pages) so steady
//! state reads stop allocating: a frame returns to the pool when its last
//! reader drops it, and is handed out again zeroed. Frames still shared
//! with a reader are never reused — no aliasing, ever.

use std::sync::Arc;

use parking_lot::Mutex;

/// An immutable shared byte buffer: `Arc<[u8]>` + window.
///
/// # Examples
///
/// ```
/// use biscuit_proto::Buf;
///
/// let b = Buf::from_vec(vec![1, 2, 3, 4, 5]);
/// let mid = b.slice(1..4);
/// assert_eq!(&mid[..], &[2, 3, 4]);
/// let tail = mid.slice(2..); // windows compose without copying
/// assert_eq!(&tail[..], &[4]);
/// assert_eq!(b.len(), 5);
/// ```
#[derive(Clone)]
pub struct Buf {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Buf {
    /// Creates an empty buffer (no allocation is shared).
    pub fn new() -> Buf {
        static EMPTY: &[u8] = &[];
        Buf {
            data: Arc::from(EMPTY),
            off: 0,
            len: 0,
        }
    }

    /// Wraps a vector without copying it.
    pub fn from_vec(v: Vec<u8>) -> Buf {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        let len = data.len();
        Buf { data, off: 0, len }
    }

    /// Wraps an existing shared allocation without copying it.
    pub fn from_arc(data: Arc<[u8]>) -> Buf {
        let len = data.len();
        Buf { data, off: 0, len }
    }

    /// Copies a slice into a fresh buffer (the one constructor that
    /// memcpys; callers on the simulated data path must count it).
    pub fn copy_from_slice(s: &[u8]) -> Buf {
        Buf::from_vec(s.to_vec())
    }

    /// Length of the visible window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the visible bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Narrows to a sub-window, sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the current window.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Buf {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice {start}..{end} out of bounds for Buf of len {}",
            self.len
        );
        Buf {
            data: Arc::clone(&self.data),
            off: self.off + start,
            len: end - start,
        }
    }

    /// Concatenates buffers into one contiguous buffer (copies; used at
    /// genuine gather points like host read assembly).
    pub fn concat(parts: &[Buf]) -> Buf {
        let total: usize = parts.iter().map(Buf::len).sum();
        let mut v = Vec::with_capacity(total);
        for p in parts {
            v.extend_from_slice(p);
        }
        Buf::from_vec(v)
    }

    /// Number of handles sharing the underlying allocation (diagnostics
    /// and pool-reuse decisions).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// The underlying allocation, if this window covers all of it.
    pub(crate) fn try_into_full_frame(self) -> Option<Arc<[u8]>> {
        if self.off == 0 && self.len == self.data.len() {
            Some(self.data)
        } else {
            None
        }
    }
}

impl Default for Buf {
    fn default() -> Buf {
        Buf::new()
    }
}

impl std::ops::Deref for Buf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Buf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Buf {
    fn from(v: Vec<u8>) -> Buf {
        Buf::from_vec(v)
    }
}

impl From<&[u8]> for Buf {
    fn from(s: &[u8]) -> Buf {
        Buf::copy_from_slice(s)
    }
}

impl PartialEq for Buf {
    fn eq(&self, other: &Buf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Buf {}

impl PartialEq<[u8]> for Buf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Buf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Buf {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Buf[{}..{} of {}]",
            self.off,
            self.off + self.len,
            self.data.len()
        )
    }
}

/// A mutable frame checked out of a [`BufPool`]; exactly one handle
/// exists until [`Frame::freeze`] turns it into a shared [`Buf`].
#[derive(Debug)]
pub struct Frame {
    data: Arc<[u8]>,
}

impl Frame {
    /// Mutable access to the frame's bytes (the handle is unique by
    /// construction, so this never fails).
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        Arc::get_mut(&mut self.data).expect("pool frame is uniquely held")
    }

    /// Freezes the frame into an immutable shared buffer.
    pub fn freeze(self) -> Buf {
        Buf::from_arc(self.data)
    }
}

/// A pool of fixed-size reusable byte frames (device-DRAM page frames).
///
/// # Examples
///
/// ```
/// use biscuit_proto::BufPool;
///
/// let pool = BufPool::new(4, 8);
/// let mut f = pool.take();
/// f.as_mut_slice().copy_from_slice(&[1, 2, 3, 4]);
/// let buf = f.freeze();
/// assert_eq!(&buf[..], &[1, 2, 3, 4]);
/// assert!(pool.recycle(buf)); // sole holder: the frame is reused
/// let again = pool.take().freeze();
/// assert_eq!(&again[..], &[0, 0, 0, 0]); // handed out zeroed
/// ```
#[derive(Debug)]
pub struct BufPool {
    frame_size: usize,
    max_frames: usize,
    free: Mutex<Vec<Arc<[u8]>>>,
    allocated: std::sync::atomic::AtomicU64,
    recycled: std::sync::atomic::AtomicU64,
}

impl BufPool {
    /// Creates a pool of `frame_size`-byte frames keeping at most
    /// `max_frames` free frames cached.
    ///
    /// # Panics
    ///
    /// Panics if `frame_size` is zero.
    pub fn new(frame_size: usize, max_frames: usize) -> BufPool {
        assert!(frame_size > 0, "frame size must be positive");
        BufPool {
            frame_size,
            max_frames,
            free: Mutex::new(Vec::new()),
            allocated: std::sync::atomic::AtomicU64::new(0),
            recycled: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Frame size in bytes.
    pub fn frame_size(&self) -> usize {
        self.frame_size
    }

    /// Checks a zeroed frame out of the pool (recycled when available,
    /// freshly allocated otherwise).
    pub fn take(&self) -> Frame {
        use std::sync::atomic::Ordering;
        if let Some(mut data) = self.free.lock().pop() {
            let bytes = Arc::get_mut(&mut data).expect("free-list frames are unique");
            bytes.fill(0);
            self.recycled.fetch_add(1, Ordering::Relaxed);
            return Frame { data };
        }
        self.allocated.fetch_add(1, Ordering::Relaxed);
        Frame {
            data: Arc::from(vec![0u8; self.frame_size].into_boxed_slice()),
        }
    }

    /// Offers a buffer back to the pool. The frame is cached for reuse
    /// only when this handle is the *last* reference to a full pool-sized
    /// frame — shared or sliced buffers are simply dropped, so a recycled
    /// frame can never alias a live reader. Returns whether it was kept.
    pub fn recycle(&self, buf: Buf) -> bool {
        if buf.len() != self.frame_size || buf.ref_count() != 1 {
            return false;
        }
        let Some(frame) = buf.try_into_full_frame() else {
            return false;
        };
        // A clone could not have appeared between the check and the move:
        // we owned the only handle.
        debug_assert_eq!(Arc::strong_count(&frame), 1);
        let mut free = self.free.lock();
        if free.len() >= self.max_frames {
            return false;
        }
        free.push(frame);
        true
    }

    /// Frames newly allocated (not served from the free list).
    pub fn frames_allocated(&self) -> u64 {
        self.allocated.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Checkouts served by recycling a returned frame.
    pub fn frames_recycled(&self) -> u64 {
        self.recycled.load(std::sync::atomic::Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_composes_and_shares() {
        let b = Buf::from_vec((0u8..100).collect());
        let s1 = b.slice(10..90);
        let s2 = s1.slice(5..15);
        assert_eq!(&s2[..], &(15u8..25).collect::<Vec<u8>>()[..]);
        // All three views share one allocation.
        assert_eq!(b.ref_count(), 3);
    }

    #[test]
    fn empty_buf_is_cheap() {
        let b = Buf::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        let s = b.slice(0..0);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oversized_slice_panics() {
        Buf::from_vec(vec![1, 2, 3]).slice(0..4);
    }

    #[test]
    fn equality_and_hash_are_content_based() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Buf::from_vec(vec![9, 9, 7]);
        let b = Buf::from_vec(vec![0, 9, 9, 7, 0]).slice(1..4);
        assert_eq!(a, b);
        let hash = |x: &Buf| {
            let mut h = DefaultHasher::new();
            x.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn concat_joins_windows() {
        let a = Buf::from_vec(vec![1, 2, 3]).slice(1..);
        let b = Buf::from_vec(vec![4, 5]);
        assert_eq!(&Buf::concat(&[a, b])[..], &[2, 3, 4, 5]);
        assert!(Buf::concat(&[]).is_empty());
    }

    #[test]
    fn pool_recycles_unique_full_frames_only() {
        let pool = BufPool::new(8, 4);
        let f = pool.take();
        let buf = f.freeze();
        let held = buf.clone();
        // Shared: refused.
        assert!(!pool.recycle(buf));
        // Sliced: refused even when unique again.
        let part = held.slice(0..4);
        drop(held);
        assert!(!pool.recycle(part));
        // Unique and full-frame: kept, handed out zeroed.
        let mut f2 = pool.take();
        f2.as_mut_slice().fill(0xAB);
        let b2 = f2.freeze();
        assert!(pool.recycle(b2));
        assert_eq!(&pool.take().freeze()[..], &[0u8; 8]);
        assert!(pool.frames_recycled() >= 1);
    }

    #[test]
    fn pool_caps_free_list() {
        let pool = BufPool::new(4, 1);
        let a = pool.take().freeze();
        let b = pool.take().freeze();
        assert!(pool.recycle(a));
        assert!(!pool.recycle(b), "free list is full at max_frames");
    }
}
