//! # biscuit-proto — packets, wire codec, and the host-interface model
//!
//! Everything that crosses the host↔device boundary in the Biscuit
//! reproduction goes through this crate:
//!
//! - [`packet::Packet`] — the only payload type Biscuit allows on
//!   host-to-device and inter-application ports (paper §III-C).
//! - [`wire::Wire`] — explicit (de)serialization, mirroring the paper's
//!   requirement that boundary data be serializable.
//! - [`span::SpanHeader`] — the wire form of a query's causal identity
//!   (query id, tenant, parent span), stamped on every in-flight request
//!   when query profiling is on.
//! - [`link::HostLink`] — the PCIe Gen.3 x4 / NVMe timing model whose
//!   per-command costs and 3.2 GB/s cap produce the Conv-vs-Biscuit latency
//!   and bandwidth gaps of Tables II–III and Fig. 7.
//!
//! ## Example
//!
//! ```
//! use biscuit_proto::wire::Wire;
//! use biscuit_proto::packet::Packet;
//!
//! let pair = (String::from("word"), 42u32);
//! let pkt: Packet = pair.to_packet();
//! assert_eq!(<(String, u32)>::from_packet(&pkt).unwrap().1, 42);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buf;
pub mod link;
pub mod packet;
pub mod span;
pub mod wire;

pub use buf::{Buf, BufPool, Frame};
pub use link::{HostLink, LinkConfig};
pub use packet::{DecodeError, Packet, PacketBuilder, PacketReader};
pub use span::SpanHeader;
pub use wire::Wire;
