//! Property tests: every `Wire` encoding round-trips, and decoding never
//! panics on arbitrary bytes.

use proptest::prelude::*;

use biscuit_proto::packet::Packet;
use biscuit_proto::wire::Wire;

fn round_trips<T>(v: &T) -> Result<(), TestCaseError>
where
    T: Wire + PartialEq + std::fmt::Debug + Clone,
{
    let p = v.to_packet();
    let back = T::from_packet(&p).expect("decode of freshly encoded value");
    prop_assert_eq!(&back, v);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn u64_round_trip(v in any::<u64>()) { round_trips(&v)?; }

    #[test]
    fn i64_round_trip(v in any::<i64>()) { round_trips(&v)?; }

    #[test]
    fn f64_round_trip(v in proptest::num::f64::NORMAL | proptest::num::f64::ZERO) {
        round_trips(&v)?;
    }

    #[test]
    fn string_round_trip(v in ".*") { round_trips(&v)?; }

    #[test]
    fn vec_of_pairs_round_trip(v in proptest::collection::vec((".*", any::<u32>()), 0..50)) {
        round_trips(&v)?;
    }

    #[test]
    fn nested_option_vec_round_trip(
        v in proptest::collection::vec(proptest::option::of(any::<u64>()), 0..50)
    ) {
        round_trips(&v)?;
    }

    #[test]
    fn triple_round_trip(v in (any::<i64>(), ".*", any::<bool>())) {
        round_trips(&v)?;
    }

    /// Decoding arbitrary garbage either succeeds or returns a structured
    /// error — it must never panic or over-allocate.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let p = Packet::copy_from_slice(&bytes);
        let _ = <Vec<(String, u64)>>::from_packet(&p);
        let _ = <Option<Vec<String>>>::from_packet(&p);
        let _ = <(u64, String, bool)>::from_packet(&p);
    }
}
