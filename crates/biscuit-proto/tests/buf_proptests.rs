//! Property-based tests for [`biscuit_proto::Buf`] against a `Vec<u8>`
//! reference model: slicing, nested slicing, concatenation, and equality all
//! behave exactly like the plain byte vector they share storage with.

use biscuit_proto::Buf;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// A slice of a `Buf` views exactly the bytes `Vec::get(range)` would.
    #[test]
    fn slice_matches_vec(
        data in proptest::collection::vec(any::<u8>(), 0..256),
        a in 0usize..300,
        b in 0usize..300,
    ) {
        let buf = Buf::from_vec(data.clone());
        let (start, end) = clamp_range(data.len(), a, b);
        let sliced = buf.slice(start..end);
        prop_assert_eq!(sliced.as_slice(), &data[start..end]);
        prop_assert_eq!(sliced.len(), end - start);
    }

    /// Slicing a slice composes: `buf[s1][s2]` views `vec[s1][s2]`.
    #[test]
    fn nested_slices_compose(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        a in 0usize..300,
        b in 0usize..300,
        c in 0usize..300,
        d in 0usize..300,
    ) {
        let buf = Buf::from_vec(data.clone());
        let (s1, e1) = clamp_range(data.len(), a, b);
        let outer = buf.slice(s1..e1);
        let (s2, e2) = clamp_range(outer.len(), c, d);
        let inner = outer.slice(s2..e2);
        prop_assert_eq!(inner.as_slice(), &data[s1..e1][s2..e2]);
        // Nested slices share the root allocation — no bytes were copied.
        prop_assert!(inner.is_empty() || inner.ref_count() >= 2);
    }

    /// `Buf::concat` over arbitrary parts equals vector concatenation.
    #[test]
    fn concat_matches_vec(
        parts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..8,
        ),
    ) {
        let bufs: Vec<Buf> = parts.iter().cloned().map(Buf::from_vec).collect();
        let joined = Buf::concat(&bufs);
        let expected: Vec<u8> = parts.concat();
        prop_assert_eq!(joined.as_slice(), expected.as_slice());
    }

    /// Equality is content equality, independent of how the bytes are held
    /// (owned whole, sliced out of a larger allocation, or re-copied).
    #[test]
    fn equality_is_content_equality(
        prefix in proptest::collection::vec(any::<u8>(), 0..32),
        data in proptest::collection::vec(any::<u8>(), 0..64),
        suffix in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        let whole = Buf::from_vec(data.clone());
        let mut framed: Vec<u8> = prefix.clone();
        framed.extend_from_slice(&data);
        framed.extend_from_slice(&suffix);
        let sliced = Buf::from_vec(framed).slice(prefix.len()..prefix.len() + data.len());
        let copied = Buf::copy_from_slice(&data);
        prop_assert_eq!(&whole, &sliced);
        prop_assert_eq!(&sliced, &copied);
        prop_assert_eq!(&whole, &data);
    }
}

/// Maps two arbitrary integers onto a valid `start..end` range within `len`.
fn clamp_range(len: usize, a: usize, b: usize) -> (usize, usize) {
    if len == 0 {
        return (0, 0);
    }
    let x = a % (len + 1);
    let y = b % (len + 1);
    (x.min(y), x.max(y))
}
