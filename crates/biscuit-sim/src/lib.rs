//! # biscuit-sim — deterministic discrete-event simulation kernel
//!
//! The substrate under the Biscuit NDP reproduction. Everything that the
//! ISCA 2016 paper measures on real silicon — flash channel queueing, PCIe
//! transfer time, fiber scheduling on the SSD's ARM cores, wall power — is
//! modeled here as *virtual time*: simulated processes ("fibers") interleave
//! deterministically under a single scheduler, and blocking operations charge
//! calibrated durations to a picosecond-resolution clock.
//!
//! ## Layout
//!
//! - [`kernel`] — the event loop, fibers, and the [`Ctx`] handle.
//! - [`fuse`] — fused event-chain execution: the hot datapath declares a
//!   whole stage chain up front and runs it inline, skipping the event
//!   heap and fiber handshakes when provably equivalent (`BISCUIT_FUSE`,
//!   see `docs/PERF.md`).
//! - [`par`] — conservative parallel DES: drive N independent shard
//!   kernels on real OS threads with a canonical cross-thread merge port
//!   (see `docs/PARALLEL.md`).
//! - [`fault`] — seeded, deterministic fault injection ([`FaultPlan`]) for
//!   the instrumented sites across the stack (see `docs/FAULTS.md`).
//! - [`time`] — [`SimTime`]/[`SimDuration`] arithmetic.
//! - [`queue`] — blocking bounded queues, wait queues, semaphores.
//! - [`resource`] — FCFS bandwidth shapers and server banks.
//! - [`power`] — two-state power components integrated into Joules.
//! - [`stats`] — latency/counter collectors for the experiment harnesses.
//! - [`metrics`] — the aggregate metrics registry: counters, gauges, and
//!   log-bucketed histograms with Prometheus text + stable JSON exports
//!   (see `docs/METRICS.md` at the repo root).
//! - [`qprof`] — query-scoped causal profiling: [`SpanContext`] propagation
//!   and deterministic per-query latency attribution with critical-path
//!   extraction (see `docs/QUERYPROF.md` at the repo root).
//! - [`trace`] — structured event tracing: Chrome `trace_event` export and
//!   flat metrics (see `docs/TRACING.md` at the repo root).
//!
//! ## Example
//!
//! ```
//! use biscuit_sim::{Simulation, queue::SimQueue, time::SimDuration};
//!
//! let sim = Simulation::new(0);
//! let q = SimQueue::new(8);
//! let tx = q.clone();
//! sim.spawn("producer", move |ctx| {
//!     for i in 0..4u32 {
//!         ctx.sleep(SimDuration::from_micros(10));
//!         tx.push(ctx, i).unwrap();
//!     }
//!     tx.close(ctx);
//! });
//! sim.spawn("consumer", move |ctx| {
//!     let mut seen = Vec::new();
//!     while let Some(v) = q.pop(ctx) {
//!         seen.push(v);
//!     }
//!     assert_eq!(seen, vec![0, 1, 2, 3]);
//! });
//! let report = sim.run();
//! report.assert_quiescent();
//! assert_eq!(report.end_time.as_micros(), 40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod fuse;
pub mod kernel;
pub mod metrics;
pub mod par;
pub mod power;
pub mod qprof;
pub mod queue;
pub mod resource;
pub mod stats;
pub mod time;
pub mod trace;

pub use fault::{DriveLoss, DriveLossPhase, FaultConfig, FaultPlan, FaultSite};
pub use kernel::{Ctx, Kernel, Pid, RunStatus, SimReport, Simulation};
pub use metrics::{MetricsConfig, MetricsRegistry, MetricsSnapshot};
pub use par::{ParConfig, ParMode, PortRx, PortTx};
pub use qprof::{QprofConfig, QueryProfile, QueryProfiler, QueryProfiles, SpanContext, Stage};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceConfig, TraceEvent, Tracer};
