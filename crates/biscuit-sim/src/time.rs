//! Virtual time for the discrete-event simulation.
//!
//! Time is kept in integer **picoseconds** so that byte-granular bandwidth
//! arithmetic (e.g. one byte over a 3.2 GB/s link is ~312 ps) does not lose
//! precision. A `u64` of picoseconds covers ~213 days of virtual time, far
//! beyond anything the Biscuit experiments simulate (the longest run in the
//! paper is ~2 days of wall time for the Conv TPC-H suite).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, measured in picoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use biscuit_sim::time::SimTime;
/// let t = SimTime::from_us(90);
/// assert_eq!(t.as_nanos(), 90_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in picoseconds.
///
/// # Examples
///
/// ```
/// use biscuit_sim::time::SimDuration;
/// let d = SimDuration::from_micros(10) + SimDuration::from_nanos(700);
/// assert_eq!(d.as_nanos(), 10_700);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

const PS_PER_NS: u64 = 1_000;
const PS_PER_US: u64 = 1_000_000;
const PS_PER_MS: u64 = 1_000_000_000;
const PS_PER_S: u64 = 1_000_000_000_000;

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a time `us` microseconds after the epoch.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * PS_PER_US)
    }

    /// Raw picosecond count since the epoch.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since the epoch (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Whole microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / PS_PER_US
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier time is after self"),
        )
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_S)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "duration seconds must be finite and non-negative, got {s}"
        );
        let ps = s * PS_PER_S as f64;
        assert!(
            ps <= u64::MAX as f64,
            "duration overflows SimDuration: {s}s"
        );
        SimDuration(ps as u64)
    }

    /// Creates a duration from fractional microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative, NaN, or too large to represent.
    pub fn from_micros_f64(us: f64) -> Self {
        Self::from_secs_f64(us * 1e-6)
    }

    /// The time to move `bytes` bytes at `bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn for_bytes(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "bandwidth must be positive, got {bytes_per_sec}"
        );
        Self::from_secs_f64(bytes as f64 / bytes_per_sec)
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / PS_PER_US
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_S as f64
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({})", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimDuration({})", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&format_ps(self.0))
    }
}

fn format_ps(ps: u64) -> String {
    if ps >= PS_PER_S {
        format!("{:.3}s", ps as f64 / PS_PER_S as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(5).as_micros(), 5);
        assert_eq!(SimDuration::from_nanos(1500).as_nanos(), 1500);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2000);
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_micros(10);
        let u = t + SimDuration::from_micros(5);
        assert_eq!((u - t).as_micros(), 5);
        assert_eq!(u.duration_since(SimTime::ZERO).as_micros(), 15);
    }

    #[test]
    fn bandwidth_duration() {
        // 3.2 GB/s, 4 KiB => ~1.28 us
        let d = SimDuration::for_bytes(4096, 3.2e9);
        assert!((d.as_micros_f64() - 1.28).abs() < 0.001, "{d}");
    }

    #[test]
    fn duration_from_fractional_seconds() {
        let d = SimDuration::from_secs_f64(0.0000015);
        assert_eq!(d.as_nanos(), 1500);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_underflow_panics() {
        let _ = SimDuration::from_nanos(1) - SimDuration::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "earlier time is after")]
    fn negative_elapsed_panics() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_us(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_micros(31).to_string(), "31.000us");
        assert_eq!(SimDuration::from_ps(500).to_string(), "500ps");
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_micros(), 10);
        assert_eq!((SimDuration::from_micros(3) * 4).as_micros(), 12);
        assert_eq!((SimDuration::from_micros(12) / 4).as_micros(), 3);
    }
}
