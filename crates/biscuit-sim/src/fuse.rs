//! Fused event-chain execution (`BISCUIT_FUSE`).
//!
//! The hot device datapath — NAND sense → channel bus transfer → pattern
//! match (→ DMA / program / journal) — has fixed, calibrated stage rates,
//! so the whole chain's schedule is an analytic function of its input. The
//! unfused kernel still discovers that schedule one hop at a time: each
//! stage boundary is a heap event plus a fiber park/resume handshake (two
//! cross-thread rendezvous). This module lets the datapath *declare* the
//! chain up front as a [`ChainDesc`] and execute it to completion inline,
//! skipping the heap and the handshakes whenever that is provably
//! equivalent.
//!
//! ## Determinism contract
//!
//! Fusion is a wall-clock optimization only. At the same seed, a fused run
//! and an unfused run produce **byte-identical** trace, metrics, and qprof
//! exports — including under fault injection and every `BISCUIT_PAR`
//! policy. The kernel guarantees this by construction:
//!
//! - a hop advances inline only when no pending wake (stale ones included)
//!   exists at or before the hop's target time, and only within the current
//!   `run_until` window (a fused chain never crosses a PDES lookahead
//!   barrier — it defers to the scheduler, which pauses exactly like the
//!   unfused path; see `docs/PARALLEL.md`);
//! - equal timestamps de-fuse, preserving `(time, seq)` dispatch order;
//! - every fused hop mirrors the scheduler's accounting: `events_processed`
//!   (and the event cap), `sim_context_switches_total`, the runnable-depth
//!   gauge, qprof switch attribution, and the FiberBlock/FiberResume trace
//!   pair at the same virtual timestamps.
//!
//! The only values that legitimately differ across `BISCUIT_FUSE` settings
//! are the engine's own dispatch-path meters, listed in
//! [`VARIANT_METRICS`]; comparisons filter them with
//! [`MetricsSnapshot::without`](crate::metrics::MetricsSnapshot::without).
//!
//! ## De-fuse rules
//!
//! A chain executes unfused (hop by hop through the scheduler) when:
//!
//! - `BISCUIT_FUSE=0` (or [`Simulation::set_fuse`](crate::Simulation::set_fuse)
//!   turned fusion off) — every hop parks, exactly as before this module
//!   existed;
//! - the builder marked it [`ChainDesc::defuse`]d — e.g. the SSD datapath
//!   de-fuses a request whose build drew an ECC retry or uncorrectable
//!   fault from the [`FaultPlan`](crate::fault::FaultPlan), which is itself
//!   a deterministic, seeded decision;
//! - a hop would cross the active `run_until` horizon or land at/after a
//!   pending wake — the hop (and the chain's remaining hops, if any wake
//!   intervenes) falls back to a normal sleep.
//!
//! Either way the observable schedule is identical; de-fusing only gives up
//! the wall-clock win.

use crate::kernel::Ctx;
use crate::time::SimTime;

/// Metric names whose values legitimately differ between `BISCUIT_FUSE`
/// settings: they meter the engine's dispatch path, not the simulated
/// model. Determinism comparisons filter them out via
/// [`MetricsSnapshot::without`](crate::metrics::MetricsSnapshot::without).
pub const VARIANT_METRICS: &[&str] = &[
    "sim_events_heap_total",
    "sim_events_at_now_total",
    "sim_chains_fused_total",
    "sim_fiber_switches_total",
    "sim_fiber_threads_reused_total",
];

/// Reads the `BISCUIT_FUSE` policy knob. Fusion defaults **on**; `0`,
/// `off`, `false`, and `no` disable it.
pub fn from_env() -> bool {
    match std::env::var("BISCUIT_FUSE") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | "no"),
        Err(_) => true,
    }
}

/// The hardware stage a chain entry models (labels for traces, docs, and
/// debugging; the kernel treats all kinds identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// NAND page sense on a die server (including ECC retry re-senses).
    NandSense,
    /// Flash-channel transfer into device DRAM.
    BusTransfer,
    /// Per-channel pattern-matcher scan at the matcher stream rate.
    MatcherScan,
    /// Device DRAM staging/assembly work.
    DramStage,
    /// Host link (PCIe) DMA of a completed page.
    LinkDma,
    /// NAND program or journal append on the write path.
    ProgramJournal,
    /// Host-side CPU charge tied to the request.
    HostCompute,
    /// An untyped wait (composite completion padding).
    Wait,
}

type Effect = Box<dyn FnOnce(&Ctx) + Send>;

/// One stage of a chain: a labeled `[start, end]` occupancy on some modeled
/// resource, optionally carrying a side effect to run when its result is
/// available.
pub struct Stage {
    /// Which hardware stage this entry models.
    pub kind: StageKind,
    /// When the stage starts occupying its resource.
    pub start: SimTime,
    /// When the stage's result is available.
    pub end: SimTime,
    effect: Option<Effect>,
}

impl std::fmt::Debug for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stage")
            .field("kind", &self.kind)
            .field("start", &self.start)
            .field("end", &self.end)
            .field("effect", &self.effect.is_some())
            .finish()
    }
}

/// A chain descriptor: the declared schedule of one datapath request.
///
/// Builders (the SSD device, the host I/O path) compute every stage's
/// `[start, end]` through the same resource reservations as always —
/// [`crate::resource::ServerBank::enqueue_span`] and friends run at build
/// time in both modes — then submit the descriptor with
/// [`Ctx::run_chain`]. Stages without effects are schedule annotations:
/// the executing fiber only touches virtual time at effect boundaries and
/// at the composite completion ([`ChainDesc::complete_at`]), exactly where
/// the unfused path would park.
pub struct ChainDesc {
    stages: Vec<Stage>,
    complete_at: SimTime,
    defused: bool,
}

impl std::fmt::Debug for ChainDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainDesc")
            .field("stages", &self.stages)
            .field("complete_at", &self.complete_at)
            .field("defused", &self.defused)
            .finish()
    }
}

impl Default for ChainDesc {
    fn default() -> Self {
        Self::new()
    }
}

impl ChainDesc {
    /// An empty chain completing immediately.
    pub fn new() -> Self {
        Self::with_capacity(4)
    }

    /// An empty chain with room for `n` stages.
    pub fn with_capacity(n: usize) -> Self {
        ChainDesc {
            stages: Vec::with_capacity(n),
            complete_at: SimTime::ZERO,
            defused: false,
        }
    }

    /// Appends a schedule-annotation stage (no side effect). Extends the
    /// composite completion to cover `end`.
    pub fn push(&mut self, kind: StageKind, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "stage ends before it starts");
        self.stages.push(Stage {
            kind,
            start,
            end,
            effect: None,
        });
        self.complete_at = self.complete_at.max(end);
    }

    /// Appends a stage whose `effect` runs when the stage's result is
    /// available (virtual time `end`). Effects run in push order.
    pub fn push_effect(
        &mut self,
        kind: StageKind,
        start: SimTime,
        end: SimTime,
        effect: impl FnOnce(&Ctx) + Send + 'static,
    ) {
        debug_assert!(end >= start, "stage ends before it starts");
        self.stages.push(Stage {
            kind,
            start,
            end,
            effect: Some(Box::new(effect)),
        });
        self.complete_at = self.complete_at.max(end);
    }

    /// Extends the composite completion time to at least `at` (for
    /// requests whose completion outlives their last stage, or that carry
    /// no stages at all).
    pub fn set_completion(&mut self, at: SimTime) {
        self.complete_at = self.complete_at.max(at);
    }

    /// The composite completion time: when [`Ctx::run_chain`] returns.
    pub fn complete_at(&self) -> SimTime {
        self.complete_at
    }

    /// Marks the chain to execute unfused (every hop parks). Builders call
    /// this when a deterministic mid-chain disruption — e.g. an ECC retry
    /// drawn from the fault plan — makes run-to-completion inappropriate.
    pub fn defuse(&mut self) {
        self.defused = true;
    }

    /// Whether [`ChainDesc::defuse`] was called.
    pub fn is_defused(&self) -> bool {
        self.defused
    }

    /// The declared stages, in push order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of declared stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when no stages were declared.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

impl Ctx {
    /// Executes a chain descriptor: advances to each effect boundary (in
    /// push order), runs the effect, then advances to the composite
    /// completion time. With fusion on, each hop runs inline when legal
    /// (see [`Ctx::advance_to`]); with fusion off or a
    /// [`ChainDesc::defuse`]d chain, every hop is a plain
    /// [`Ctx::sleep_until`] — byte-identical schedules either way.
    ///
    /// Returns `true` when every hop ran fused (counted in
    /// `sim_chains_fused_total`).
    pub fn run_chain(&self, chain: ChainDesc) -> bool {
        let ChainDesc {
            stages,
            complete_at,
            defused,
        } = chain;
        let mut fused = !defused;
        for stage in stages {
            if let Some(effect) = stage.effect {
                fused &= self.chain_hop(stage.end, defused);
                effect(self);
            }
        }
        fused &= self.chain_hop(complete_at, defused);
        if fused {
            self.note_chain_fused();
        }
        fused
    }

    fn chain_hop(&self, at: SimTime, defused: bool) -> bool {
        if defused {
            self.sleep_until(at);
            false
        } else {
            self.advance_to(at)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::Simulation;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn us(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(n)
    }

    #[test]
    fn chain_builder_tracks_completion() {
        let mut c = ChainDesc::new();
        assert!(c.is_empty());
        c.push(StageKind::NandSense, us(0), us(75));
        c.push(StageKind::BusTransfer, us(75), us(80));
        assert_eq!(c.len(), 2);
        assert_eq!(c.complete_at(), us(80));
        c.set_completion(us(100));
        assert_eq!(c.complete_at(), us(100));
        assert!(!c.is_defused());
        c.defuse();
        assert!(c.is_defused());
    }

    #[test]
    fn run_chain_reaches_completion_in_both_modes() {
        for fuse in [false, true] {
            let sim = Simulation::new(0);
            sim.set_fuse(fuse);
            let end = Arc::new(Mutex::new(0u64));
            let e = Arc::clone(&end);
            sim.spawn("chain", move |ctx| {
                let mut c = ChainDesc::new();
                c.push(StageKind::NandSense, us(0), us(75));
                c.push(StageKind::MatcherScan, us(75), us(79));
                let fused = ctx.run_chain(c);
                assert_eq!(fused, fuse, "sole fiber: fusion succeeds iff on");
                *e.lock() = ctx.now().as_micros();
            });
            let report = sim.run();
            report.assert_quiescent();
            assert_eq!(*end.lock(), 79);
            assert_eq!(report.end_time.as_micros(), 79);
        }
    }

    #[test]
    fn effects_run_at_their_stage_end_times() {
        for fuse in [false, true] {
            let sim = Simulation::new(0);
            sim.set_fuse(fuse);
            let log = Arc::new(Mutex::new(Vec::new()));
            let l = Arc::clone(&log);
            sim.spawn("chain", move |ctx| {
                let mut c = ChainDesc::new();
                let l1 = Arc::clone(&l);
                c.push_effect(StageKind::NandSense, us(0), us(10), move |ctx| {
                    l1.lock().push(("sense", ctx.now().as_micros()));
                });
                let l2 = Arc::clone(&l);
                c.push_effect(StageKind::BusTransfer, us(10), us(14), move |ctx| {
                    l2.lock().push(("bus", ctx.now().as_micros()));
                });
                c.set_completion(us(20));
                ctx.run_chain(c);
                l.lock().push(("done", ctx.now().as_micros()));
            });
            sim.run().assert_quiescent();
            assert_eq!(
                *log.lock(),
                vec![("sense", 10), ("bus", 14), ("done", 20)],
                "fuse={fuse}"
            );
        }
    }

    #[test]
    fn defused_chain_still_completes_and_is_not_counted() {
        let sim = Simulation::new(0);
        sim.enable_metrics();
        sim.set_fuse(true);
        sim.spawn("chain", |ctx| {
            let mut c = ChainDesc::new();
            c.push(StageKind::NandSense, us(0), us(50));
            c.defuse();
            assert!(!ctx.run_chain(c));
            assert_eq!(ctx.now().as_micros(), 50);
        });
        let report = sim.run();
        report.assert_quiescent();
        assert_eq!(
            report.metrics.counter_value("sim_chains_fused_total", &[]),
            Some(0)
        );
    }

    #[test]
    fn pending_peer_wake_defuses_the_hop() {
        // A peer fiber wakes mid-chain: the chain's hop past that wake must
        // go through the scheduler so the peer runs at its correct time.
        for fuse in [false, true] {
            let sim = Simulation::new(0);
            sim.set_fuse(fuse);
            let log = Arc::new(Mutex::new(Vec::new()));
            let l1 = Arc::clone(&log);
            sim.spawn("chain", move |ctx| {
                let mut c = ChainDesc::new();
                c.push(StageKind::NandSense, us(0), us(100));
                let fused = ctx.run_chain(c);
                assert!(!fused, "peer wake at 40us must de-fuse");
                l1.lock().push(("chain-done", ctx.now().as_micros()));
            });
            let l2 = Arc::clone(&log);
            sim.spawn("peer", move |ctx| {
                ctx.sleep(SimDuration::from_micros(40));
                l2.lock().push(("peer", ctx.now().as_micros()));
            });
            sim.run().assert_quiescent();
            assert_eq!(
                *log.lock(),
                vec![("peer", 40), ("chain-done", 100)],
                "fuse={fuse}"
            );
        }
    }

    #[test]
    fn variant_metrics_list_matches_registered_names() {
        let sim = Simulation::new(0);
        sim.enable_metrics();
        sim.spawn("noop", |_| {});
        let report = sim.run();
        for name in VARIANT_METRICS {
            assert!(
                report.metrics.get(name, &[]).is_some(),
                "{name} not registered by the kernel"
            );
        }
    }
}
